"""Observability test fixtures: every test starts from clean buffers."""

from __future__ import annotations

import pytest

from repro.obs import metrics, state, trace


@pytest.fixture(autouse=True)
def clean_obs():
    """Enabled instrumentation, empty span buffer, empty registry."""
    saved = state.ENABLED
    state.enable()
    trace.clear()
    metrics.REGISTRY.reset()
    yield
    trace.clear()
    metrics.REGISTRY.reset()
    state.ENABLED = saved
