"""Span tracing: nesting, attributes, the kill switch, thread safety."""

import threading

from repro.obs import state, trace
from repro.obs.trace import NULL_SPAN, event, get_spans, span


class TestNesting:
    def test_parent_child_linkage(self):
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = get_spans()
        assert inner.name == "inner"
        assert outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        a, b, root = get_spans()
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_monotonic_and_contained(self):
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = get_spans()
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert inner.duration_s >= 0.0

    def test_event_nests_under_current_span(self):
        with span("work"):
            event("tick", step=3)
        tick, work = get_spans()
        assert tick.kind == "event"
        assert tick.parent_id == work.span_id
        assert tick.attributes == {"step": 3}
        assert tick.duration_s == 0.0


class TestAttributes:
    def test_initial_and_set(self):
        with span("s", board="nano") as live:
            live.set(zone=2)
        (recorded,) = get_spans()
        assert recorded.attributes == {"board": "nano", "zone": 2}

    def test_exception_recorded_and_propagated(self):
        try:
            with span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (recorded,) = get_spans()
        assert recorded.attributes["error"] == "ValueError"


class TestKillSwitch:
    def test_disabled_returns_shared_null_span(self):
        state.disable()
        assert span("anything", a=1) is NULL_SPAN
        with span("nothing") as live:
            live.set(ignored=True)
        event("nothing-either")
        assert get_spans() == []

    def test_reenable_records_again(self):
        state.disable()
        with span("off"):
            pass
        state.enable()
        with span("on"):
            pass
        assert [s.name for s in get_spans()] == ["on"]


class TestBufferManagement:
    def test_clear_empties_buffer(self):
        with span("x"):
            pass
        trace.clear()
        assert get_spans() == []
        assert trace.dropped_spans() == 0

    def test_cap_drops_instead_of_growing(self, monkeypatch):
        monkeypatch.setattr(trace, "MAX_SPANS", 2)
        for _ in range(4):
            with span("s"):
                pass
        assert len(get_spans()) == 2
        assert trace.dropped_spans() == 2


class TestThreads:
    def test_threads_get_independent_nesting(self):
        """A thread started outside any span roots its own tree."""
        done = threading.Event()

        def worker():
            with span("thread-root"):
                pass
            done.set()

        with span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {s.name: s for s in get_spans()}
        # The worker thread inherited no context (fresh thread), so its
        # root has no parent; the main root is separate.
        assert by_name["thread-root"].parent_id is None
        assert by_name["thread-root"].tid != by_name["main-root"].tid


class TestCaptureAndMerge:
    def test_capture_collects_only_the_task_spans(self):
        with span("preexisting"):
            pass
        ctx = trace.current_context()

        def task():
            with span("captured"):
                pass
            return 42

        result, collected = trace.capture(ctx, task)
        assert result == 42
        assert [s.name for s in collected] == ["captured"]
        # The captured span moved out of the buffer...
        assert [s.name for s in get_spans()] == ["preexisting"]
        # ...and merge folds it back with a fresh id.
        trace.merge_spans(collected)
        names = [s.name for s in get_spans()]
        assert names == ["preexisting", "captured"]

    def test_merge_rekeys_colliding_ids(self):
        with span("parent") as live:
            parent_id = live.span_id
            ctx = trace.current_context()

        def task():
            with span("child"):
                with span("grandchild"):
                    pass

        _, collected = trace.capture(ctx, task)
        trace.merge_spans(collected)
        by_name = {s.name: s for s in get_spans()}
        child = by_name["child"]
        grandchild = by_name["grandchild"]
        assert child.parent_id == parent_id
        assert grandchild.parent_id == child.span_id
        ids = [s.span_id for s in get_spans()]
        assert len(ids) == len(set(ids))

    def test_disabled_context_skips_capture(self):
        ctx = trace.TraceContext(enabled=False, parent_id=None)
        result, collected = trace.capture(ctx, lambda: "ok")
        assert result == "ok"
        assert collected == []
