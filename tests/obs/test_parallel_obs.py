"""Observability of the parallel fan-out: worker-span merging across a
real ProcessPoolExecutor, degradation events, thread-safe outcomes."""

import os
import threading

import numpy as np

from repro.obs import trace
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.metrics import REGISTRY
from repro.obs.trace import get_spans, span
from repro.perf.parallel import ParallelRunner


def _spanned_square(x):
    with span("task.body", item=x):
        return x * x


def _shared_sum(arrays, scale):
    return float(arrays["data"].sum()) * scale


class _Unpicklable:
    def __call__(self, arrays, item):
        return item

    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


class TestWorkerSpanMerging:
    def test_pool_fanout_merges_worker_spans(self):
        runner = ParallelRunner(max_workers=2)
        with span("fanout") as live:
            parent_id = live.span_id
            results = runner.map(_spanned_square, range(4))
        assert results == [0, 1, 4, 9]
        if runner.last_mode != "parallel":
            return  # pool unavailable in this sandbox: nothing to merge
        spans = get_spans()
        workers = [s for s in spans if s.name == "parallel.worker"]
        bodies = [s for s in spans if s.name == "task.body"]
        assert len(workers) == 4
        assert len(bodies) == 4
        # Every worker span roots at the fan-out point; every task body
        # nests under its worker span (ids were re-keyed on merge).
        worker_ids = {s.span_id for s in workers}
        assert all(s.parent_id == parent_id for s in workers)
        assert all(s.parent_id in worker_ids for s in bodies)
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))

    def test_worker_spans_keep_worker_pids(self):
        runner = ParallelRunner(max_workers=2)
        with span("fanout"):
            runner.map(_spanned_square, range(4))
        if runner.last_mode != "parallel":
            return  # pool unavailable in this sandbox: nothing to check
        workers = [s for s in get_spans() if s.name == "parallel.worker"]
        assert all(s.pid != os.getpid() for s in workers)

    def test_merged_trace_is_chrome_valid(self):
        with span("fanout"):
            ParallelRunner(max_workers=2).map(_spanned_square, range(3))
        assert validate_chrome_trace(chrome_trace()) > 0

    def test_serial_path_still_traces(self):
        with span("fanout") as live:
            parent_id = live.span_id
            ParallelRunner(parallel=False).map(_spanned_square, range(2))
        bodies = [s for s in get_spans() if s.name == "task.body"]
        assert len(bodies) == 2
        assert all(s.parent_id == parent_id for s in bodies)
        assert all(s.pid == os.getpid() for s in bodies)


class TestDegradationEvents:
    def test_unpicklable_worker_emits_structured_event(self):
        runner = ParallelRunner(max_workers=2)
        data = {"data": np.ones(8)}
        results = runner.map_shared(_Unpicklable(), data, [1, 2])
        assert results == [1, 2]
        assert runner.last_transport == "inline"
        events = [s for s in get_spans()
                  if s.name == "parallel.transport_degraded"]
        assert len(events) == 1
        assert events[0].attributes["transport_from"] == "shared"
        assert events[0].attributes["transport_to"] == "inline"
        assert REGISTRY.counter("perf.parallel.degraded").value == 1

    def test_transport_outcome_feeds_the_registry(self):
        runner = ParallelRunner(max_workers=2)
        data = {"data": np.arange(16, dtype=float)}
        results = runner.map_shared(_shared_sum, data, [1.0, 2.0])
        assert results == [data["data"].sum(), data["data"].sum() * 2]
        transport = runner.last_transport
        assert transport in ("shared", "pickle", "inline")
        assert REGISTRY.counter(
            f"perf.parallel.transport.{transport}").value == 1
        level = REGISTRY.gauge("perf.parallel.transport_level").value
        assert level == {"inline": 0, "pickle": 1, "shared": 2}[transport]


class TestThreadSafety:
    def test_last_transport_is_per_thread(self):
        runner = ParallelRunner(parallel=False)
        data = {"data": np.ones(4)}
        seen = {}

        def drive(tag):
            runner.map_shared(_shared_sum, data, [1.0])
            seen[tag] = runner.last_transport

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(4)]
        runner.last_transport = None  # main thread's own slot
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every worker thread saw its own outcome; the main thread's
        # value was never clobbered by any of them.
        assert all(v == "inline" for v in seen.values())
        assert runner.last_transport is None

    def test_outcome_unset_in_fresh_thread(self):
        runner = ParallelRunner(parallel=False)
        runner.map_shared(_shared_sum, {"data": np.ones(2)}, [1.0])
        assert runner.last_transport == "inline"
        observed = {}

        def peek():
            observed["transport"] = runner.last_transport

        t = threading.Thread(target=peek)
        t.start()
        t.join()
        assert observed["transport"] is None
