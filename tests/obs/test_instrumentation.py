"""Instrumented seams: fault events, comm/microbench spans, the bench
gate's post-mortem trace, and tune_many/compare_models coverage."""

import json

from repro.apps.shwfs import ShwfsPipeline
from repro.model.framework import Framework
from repro.obs.export import validate_chrome_trace
from repro.obs.metrics import REGISTRY
from repro.obs.trace import get_spans
from repro.perf import regress
from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.soc.board import get_board
from repro.soc.soc import SoC


def _names():
    return [s.name for s in get_spans()]


class TestCommSpans:
    def test_every_model_emits_execute_and_phase_spans(self):
        from repro.comm.base import get_model

        workload = ShwfsPipeline().workload(board_name="tx2")
        board = get_board("tx2")
        for model in ("SC", "UM", "ZC"):
            get_model(model).execute(workload, SoC(board))
        executes = [s for s in get_spans() if s.name == "comm.execute"]
        assert sorted(s.attributes["model"] for s in executes) == \
            ["SC", "UM", "ZC"]
        phases = {s.name for s in get_spans() if "comm.phase" in s.name}
        assert {"comm.phase.cpu", "comm.phase.gpu",
                "comm.phase.copy"} <= phases
        # Phase spans nest inside their model's execute span.
        by_id = {s.span_id: s for s in get_spans()}
        for phase in (s for s in get_spans()
                      if s.name.startswith("comm.phase.")):
            node = phase
            while node.parent_id is not None:
                node = by_id[node.parent_id]
            assert node.name == "comm.execute"

    def test_execute_counters_and_histograms(self):
        from repro.comm.base import get_model

        workload = ShwfsPipeline().workload(board_name="nano")
        get_model("SC").execute(workload, SoC(get_board("nano")))
        assert REGISTRY.counter("comm.execute.SC").value == 1
        assert REGISTRY.histogram("comm.kernel_time_s").count == 1


class TestFrameworkSpans:
    def test_tune_span_tree(self, characterization_suite):
        framework = Framework(suite=characterization_suite)
        board = get_board("xavier")
        framework.tune(ShwfsPipeline().workload(board_name="xavier"), board)
        names = _names()
        for expected in ("tune", "characterize", "profile", "decide"):
            assert expected in names
        tune_span = next(s for s in get_spans() if s.name == "tune")
        assert tune_span.attributes["recommendation"]
        assert REGISTRY.counter("framework.tune").value == 1

    def test_degraded_tune_emits_stage_failed_event(self, monkeypatch):
        framework = Framework()
        board = get_board("tx2")

        def broken(self, *args, **kwargs):
            from repro.errors import ProfilingError

            raise ProfilingError("boom", code="PROFILE_BROKEN")

        monkeypatch.setattr(Framework, "profile", broken)
        report = framework.tune(ShwfsPipeline().workload(board_name="tx2"),
                                board, strict=False)
        assert report.degraded
        events = [s for s in get_spans() if s.name == "tune.stage_failed"]
        assert events
        assert events[0].attributes == {"stage": "profile",
                                        "code": "PROFILE_BROKEN"}
        assert REGISTRY.counter("framework.tune.degraded").value == 1


class TestFaultEvents:
    def test_fired_faults_mirror_into_obs(self):
        plan = FaultPlan.from_cli(0, ["copy-stall:*:3.0:1.0"])
        framework = Framework()
        board = get_board("tx2")
        with inject_faults(plan) as injector:
            framework.tune(ShwfsPipeline().workload(board_name="tx2"), board,
                           strict=False)
        fired = [s for s in get_spans()
                 if s.name == "robustness.fault_fired"]
        assert len(fired) == len(injector.log.events)
        assert fired[0].attributes["kind"] == "copy-stall"
        assert fired[0].attributes["site"] == "soc.copy"
        assert REGISTRY.counter("robustness.fault.copy-stall").value == \
            len(injector.log.events)


class TestBenchGate:
    def test_probe_timings_reach_the_registry(self, tmp_path, monkeypatch):
        metric = "paths.fake.speedup"
        (tmp_path / "BENCH_app.json").write_text(json.dumps(
            {"paths": {"fake": {"speedup": 10.0}}}
        ))
        monkeypatch.setattr(
            regress, "PROBES",
            {metric: ("BENCH_app.json", lambda: (1.0, 0.1))},
        )
        checks = regress.run_checks(baseline_dir=tmp_path)
        assert len(checks) == 1 and not checks[0].regressed
        assert REGISTRY.gauge(f"bench.{metric}.scalar_s").value == 1.0
        assert REGISTRY.gauge(f"bench.{metric}.vectorized_s").value == 0.1
        assert REGISTRY.gauge(f"bench.{metric}.speedup").value == 10.0
        assert any(s.name == "bench.probe" for s in get_spans())

    def test_failed_gate_writes_postmortem_trace(self, tmp_path,
                                                 monkeypatch):
        (tmp_path / "BENCH_app.json").write_text(json.dumps(
            {"paths": {"fake": {"speedup": 100.0}}}
        ))
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.fake.speedup":
                ("BENCH_app.json", lambda: (1.0, 1.0))},  # speedup 1x
        )
        text, code = regress.check(baseline_dir=tmp_path)
        assert code == regress.EXIT_REGRESSION
        artifact = tmp_path / regress.DEFAULT_TRACE_NAME
        assert f"post-mortem trace written to {artifact}" in text
        doc = json.loads(artifact.read_text())
        validate_chrome_trace(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"bench.check", "bench.probe", "bench.regressed"} <= names

    def test_failed_gate_honours_explicit_trace_path(self, tmp_path,
                                                     monkeypatch):
        (tmp_path / "BENCH_app.json").write_text(json.dumps(
            {"paths": {"fake": {"speedup": 100.0}}}
        ))
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.fake.speedup": ("BENCH_app.json", lambda: (1.0, 1.0))},
        )
        target = tmp_path / "custom-trace.json"
        text, code = regress.check(baseline_dir=tmp_path, trace_path=target)
        assert code == regress.EXIT_REGRESSION
        assert target.exists()
        assert str(target) in text

    def test_passing_gate_writes_no_trace(self, tmp_path, monkeypatch):
        (tmp_path / "BENCH_app.json").write_text(json.dumps(
            {"paths": {"fake": {"speedup": 1.0}}}
        ))
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.fake.speedup": ("BENCH_app.json", lambda: (1.0, 0.5))},
        )
        text, code = regress.check(baseline_dir=tmp_path)
        assert code == 0
        assert not (tmp_path / regress.DEFAULT_TRACE_NAME).exists()
        assert "post-mortem" not in text


class TestMicrobenchSpans:
    def test_suite_run_emits_per_microbench_spans(self):
        from repro.microbench.suite import MicrobenchmarkSuite

        MicrobenchmarkSuite().characterize(get_board("nano"))
        names = _names()
        assert "microbench.suite" in names
        for mb in ("microbench.mb1", "microbench.mb2", "microbench.mb3"):
            assert mb in names
