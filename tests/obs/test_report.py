"""TuneReport: exactness against a live tune and JSON round trips."""

import dataclasses
import json
import math

from repro.apps.shwfs import ShwfsPipeline
from repro.model.framework import Framework
from repro.obs.report import TUNE_REPORT_VERSION, TuneReport
from repro.soc.board import get_board


def _tune(suite, board_name="xavier"):
    framework = Framework(suite=suite)
    board = get_board(board_name)
    tuning = framework.tune(ShwfsPipeline().workload(board_name=board.name),
                            board, current_model="SC")
    return framework, tuning


class TestExactness:
    def test_intermediates_match_the_decision(self, characterization_suite):
        framework, tuning = _tune(characterization_suite)
        report = framework.last_tune_report
        assert report is not None
        rec = tuning.recommendation
        # Every recorded intermediate equals the value the decision
        # actually consumed — nothing recomputed, nothing rounded.
        assert report.workload == tuning.workload_name
        assert report.board == tuning.board_name
        assert report.cpu_cache_usage_pct == tuning.cpu_cache_usage_pct
        assert report.gpu_cache_usage_pct == tuning.gpu_cache_usage_pct
        assert report.zone == int(rec.zone)
        assert report.decision["model"] == rec.model.value
        assert report.decision["reason"] == rec.reason
        assert report.decision["confidence"] == rec.confidence.value
        assert report.thresholds["gpu_threshold_pct"] == rec.gpu_threshold_pct
        assert report.thresholds["cpu_threshold_pct"] == rec.cpu_threshold_pct
        assert report.profile == dataclasses.asdict(tuning.profile)
        assert report.device["gpu_peak_throughput"] == \
            tuning.device.gpu_peak_throughput
        if rec.estimate is not None:
            assert report.estimate["raw"] == rec.estimate.raw
            assert report.estimate["capped"] == rec.estimate.capped

    def test_timings_cover_every_stage(self, characterization_suite):
        framework, _ = _tune(characterization_suite)
        timings = framework.last_tune_report.timings_s
        assert set(timings) == {"characterize", "profile", "decide", "tune"}
        assert all(t >= 0.0 for t in timings.values())
        assert timings["tune"] >= timings["decide"]


class TestSerialization:
    def test_json_round_trip(self, characterization_suite):
        framework, _ = _tune(characterization_suite)
        report = framework.last_tune_report
        rebuilt = TuneReport.from_json(report.to_json())
        assert rebuilt == report

    def test_json_is_standard_and_stable(self, characterization_suite):
        framework, _ = _tune(characterization_suite)
        text = framework.last_tune_report.to_json()
        doc = json.loads(text)  # would reject NaN/Infinity literals
        assert doc["version"] == TUNE_REPORT_VERSION
        assert json.dumps(doc, indent=2, sort_keys=True) + "\n" == text

    def test_degraded_report_scrubs_nan(self):
        framework = Framework()
        board = get_board("tx2")
        workload = ShwfsPipeline().workload(board_name="tx2")
        # Force profiling to fail so the usage metrics degrade to NaN.
        original = Framework.profile
        try:
            def broken(self, *args, **kwargs):
                from repro.errors import ProfilingError

                raise ProfilingError("no counters", code="PROFILE_BROKEN")

            Framework.profile = broken
            tuning = framework.tune(workload, board, strict=False)
        finally:
            Framework.profile = original
        assert tuning.degraded
        report = framework.last_tune_report
        assert math.isnan(report.cpu_cache_usage_pct)
        doc = json.loads(report.to_json())
        assert doc["cpu_cache_usage_pct"] is None
        assert doc["profile"] is None
        rebuilt = TuneReport.from_json(report.to_json())
        assert math.isnan(rebuilt.cpu_cache_usage_pct)

    def test_unknown_keys_ignored_on_load(self):
        doc = {
            "workload": "w", "board": "b", "current_model": "SC",
            "degraded": False, "profile": None, "device": None,
            "cpu_cache_usage_pct": 1.0, "gpu_cache_usage_pct": 2.0,
            "thresholds": {}, "zone": 1,
            "decision": {"model": "SC"}, "estimate": None,
            "timings_s": {}, "version": 1,
            "added_by_a_future_version": True,
        }
        report = TuneReport.from_dict(doc)
        assert report.workload == "w"
