"""CLI observability: tune artifacts, obs summary, the kill switch."""

import json

from repro.cli import build_parser, main
from repro.obs import state
from repro.obs.export import validate_chrome_trace


class TestTuneArtifacts:
    def test_trace_and_report_written(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        report_path = tmp_path / "r.json"
        assert main(["tune", "shwfs", "nano", "--no-cache",
                     "--trace", str(trace_path),
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace_path}" in out
        assert f"report written to {report_path}" in out

        doc = json.loads(trace_path.read_text())
        validate_chrome_trace(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"tune", "characterize", "profile", "decide"} <= names

        report = json.loads(report_path.read_text())
        assert report["workload"].startswith("shwfs")
        assert report["board"] == "nano"
        assert report["decision"]["model"]
        assert set(report["timings_s"]) == \
            {"characterize", "profile", "decide", "tune"}

    def test_trace_spans_nest(self, tmp_path):
        trace_path = tmp_path / "t.json"
        assert main(["tune", "shwfs", "nano", "--no-cache",
                     "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text())
        begins = {e["name"]: e for e in doc["traceEvents"]
                  if e["ph"] == "B"}
        tune_id = begins["tune"]["args"]["span_id"]
        assert begins["characterize"]["args"]["parent_id"] == tune_id
        assert begins["profile"]["args"]["parent_id"] == tune_id
        assert begins["decide"]["args"]["parent_id"] == tune_id

    def test_report_matches_printed_recommendation(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        assert main(["tune", "orbslam", "tx2", "--no-cache", "--model", "ZC",
                     "--report", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        out = capsys.readouterr().out
        assert report["decision"]["reason"] in out
        assert report["current_model"] == "ZC"


class TestObsSummary:
    def test_summary_of_artifact(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["tune", "shwfs", "nano", "--no-cache",
              "--trace", str(trace_path)])
        capsys.readouterr()
        assert main(["obs", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert f"artifact: {trace_path}" in out
        assert "tune" in out
        assert "characterize" in out

    def test_summary_without_artifact_uses_live_buffers(self, capsys):
        assert main(["obs", "summary"]) == 0
        assert "observability summary" in capsys.readouterr().out

    def test_summary_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["obs", "summary", str(bad)]) == 2
        assert "error[OBS_ARTIFACT_PARSE]" in capsys.readouterr().err

    def test_summary_missing_file_is_a_structured_error(self, tmp_path,
                                                        capsys):
        assert main(["obs", "summary", str(tmp_path / "gone.json")]) == 2
        assert "error[OBS_ARTIFACT_IO]" in capsys.readouterr().err


class TestKillSwitch:
    def test_obs_off_produces_empty_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main(["--obs-off", "tune", "shwfs", "nano", "--no-cache",
                     "--trace", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"] == []
        # main() flipped the module flag; the conftest fixture restores
        # it, but later assertions in this test still need it on.
        state.enable()

    def test_obs_off_still_writes_the_report(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        assert main(["--obs-off", "tune", "shwfs", "nano", "--no-cache",
                     "--report", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        # The tune report is decision data, not telemetry: it survives
        # the kill switch (timings come from plain perf_counter calls).
        assert report["decision"]["model"]
        assert report["timings_s"]["tune"] > 0.0
        state.enable()

    def test_parser_accepts_global_flag(self):
        args = build_parser().parse_args(["--obs-off", "boards"])
        assert args.obs_off is True
        args = build_parser().parse_args(["boards"])
        assert args.obs_off is False


class TestBenchCheckTrace:
    def test_check_trace_flag_parses(self):
        args = build_parser().parse_args(
            ["bench", "--check", "--check-trace", "out.json"]
        )
        assert args.check
        assert args.check_trace == "out.json"
