"""Exporters: JSONL round trips, Chrome trace validity, summaries."""

import pytest

from repro.errors import ReproError
from repro.obs import trace
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    load_artifact,
    load_jsonl,
    span_from_dict,
    span_to_dict,
    summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import counter_inc
from repro.obs.trace import event, span


def _record_tree():
    with span("tune", board="nano"):
        with span("characterize"):
            pass
        with span("profile"):
            event("tick", n=1)
    counter_inc("framework.tune")


class TestJsonl:
    def test_round_trip_is_byte_stable(self, tmp_path):
        _record_tree()
        path = write_jsonl(tmp_path / "run.jsonl")
        text = path.read_text()
        spans, snapshot = load_jsonl(text)
        assert [s.name for s in spans] == \
            ["characterize", "tick", "profile", "tune"]
        assert snapshot["framework.tune"]["value"] == 1
        # Re-encoding the loaded objects reproduces the file byte for
        # byte — nothing is lost or reordered.
        assert "\n".join(jsonl_lines(spans, snapshot)) + "\n" == text

    def test_span_dict_round_trip(self):
        _record_tree()
        for original in trace.get_spans():
            assert span_from_dict(span_to_dict(original)) == original

    def test_parse_errors_are_structured(self):
        with pytest.raises(ReproError) as excinfo:
            load_jsonl("not json\n")
        assert excinfo.value.code == "OBS_JSONL_PARSE"
        with pytest.raises(ReproError) as excinfo:
            load_jsonl('{"record":"mystery"}\n')
        assert excinfo.value.code == "OBS_JSONL_RECORD"


class TestChromeTrace:
    def test_emitted_trace_validates(self):
        _record_tree()
        doc = chrome_trace()
        count = validate_chrome_trace(doc)
        # 3 spans -> B+E each, 1 event -> X.
        assert count == 7
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"B", "E", "X"}

    def test_timestamps_monotonic_and_relative(self):
        _record_tree()
        ts = [e["ts"] for e in chrome_trace()["traceEvents"]]
        assert ts == sorted(ts)
        assert ts[0] == 0.0

    def test_args_carry_span_linkage(self):
        _record_tree()
        doc = chrome_trace()
        begins = {e["name"]: e for e in doc["traceEvents"]
                  if e["ph"] == "B"}
        tune_id = begins["tune"]["args"]["span_id"]
        assert begins["characterize"]["args"]["parent_id"] == tune_id
        assert begins["tune"]["args"]["board"] == "nano"

    def test_validator_rejects_bad_phase(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "M", "ts": 0, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ReproError) as excinfo:
            validate_chrome_trace(doc)
        assert excinfo.value.code == "OBS_TRACE_PHASE"

    def test_validator_rejects_time_travel(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 5, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 4, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ReproError) as excinfo:
            validate_chrome_trace(doc)
        assert excinfo.value.code == "OBS_TRACE_TS"

    def test_validator_rejects_unbalanced_lanes(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ReproError) as excinfo:
            validate_chrome_trace(doc)
        assert excinfo.value.code == "OBS_TRACE_BALANCE"


class TestArtifacts:
    def test_load_artifact_chrome(self, tmp_path):
        _record_tree()
        path = write_chrome_trace(tmp_path / "trace.json")
        spans, snapshot = load_artifact(path)
        assert {s.name for s in spans} == \
            {"tune", "characterize", "profile", "tick"}
        assert snapshot == {}  # chrome traces carry no metrics

    def test_load_artifact_jsonl(self, tmp_path):
        _record_tree()
        path = write_jsonl(tmp_path / "run.jsonl")
        spans, snapshot = load_artifact(path)
        assert len(spans) == 4
        assert "framework.tune" in snapshot

    def test_load_artifact_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(ReproError) as excinfo:
            load_artifact(path)
        assert excinfo.value.code == "OBS_ARTIFACT_PARSE"


class TestSummary:
    def test_renders_spans_events_and_metrics(self):
        _record_tree()
        text = summary()
        assert "3 span(s), 1 event(s), 1 metric(s)" in text
        assert "tune" in text
        assert "tick: 1" in text
        assert "framework.tune [counter]: 1" in text

    def test_empty_summary(self):
        assert "0 span(s)" in summary()
