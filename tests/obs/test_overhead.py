"""The disabled-mode overhead guarantee.

The tentpole contract: with the kill switch off, the instrumented hot
paths must cost within 2 % of what they would cost with no
instrumentation at all.  "No instrumentation at all" is simulated by
monkeypatching the obs entry points to bare no-ops — one Python-level
call, strictly cheaper than any real implementation could be — and the
comparison retries a few times so one noisy scheduler tick cannot fail
CI.  An absolute per-call bound backstops the relative check.
"""

import time

import pytest

from repro import obs
from repro.obs import state
from repro.obs.trace import NULL_SPAN
from repro.soc.board import get_board
from repro.soc.soc import SoC

#: The contract from the issue: < 2 % on the bench probes.
OVERHEAD_LIMIT = 0.02

#: Noisy-runner retries: one attempt inside the limit passes.
ATTEMPTS = 5


def _workload():
    from repro.apps.shwfs import ShwfsPipeline

    return ShwfsPipeline().workload(board_name="nano"), get_board("nano")


def _run_probe(workload, board):
    """One SC execution — crosses the instrumented comm seams
    (comm.execute span, per-phase spans, execute counters)."""
    from repro.comm.base import get_model

    return get_model("SC").execute(workload, SoC(board))


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _noop_span(name, **attributes):
    return NULL_SPAN


def _noop(*args, **kwargs):
    return None


class TestDisabledOverhead:
    def test_bench_probe_within_two_percent(self, monkeypatch):
        workload, board = _workload()
        _run_probe(workload, board)  # warm every import and cache

        last_ratio = None
        for _ in range(ATTEMPTS):
            # Baseline: instrumentation erased entirely.
            monkeypatch.setattr(obs, "span", _noop_span)
            monkeypatch.setattr(obs, "event", _noop)
            monkeypatch.setattr(obs, "counter_inc", _noop)
            monkeypatch.setattr(obs, "gauge_set", _noop)
            monkeypatch.setattr(obs, "observe", _noop)
            baseline = _best_of(lambda: _run_probe(workload, board))
            monkeypatch.undo()

            # Measured: the real call sites behind the kill switch.
            state.disable()
            try:
                disabled = _best_of(lambda: _run_probe(workload, board))
            finally:
                state.enable()

            last_ratio = disabled / baseline
            if last_ratio <= 1.0 + OVERHEAD_LIMIT:
                return
        pytest.fail(
            f"disabled-mode overhead {100 * (last_ratio - 1):.2f}% "
            f"exceeded {100 * OVERHEAD_LIMIT:.0f}% in every attempt"
        )

    def test_disabled_span_is_cheap_and_allocation_free(self):
        state.disable()
        try:
            assert obs.span("x", a=1) is obs.span("y", b=2)  # one object
            calls = 200_000
            start = time.perf_counter()
            for _ in range(calls):
                with obs.span("hot"):
                    pass
            per_call = (time.perf_counter() - start) / calls
        finally:
            state.enable()
        # Generous absolute backstop (~flag check + context manager):
        # catches an accidentally expensive disabled path outright.
        assert per_call < 5e-6

    def test_disabled_metrics_touch_nothing(self):
        from repro.obs.metrics import REGISTRY

        state.disable()
        try:
            obs.counter_inc("never")
            obs.gauge_set("never", 1.0)
            obs.observe("never", 1.0)
        finally:
            state.enable()
        assert len(REGISTRY) == 0
