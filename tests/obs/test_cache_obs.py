"""Cache outcomes: hit vs miss vs corrupt, the scan, and the CLI."""

import json

from repro.cli import main
from repro.microbench.suite import MicrobenchmarkSuite
from repro.obs.metrics import REGISTRY
from repro.obs.trace import get_spans
from repro.perf.cache import CharacterizationCache, ShardedCharacterizationStore
from repro.soc.board import get_board


def _populated(tmp_path, board_name="nano"):
    suite = MicrobenchmarkSuite(cache_dir=tmp_path)
    board = get_board(board_name)
    device = suite.characterize(board)
    # the default persistent backend is the sharded store
    cache = ShardedCharacterizationStore(tmp_path)
    return cache, board, suite.cache_signature(), device


def _counter(name):
    return REGISTRY.counter(name).value


class TestOutcomes:
    def test_hit(self, tmp_path):
        cache, board, signature, device = _populated(tmp_path)
        loaded = cache.load(board, signature)
        assert loaded == device
        assert cache.last_outcome == "hit"
        assert _counter("perf.cache.hit") >= 1

    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = CharacterizationCache(tmp_path / "empty")
        board = get_board("tx2")
        assert cache.load(board, {"k": 1}) is None
        assert cache.last_outcome == "miss"
        assert _counter("perf.cache.miss") == 1
        assert _counter("perf.cache.corrupt") == 0

    def test_key_mismatch_is_a_miss_not_corrupt(self, tmp_path):
        cache, board, signature, _ = _populated(tmp_path)
        entry = cache.entries()[0]
        data = json.loads(entry.read_text())
        data["key"] = "0" * 64  # a structurally fine but re-keyed entry
        entry.write_text(json.dumps(data))
        assert cache.load(board, signature) is None
        assert cache.last_outcome == "miss"
        assert _counter("perf.cache.corrupt") == 0

    def test_unparsable_entry_is_corrupt(self, tmp_path):
        cache, board, signature, _ = _populated(tmp_path)
        cache.entries()[0].write_text("{broken")
        assert cache.load(board, signature) is None
        assert cache.last_outcome == "corrupt"
        assert _counter("perf.cache.corrupt") == 1
        events = [s for s in get_spans() if s.name == "perf.cache.corrupt"]
        assert len(events) == 1
        assert events[0].attributes["reason"] == "invalid JSON"

    def test_broken_payload_is_corrupt(self, tmp_path):
        cache, board, signature, _ = _populated(tmp_path)
        entry = cache.entries()[0]
        data = json.loads(entry.read_text())
        data["device"] = {"board_name": "nano"}  # required fields gone
        entry.write_text(json.dumps(data))
        assert cache.load(board, signature) is None
        assert cache.last_outcome == "corrupt"


class TestScan:
    def test_scan_classifies_each_entry(self, tmp_path):
        cache, _, _, _ = _populated(tmp_path)
        (tmp_path / "nano-0000000000000000.json").write_text("{broken")
        results = cache.scan()
        statuses = {path.name: status for path, status, _ in results}
        assert statuses["nano-0000000000000000.json"] == "corrupt"
        assert sorted(statuses.values()) == ["corrupt", "ok"]

    def test_scan_empty_directory(self, tmp_path):
        assert CharacterizationCache(tmp_path / "nothing").scan() == []


class TestCli:
    def test_cache_info_surfaces_corrupt_entries(self, tmp_path, capsys):
        _populated(tmp_path)
        (tmp_path / "nano-0000000000000000.json").write_text("{broken")
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entry(ies), 1 corrupt" in out
        assert "[corrupt: invalid JSON]" in out
        assert "[ok:" in out
        assert "repro cache clear" in out

    def test_cache_info_clean(self, tmp_path, capsys):
        _populated(tmp_path)
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entry(ies), 0 corrupt" in out
        assert "corrupt entries are treated" not in out
        assert "[quarantined]" not in out
        assert "quarantined corrupt entry(ies)" not in out

    def test_cache_info_lists_quarantined_entries(self, tmp_path, capsys):
        cache, board, signature, _ = _populated(tmp_path)
        cache.entries()[0].write_text("{broken")
        cache.load(board, signature)  # detection moves the file aside
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 entry(ies), 0 corrupt" in out
        assert "1 quarantined corrupt entry(ies)" in out
        assert "[quarantined]" in out
