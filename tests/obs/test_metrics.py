"""Metrics registry: counters, gauges, histograms, and the helpers."""

import pytest

from repro.errors import ReproError
from repro.obs import metrics, state
from repro.obs.metrics import (
    REGISTRY,
    counter_inc,
    gauge_set,
    Histogram,
    MetricsRegistry,
    observe,
)


class TestCounter:
    def test_increments(self):
        counter_inc("c", 2)
        counter_inc("c")
        assert REGISTRY.counter("c").value == 3

    def test_cannot_decrease(self):
        with pytest.raises(ReproError) as excinfo:
            REGISTRY.counter("c").inc(-1)
        assert excinfo.value.code == "OBS_COUNTER_DECREASE"


class TestGauge:
    def test_last_write_wins(self):
        gauge_set("g", 1.0)
        gauge_set("g", -2.5)
        assert REGISTRY.gauge("g").value == -2.5

    def test_unset_gauge_is_none(self):
        assert REGISTRY.gauge("fresh").value is None


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 0.1):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]  # <=1, <=10, +inf
        assert hist.count == 4
        assert hist.min == 0.1
        assert hist.max == 50.0
        assert hist.sum == pytest.approx(55.6)

    def test_buckets_must_ascend(self):
        with pytest.raises(ReproError) as excinfo:
            Histogram("bad", buckets=(2.0, 1.0))
        assert excinfo.value.code == "OBS_HISTOGRAM_BUCKETS"

    def test_helper_uses_default_buckets(self):
        observe("timing", 1e-3)
        hist = REGISTRY.histogram("timing")
        assert hist.buckets == metrics.DEFAULT_BUCKETS
        assert hist.count == 1


class TestRegistry:
    def test_kind_collision_raises(self):
        REGISTRY.counter("name")
        with pytest.raises(ReproError) as excinfo:
            REGISTRY.gauge("name")
        assert excinfo.value.code == "OBS_METRIC_KIND"

    def test_snapshot_is_json_friendly_and_sorted(self):
        counter_inc("b.counter")
        gauge_set("a.gauge", 7)
        observe("c.hist", 0.5)
        snap = REGISTRY.snapshot()
        assert list(snap) == ["a.gauge", "b.counter", "c.hist"]
        assert snap["b.counter"] == {"kind": "counter", "value": 1}
        assert snap["a.gauge"]["value"] == 7.0
        assert snap["c.hist"]["kind"] == "histogram"

    def test_reset_forgets_everything(self):
        counter_inc("x")
        REGISTRY.reset()
        assert len(REGISTRY) == 0

    def test_independent_registries(self):
        other = MetricsRegistry()
        other.counter("only-here").inc()
        assert len(other) == 1
        assert len(REGISTRY) == 0


class TestKillSwitch:
    def test_helpers_are_noops_when_disabled(self):
        state.disable()
        counter_inc("c")
        gauge_set("g", 1)
        observe("h", 2.0)
        assert len(REGISTRY) == 0
