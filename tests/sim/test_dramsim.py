"""Unit tests of the DDR row-buffer model."""

import numpy as np

from repro.sim import dramsim
from repro.sim.config import SimConfig

CONFIG = SimConfig()


def replay(addrs, config=CONFIG, state=None, vectorized=True):
    state = state or dramsim.DRAMSimState(config)
    return state, dramsim.access(
        state, np.asarray(addrs, dtype=np.int64), vectorized=vectorized
    )


class TestRowBuffer:
    def test_empty_trace(self):
        _, result = replay([])
        assert result.accesses == 0
        assert result.busy_cycles(CONFIG) == 0

    def test_first_access_misses_then_hits(self):
        _, result = replay([0, 64, 128])
        # All inside row 0 of bank 0: one activate, then CAS-only hits.
        assert result.row_misses == 1
        assert result.row_hits == 2
        assert list(result.hit_mask) == [False, True, True]

    def test_row_conflict_in_same_bank(self):
        row = CONFIG.dram_row_bytes
        stride = row * CONFIG.dram_banks  # same bank, different row
        _, result = replay([0, stride, 0])
        assert result.row_misses == 3
        assert result.row_hits == 0

    def test_banks_are_independent(self):
        row = CONFIG.dram_row_bytes
        # Alternating banks: each bank keeps its own open row.
        _, result = replay([0, row, 0, row])
        assert result.row_misses == 2
        assert result.row_hits == 2

    def test_open_rows_persist_across_segments(self):
        state, first = replay([0])
        assert first.row_misses == 1
        _, second = replay([32], state=state)
        assert second.row_hits == 1

    def test_reset_precharges(self):
        state, _ = replay([0])
        state.reset()
        _, result = replay([0], state=state)
        assert result.row_misses == 1

    def test_busy_cycles_exact(self):
        _, result = replay([0, 64, CONFIG.dram_row_bytes * CONFIG.dram_banks])
        expected = (
            result.row_hits * CONFIG.row_hit_cycles
            + result.row_misses * CONFIG.row_miss_cycles
        )
        assert result.busy_cycles(CONFIG) == expected
        assert isinstance(result.busy_cycles(CONFIG), int)


class TestMixEfficiency:
    def test_empty_defaults_to_hit_efficiency(self):
        _, result = replay([])
        assert result.mix_efficiency(CONFIG) == CONFIG.row_hit_efficiency

    def test_all_hits_and_all_misses_bracket(self):
        _, streaming = replay(list(range(0, 2048, 64)))
        row = CONFIG.dram_row_bytes
        stride = row * CONFIG.dram_banks
        _, hostile = replay([0, stride, 0, stride])
        assert hostile.mix_efficiency(CONFIG) < streaming.mix_efficiency(CONFIG)
        assert streaming.mix_efficiency(CONFIG) <= CONFIG.row_hit_efficiency
        assert hostile.mix_efficiency(CONFIG) >= CONFIG.row_miss_efficiency

    def test_blend_is_linear_in_hit_fraction(self):
        _, result = replay([0, 64])  # one miss, one hit
        expected = 0.5 * CONFIG.row_hit_efficiency + 0.5 * CONFIG.row_miss_efficiency
        assert result.mix_efficiency(CONFIG) == expected
