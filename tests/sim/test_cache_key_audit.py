"""Audit: every timing-affecting backend knob re-keys the store.

A persistent characterization computed under one timing backend must
never be served to another — and within the simulated backend, any
:class:`~repro.sim.config.SimConfig` change alters timing, so *every*
field must reach the cache key.  This test enumerates the dataclass
fields so adding a knob without re-keying fails CI.
"""

import dataclasses

from repro.microbench.suite import MicrobenchmarkSuite
from repro.perf.cache import cache_key
from repro.sim.backend import AnalyticBackend, SimulatedBackend
from repro.sim.config import SimConfig
from repro.soc.board import get_board


def key_for(backend):
    suite = MicrobenchmarkSuite(backend=backend)
    return cache_key(get_board("tx2"), suite.cache_signature())


class TestBackendInKey:
    def test_signature_carries_backend_token(self):
        suite = MicrobenchmarkSuite(backend=SimulatedBackend())
        signature = suite.cache_signature()
        assert signature["backend"] == {
            "name": "simulated",
            "config": SimConfig().signature(),
        }

    def test_analytic_and_simulated_never_collide(self):
        assert key_for(AnalyticBackend()) != key_for(SimulatedBackend())

    def test_default_backend_is_analytic_key(self):
        assert key_for(AnalyticBackend()) == cache_key(
            get_board("tx2"), MicrobenchmarkSuite().cache_signature()
        )


class TestEveryConfigFieldKeyed:
    def test_signature_covers_all_fields(self):
        names = {f.name for f in dataclasses.fields(SimConfig)}
        assert set(SimConfig().signature()) == names

    def test_each_field_changes_the_key(self):
        base = key_for(SimulatedBackend())
        # A distinct, still-valid value per field.
        perturbed = {
            "max_window_lines": 1 << 16,
            "max_sim_transactions": 1 << 20,
            "dram_banks": 16,
            "dram_row_bytes": 4096,
            "row_hit_cycles": 5,
            "row_miss_cycles": 21,
            "row_hit_efficiency": 0.8,
            "row_miss_efficiency": 0.4,
            "contention_quantum_bytes": 8192,
            "vectorized": False,
            "seed": 1,
        }
        assert set(perturbed) == {f.name for f in dataclasses.fields(SimConfig)}
        for name, value in perturbed.items():
            config = dataclasses.replace(SimConfig(), **{name: value})
            changed = key_for(SimulatedBackend(config=config))
            assert changed != base, f"SimConfig.{name} does not re-key the store"
