"""Unit tests of the quantum round-robin contention queue."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import SimConfig
from repro.sim.contention import run_contended
from repro.soc.events import OverlapJob, run_overlapped
from repro.soc.interconnect import InterconnectConfig

FABRIC = InterconnectConfig(total_bandwidth=20e9, arbitration_overhead=0.03)
CONFIG = SimConfig()


def job(name, memory_bytes, bandwidth=10e9, compute_s=0.0, **kwargs):
    return OverlapJob(
        name=name,
        compute_time_s=compute_s,
        memory_bytes=memory_bytes,
        solo_bandwidth=bandwidth,
        **kwargs,
    )


class TestBasics:
    def test_empty_job_list(self):
        result = run_contended([], FABRIC, CONFIG)
        assert result.makespan_s == 0.0
        assert result.finish_times == {}

    def test_duplicate_names_rejected(self):
        jobs = [job("a", 1 << 20), job("a", 1 << 20)]
        with pytest.raises(ConfigurationError):
            run_contended(jobs, FABRIC, CONFIG)

    def test_single_job_paced_by_its_port(self):
        # Alone on the fabric, the private port (10 GB/s) is the
        # bottleneck: time = bytes / solo_bandwidth.
        size = 64 << 20
        result = run_contended([job("solo", size)], FABRIC, CONFIG)
        assert result.finish("solo") == pytest.approx(size / 10e9, rel=1e-6)

    def test_compute_only_job(self):
        result = run_contended(
            [job("cpu", 0, compute_s=1.5e-3)], FABRIC, CONFIG
        )
        assert result.finish("cpu") == pytest.approx(1.5e-3)
        assert result.memory_times["cpu"] == 0.0

    def test_compute_then_stream_serializes(self):
        size = 16 << 20
        j = job("cpu", size, compute_s=1e-3, overlap_compute_memory=False)
        result = run_contended([j], FABRIC, CONFIG)
        assert result.finish("cpu") == pytest.approx(
            1e-3 + size / 10e9, rel=1e-6
        )

    def test_quantum_growth_bounds_arbiter_work(self):
        # A transfer far bigger than quantum * 4096 must still complete
        # (the quantum grows instead of the loop).
        size = 1 << 32
        result = run_contended([job("huge", size)], FABRIC, CONFIG)
        assert result.finish("huge") == pytest.approx(size / 10e9, rel=1e-4)


class TestFairness:
    def test_equal_contenders_share_the_fabric(self):
        # Two identical jobs on a fabric that cannot serve both ports
        # at full rate: round-robin alternation finishes them together.
        tight = InterconnectConfig(total_bandwidth=12e9, arbitration_overhead=0.0)
        size = 32 << 20
        jobs = [job("a", size), job("b", size)]
        result = run_contended(jobs, tight, CONFIG)
        assert result.finish("a") == pytest.approx(
            result.finish("b"), rel=0.01
        )
        # Together they drain 2*size through a 12 GB/s fabric.
        assert result.makespan_s == pytest.approx(
            2 * size / 12e9, rel=0.01
        )

    def test_uncontended_ports_reach_solo_speed(self):
        # A wide fabric never throttles either job: each runs at its
        # own port rate as if alone.
        wide = InterconnectConfig(total_bandwidth=200e9, arbitration_overhead=0.0)
        size = 32 << 20
        result = run_contended(
            [job("a", size, 10e9), job("b", size, 5e9)], wide, CONFIG
        )
        assert result.finish("a") == pytest.approx(size / 10e9, rel=0.02)
        assert result.finish("b") == pytest.approx(size / 5e9, rel=0.02)

    def test_brackets_analytic_water_filling(self):
        # The paper-relevant cross-validation against max-min fair
        # water-filling: the TDM arbiter can never beat the fluid
        # optimum (per job), and on an oversubscribed fabric its
        # makespan converges to the fluid answer — the port-drain
        # bubbles only delay the jobs that finish early.
        size_a, size_b = 48 << 20, 16 << 20
        jobs = [job("gpu", size_a, 15e9), job("cpu", size_b, 8e9)]
        analytic = run_overlapped(jobs, FABRIC)
        simulated = run_contended(jobs, FABRIC, CONFIG)
        for name in ("gpu", "cpu"):
            assert simulated.finish(name) >= analytic.finish(name) * 0.999
            assert simulated.finish(name) <= analytic.finish(name) * 1.5
        assert simulated.makespan_s == pytest.approx(
            analytic.makespan_s, rel=0.10
        )

    def test_staggered_start_respected(self):
        size = 8 << 20
        late = job("late", size, start_time_s=2e-3)
        result = run_contended([late], FABRIC, CONFIG)
        assert result.finish("late") == pytest.approx(
            2e-3 + size / 10e9, rel=1e-6
        )
