"""Property tests: the vectorized simulator equals the scalar reference.

The NumPy lockstep fast path (and its run-collapse preprocessing) must
be *bit-identical* to the temporal-order scalar replay — same hit mask,
same miss lines in temporal order, same writeback count, same final
tag/MRU/dirty state — for any trace and any cache geometry.  The same
pinning covers the DRAM row-buffer model, and fault injection must
force the scalar path exactly like every other vectorized seam.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.sim import dramsim
from repro.sim.config import SimConfig
from repro.sim.engine import CacheSimState, access_trace

geometry = st.sampled_from(
    [(1, 1), (4, 2), (8, 3), (16, 4), (8, 6), (2, 16)]
)
trace = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 14),
        st.booleans(),
    ),
    min_size=1,
    max_size=400,
)
policy = st.tuples(st.booleans(), st.booleans())


def to_arrays(pairs):
    addrs = np.array([a for a, _ in pairs], dtype=np.int64)
    writes = np.array([w for _, w in pairs], dtype=bool)
    return addrs, writes


@given(geo=geometry, pairs=trace, pol=policy)
@settings(max_examples=120, deadline=None)
def test_vectorized_matches_scalar_bit_identical(geo, pairs, pol):
    num_sets, ways = geo
    write_back, write_allocate = pol
    addrs, writes = to_arrays(pairs)
    ref = CacheSimState(num_sets=num_sets, ways=ways, line_size=64)
    fast = ref.clone()
    r_ref = access_trace(
        ref, addrs, writes, write_back, write_allocate, vectorized=False
    )
    r_fast = access_trace(
        fast, addrs, writes, write_back, write_allocate, vectorized=True
    )
    assert np.array_equal(r_ref.hits, r_fast.hits)
    assert np.array_equal(
        r_ref.miss_line_addresses, r_fast.miss_line_addresses
    )
    assert r_ref.writeback_lines == r_fast.writeback_lines
    assert ref.state_equal(fast)


@given(geo=geometry, pairs=trace)
@settings(max_examples=60, deadline=None)
def test_segmented_replay_matches_single_shot(geo, pairs):
    """Cutting a trace into segments must not change cumulative state."""
    num_sets, ways = geo
    addrs, writes = to_arrays(pairs)
    whole = CacheSimState(num_sets=num_sets, ways=ways, line_size=64)
    split = whole.clone()
    r_whole = access_trace(whole, addrs, writes)
    cut = len(addrs) // 2
    r_a = access_trace(split, addrs[:cut], writes[:cut])
    r_b = access_trace(split, addrs[cut:], writes[cut:])
    assert whole.state_equal(split)
    assert r_whole.num_hits == r_a.num_hits + r_b.num_hits
    assert r_whole.writeback_lines == r_a.writeback_lines + r_b.writeback_lines


@given(pairs=trace)
@settings(max_examples=60, deadline=None)
def test_hits_conserved_and_capacity_bounded(pairs):
    addrs, writes = to_arrays(pairs)
    state = CacheSimState(num_sets=4, ways=2, line_size=64)
    result = access_trace(state, addrs, writes)
    assert result.num_hits + result.num_misses == len(addrs)
    assert state.resident_lines <= state.num_sets * state.ways
    assert state.dirty_lines <= state.resident_lines


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 22),
                      min_size=1, max_size=400))
@settings(max_examples=100, deadline=None)
def test_dram_vectorized_matches_scalar(addrs):
    config = SimConfig()
    addresses = np.array(addrs, dtype=np.int64)
    ref = dramsim.DRAMSimState(config)
    fast = ref.clone()
    r_ref = dramsim.access(ref, addresses, vectorized=False)
    r_fast = dramsim.access(fast, addresses, vectorized=True)
    assert np.array_equal(r_ref.hit_mask, r_fast.hit_mask)
    assert r_ref.row_hits == r_fast.row_hits
    assert r_ref.row_misses == r_fast.row_misses
    assert np.array_equal(ref.open_rows, fast.open_rows)
    assert r_ref.busy_cycles(config) == r_fast.busy_cycles(config)


def test_injection_forces_scalar_cache_path(monkeypatch):
    """An active fault injection must bypass the lockstep fast path."""
    calls = []
    import repro.sim.engine as engine

    real = engine._core_scalar

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(engine, "_core_scalar", spy)
    # Long linear trace: without injection this takes the lockstep path.
    addrs = np.arange(4096, dtype=np.int64) * 64
    writes = np.zeros(4096, dtype=bool)
    state = CacheSimState(num_sets=64, ways=4, line_size=64)
    with inject_faults(FaultPlan(seed=0)):
        result = access_trace(state, addrs, writes, vectorized=True)
    assert calls, "injection did not force the scalar reference"
    # And the forced-scalar result still matches a clean vectorized run.
    clean = CacheSimState(num_sets=64, ways=4, line_size=64)
    expected = access_trace(clean, addrs, writes, vectorized=True)
    assert np.array_equal(result.hits, expected.hits)
    assert state.state_equal(clean)


def test_injection_forces_scalar_dram_path(monkeypatch):
    calls = []
    real = dramsim._access_scalar

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(dramsim, "_access_scalar", spy)
    config = SimConfig()
    state = dramsim.DRAMSimState(config)
    addrs = np.arange(1024, dtype=np.int64) * 64
    with inject_faults(FaultPlan(seed=0)):
        dramsim.access(state, addrs, vectorized=True)
    assert calls, "injection did not force the scalar DRAM reference"
