"""Unit tests of the bit-PLRU cache simulation engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import CacheSimState, access_trace


def make_state(num_sets=4, ways=2, line_size=64):
    return CacheSimState(num_sets=num_sets, ways=ways, line_size=line_size)


def run(state, addrs, writes=None, **kwargs):
    addrs = np.asarray(addrs, dtype=np.int64)
    if writes is None:
        writes = np.zeros(len(addrs), dtype=bool)
    else:
        writes = np.asarray(writes, dtype=bool)
    return access_trace(state, addrs, writes, **kwargs)


class TestStateValidation:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheSimState(num_sets=3, ways=2, line_size=64)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheSimState(num_sets=4, ways=2, line_size=48)

    def test_rejects_bad_way_counts(self):
        with pytest.raises(ConfigurationError):
            CacheSimState(num_sets=4, ways=0, line_size=64)
        with pytest.raises(ConfigurationError):
            CacheSimState(num_sets=4, ways=63, line_size=64)

    def test_six_way_allowed(self):
        # Boards carry non-power-of-two associativities (6-way SMs);
        # bit-PLRU must accept any way count, unlike a tree PLRU.
        state = CacheSimState(num_sets=8, ways=6, line_size=64)
        assert state.ways == 6


class TestBasicSemantics:
    def test_empty_trace(self):
        state = make_state()
        result = run(state, [])
        assert result.num_hits == 0
        assert result.num_misses == 0
        assert len(result.miss_line_addresses) == 0

    def test_cold_miss_then_hit(self):
        state = make_state()
        result = run(state, [0, 0])
        assert list(result.hits) == [False, True]
        assert list(result.miss_line_addresses) == [0]

    def test_same_line_different_offsets_hit(self):
        state = make_state(line_size=64)
        result = run(state, [0, 8, 63])
        assert result.num_misses == 1
        assert result.num_hits == 2

    def test_miss_lines_are_line_aligned_and_temporal(self):
        state = make_state(line_size=64)
        result = run(state, [130, 4096, 131])
        assert list(result.miss_line_addresses) == [128, 4096]

    def test_capacity_eviction_direct_mapped(self):
        # One way: two lines mapping to the same set must thrash.
        state = make_state(num_sets=4, ways=1)
        # lines 0 and 4 share set 0 (set = line & 3).
        result = run(state, [0 * 64, 4 * 64, 0 * 64])
        assert result.num_hits == 0
        assert result.num_misses == 3

    def test_resident_and_dirty_accounting(self):
        state = make_state()
        run(state, [0, 64, 128], writes=[True, False, True])
        assert state.resident_lines == 3
        assert state.dirty_lines == 2

    def test_invalidate_drops_without_writeback(self):
        state = make_state()
        run(state, [0], writes=[True])
        dropped = state.invalidate()
        assert dropped == 1
        assert state.resident_lines == 0
        assert state.dirty_lines == 0

    def test_flush_reports_dirty_lines(self):
        state = make_state()
        run(state, [0, 64], writes=[True, False])
        assert state.flush() == 1
        assert state.resident_lines == 0


class TestWritePolicies:
    def test_dirty_eviction_counts_writeback(self):
        state = make_state(num_sets=1, ways=1, line_size=64)
        result = run(state, [0, 64], writes=[True, False])
        assert result.writeback_lines == 1

    def test_clean_eviction_no_writeback(self):
        state = make_state(num_sets=1, ways=1, line_size=64)
        result = run(state, [0, 64], writes=[False, False])
        assert result.writeback_lines == 0

    def test_write_through_never_dirties(self):
        state = make_state(num_sets=1, ways=1)
        result = run(state, [0, 64], writes=[True, True], write_back=False)
        assert result.writeback_lines == 0
        assert state.dirty_lines == 0

    def test_no_allocate_write_miss_bypasses(self):
        state = make_state()
        result = run(state, [0, 0], writes=[True, True], write_allocate=False)
        # First write misses and does NOT allocate, so the second write
        # misses again.
        assert result.num_misses == 2
        assert state.resident_lines == 0

    def test_no_allocate_read_miss_still_fills(self):
        state = make_state()
        result = run(state, [0, 0], writes=[False, False], write_allocate=False)
        assert list(result.hits) == [False, True]


class TestPLRUVictimSelection:
    def test_victim_prefers_invalid_way(self):
        state = make_state(num_sets=1, ways=2)
        run(state, [0])
        # Way 1 is still invalid, so the next distinct line fills it
        # instead of evicting line 0.
        run(state, [64])
        result = run(state, [0])
        assert result.num_hits == 1

    def test_mru_saturation_clears_other_bits(self):
        # 2-way set: touch A then B (bits saturate, keeping only B's),
        # so the next miss evicts A, not B.
        state = make_state(num_sets=1, ways=2)
        run(state, [0, 64])  # A, B -> MRU holds only B
        run(state, [128])  # evicts A (way 0, clear bit)
        assert run(state, [64]).num_hits == 1  # B survived
        assert run(state, [0]).num_misses == 1  # A was evicted

    def test_clone_and_state_equal(self):
        state = make_state()
        run(state, [0, 64, 128], writes=[True, False, False])
        copy = state.clone()
        assert state.state_equal(copy)
        run(copy, [999 * 64])
        assert not state.state_equal(copy)
