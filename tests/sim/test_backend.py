"""Unit tests of the timing-backend protocol and stream synthesis."""

import pickle

import numpy as np
import pytest

from repro import SoC, get_board
from repro.errors import ConfigurationError, SimulationError
from repro.sim.backend import (
    ANALYTIC,
    BACKEND_NAMES,
    AnalyticBackend,
    SimulatedBackend,
    get_backend,
)
from repro.sim.config import SimConfig
from repro.soc.stream import AccessStream, PatternKind


class TestResolution:
    def test_none_is_analytic(self):
        assert get_backend(None) is ANALYTIC

    def test_names_resolve(self):
        assert get_backend("analytic").is_analytic
        backend = get_backend("simulated")
        assert isinstance(backend, SimulatedBackend)
        assert not backend.is_analytic

    def test_instance_passes_through(self):
        backend = SimulatedBackend(config=SimConfig(seed=7))
        assert get_backend(backend) is backend

    def test_instance_plus_config_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend(SimulatedBackend(), config=SimConfig())

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("cycle-accurate")

    def test_config_reaches_simulated(self):
        backend = get_backend("simulated", config=SimConfig(seed=3))
        assert backend.config.seed == 3

    def test_names_cover_registry(self):
        assert BACKEND_NAMES == ("analytic", "simulated")


class TestIdentity:
    def test_backends_hash_and_compare_by_value(self):
        assert AnalyticBackend() == AnalyticBackend()
        assert SimulatedBackend() == SimulatedBackend()
        assert SimulatedBackend() != SimulatedBackend(
            config=SimConfig(seed=1)
        )
        suites = {AnalyticBackend(): "a", SimulatedBackend(): "s"}
        assert suites[AnalyticBackend()] == "a"

    def test_backends_pickle(self):
        backend = SimulatedBackend(config=SimConfig(seed=5))
        clone = pickle.loads(pickle.dumps(backend))
        assert clone == backend
        assert clone.config.seed == 5

    def test_cache_tokens_distinct(self):
        tokens = {
            str(AnalyticBackend().cache_token()),
            str(SimulatedBackend().cache_token()),
            str(SimulatedBackend(config=SimConfig(seed=9)).cache_token()),
        }
        assert len(tokens) == 3


class TestSynthesis:
    def setup_method(self):
        self.soc = SoC(get_board("xavier"), backend=SimulatedBackend())
        self.hierarchy = self.soc.cpu.hierarchy
        self.backend = self.soc.backend

    def test_materialized_stream_verbatim(self):
        addrs = np.array([0, 64, 128], dtype=np.int64)
        writes = np.array([False, True, False])
        stream = AccessStream(
            addresses=addrs, is_write=writes, transaction_size=8
        )
        out_addrs, out_writes, scale = self.backend.synthesize(
            stream, self.hierarchy
        )
        assert out_addrs is addrs
        assert out_writes is writes
        assert scale == 1.0

    def test_small_virtual_stream_not_scaled(self):
        stream = AccessStream.virtual_stream(
            pattern=PatternKind.LINEAR,
            per_pass=1024,
            footprint_bytes=8192,
            transaction_size=8,
        )
        addrs, writes, scale = self.backend.synthesize(stream, self.hierarchy)
        assert scale == 1.0
        assert len(addrs) == 1024
        assert addrs.max() < 8192
        assert not writes.any()

    def test_huge_virtual_stream_windowed(self):
        stream = AccessStream.virtual_stream(
            pattern=PatternKind.LINEAR,
            per_pass=1 << 24,
            footprint_bytes=1 << 30,
            transaction_size=64,
        )
        addrs, writes, scale = self.backend.synthesize(stream, self.hierarchy)
        assert len(addrs) < stream.transactions_per_pass
        assert scale == pytest.approx(
            stream.transactions_per_pass / len(addrs)
        )
        # The window must exceed twice the largest cache so capacity
        # misses survive the cut.
        largest = max(
            c.config.num_lines * c.config.line_size
            for c in self.hierarchy.caches
        )
        assert addrs.max() >= 2 * largest - 64

    def test_write_fraction_bresenham_exact(self):
        stream = AccessStream.virtual_stream(
            pattern=PatternKind.LINEAR,
            per_pass=1000,
            footprint_bytes=64000,
            transaction_size=64,
            write_fraction=0.5,
        )
        _, writes, _ = self.backend.synthesize(stream, self.hierarchy)
        assert int(writes.sum()) == 500
        # ld/st pairing: reads and writes strictly alternate at 0.5.
        assert not writes[0] and writes[1]

    def test_sparse_synthesis_is_seeded_permutation(self):
        stream = AccessStream.virtual_stream(
            pattern=PatternKind.SPARSE,
            per_pass=4096,
            footprint_bytes=1 << 20,
            transaction_size=64,
        )
        a1, _, _ = self.backend.synthesize(stream, self.hierarchy)
        a2, _, _ = self.backend.synthesize(stream, self.hierarchy)
        assert np.array_equal(a1, a2)  # deterministic under one seed
        other = SimulatedBackend(config=SimConfig(seed=11))
        a3, _, _ = other.synthesize(stream, self.hierarchy)
        assert not np.array_equal(a1, a3)

    def test_single_address_synthesis(self):
        stream = AccessStream.virtual_stream(
            pattern=PatternKind.SINGLE_ADDRESS,
            per_pass=256,
            footprint_bytes=8,
            transaction_size=8,
        )
        addrs, _, _ = self.backend.synthesize(stream, self.hierarchy)
        assert not addrs.any()


class TestHierarchyIntegration:
    def test_process_summaries_guarded_on_simulated(self):
        from repro.soc.analytic import SummaryBatch

        soc = SoC(get_board("tx2"), backend="simulated")
        batch = SummaryBatch.build(
            pattern=PatternKind.LINEAR,
            per_pass=1024,
            repeats=1,
            footprint_bytes=65536,
            write_fraction=0.0,
            transaction_size=64,
        )
        with pytest.raises(SimulationError):
            soc.gpu.hierarchy.process_summaries(batch)

    def test_batch_sweeps_declare_analytic_only(self):
        from repro.perf.batch import BatchUnsupported, mb1_gpu_size_sweep

        soc = SoC(get_board("tx2"), backend="simulated")
        with pytest.raises(BatchUnsupported):
            mb1_gpu_size_sweep(soc, [0.5], sweep_repeats=1)

    def test_simulated_process_close_to_analytic_on_streaming(self):
        stream = AccessStream.virtual_stream(
            pattern=PatternKind.LINEAR,
            per_pass=1 << 16,
            footprint_bytes=1 << 22,
            transaction_size=64,
        )
        board = get_board("xavier")
        times = {}
        for name in BACKEND_NAMES:
            soc = SoC(board, backend=name)
            result = soc.gpu.hierarchy.process(stream, mode="auto")
            times[name] = result.streaming_time_s
            soc.gpu.hierarchy.reset()
        assert times["simulated"] == pytest.approx(
            times["analytic"], rel=0.5
        )
