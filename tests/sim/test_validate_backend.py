"""The guard suite must hold identically under both timing backends."""

import pytest

from repro.apps.shwfs import build_shwfs_workload
from repro.robustness.guards import validate


@pytest.fixture(scope="module")
def reports():
    from repro.soc.board import get_board

    board = get_board("xavier")
    out = {}
    for backend in ("analytic", "simulated"):
        out[backend] = validate(
            board, build_shwfs_workload(), characterize=False, backend=backend
        )
    return out


def test_simulated_backend_passes_all_guards(reports):
    report = reports["simulated"]
    assert report.passed, report.render()
    assert report.guard_checks_passed > 0


def test_same_checks_run_under_both_backends(reports):
    names_analytic = [o.name for o in reports["analytic"].outcomes]
    names_simulated = [o.name for o in reports["simulated"].outcomes]
    assert names_analytic == names_simulated


def test_no_backend_specific_violation_codes(reports):
    # Identical (empty) violation sets: the invariants are
    # backend-agnostic, so a code firing under only one backend means
    # the guard leaked a timing-engine assumption.
    codes = {
        backend: sorted(o.code for o in report.violations)
        for backend, report in reports.items()
    }
    assert codes["analytic"] == codes["simulated"] == []
