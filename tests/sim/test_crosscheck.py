"""Unit tests of the crosscheck report and its CLI command.

The full-grid crosscheck (every paper board and app) lives in
``tests/integration/test_backend_agreement.py``; here we pin the
report mechanics and a single-cell end-to-end run.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.sim.crosscheck import (
    CrosscheckReport,
    DecisionCheck,
    TimingDelta,
    run_crosscheck,
)


def check(agree=True, zone_a=1, zone_s=1):
    return DecisionCheck(
        app="shwfs",
        board="tx2",
        analytic_decision="ZC",
        simulated_decision="ZC" if agree else "SC",
        analytic_zone=zone_a,
        simulated_zone=zone_s,
    )


def delta(analytic=1e-3, simulated=1.1e-3):
    return TimingDelta(
        app="shwfs",
        board="tx2",
        model="SC",
        quantity="time_per_iteration_s",
        analytic_s=analytic,
        simulated_s=simulated,
    )


class TestReportMechanics:
    def test_agreement_requires_decision_and_zone(self):
        assert check().agree
        assert not check(agree=False).agree
        assert not check(zone_s=2).agree

    def test_relative_error_cases(self):
        assert delta(1e-3, 1.1e-3).relative_error == pytest.approx(0.1)
        assert delta(0.0, 0.0).relative_error == 0.0
        assert delta(0.0, 1e-6).relative_error == float("inf")

    def test_pass_fail_verdict(self):
        report = CrosscheckReport(tolerance=0.35, decisions=[check()])
        assert report.passed
        report.decisions.append(check(agree=False))
        assert not report.passed
        assert len(report.disagreements) == 1

    def test_excursions_do_not_fail_the_report(self):
        report = CrosscheckReport(
            tolerance=0.05,
            decisions=[check()],
            timings=[delta(1e-3, 2e-3)],
        )
        assert report.excursions
        assert report.max_relative_error == pytest.approx(1.0)
        assert report.passed

    def test_render_marks_rows(self):
        report = CrosscheckReport(
            tolerance=0.05,
            decisions=[check(), check(agree=False)],
            timings=[delta(1e-3, 2e-3)],
        )
        text = report.render()
        assert "[OK ]" in text
        assert "[DIFF]" in text
        assert "FAIL — 1 decision disagreement(s)" in text

    def test_to_dict_roundtrips_through_json(self):
        report = CrosscheckReport(
            tolerance=0.35, decisions=[check()], timings=[delta()]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["passed"] is True
        assert payload["decisions"][0]["agree"] is True
        assert payload["timings"][0]["relative_error"] == pytest.approx(0.1)


class TestRunValidation:
    def test_rejects_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            run_crosscheck(tolerance=0.0)

    def test_rejects_unknown_app(self):
        with pytest.raises(ConfigurationError):
            run_crosscheck(boards=("tx2",), apps=("doom",))


class TestSingleCellEndToEnd:
    def test_one_cell_passes_and_cli_exits_zero(self, capsys, tmp_path):
        artifact = tmp_path / "crosscheck.json"
        code = main(
            [
                "crosscheck",
                "--boards",
                "tx2",
                "--apps",
                "shwfs",
                "--json",
                str(artifact),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "PASS — all decisions agree" in out
        payload = json.loads(artifact.read_text())
        assert payload["passed"] is True
        assert len(payload["decisions"]) == 1
        # 3 models x 4 timing quantities for the single cell.
        assert len(payload["timings"]) == 12
