"""Batch sweep engine vs the scalar reference simulation.

The vectorized engine is only admissible because it is *equivalent*:
on the analytic path its closed-form coalescing must reproduce the
scalar per-point results exactly, and the full micro-benchmark (which
runs the executors in ``auto`` mode) must land on the same thresholds.
"""

import numpy as np
import pytest

from repro.microbench.second import SecondMicroBenchmark
from repro.perf.batch import (
    BatchUnsupported,
    coalesced_linear_read_transactions,
    coalesced_rw_pair_transactions,
    mb1_gpu_size_sweep,
    mb2_cpu_points,
    mb2_gpu_points,
)
from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.soc.address import RegionKind
from repro.soc.board import get_board
from repro.soc.soc import SoC
from repro.soc.stream import AccessStream

BOARDS = ("nano", "tx2", "xavier")


def _pinned_buffer(soc, size_bytes):
    """A shared (pinned) buffer, as the ZC executors allocate it."""
    region = soc.address_space.add_region(
        "pinned", 2 * size_bytes, RegionKind.PINNED
    )
    return region.allocate("array", size_bytes, element_size=4)


def _scalar_mb2_gpu(board, fraction, array_bytes, sweep_repeats):
    """One scalar GPU sweep point on the analytic path (SC, ZC)."""
    elements = array_bytes // 4
    flops = 2.0 * elements * sweep_repeats
    times = []
    for arm in ("sc", "zc"):
        soc = SoC(board)
        stream = AccessStream.fraction(
            _pinned_buffer(soc, array_bytes), fraction, repeats=sweep_repeats
        )
        zc_cfg = board.zero_copy
        if arm == "zc":
            result = soc.gpu.run(
                "zc", flops, stream, mode="analytic",
                uncached_bandwidth=zc_cfg.gpu_zc_bandwidth,
                extra_latency_s=(
                    zc_cfg.snoop_latency_s if zc_cfg.io_coherent else 0.0
                ),
            )
        else:
            result = soc.gpu.run("sc", flops, stream, mode="analytic")
        times.append(result.time_s)
    return tuple(times)


def _scalar_mb2_cpu(board, fraction, array_bytes, sweep_repeats):
    """One scalar CPU sweep point on the analytic path (SC, ZC)."""
    elements = array_bytes // 4
    cycles = 1.0 * elements
    times = []
    for arm in ("sc", "zc"):
        soc = SoC(board)
        stream = AccessStream.fraction(
            _pinned_buffer(soc, array_bytes), fraction, repeats=sweep_repeats
        )
        zc_cfg = board.zero_copy
        if arm == "zc" and zc_cfg.cpu_llc_disabled:
            result = soc.cpu.run(
                "zc", cycles, stream, mode="analytic",
                uncached_bandwidth=zc_cfg.cpu_zc_bandwidth,
                uncached_latency_s=zc_cfg.cpu_uncached_latency_s,
            )
        else:
            result = soc.cpu.run(arm, cycles, stream, mode="analytic")
        times.append(result.time_s)
    return tuple(times)


@pytest.mark.parametrize("board_name", BOARDS)
class TestAnalyticExactness:
    """Closed-form batch rows == scalar analytic runs, bit for bit."""

    ARRAY_BYTES = 4 * 1024 * 1024
    REPEATS = 8
    FRACTIONS = (1 / 16000, 1 / 250, 1 / 16, 1 / 2)

    def test_gpu_points(self, board_name):
        board = get_board(board_name)
        points = mb2_gpu_points(
            SoC(board), self.FRACTIONS, self.ARRAY_BYTES, self.REPEATS
        )
        for point in points:
            sc_time, zc_time = _scalar_mb2_gpu(
                board, point.fraction, self.ARRAY_BYTES, self.REPEATS
            )
            assert point.sc_time_s == pytest.approx(sc_time, rel=1e-12)
            assert point.zc_time_s == pytest.approx(zc_time, rel=1e-12)

    def test_cpu_points(self, board_name):
        board = get_board(board_name)
        points = mb2_cpu_points(
            SoC(board), self.FRACTIONS, self.ARRAY_BYTES, self.REPEATS
        )
        for point in points:
            sc_time, zc_time = _scalar_mb2_cpu(
                board, point.fraction, self.ARRAY_BYTES, self.REPEATS
            )
            assert point.sc_time_s == pytest.approx(sc_time, rel=1e-12)
            assert point.zc_time_s == pytest.approx(zc_time, rel=1e-12)

    def test_mb1_size_sweep(self, board_name):
        board = get_board(board_name)
        fractions = (0.25, 0.5, 1.0)
        repeats = 16
        batch = mb1_gpu_size_sweep(SoC(board), fractions, repeats)
        assert len(batch) == len(fractions)
        llc_bytes = board.gpu.llc.size_bytes
        for i, fraction in enumerate(fractions):
            count = max(1024, int(llc_bytes * fraction) // 4)
            soc = SoC(board)
            buffer = _pinned_buffer(soc, count * 4)
            stream = AccessStream.linear(buffer, repeats=repeats)
            scalar = soc.gpu.run(
                "mb1", float(count * repeats), stream, mode="analytic"
            )
            assert batch.time_s[i] == pytest.approx(scalar.time_s, rel=1e-12)


@pytest.mark.parametrize("board_name", BOARDS)
class TestFullSweepEquivalence:
    """SecondMicroBenchmark(vectorized) == the scalar per-point sweep."""

    def _run_both(self, board_name):
        board = get_board(board_name)
        fast = SecondMicroBenchmark(vectorized=True).run(SoC(board))
        slow = SecondMicroBenchmark(vectorized=False).run(SoC(board))
        return fast, slow

    def test_thresholds_identical(self, board_name):
        fast, slow = self._run_both(board_name)
        for side in ("gpu_analysis", "cpu_analysis"):
            a, b = getattr(fast, side), getattr(slow, side)
            assert a.threshold_pct == b.threshold_pct
            assert a.threshold_fraction == b.threshold_fraction
            assert a.zone2_pct == b.zone2_pct
            assert a.zone2_fraction == b.zone2_fraction

    def test_sweep_points_equivalent(self, board_name):
        # The executors run the hierarchy in ``auto`` mode (warm
        # caches); the batch engine uses the analytic closed form.  On
        # the Xavier they differ by < 1e-4 relative, elsewhere exactly.
        fast, slow = self._run_both(board_name)
        for side in ("gpu_points", "cpu_points"):
            for a, b in zip(getattr(fast, side), getattr(slow, side)):
                assert a.fraction == b.fraction
                assert a.sc_time_s == pytest.approx(b.sc_time_s, rel=1e-3)
                assert a.zc_time_s == pytest.approx(b.zc_time_s, rel=1e-3)
                assert a.sc_throughput == pytest.approx(
                    b.sc_throughput, rel=1e-3
                )
                assert a.zc_throughput == pytest.approx(
                    b.zc_throughput, rel=1e-3
                )


class TestClosedFormGuards:
    def test_element_size_must_divide_line(self):
        with pytest.raises(BatchUnsupported) as excinfo:
            coalesced_rw_pair_transactions(
                np.array([64]), element_size=3, line_size=64, warp_size=32
            )
        assert excinfo.value.code == "BATCH_UNSUPPORTED"

    def test_alignment_must_cover_line(self):
        # The default 128-byte alignment is not a multiple of 96.
        with pytest.raises(BatchUnsupported):
            coalesced_linear_read_transactions(
                np.array([64]), element_size=4, line_size=96, warp_size=32
            )

    def test_closed_form_matches_direct_count(self):
        # 33 elements at 4 bytes: 16-element warps cover 64-byte lines
        # exactly, the 1-element remainder touches one more line.
        per_pass = coalesced_rw_pair_transactions(
            np.array([33]), element_size=4, line_size=64, warp_size=32
        )
        assert per_pass.tolist() == [2 * (2 + 1)]

    def test_empty_sweep_rejected(self):
        with pytest.raises(BatchUnsupported):
            mb2_gpu_points(SoC(get_board("tx2")), (0.5,), 0, 8)


class TestInjectionFallback:
    def test_vectorized_sweep_disabled_under_injection(self, tx2_soc):
        bench = SecondMicroBenchmark(vectorized=True)
        with inject_faults(FaultPlan(seed=0)):
            assert bench._sweep_vectorized(tx2_soc) == (None, None)

    def test_run_still_works_under_injection(self, tx2_board):
        # An empty plan patches the seams but perturbs nothing, so the
        # scalar fallback must reproduce the clean-run thresholds.
        bench = SecondMicroBenchmark(vectorized=True)
        clean = bench.run(SoC(tx2_board))
        with inject_faults(FaultPlan(seed=0)):
            injected = bench.run(SoC(tx2_board))
        assert injected.gpu_analysis.threshold_pct == \
            clean.gpu_analysis.threshold_pct
        assert injected.cpu_analysis.threshold_pct == \
            clean.cpu_analysis.threshold_pct


class TestZcSweepEvaluator:
    def _pinned_workload(self):
        from repro.microbench.third import ThirdMicroBenchmark

        board = get_board("tx2")
        return ThirdMicroBenchmark(num_elements=2 ** 20).build_workload(
            SoC(board)
        ), board

    def test_factor_one_reproduces_reference_exactly(self):
        from repro.perf.batch import ZcSweepEvaluator

        workload, board = self._pinned_workload()
        evaluator = ZcSweepEvaluator(workload, board)
        assert evaluator.zc_time(1.0) == \
            evaluator._report.time_per_iteration_s

    def test_cached_workload_unsupported(self):
        from repro.apps.orbslam import OrbPipeline
        from repro.perf.batch import ZcSweepEvaluator

        workload = OrbPipeline().workload(iterations=10, board_name="tx2")
        with pytest.raises(BatchUnsupported):
            ZcSweepEvaluator(workload, get_board("tx2"))

    def test_faster_path_speeds_up_monotonically(self):
        from repro.perf.batch import ZcSweepEvaluator

        workload, board = self._pinned_workload()
        evaluator = ZcSweepEvaluator(workload, board)
        times = [evaluator.zc_time(f) for f in (0.5, 1.0, 2.0, 8.0)]
        assert times == sorted(times, reverse=True)


class TestMb3BalanceResults:
    def test_matches_scalar_per_balance_runs(self):
        from repro.microbench.third import ThirdMicroBenchmark
        from repro.perf.batch import mb3_balance_results

        board = get_board("xavier")
        balances = (0.5, 1.0, 2.0)
        batched = mb3_balance_results(
            ThirdMicroBenchmark(vectorized=True), SoC(board), balances
        )
        for balance, result in zip(balances, batched):
            scalar = ThirdMicroBenchmark(cpu_balance=balance).run(SoC(board))
            for model in ("SC", "UM", "ZC"):
                assert result.total_times[model] == pytest.approx(
                    scalar.total_times[model], rel=1e-12
                )
