"""ShardedCharacterizationStore: routing, LRU eviction, stampedes.

Eviction must be a *pure function of the access history* — a fixed
insertion order always evicts the same entries — and the store must
interoperate with the flat-layout cache it replaced (legacy entries
migrate on first touch, the base-class view stays shard-aware).
"""

import dataclasses
import json
import multiprocessing

import pytest

from repro import obs
from repro.errors import ReproError
from repro.microbench.suite import MicrobenchmarkSuite
from repro.perf.cache import (
    CharacterizationCache,
    ShardedCharacterizationStore,
    cache_key,
)
from repro.soc.board import get_board


@pytest.fixture(scope="module")
def characterized():
    """(suite signature, tx2 device) computed once for the module."""
    suite = MicrobenchmarkSuite()
    return suite.cache_signature(), suite.characterize(get_board("tx2"))


def _boards(count, prefix="board"):
    base = get_board("tx2")
    return [dataclasses.replace(base, name=f"{prefix}-{i:02d}")
            for i in range(count)]


def _entry_size(tmp_path, signature, device):
    """Size of one stored entry, measured on a representative board
    (entries differ by a few bytes across board names)."""
    probe = ShardedCharacterizationStore(tmp_path / "probe", num_shards=1)
    path = probe.store(_boards(1)[0], signature, device)
    return path.stat().st_size


class TestShardRouting:
    def test_entry_lands_in_its_key_shard(self, tmp_path, characterized):
        signature, device = characterized
        store = ShardedCharacterizationStore(tmp_path)
        board = get_board("tx2")
        path = store.store(board, signature, device)
        shard = store.shard_of(cache_key(board, signature))
        assert path.parent.name == store.shard_name(shard)
        assert store.load(board, signature) is not None

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(ReproError) as excinfo:
            ShardedCharacterizationStore(tmp_path, num_shards=0)
        assert excinfo.value.code == "CACHE_SHARDS_INVALID"

    def test_flat_view_sees_sharded_entries(self, tmp_path, characterized):
        signature, device = characterized
        store = ShardedCharacterizationStore(tmp_path)
        store.store(get_board("tx2"), signature, device)
        flat = CharacterizationCache(tmp_path)
        assert len(flat.entries()) == 1
        # ...but never the private index files
        assert all("_index" not in path.name for path in flat.entries())

    def test_legacy_flat_entry_migrates_on_load(self, tmp_path,
                                                characterized):
        signature, device = characterized
        flat = CharacterizationCache(tmp_path)
        flat_path = flat.store(get_board("tx2"), signature, device)
        assert flat_path.parent == tmp_path

        store = ShardedCharacterizationStore(tmp_path)
        assert store.load(get_board("tx2"), signature) is not None
        assert not flat_path.exists()  # adopted into its shard
        assert len(store.entries()) == 1
        assert store.entries()[0].parent.name.startswith("shard-")

    def test_clear_removes_entries_and_indexes(self, tmp_path,
                                               characterized):
        signature, device = characterized
        store = ShardedCharacterizationStore(tmp_path)
        for board in _boards(3):
            store.store(board, signature, device)
        assert store.clear() == 3
        assert store.entries() == []
        assert list(tmp_path.glob("shard-*/_index.json")) == []


class TestLruEviction:
    def test_eviction_is_deterministic_for_fixed_order(self, tmp_path,
                                                       characterized):
        signature, device = characterized
        size = _entry_size(tmp_path, signature, device)
        boards = _boards(5)

        def fill(directory):
            store = ShardedCharacterizationStore(
                directory, num_shards=1, max_bytes=3 * size + size // 2)
            for board in boards:
                store.store(board, signature, device)
            return sorted(path.name for path in store.entries())

        first = fill(tmp_path / "run1")
        second = fill(tmp_path / "run2")
        assert first == second
        # pure insertion order: the three newest survive
        assert [name.rsplit("-", 1)[0] for name in first] == \
            ["board-02", "board-03", "board-04"]

    def test_newest_entry_is_never_evicted(self, tmp_path, characterized):
        signature, device = characterized
        store = ShardedCharacterizationStore(
            tmp_path, num_shards=1, max_bytes=1)
        for board in _boards(2):
            store.store(board, signature, device)
        names = [path.name for path in store.entries()]
        assert len(names) == 1 and names[0].startswith("board-01")

    def test_hit_recency_protects_an_entry(self, tmp_path, characterized):
        signature, device = characterized
        size = _entry_size(tmp_path, signature, device)
        store = ShardedCharacterizationStore(
            tmp_path / "store", num_shards=1,
            max_bytes=2 * size + size // 2)
        first, second, third = _boards(3)
        store.store(first, signature, device)
        store.store(second, signature, device)
        assert store.load(first, signature) is not None  # touch
        store.store(third, signature, device)  # evicts LRU = second
        survivors = {path.name.rsplit("-", 1)[0] for path in store.entries()}
        assert survivors == {"board-00", "board-02"}

    def test_eviction_increments_counter(self, tmp_path, characterized):
        signature, device = characterized

        def evicted():
            row = obs.REGISTRY.snapshot().get("perf.store.evicted")
            return int(row["value"]) if row else 0

        before = evicted()
        store = ShardedCharacterizationStore(
            tmp_path, num_shards=1, max_bytes=1)
        for board in _boards(3):
            store.store(board, signature, device)
        assert evicted() - before == 2

    def test_corrupt_index_is_rebuilt(self, tmp_path, characterized):
        signature, device = characterized
        store = ShardedCharacterizationStore(tmp_path, num_shards=1)
        store.store(get_board("tx2"), signature, device)
        index = tmp_path / "shard-00" / "_index.json"
        index.write_text("not json{{{")
        assert store.load(get_board("tx2"), signature) is not None
        for board in _boards(2, prefix="extra"):
            store.store(board, signature, device)
        rebuilt = json.loads(index.read_text())
        assert set(rebuilt) == {"seq", "entries"}
        assert len(rebuilt["entries"]) == len(store.entries())


def _stampede_worker(cache_dir, barrier, queue):
    """One process racing the others to characterize the same board."""
    suite = MicrobenchmarkSuite(cache_dir=cache_dir)
    barrier.wait(timeout=60)
    suite.characterize(get_board("tx2"))
    # raw results exist only when this process actually ran the suite
    queue.put(suite.raw_results("tx2") is not None)


class TestStampedeProtection:
    def test_concurrent_cold_misses_compute_once(self, tmp_path):
        workers = 4
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(workers)
        queue = context.Queue()
        processes = [
            context.Process(target=_stampede_worker,
                            args=(str(tmp_path), barrier, queue))
            for _ in range(workers)
        ]
        for process in processes:
            process.start()
        computed = [queue.get(timeout=120) for _ in range(workers)]
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        assert sum(computed) == 1, \
            f"expected exactly one computation, got {computed}"


class TestGridReuse:
    def test_grid_cells_hit_the_warm_store(self, tmp_path):
        from repro.perf.grid import run_grid, warm_store

        def counts():
            snapshot = obs.REGISTRY.snapshot()
            hits = sum(int(row["value"]) for name, row in snapshot.items()
                       if name.startswith("perf.store.shard.")
                       and name.endswith(".hit"))
            misses = sum(int(row["value"]) for name, row in snapshot.items()
                         if name.startswith("perf.store.shard.")
                         and name.endswith(".miss"))
            return hits, misses

        assert warm_store(["tx2"], str(tmp_path)) == 1
        assert warm_store(["tx2"], str(tmp_path)) == 0

        hits_before, misses_before = counts()
        results = run_grid(["shwfs", "orbslam"], ["tx2"],
                           cache_dir=str(tmp_path), parallel=False)
        hits_after, misses_after = counts()
        assert len(results) == 2
        assert misses_after == misses_before, \
            "a warm grid must never recharacterize"
        assert hits_after - hits_before >= len(results)
