"""Wall-clock smoke checks for the performance layer.

Marked ``perf`` so they can be selected (``-m perf``) or skipped
(``-m "not perf"``) independently: they assert *relative* speedups
with generous margins, not absolute times, so they stay stable on slow
CI hosts.
"""

import time

import pytest

from repro.microbench.second import SecondMicroBenchmark
from repro.microbench.suite import MicrobenchmarkSuite
from repro.soc.board import get_board
from repro.soc.soc import SoC

pytestmark = pytest.mark.perf


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_sweep_at_least_3x_faster():
    board = get_board("tx2")
    fast = SecondMicroBenchmark(vectorized=True)
    slow = SecondMicroBenchmark(vectorized=False)
    fast.run(SoC(board))  # warm imports/JIT-free numpy paths
    t_fast = _best_of(lambda: fast.run(SoC(board)))
    t_slow = _best_of(lambda: slow.run(SoC(board)), rounds=1)
    assert t_slow / t_fast >= 3.0, (
        f"vectorized sweep only {t_slow / t_fast:.1f}x faster "
        f"({t_slow * 1e3:.1f}ms -> {t_fast * 1e3:.1f}ms)"
    )


def test_persistent_cache_at_least_10x_faster(tmp_path):
    board = get_board("xavier")
    t_cold_start = time.perf_counter()
    MicrobenchmarkSuite(cache_dir=str(tmp_path)).characterize(board)
    t_cold = time.perf_counter() - t_cold_start

    def warm():
        MicrobenchmarkSuite(cache_dir=str(tmp_path)).characterize(board)

    warm()
    t_warm = _best_of(warm)
    assert t_cold / t_warm >= 10.0, (
        f"cached characterization only {t_cold / t_warm:.1f}x faster "
        f"({t_cold * 1e3:.1f}ms -> {t_warm * 1e3:.1f}ms)"
    )
