"""Wall-clock smoke checks for the performance layer.

Marked ``perf`` so they can be selected (``-m perf``) or skipped
(``-m "not perf"``) independently: they assert *relative* speedups
with generous margins, not absolute times, so they stay stable on slow
CI hosts.
"""

import time

import pytest

from repro.microbench.second import SecondMicroBenchmark
from repro.microbench.suite import MicrobenchmarkSuite
from repro.soc.board import get_board
from repro.soc.soc import SoC

pytestmark = pytest.mark.perf


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_sweep_at_least_3x_faster():
    board = get_board("tx2")
    fast = SecondMicroBenchmark(vectorized=True)
    slow = SecondMicroBenchmark(vectorized=False)
    fast.run(SoC(board))  # warm imports/JIT-free numpy paths
    t_fast = _best_of(lambda: fast.run(SoC(board)))
    t_slow = _best_of(lambda: slow.run(SoC(board)), rounds=1)
    assert t_slow / t_fast >= 3.0, (
        f"vectorized sweep only {t_slow / t_fast:.1f}x faster "
        f"({t_slow * 1e3:.1f}ms -> {t_fast * 1e3:.1f}ms)"
    )


def test_persistent_cache_at_least_10x_faster(tmp_path):
    board = get_board("xavier")
    t_cold_start = time.perf_counter()
    MicrobenchmarkSuite(cache_dir=str(tmp_path)).characterize(board)
    t_cold = time.perf_counter() - t_cold_start

    def warm():
        MicrobenchmarkSuite(cache_dir=str(tmp_path)).characterize(board)

    warm()
    t_warm = _best_of(warm)
    assert t_cold / t_warm >= 10.0, (
        f"cached characterization only {t_cold / t_warm:.1f}x faster "
        f"({t_cold * 1e3:.1f}ms -> {t_warm * 1e3:.1f}ms)"
    )


def test_app_fast_paths_clear_generous_floors():
    """The PR-4 vectorized paths, with wide margins for slow CI hosts.

    The committed BENCH_app.json records the real numbers; these floors
    only catch a fast path silently degrading to its scalar fallback.
    """
    from repro.perf.regress import APP_PATHS

    floors = {"tiling": 10.0, "matching": 5.0, "centroids": 5.0}
    for name, floor in floors.items():
        probe, _workload = APP_PATHS[name]
        t_slow, t_fast = probe()
        assert t_slow / t_fast >= floor, (
            f"{name} path only {t_slow / t_fast:.1f}x faster "
            f"({t_slow * 1e3:.1f}ms -> {t_fast * 1e3:.2f}ms)"
        )


def test_at_least_three_paths_reach_10x():
    """The PR's acceptance bar: >= 10x on at least 3 of the app paths."""
    from repro.perf.regress import APP_PATHS

    speedups = {}
    for name in ("tiling", "matching", "centroids"):
        probe, _workload = APP_PATHS[name]
        t_slow, t_fast = probe()
        speedups[name] = t_slow / t_fast
    assert sum(s >= 10.0 for s in speedups.values()) >= 3, speedups
