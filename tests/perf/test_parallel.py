"""Parallel fan-out: ordering, fallback, and the suite/framework wiring."""

import pytest

from repro.apps.shwfs import build_shwfs_workload
from repro.microbench.suite import MicrobenchmarkSuite
from repro.model.framework import Framework
from repro.perf.cache import characterization_to_dict
from repro.perf.parallel import ParallelRunner, default_workers
from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.soc.board import get_board

BOARDS = ("nano", "tx2", "xavier")


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("task failure must propagate")
    return x


class TestParallelRunner:
    def test_order_preserved(self):
        runner = ParallelRunner()
        assert runner.map(_square, range(8)) == [x * x for x in range(8)]

    def test_empty_items(self):
        runner = ParallelRunner()
        assert runner.map(_square, []) == []
        assert runner.last_mode == "serial"

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError):
            ParallelRunner().map(_fail_on_three, [1, 2, 3, 4])

    def test_unpicklable_worker_runs_serial(self):
        runner = ParallelRunner()
        assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert runner.last_mode == "serial"

    def test_single_item_runs_serial(self):
        runner = ParallelRunner()
        assert runner.map(_square, [5]) == [25]
        assert runner.last_mode == "serial"

    def test_one_worker_runs_serial(self):
        runner = ParallelRunner(max_workers=1)
        assert runner.map(_square, [1, 2]) == [1, 4]
        assert runner.last_mode == "serial"

    def test_parallel_disabled(self):
        runner = ParallelRunner(parallel=False)
        assert runner.map(_square, [1, 2]) == [1, 4]
        assert runner.last_mode == "serial"

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_workers=0)

    def test_default_workers_bounded(self):
        assert default_workers(0) == 1
        assert default_workers(1) == 1
        assert 1 <= default_workers(1000) <= 1000


class TestCharacterizeMany:
    def test_parallel_matches_serial(self):
        boards = [get_board(name) for name in BOARDS]
        serial = MicrobenchmarkSuite().characterize_many(
            boards, parallel=False
        )
        parallel = MicrobenchmarkSuite().characterize_many(
            boards, parallel=True
        )
        assert [d.board_name for d in parallel] == list(BOARDS)
        for a, b in zip(parallel, serial):
            assert characterization_to_dict(a) == characterization_to_dict(b)

    def test_results_keep_input_order(self):
        boards = [get_board(name) for name in ("xavier", "nano")]
        devices = MicrobenchmarkSuite().characterize_many(boards)
        assert [d.board_name for d in devices] == ["xavier", "nano"]

    def test_cached_boards_not_recomputed(self, tmp_path):
        boards = [get_board(name) for name in BOARDS]
        suite = MicrobenchmarkSuite(cache_dir=str(tmp_path))
        suite.characterize_many(boards)

        resumed = MicrobenchmarkSuite(cache_dir=str(tmp_path))

        def explode(*_a, **_k):  # pragma: no cover - must not run
            raise AssertionError("suite re-ran despite cache hits")

        resumed.run_all = explode
        devices = resumed.characterize_many(boards)
        assert [d.board_name for d in devices] == list(BOARDS)

    def test_serial_in_process_under_injection(self):
        suite = MicrobenchmarkSuite()
        with inject_faults(FaultPlan(seed=0)):
            devices = suite.characterize_many(
                [get_board("tx2")], parallel=True
            )
        assert [d.board_name for d in devices] == ["tx2"]


class TestTuneMany:
    def test_characterizes_once(self):
        framework = Framework()
        board = get_board("xavier")
        calls = []
        original = framework.suite.run_all
        framework.suite.run_all = lambda b: calls.append(b.name) or original(b)
        reports = framework.tune_many(
            [build_shwfs_workload(), build_shwfs_workload()], board
        )
        assert len(reports) == 2
        assert calls == ["xavier"]

    def test_reports_keep_input_order_and_board(self):
        framework = Framework()
        reports = framework.tune_many(
            [build_shwfs_workload()], get_board("tx2"), current_model="ZC"
        )
        assert reports[0].board_name == "tx2"
        assert reports[0].current_model == "ZC"

    def test_non_strict_survives_bad_characterization(self):
        framework = Framework()

        def explode(*_a, **_k):
            from repro.errors import MicrobenchmarkError

            raise MicrobenchmarkError("synthetic", code="MICROBENCH_SYNTH")

        framework.suite.characterize = explode
        reports = framework.tune_many(
            [build_shwfs_workload()], get_board("tx2"), strict=False
        )
        assert len(reports) == 1
        assert reports[0].degraded


# ----------------------------------------------------------------------
# pool-death survival and deadline hard-timeouts
# ----------------------------------------------------------------------

import os

import numpy as np

from repro.errors import DeadlineError
from repro.obs.trace import get_spans
from repro.resilience.deadline import Deadline, deadline_scope


def _die_in_worker(job):
    """Kill the pool worker process for item 2; compute otherwise.

    The parent's pid rides along in the job so the serial re-run (which
    executes in the parent) completes instead of killing the test.
    """
    parent_pid, item = job
    if item == 2 and os.getpid() != parent_pid:
        os._exit(1)
    return item * 10


def _slow_worker(item):
    import time

    time.sleep(5.0)
    return item


class TestPoolDeath:
    def test_survives_a_worker_dying_mid_pool(self):
        runner = ParallelRunner(max_workers=2)
        jobs = [(os.getpid(), item) for item in range(6)]
        assert runner.map(_die_in_worker, jobs) == [i * 10 for i in range(6)]
        assert runner.last_mode == "serial"

    def test_pool_death_emits_structured_degradation(self):
        runner = ParallelRunner(max_workers=2)
        jobs = [(os.getpid(), item) for item in range(6)]
        runner.map(_die_in_worker, jobs)
        events = [s for s in get_spans() if s.name == "parallel.degraded"]
        assert events
        attrs = events[-1].attributes
        assert attrs["reason"] == "BrokenProcessPool"
        assert attrs["completed"] + attrs["remaining"] == 6


class TestPoolDeadline:
    def test_hard_timeout_on_stuck_workers(self):
        import time

        runner = ParallelRunner(max_workers=2)
        start = time.monotonic()
        with deadline_scope(Deadline.after(0.3)):
            with pytest.raises(DeadlineError) as exc:
                runner.map(_slow_worker, [1, 2, 3])
        assert time.monotonic() - start < 4.0  # not the worker's 5 s
        assert exc.value.code == "DEADLINE_EXCEEDED"
        assert exc.value.details["stage"] == "parallel.pool"
        assert exc.value.details["total_items"] == 3

    def test_serial_path_checkpoints_between_items(self):
        import time

        runner = ParallelRunner(parallel=False)
        with deadline_scope(Deadline.after(0.05)):
            with pytest.raises(DeadlineError):
                runner.map(lambda x: time.sleep(0.1), [1, 2, 3])

    def test_no_deadline_means_plain_blocking_map(self):
        runner = ParallelRunner(max_workers=2)
        assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]


def _shared_sum(arrays, item):
    return float(arrays["a"].sum()) + item


def _shared_copy(arrays, item):
    # Returning a copy (never a view) honors the map_shared contract.
    return arrays["a"][item].copy()


def _shared_fail(arrays, item):
    if item == 2:
        raise ValueError("task failure must propagate")
    return item


def _leaked_segments():
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return None
    return {name for name in os.listdir(shm_dir) if name.startswith("psm_")}


class TestMapShared:
    def test_shared_transport_results(self):
        runner = ParallelRunner(max_workers=2)
        a = np.arange(100.0)
        out = runner.map_shared(_shared_sum, {"a": a}, [1, 2, 3])
        assert out == [4951.0, 4952.0, 4953.0]
        assert runner.last_mode == "parallel"
        assert runner.last_transport == "shared"

    def test_array_contents_reach_workers(self):
        runner = ParallelRunner(max_workers=2)
        a = np.arange(12.0).reshape(3, 4)
        rows = runner.map_shared(_shared_copy, {"a": a}, [0, 1, 2])
        for i, row in enumerate(rows):
            assert np.array_equal(row, a[i])

    def test_no_segments_leak(self):
        before = _leaked_segments()
        if before is None:
            pytest.skip("no /dev/shm on this platform")
        runner = ParallelRunner(max_workers=2)
        runner.map_shared(_shared_sum, {"a": np.arange(10.0)}, [1, 2])
        assert _leaked_segments() <= before

    def test_empty_items(self):
        runner = ParallelRunner()
        assert runner.map_shared(_shared_sum, {"a": np.zeros(4)}, []) == []
        assert runner.last_transport == "inline"

    def test_parallel_disabled_runs_inline(self):
        runner = ParallelRunner(parallel=False)
        out = runner.map_shared(_shared_sum, {"a": np.ones(3)}, [1, 2])
        assert out == [4.0, 5.0]
        assert runner.last_mode == "serial"
        assert runner.last_transport == "inline"

    def test_unpicklable_worker_runs_inline(self):
        runner = ParallelRunner()
        out = runner.map_shared(
            lambda arrays, item: float(arrays["a"][item]),
            {"a": np.array([10.0, 20.0])}, [0, 1],
        )
        assert out == [10.0, 20.0]
        assert runner.last_transport == "inline"

    def test_single_item_runs_inline(self):
        runner = ParallelRunner()
        out = runner.map_shared(_shared_sum, {"a": np.zeros(2)}, [7])
        assert out == [7.0]
        assert runner.last_transport == "inline"

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_workers=2).map_shared(
                _shared_fail, {"a": np.zeros(1)}, [1, 2, 3]
            )

    def test_pickle_fallback_when_shared_memory_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            ParallelRunner, "_map_via_shared_memory",
            lambda self, *args: None,
        )
        runner = ParallelRunner(max_workers=2)
        out = runner.map_shared(_shared_sum, {"a": np.arange(4.0)}, [1, 2])
        assert out == [7.0, 8.0]
        assert runner.last_mode == "parallel"
        assert runner.last_transport == "pickle"

    def test_noncontiguous_arrays_copied(self):
        runner = ParallelRunner(max_workers=2)
        strided = np.arange(20.0)[::2]
        assert not strided.flags["C_CONTIGUOUS"]
        out = runner.map_shared(_shared_sum, {"a": strided}, [0, 1])
        assert out == [float(strided.sum()), float(strided.sum()) + 1]
