"""CLI surface of the performance layer: ``repro cache`` / ``repro bench``."""

import json

import pytest

from repro.cli import main


class TestCacheCommand:
    def test_info_empty(self, tmp_path, capsys):
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 entry(ies)" in out
        assert str(tmp_path) in out

    def test_characterize_populates_then_clear(self, tmp_path, capsys):
        assert main(["characterize", "tx2",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entry(ies)" in out
        assert "tx2-" in out

        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 cached characterization(s)" in out
        assert list(tmp_path.glob("*.json")) == []

    def test_no_cache_flag_leaves_disk_untouched(self, tmp_path, capsys):
        assert main(["characterize", "tx2", "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("*.json")) == []

    def test_info_reports_shards_and_budget(self, tmp_path, capsys):
        assert main(["characterize", "tx2",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "8 shards" in out
        assert "LRU byte budget" in out
        assert "shard-" in out
        assert "hit rate" in out or "no traffic" in out


class TestBenchCommand:
    def test_single_cell_grid(self, tmp_path, capsys):
        output = tmp_path / "grid.json"
        assert main([
            "bench", "--apps", "shwfs", "--boards", "tx2",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
            "--output", str(output),
        ]) == 0
        out = capsys.readouterr().out
        assert "Benchmark grid (1 cells" in out
        cells = json.loads(output.read_text())
        assert len(cells) == 1
        assert cells[0]["app"] == "shwfs"
        assert cells[0]["board"] == "tx2"
        assert set(cells[0]["time_per_iteration_s"]) == {"SC", "UM", "ZC"}

    def test_grid_matches_paper_recommendations(self, tmp_path, capsys):
        # Table III/V: the Xavier flips SHWFS to ZC, the TX2 keeps SC.
        output = tmp_path / "grid.json"
        assert main([
            "bench", "--apps", "shwfs", "--boards", "tx2", "xavier",
            "--jobs", "1", "--no-cache", "--output", str(output),
        ]) == 0
        by_board = {c["board"]: c for c in json.loads(output.read_text())}
        assert by_board["xavier"]["recommendation"] == "ZC"
        assert by_board["tx2"]["recommendation"] == "keep current"
        assert by_board["tx2"]["best_measured_model"] == "SC"

    def test_rejects_unknown_board(self):
        with pytest.raises(SystemExit):
            main(["bench", "--boards", "orin"])
