"""The ``repro bench --check`` regression gate."""

import json

import pytest

from repro.cli import main
from repro.perf import regress


def _fast_probe():
    return 1.0, 0.1  # 10x


def _slow_probe():
    return 1.0, 0.5  # 2x


def _fake_registry():
    return {
        "paths.fast.speedup": ("BENCH_fake.json", _fast_probe),
        "paths.slow.speedup": ("BENCH_fake.json", _slow_probe),
        "paths.absent.speedup": ("BENCH_missing.json", _fast_probe),
    }


def _write_baseline(directory, fast=10.0, slow=10.0):
    (directory / "BENCH_fake.json").write_text(json.dumps(
        {"paths": {"fast": {"speedup": fast}, "slow": {"speedup": slow}}}
    ))


class TestLookup:
    def test_nested_path(self):
        doc = {"a": {"b": {"c": 3.5}}}
        assert regress._lookup(doc, "a.b.c") == 3.5

    def test_missing_key(self):
        assert regress._lookup({"a": {}}, "a.b") is None

    def test_non_numeric_leaf(self):
        assert regress._lookup({"a": "10x"}, "a") is None


class TestRunChecks:
    def test_regression_flagged(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "PROBES", _fake_registry())
        _write_baseline(tmp_path)
        by_metric = {
            c.metric: c for c in regress.run_checks(baseline_dir=tmp_path)
        }
        assert not by_metric["paths.fast.speedup"].regressed
        assert by_metric["paths.slow.speedup"].regressed
        assert by_metric["paths.absent.speedup"].skipped

    def test_drop_within_threshold_passes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "PROBES", _fake_registry())
        _write_baseline(tmp_path, fast=12.0, slow=2.1)  # 2x vs 2.1x: -5%
        checks = regress.run_checks(baseline_dir=tmp_path)
        assert not any(c.regressed for c in checks)

    def test_exact_floor_is_not_a_regression(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.fast.speedup": ("BENCH_fake.json", _fast_probe)},
        )
        # floor = 13.3333... * 0.75 = 10.0 exactly; measured 10.0 passes
        (tmp_path / "BENCH_fake.json").write_text(json.dumps(
            {"paths": {"fast": {"speedup": 40.0 / 3.0}}}
        ))
        checks = regress.run_checks(baseline_dir=tmp_path)
        assert not checks[0].regressed

    def test_custom_threshold(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.slow.speedup": ("BENCH_fake.json", _slow_probe)},
        )
        _write_baseline(tmp_path, slow=2.2)  # 2x vs 2.2x: a 9% drop
        strict = regress.run_checks(baseline_dir=tmp_path, threshold=0.05)
        lax = regress.run_checks(baseline_dir=tmp_path, threshold=0.25)
        assert strict[0].regressed
        assert not lax[0].regressed


class TestCheckReport:
    def test_regression_exit_code(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "PROBES", _fake_registry())
        _write_baseline(tmp_path)
        text, code = regress.check(baseline_dir=tmp_path)
        assert code == regress.EXIT_REGRESSION == 4
        assert "REGRESSED" in text
        assert "paths.slow.speedup" in text

    def test_clean_exit_code(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.fast.speedup": ("BENCH_fake.json", _fast_probe)},
        )
        _write_baseline(tmp_path)
        text, code = regress.check(baseline_dir=tmp_path)
        assert code == 0
        assert "REGRESSED" not in text

    def test_missing_baselines_skip_not_fail(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "PROBES", _fake_registry())
        text, code = regress.check(baseline_dir=tmp_path)
        assert code == 0
        assert "skipped" in text


class TestDefaultBaselineDir:
    def test_cwd_with_baselines_wins(self, tmp_path, monkeypatch):
        _write_baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert regress.default_baseline_dir() == tmp_path

    def test_falls_back_to_repo_root(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        found = regress.default_baseline_dir()
        assert (found / "src" / "repro" / "perf" / "regress.py").exists()


class TestCliCheck:
    def test_exit_4_on_regression(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(regress, "PROBES", _fake_registry())
        _write_baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--check"]) == 4
        assert "REGRESSED" in capsys.readouterr().out

    def test_exit_0_when_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.fast.speedup": ("BENCH_fake.json", _fast_probe)},
        )
        _write_baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--check"]) == 0

    def test_threshold_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            regress, "PROBES",
            {"paths.slow.speedup": ("BENCH_fake.json", _slow_probe)},
        )
        _write_baseline(tmp_path, slow=2.2)
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--check", "--check-threshold", "0.05"]) == 4
        assert main(["bench", "--check", "--check-threshold", "0.25"]) == 0
        capsys.readouterr()


class TestCollectAppBench:
    def test_payload_shape(self, monkeypatch):
        monkeypatch.setattr(regress, "APP_PATHS", {
            "fast": (_fast_probe, "a fast path"),
            "slow": (_slow_probe, "a slow path"),
        })
        payload = regress.collect_app_bench("2026-08-06", host="test")
        assert payload["generated"] == "2026-08-06"
        assert payload["paths"]["fast"]["speedup"] == pytest.approx(10.0)
        assert payload["paths"]["slow"]["speedup"] == pytest.approx(2.0)
        assert payload["paths_at_10x"] == ["fast"]
        assert payload["criteria"]["regression_threshold"] == \
            regress.REGRESSION_THRESHOLD

    def test_committed_baseline_meets_criteria(self):
        """The repo's BENCH_app.json honors its own 3-of-N 10x bar."""
        root = regress.default_baseline_dir()
        path = root / "BENCH_app.json"
        doc = json.loads(path.read_text())
        assert len(doc["paths_at_10x"]) >= doc["criteria"]["min_paths_at_10x"]
        for name in doc["paths_at_10x"]:
            assert doc["paths"][name]["speedup"] >= 10.0


class TestProbeRegistry:
    def test_probes_map_to_committed_metrics(self):
        """Every gated metric exists in its committed baseline file."""
        root = regress.default_baseline_dir()
        for metric, (filename, _probe) in regress.PROBES.items():
            doc = json.loads((root / filename).read_text())
            assert regress._lookup(doc, metric) is not None, metric
