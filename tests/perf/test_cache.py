"""Persistent characterization cache: hits, misses, invalidation."""

import dataclasses
import json

import pytest

from repro.microbench.suite import MicrobenchmarkSuite
from repro.perf.cache import (
    CharacterizationCache,
    cache_key,
    characterization_from_dict,
    characterization_to_dict,
    default_cache_dir,
)
from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.soc.board import get_board


@pytest.fixture(scope="module")
def tx2_characterization():
    """One real characterization to persist (computed once)."""
    suite = MicrobenchmarkSuite()
    return suite, suite.characterize(get_board("tx2"))


def _signature(suite):
    return suite.cache_signature()


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self, tx2_characterization):
        _, device = tx2_characterization
        data = characterization_to_dict(device)
        rebuilt = characterization_from_dict(json.loads(json.dumps(data)))
        assert characterization_to_dict(rebuilt) == data
        assert rebuilt.board_name == device.board_name
        assert rebuilt.gpu_thresholds.threshold_pct == \
            device.gpu_thresholds.threshold_pct

    def test_store_then_load(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        board = get_board("tx2")
        path = cache.store(board, _signature(suite), device)
        assert path.exists()
        loaded = cache.load(board, _signature(suite))
        assert loaded is not None
        assert characterization_to_dict(loaded) == \
            characterization_to_dict(device)

    def test_store_is_atomic(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        cache.store(get_board("tx2"), _signature(suite), device)
        # No stray temp files survive a successful store.
        assert [p.suffix for p in tmp_path.iterdir()] == [".json"]


class TestInvalidation:
    def test_miss_on_different_board(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        cache.store(get_board("tx2"), _signature(suite), device)
        assert cache.load(get_board("nano"), _signature(suite)) is None

    def test_miss_on_board_parameter_change(self, tx2_characterization,
                                            tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        board = get_board("tx2")
        cache.store(board, _signature(suite), device)
        tweaked = dataclasses.replace(
            board,
            zero_copy=dataclasses.replace(
                board.zero_copy, gpu_zc_bandwidth=board.zero_copy.gpu_zc_bandwidth * 2
            ),
        )
        assert cache.load(tweaked, _signature(suite)) is None

    def test_miss_on_signature_change(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        board = get_board("tx2")
        cache.store(board, _signature(suite), device)
        changed = _signature(suite)
        changed["second"] = dict(changed["second"], sweep_repeats=99)
        assert cache.load(board, changed) is None

    def test_key_covers_version(self, tx2_characterization, monkeypatch):
        suite, _ = tx2_characterization
        import repro

        board = get_board("tx2")
        before = cache_key(board, _signature(suite))
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert cache_key(board, _signature(suite)) != before

    def test_corrupt_entry_is_a_miss(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        board = get_board("tx2")
        path = cache.store(board, _signature(suite), device)
        path.write_text("{not json")
        assert cache.load(board, _signature(suite)) is None

    def test_key_mismatch_is_a_miss(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        board = get_board("tx2")
        path = cache.store(board, _signature(suite), device)
        data = json.loads(path.read_text())
        data["key"] = "0" * 64
        path.write_text(json.dumps(data))
        assert cache.load(board, _signature(suite)) is None

    def test_clear(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        cache.store(get_board("tx2"), _signature(suite), device)
        cache.store(get_board("nano"), _signature(suite), device)
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []
        assert cache.clear() == 0


class TestQuarantine:
    def _corrupt_entry(self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        board = get_board("tx2")
        path = cache.store(board, _signature(suite), device)
        path.write_text("{not json")
        return cache, board, _signature(suite), path

    def test_corrupt_entry_is_moved_aside_on_load(self, tx2_characterization,
                                                  tmp_path):
        cache, board, sig, path = self._corrupt_entry(
            tx2_characterization, tmp_path)
        assert cache.load(board, sig) is None
        assert not path.exists()
        quarantined = cache.quarantined()
        assert quarantined == [path.with_suffix(".corrupt")]
        assert quarantined[0].read_text() == "{not json"

    def test_second_load_is_a_plain_miss(self, tx2_characterization,
                                         tmp_path):
        from repro.obs.metrics import REGISTRY

        cache, board, sig, _ = self._corrupt_entry(
            tx2_characterization, tmp_path)
        cache.load(board, sig)
        before = REGISTRY.counter("perf.cache.quarantined").value
        assert cache.load(board, sig) is None  # file is gone: a clean miss
        assert REGISTRY.counter("perf.cache.quarantined").value == before

    def test_quarantine_increments_counter(self, tx2_characterization,
                                           tmp_path):
        from repro.obs.metrics import REGISTRY

        cache, board, sig, _ = self._corrupt_entry(
            tx2_characterization, tmp_path)
        before = REGISTRY.counter("perf.cache.quarantined").value
        cache.load(board, sig)
        assert REGISTRY.counter("perf.cache.quarantined").value == before + 1

    def test_key_mismatch_is_not_quarantined(self, tx2_characterization,
                                             tmp_path):
        # A stale key is a miss, not corruption: the file stays put.
        suite, device = tx2_characterization
        cache = CharacterizationCache(tmp_path)
        board = get_board("tx2")
        path = cache.store(board, _signature(suite), device)
        data = json.loads(path.read_text())
        data["key"] = "0" * 64
        path.write_text(json.dumps(data))
        assert cache.load(board, _signature(suite)) is None
        assert path.exists()
        assert cache.quarantined() == []

    def test_clear_removes_quarantined_files(self, tx2_characterization,
                                             tmp_path):
        cache, board, sig, _ = self._corrupt_entry(
            tx2_characterization, tmp_path)
        cache.load(board, sig)
        assert cache.clear() == 1
        assert cache.quarantined() == []

    def test_quarantined_entry_does_not_block_refresh(
            self, tx2_characterization, tmp_path):
        suite, device = tx2_characterization
        cache, board, sig, _ = self._corrupt_entry(
            tx2_characterization, tmp_path)
        cache.load(board, sig)
        cache.store(board, sig, device)
        loaded = cache.load(board, sig)
        assert loaded is not None
        assert characterization_to_dict(loaded) == \
            characterization_to_dict(device)


class TestSuiteIntegration:
    def test_characterize_skips_suite_on_hit(self, tmp_path):
        board = get_board("tx2")
        warm = MicrobenchmarkSuite(cache_dir=str(tmp_path))
        first = warm.characterize(board)
        assert len(CharacterizationCache(tmp_path).entries()) == 1

        cold = MicrobenchmarkSuite(cache_dir=str(tmp_path))

        def explode(*_a, **_k):  # pragma: no cover - must not run
            raise AssertionError("suite re-ran despite a cache hit")

        cold.run_all = explode
        loaded = cold.characterize(board)
        assert characterization_to_dict(loaded) == \
            characterization_to_dict(first)

    def test_force_recomputes_and_refreshes(self, tmp_path):
        board = get_board("tx2")
        suite = MicrobenchmarkSuite(cache_dir=str(tmp_path))
        suite.characterize(board)
        entry = CharacterizationCache(tmp_path).entries()[0]
        before = entry.stat().st_mtime_ns
        suite.characterize(board, force=True)
        assert entry.stat().st_mtime_ns >= before

    def test_injection_bypasses_persistence(self, tmp_path):
        board = get_board("tx2")
        primed = MicrobenchmarkSuite(cache_dir=str(tmp_path))
        primed.characterize(board)

        fresh = MicrobenchmarkSuite(cache_dir=str(tmp_path))
        with inject_faults(FaultPlan(seed=0)):
            assert fresh._persistent_load(board) is None
            entries_before = CharacterizationCache(tmp_path).entries()
            fresh.characterize(board)  # recomputes under the injector
            assert CharacterizationCache(tmp_path).entries() == entries_before
        # Outside the injector the persisted entry is visible again.
        assert fresh._persistent_load(board) is not None

    def test_default_directory_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
