"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_board_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "orin"])

    def test_app_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "doom", "tx2"])

    def test_sweep_factors(self):
        args = build_parser().parse_args(
            ["sweep", "shwfs", "tx2", "--factors", "1", "2"]
        )
        assert args.factors == [1.0, 2.0]


class TestCommands:
    def test_boards(self, capsys):
        assert main(["boards"]) == 0
        out = capsys.readouterr().out
        assert "tx2" in out
        assert "xavier" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "tx2"]) == 0
        out = capsys.readouterr().out
        assert "GPU LL-L1 peak throughput" in out
        assert "1.28" in out

    def test_tune(self, capsys):
        assert main(["tune", "shwfs", "xavier"]) == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "ZC" in out

    def test_tune_with_current_model(self, capsys):
        assert main(["tune", "orbslam", "tx2", "--model", "ZC"]) == 0
        out = capsys.readouterr().out
        assert "SC/UM" in out  # cache-dependent ZC app -> switch to SC

    def test_compare(self, capsys):
        assert main(["compare", "shwfs", "tx2"]) == 0
        out = capsys.readouterr().out
        for model in ("SC", "UM", "ZC"):
            assert model in out

    def test_sweep(self, capsys):
        assert main(["sweep", "orbslam", "tx2",
                     "--factors", "1", "32"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out


class TestFailurePaths:
    def test_unknown_board_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["tune", "shwfs", "orin"])
        assert excinfo.value.code == 2

    def test_malformed_workload_exits_2_with_code(self, capsys, monkeypatch):
        from repro import cli
        from repro.errors import WorkloadError

        class BrokenPipeline:
            def workload(self, board_name=""):
                raise WorkloadError("frames must be positive")

            def tune(self, framework, board, current_model="SC"):
                raise WorkloadError("frames must be positive")

        monkeypatch.setattr(cli, "_get_pipeline",
                            lambda app: BrokenPipeline())
        assert main(["tune", "shwfs", "tx2"]) == 2
        err = capsys.readouterr().err
        assert "error[WORKLOAD_MALFORMED]" in err
        assert "frames must be positive" in err

    def test_malformed_fault_spec_exits_2(self, capsys):
        assert main(["inject", "shwfs", "tx2", "--fault", "bit-flip"]) == 2
        assert "error[FAULT_PLAN_INVALID]" in capsys.readouterr().err


class TestInjectCommand:
    def test_inject_is_deterministic(self, capsys):
        outputs = []
        for _ in range(2):
            assert main(["inject", "shwfs", "tx2", "--seed", "7"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_inject_different_seeds_differ(self, capsys):
        outputs = []
        for seed in ("7", "8"):
            assert main(["inject", "shwfs", "tx2", "--seed", seed]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] != outputs[1]

    def test_inject_reports_plan_and_confidence(self, capsys):
        assert main(["inject", "shwfs", "tx2", "--seed", "0",
                     "--fault", "counter-noise::0.01"]) == 0
        out = capsys.readouterr().out
        assert "plan(seed=0" in out
        assert "counter-noise" in out
        assert "confidence:" in out
        assert "recommendation:" in out

    def test_inject_strict_fails_fast_with_code(self, capsys):
        assert main(["inject", "shwfs", "tx2", "--seed", "3", "--strict",
                     "--fault", "counter-nan:kernel_runtime_s"]) == 2
        err = capsys.readouterr().err
        assert "error[PROFILE_COUNTER_NONFINITE]" in err

    def test_inject_degraded_keeps_current(self, capsys):
        assert main(["inject", "shwfs", "tx2", "--seed", "3",
                     "--fault", "counter-nan:kernel_runtime_s"]) == 0
        out = capsys.readouterr().out
        assert "recommendation: keep current" in out
        assert "confidence: low" in out
        assert "PROFILE_COUNTER_NONFINITE" in out


class TestValidateCommand:
    def test_validate_clean_exits_0(self, capsys):
        assert main(["validate", "tx2"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "[ OK ]" in out

    def test_validate_with_flush_drop_exits_3(self, capsys):
        assert main(["validate", "tx2",
                     "--fault", "flush-drop:cpu"]) == 3
        out = capsys.readouterr().out
        assert "GUARD_DIRTY_HANDOFF" in out
        assert "[FAIL]" in out

    def test_validate_with_copy_stall_exits_3(self, capsys):
        assert main(["validate", "tx2",
                     "--fault", "copy-stall::1000"]) == 3
        out = capsys.readouterr().out
        assert "GUARD_COPY_STALL" in out


class TestReportCommand:
    def test_report_from_tmp_dir(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_tx2.txt").write_text("content\n")
        assert main(["report", str(results)]) == 0
        out = capsys.readouterr().out
        assert "included 1 artefacts" in out
        assert (results / "REPORT.md").is_file()

    def test_report_missing_dir_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err
