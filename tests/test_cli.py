"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_board_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "orin"])

    def test_app_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "doom", "tx2"])

    def test_sweep_factors(self):
        args = build_parser().parse_args(
            ["sweep", "shwfs", "tx2", "--factors", "1", "2"]
        )
        assert args.factors == [1.0, 2.0]


class TestCommands:
    def test_boards(self, capsys):
        assert main(["boards"]) == 0
        out = capsys.readouterr().out
        assert "tx2" in out
        assert "xavier" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "tx2"]) == 0
        out = capsys.readouterr().out
        assert "GPU LL-L1 peak throughput" in out
        assert "1.28" in out

    def test_tune(self, capsys):
        assert main(["tune", "shwfs", "xavier"]) == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "ZC" in out

    def test_tune_with_current_model(self, capsys):
        assert main(["tune", "orbslam", "tx2", "--model", "ZC"]) == 0
        out = capsys.readouterr().out
        assert "SC/UM" in out  # cache-dependent ZC app -> switch to SC

    def test_compare(self, capsys):
        assert main(["compare", "shwfs", "tx2"]) == 0
        out = capsys.readouterr().out
        for model in ("SC", "UM", "ZC"):
            assert model in out

    def test_sweep(self, capsys):
        assert main(["sweep", "orbslam", "tx2",
                     "--factors", "1", "32"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out


class TestReportCommand:
    def test_report_from_tmp_dir(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_tx2.txt").write_text("content\n")
        assert main(["report", str(results)]) == 0
        out = capsys.readouterr().out
        assert "included 1 artefacts" in out
        assert (results / "REPORT.md").is_file()

    def test_report_missing_dir_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err
