"""Shared fixtures: one characterized board and real app profiles.

Session-scoped — characterization and profiling are deterministic, so
every stream test can share them without coupling outcomes.
"""

import pytest

from repro.model.framework import Framework
from repro.soc.board import get_board


@pytest.fixture(scope="session")
def framework():
    return Framework()


@pytest.fixture(scope="session")
def xavier_board():
    return get_board("xavier")


@pytest.fixture(scope="session")
def xavier_device(framework, xavier_board):
    return framework.characterize(xavier_board)


@pytest.fixture(scope="session")
def shwfs_profile(framework, xavier_board):
    from repro.apps.shwfs import build_shwfs_workload

    return framework.profile(build_shwfs_workload(), xavier_board,
                             model="SC")


@pytest.fixture(scope="session")
def orbslam_profile(framework, xavier_board):
    from repro.apps.orbslam import build_orbslam_workload

    return framework.profile(build_orbslam_workload(), xavier_board,
                             model="SC")
