"""Drift detector: warm-up, step response, determinism, fault parity."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.stream.drift import DriftConfig, DriftDetector

CFG = DriftConfig(lag=2, reference=4)


def run_detector(metrics, config=CFG, block=None):
    detector = DriftDetector(config, num_metrics=metrics.shape[1])
    if block is None:
        return detector.update(metrics)
    flags = []
    for start in range(0, len(metrics), block):
        flags.append(detector.update(metrics[start:start + block]))
    return np.concatenate(flags)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"lag": 0}, {"reference": 0}, {"rel_threshold": -0.1},
        {"abs_floor_pct": -1.0},
    ])
    def test_bad_config(self, kwargs):
        with pytest.raises(StreamError) as err:
            DriftConfig(**kwargs).validated()
        assert err.value.code == "STREAM_BAD_DRIFT"

    def test_bad_metric_shape(self):
        detector = DriftDetector(CFG, num_metrics=2)
        with pytest.raises(StreamError) as err:
            detector.update(np.zeros((4, 3)))
        assert err.value.code == "STREAM_BAD_DRIFT"


class TestBehaviour:
    def test_stationary_never_flags(self):
        metrics = np.full((60, 2), 42.0)
        assert not run_detector(metrics).any()

    def test_warmup_never_flags(self):
        # Wild values inside lag + reference are establishment, not drift.
        rng = np.random.default_rng(0)
        metrics = rng.uniform(0, 100, size=(CFG.lag + CFG.reference, 2))
        assert not run_detector(metrics).any()

    def test_step_change_flags(self):
        metrics = np.full((40, 2), 10.0)
        metrics[20:] = 30.0  # 3x the 25 % relative band
        flags = run_detector(metrics)
        assert not flags[:20].any()
        assert flags[20]
        # Once the reference catches up past the lag, the new level is
        # normal again — the detector does not latch.
        assert not flags[-1]

    def test_small_wiggle_below_floor_ignored(self):
        metrics = np.full((40, 2), 10.0)
        metrics[25] = 10.3  # within the 0.5 pp absolute floor
        assert not run_detector(metrics).any()

    def test_disabled_detector_never_flags(self):
        metrics = np.zeros((30, 1))
        metrics[20:] = 99.0
        config = DriftConfig(lag=2, reference=4, enabled=False)
        assert not run_detector(metrics, config=config).any()


class TestDeterminism:
    def test_block_size_invariance(self):
        rng = np.random.default_rng(7)
        metrics = rng.uniform(0, 50, size=(97, 2))
        reference = run_detector(metrics)
        for block in (1, 3, 10, 97):
            assert np.array_equal(run_detector(metrics, block=block),
                                  reference)

    def test_repeat_runs_identical(self):
        rng = np.random.default_rng(11)
        metrics = rng.uniform(0, 50, size=(64, 2))
        assert np.array_equal(run_detector(metrics),
                              run_detector(metrics))

    def test_injection_scalar_path_matches(self):
        rng = np.random.default_rng(13)
        metrics = rng.uniform(0, 50, size=(80, 2))
        clean = run_detector(metrics)
        with inject_faults(FaultPlan(seed=0)):
            gated = run_detector(metrics)
        assert np.array_equal(gated, clean)
