"""``RecordedTrace.iter_chunks``: bounded-memory parity with from_csv."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.profiling.trace import RecordedTrace

TEXTS = (
    "offset,rw\n0,R\n4,W\n8,r\n64,w\n",   # plain with header
    "0,0\n4,1\n",                          # numeric flags
    "\n\noffset,rw\n\n12,w\n\n8,r\n",      # blank lines everywhere
    "offset,rw\r\n16,W\r\n20,R\r\n",       # CRLF endings
    "0,R\r4,W\r8,r\r",                     # bare-CR endings
    "﻿offset,rw\n0,w\n4,r\n",         # UTF-8 BOM
    " 8 , W \n 12 , r \n",                 # padded cells
    "0,R\n4,W",                            # no trailing newline
    '"0","W"\n"4","r"\n',                  # quoted cells (scalar path)
    "999999999999999999,w\n0,r\n",         # 18-digit offset
)


def whole(text):
    return RecordedTrace.from_csv(io.StringIO(text))


def chunked(text, chunk_size):
    return list(RecordedTrace.iter_chunks(io.StringIO(text),
                                          chunk_size=chunk_size))


class TestParity:
    @pytest.mark.parametrize("text", TEXTS)
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 100])
    def test_chunks_concatenate_to_from_csv(self, text, chunk_size):
        reference = whole(text)
        chunks = chunked(text, chunk_size)
        rows = np.concatenate(chunks)
        assert rows["offset"].tolist() == reference.offsets.tolist()
        assert rows["write"].tolist() == reference.is_write.tolist()

    def test_chunk_sizes_respected(self):
        text = "".join(f"{i * 4},r\n" for i in range(10))
        chunks = chunked(text, 4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_exact_multiple_has_no_empty_tail(self):
        text = "".join(f"{i * 4},w\n" for i in range(8))
        chunks = chunked(text, 4)
        assert [len(c) for c in chunks] == [4, 4]

    def test_chunk_larger_than_file(self):
        chunks = chunked("0,r\n4,w\n", 10_000)
        assert len(chunks) == 1 and len(chunks[0]) == 2

    def test_empty_stream_raises_like_from_csv(self):
        with pytest.raises(ProfilingError):
            whole("offset,rw\n")
        with pytest.raises(ProfilingError):
            chunked("offset,rw\n", 4)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ProfilingError) as err:
            chunked("0,r\n", 0)
        assert err.value.code == "TRACE_BAD_CHUNK"

    def test_error_parity_on_malformed_rows(self):
        text = "0,r\n7\n"  # row missing the rw cell
        with pytest.raises(ProfilingError):
            whole(text)
        with pytest.raises(ProfilingError):
            chunked(text, 4)

    @given(
        offsets=st.lists(st.integers(0, 10 ** 17), min_size=1,
                         max_size=120),
        flags=st.lists(st.sampled_from(["r", "w", "R", "W", "0", "1"]),
                       min_size=1, max_size=120),
        chunk_size=st.integers(1, 50),
        crlf=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_traces(self, offsets, flags, chunk_size, crlf):
        end = "\r\n" if crlf else "\n"
        rows = [f"{o},{f}" for o, f in zip(offsets, flags)]
        text = end.join(rows) + end
        reference = whole(text)
        merged = np.concatenate(chunked(text, chunk_size))
        assert merged["offset"].tolist() == reference.offsets.tolist()
        assert merged["write"].tolist() == reference.is_write.tolist()
