"""Multi-app contention: coupling, fixed point, determinism."""

from dataclasses import replace

import pytest

from repro.errors import StreamError
from repro.stream.contention import (
    AppWindow,
    ContentionConfig,
    ContentionModel,
)
from repro.stream.engine import MultiAppStreamTuner, StreamConfig
from repro.stream.sources import CounterWindowSource


def heavy(profile, factor=3):
    """The same app with ``factor``x the GPU traffic (still plausible)."""
    return replace(profile, gpu_transactions=profile.gpu_transactions *
                   factor)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"dram_weight": -1.0}, {"zc_weight": -0.5}, {"max_iterations": 0},
    ])
    def test_bad_config(self, kwargs):
        with pytest.raises(StreamError) as err:
            ContentionConfig(**kwargs).validated()
        assert err.value.code == "STREAM_BAD_CONTENTION"


class TestDemand:
    def test_zc_loads_both_paths(self, shwfs_profile):
        model = ContentionModel()
        dram, zc = model.demand_bps(shwfs_profile, "ZC")
        assert dram > 0 and zc == dram

    def test_copy_models_load_dram_only(self, shwfs_profile):
        model = ContentionModel()
        for copy_model in ("SC", "UM"):
            dram, zc = model.demand_bps(shwfs_profile, copy_model)
            assert dram > 0 and zc == 0.0


class TestEffectiveDevice:
    def test_no_load_leaves_device_untouched(self, xavier_device):
        model = ContentionModel()
        assert model.effective_device(xavier_device, 0.0, 0.0) \
            is xavier_device

    def test_load_shrinks_thresholds_and_zc(self, xavier_device):
        model = ContentionModel()
        demand = xavier_device.gpu_zc_throughput  # one saturating app
        effective = model.effective_device(xavier_device, demand, demand)
        assert effective.gpu_threshold_pct < xavier_device.gpu_threshold_pct
        assert effective.gpu_zc_throughput < xavier_device.gpu_zc_throughput
        assert effective.gpu_zone2_pct < xavier_device.gpu_zone2_pct
        assert effective.sc_zc_max_speedup <= \
            xavier_device.sc_zc_max_speedup

    def test_more_load_degrades_more(self, xavier_device):
        model = ContentionModel()
        bw = xavier_device.gpu_zc_throughput
        light = model.effective_device(xavier_device, bw / 4, bw / 4)
        crush = model.effective_device(xavier_device, bw * 4, bw * 4)
        assert crush.gpu_threshold_pct < light.gpu_threshold_pct


class TestResolve:
    def test_needs_apps(self, xavier_device):
        with pytest.raises(StreamError) as err:
            ContentionModel().resolve([], xavier_device)
        assert err.value.code == "STREAM_BAD_APPSET"

    def test_board_mismatch_rejected(self, xavier_device, shwfs_profile):
        stray = replace(shwfs_profile, board_name="tx2")
        with pytest.raises(StreamError) as err:
            ContentionModel().resolve([AppWindow(stray, "SC")],
                                      xavier_device)
        assert err.value.code == "STREAM_BAD_APPSET"

    def test_solo_matches_single_app_flow(self, xavier_device,
                                          shwfs_profile):
        # One app has no neighbours: the pass must answer exactly what
        # decide() answers against the undegraded device.
        from repro.model.decision import decide
        from repro.stream.engine import proposed_model

        result = ContentionModel().resolve(
            [AppWindow(shwfs_profile, "SC")], xavier_device)
        assert result.converged
        # The converged model is the solo flow's answer (the final
        # round re-decides *from* that state, so its recommendation is
        # NO_CHANGE — the proposal is what must agree).
        reference = decide(shwfs_profile, xavier_device)
        assert result.decisions[0].proposed == \
            proposed_model(reference, "SC")
        assert result.decisions[0].effective_gpu_threshold_pct == \
            pytest.approx(xavier_device.gpu_threshold_pct)

    def test_neighbour_load_shifts_thresholds(self, xavier_device,
                                              shwfs_profile,
                                              orbslam_profile):
        apps = [AppWindow(shwfs_profile, "ZC"),
                AppWindow(heavy(orbslam_profile), "ZC")]
        result = ContentionModel().resolve(apps, xavier_device)
        for decision in result.decisions:
            assert decision.effective_gpu_threshold_pct < \
                xavier_device.gpu_threshold_pct

    def test_deterministic(self, xavier_device, shwfs_profile,
                           orbslam_profile):
        apps = [AppWindow(shwfs_profile, "SC"),
                AppWindow(heavy(orbslam_profile), "ZC")]
        model = ContentionModel()
        first = model.resolve(apps, xavier_device)
        second = model.resolve(apps, xavier_device)
        assert first.models == second.models
        assert first.iterations == second.iterations
        assert first.converged == second.converged
        for a, b in zip(first.decisions, second.decisions):
            assert a.effective_gpu_threshold_pct == \
                b.effective_gpu_threshold_pct
            assert a.dram_demand_bps == b.dram_demand_bps

    def test_fixed_point_converges_on_real_profiles(
            self, xavier_device, shwfs_profile, orbslam_profile):
        apps = [AppWindow(shwfs_profile, "SC"),
                AppWindow(orbslam_profile, "SC")]
        result = ContentionModel().resolve(apps, xavier_device)
        assert result.converged
        assert result.iterations <= ContentionConfig().max_iterations


class TestMultiAppEngine:
    CONFIG = StreamConfig(window=1024, stride=256, hysteresis=2,
                          chunk_size=2048)

    def sources(self, shwfs_profile, orbslam_profile, samples=3072):
        return [
            CounterWindowSource.from_profile(shwfs_profile,
                                             samples=samples),
            CounterWindowSource.from_profile(orbslam_profile,
                                             samples=samples),
        ]

    def test_needs_two_sources(self, framework, xavier_device,
                               shwfs_profile):
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=2048)
        with pytest.raises(StreamError) as err:
            MultiAppStreamTuner(framework, [source], xavier_device,
                                self.CONFIG)
        assert err.value.code == "STREAM_BAD_APPSET"

    def test_lockstep_run_is_deterministic(self, framework, xavier_device,
                                           shwfs_profile, orbslam_profile):
        def run():
            tuner = MultiAppStreamTuner(
                framework,
                self.sources(shwfs_profile, orbslam_profile),
                xavier_device, self.CONFIG)
            return tuner.run()

        first, second = run(), run()
        assert [a.final_model for a in first.apps] == \
            [a.final_model for a in second.apps]
        assert first.windows == second.windows
        assert first.converged == second.converged
        assert [[f.emission for f in a.flips] for a in first.apps] == \
            [[f.emission for f in a.flips] for a in second.apps]

    def test_contention_visible_in_results(self, framework, xavier_device,
                                           shwfs_profile, orbslam_profile):
        tuner = MultiAppStreamTuner(
            framework, self.sources(shwfs_profile, orbslam_profile),
            xavier_device, self.CONFIG)
        result = tuner.run()
        assert result.windows > 0
        assert len(result.apps) == 2
        for app in result.apps:
            assert app.decisions == result.windows
            # Contended thresholds can only sit at or below the solo one.
            assert app.effective_gpu_threshold_pct <= \
                xavier_device.gpu_threshold_pct + 1e-9
