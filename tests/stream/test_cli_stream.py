"""CLI surface of the streaming engine: ``repro stream``."""

import json

from repro.cli import main


def test_stream_defaults_run(tmp_path, capsys):
    out_path = tmp_path / "run.json"
    assert main(["stream", "shwfs", "xavier",
                 "--samples", "3072", "--window", "1024",
                 "--stride", "256",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "Streamed shwfs-centroid" in out
    assert "decisions/sec" in out
    payload = json.loads(out_path.read_text())
    assert payload["board"] == "xavier"
    assert payload["decisions"] > 0
    assert payload["window_mode"] == "incremental"


def test_stream_bad_window_is_coded_error(capsys):
    assert main(["stream", "shwfs", "xavier", "--window", "0"]) == 2
    err = capsys.readouterr().err
    assert "error[STREAM_BAD_WINDOW]" in err


def test_stream_bad_hysteresis_is_coded_error(capsys):
    assert main(["stream", "shwfs", "xavier", "--hysteresis", "0"]) == 2
    err = capsys.readouterr().err
    assert "error[STREAM_BAD_HYSTERESIS]" in err


def test_stream_bad_chunk_size_is_coded_error(capsys):
    assert main(["stream", "shwfs", "xavier", "--chunk-size", "0"]) == 2
    err = capsys.readouterr().err
    assert "error[STREAM_BAD_CHUNK]" in err


def test_stream_trace_csv(tmp_path, capsys):
    path = tmp_path / "trace.csv"
    path.write_text("".join(f"{(i * 4) % 8192},{'w' if i % 3 else 'r'}\n"
                            for i in range(6000)))
    assert main(["stream", "shwfs", "xavier", "--trace", str(path),
                 "--window", "1024", "--stride", "512",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "Streamed trace" in out


def test_stream_missing_trace_is_coded_error(tmp_path, capsys):
    assert main(["stream", "shwfs", "xavier",
                 "--trace", str(tmp_path / "nope.csv")]) == 2
    err = capsys.readouterr().err
    assert "error[STREAM_BAD_TRACE]" in err


def test_stream_trace_excludes_contention(tmp_path, capsys):
    path = tmp_path / "trace.csv"
    path.write_text("0,r\n4,w\n")
    assert main(["stream", "shwfs", "xavier", "--trace", str(path),
                 "--contend", "orbslam"]) == 2
    err = capsys.readouterr().err
    assert "error[STREAM_BAD_APPSET]" in err


def test_stream_contention_mode(tmp_path, capsys):
    assert main(["stream", "shwfs", "xavier", "--contend", "orbslam",
                 "--samples", "3072", "--window", "1024",
                 "--stride", "512",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "contending apps" in out
    assert "orbslam-features" in out
    assert "fixed point" in out
