"""Window sources: profile round-trips and trace-replay classification."""

import io

import numpy as np
import pytest

from repro.errors import StreamError
from repro.profiling.metrics import (
    profile_cpu_cache_usage,
    profile_gpu_cache_usage,
)
from repro.profiling.trace import RecordedTrace
from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.stream.sources import (
    COUNTER_COLUMNS,
    CounterWindowSource,
    LocalityModel,
    TraceWindowSource,
)
from repro.stream.window import SlidingWindow, WindowSpec


class TestCounterSource:
    def test_bad_shape_rejected(self):
        with pytest.raises(StreamError) as err:
            CounterWindowSource(np.ones((4, 3), dtype=np.int64), "w", "b")
        assert err.value.code == "STREAM_BAD_FEATURES"

    def test_float_samples_rejected(self):
        samples = np.ones((4, len(COUNTER_COLUMNS)))
        with pytest.raises(StreamError) as err:
            CounterWindowSource(samples, "w", "b")
        assert err.value.code == "STREAM_BAD_FEATURES"

    def test_stationary_roundtrip_preserves_rates(self, shwfs_profile):
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=2048)
        windower = SlidingWindow(WindowSpec(1024, 512), len(source.columns))
        for chunk in source.feature_chunks(1024):
            emissions, sums = windower.push(chunk)
            if len(emissions):
                break
        windowed = source.to_profile(sums[0], model="SC")
        assert windowed.cpu_l1_miss_rate == \
            pytest.approx(shwfs_profile.cpu_l1_miss_rate, rel=1e-3)
        assert windowed.gpu_l1_hit_rate == \
            pytest.approx(shwfs_profile.gpu_l1_hit_rate, rel=1e-3)
        assert windowed.gpu_transaction_size == \
            pytest.approx(shwfs_profile.gpu_transaction_size, rel=1e-3)

    def test_usage_series_matches_scalar_eqns(self, shwfs_profile,
                                              xavier_device):
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=2048)
        windower = SlidingWindow(WindowSpec(1024, 256),
                                 len(source.columns))
        sums = np.concatenate([
            windower.push(chunk)[1]
            for chunk in source.feature_chunks(1024)
        ])
        series = source.usage_series(sums, xavier_device)
        assert series.shape == (len(sums), 2)
        for row, total in zip(series, sums):
            profile = source.to_profile(total, model="SC")
            assert row[0] == pytest.approx(
                profile_cpu_cache_usage(profile))
            assert row[1] == pytest.approx(profile_gpu_cache_usage(
                profile, xavier_device.gpu_peak_throughput))

    def test_empty_window_rejected(self, shwfs_profile):
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=16)
        with pytest.raises(StreamError) as err:
            source.to_profile(np.zeros(len(COUNTER_COLUMNS),
                                       dtype=np.int64), model="SC")
        assert err.value.code == "STREAM_EMPTY_WINDOW"

    def test_drifting_switch_validated(self, shwfs_profile):
        with pytest.raises(StreamError) as err:
            CounterWindowSource.drifting(shwfs_profile, shwfs_profile,
                                         samples=64, switch_at=64)
        assert err.value.code == "STREAM_BAD_FEATURES"


def sample_trace(n=4096, seed=5):
    rng = np.random.default_rng(seed)
    sequential = (np.arange(n, dtype=np.int64) * 4) % 4096
    scattered = rng.integers(0, 1 << 20, n) * 4
    offsets = np.where(rng.random(n) < 0.7, sequential, scattered)
    return RecordedTrace(offsets=offsets.astype(np.int64),
                         is_write=rng.random(n) < 0.25)


class TestTraceSource:
    def test_vectorized_matches_scalar(self):
        trace = sample_trace()
        fast = TraceWindowSource(trace, "t", "xavier", vectorized=True)
        slow = TraceWindowSource(trace, "t", "xavier", vectorized=False)
        fast_rows = np.concatenate(list(fast.feature_chunks(512)))
        slow_rows = np.concatenate(list(slow.feature_chunks(512)))
        assert fast.last_mode == "vectorized"
        assert slow.last_mode == "scalar"
        assert np.array_equal(fast_rows, slow_rows)

    def test_chunking_invariant(self):
        trace = sample_trace(seed=6)
        source = TraceWindowSource(trace, "t", "xavier")
        big = np.concatenate(list(source.feature_chunks(4096)))
        small = np.concatenate(list(source.feature_chunks(97)))
        assert np.array_equal(big, small)

    def test_injection_uses_scalar_path(self):
        trace = sample_trace(seed=7)
        source = TraceWindowSource(trace, "t", "xavier", vectorized=True)
        clean = np.concatenate(list(source.feature_chunks(512)))
        with inject_faults(FaultPlan(seed=0)):
            gated = np.concatenate(list(source.feature_chunks(512)))
            assert source.last_mode == "scalar"
        assert np.array_equal(gated, clean)

    def test_csv_stream_is_single_pass(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("".join(f"{i * 4},r\n" for i in range(256)))
        source = TraceWindowSource.from_csv(
            path, workload_name="t", board_name="xavier")
        assert len(list(source.feature_chunks(64))) >= 1
        with pytest.raises(StreamError) as err:
            list(source.feature_chunks(64))
        assert err.value.code == "STREAM_SOURCE_CONSUMED"

    def test_recorded_trace_is_replayable(self):
        source = TraceWindowSource(sample_trace(seed=8), "t", "xavier")
        first = np.concatenate(list(source.feature_chunks(512)))
        second = np.concatenate(list(source.feature_chunks(512)))
        assert np.array_equal(first, second)

    def test_locality_model_validated(self):
        with pytest.raises(StreamError) as err:
            LocalityModel(line_size=0).validated()
        assert err.value.code == "STREAM_BAD_FEATURES"

    def test_window_profile_is_plausible(self, xavier_device):
        from repro.model.decision import decide

        source = TraceWindowSource(sample_trace(seed=9), "t", "xavier")
        windower = SlidingWindow(WindowSpec(1024, 512),
                                 len(source.columns))
        sums = np.concatenate([
            windower.push(chunk)[1]
            for chunk in source.feature_chunks(1024)
        ])
        profile = source.to_profile(sums[0], model="SC")
        assert 0.0 <= profile.gpu_l1_hit_rate <= 1.0
        assert profile.kernel_runtime_s > 0
        decide(profile, xavier_device)  # must not raise guards
