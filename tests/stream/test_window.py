"""Incremental sliding windows: exactness, chunking, fault fallback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults
from repro.stream.window import SlidingWindow, WindowSpec, sliding_window_sums


def rand_features(n, cols=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1_000_000, size=(n, cols), dtype=np.int64)


def direct_sums(features, emissions, window):
    """The definitionally-correct reference: slice and sum per window."""
    return np.stack([
        features[e - window:e].sum(axis=0, dtype=np.int64)
        for e in emissions
    ])


class TestValidation:
    @pytest.mark.parametrize("window,stride,code", [
        (0, 1, "STREAM_BAD_WINDOW"),
        (-3, 1, "STREAM_BAD_WINDOW"),
        (8, 0, "STREAM_BAD_STRIDE"),
        (8, 16, "STREAM_BAD_STRIDE"),  # stride > window skips events
    ])
    def test_bad_spec(self, window, stride, code):
        with pytest.raises(StreamError) as err:
            WindowSpec(window=window, stride=stride).validated()
        assert err.value.code == code

    def test_bad_feature_count(self):
        with pytest.raises(StreamError) as err:
            SlidingWindow(WindowSpec(), num_features=0)
        assert err.value.code == "STREAM_BAD_FEATURES"

    def test_float_features_rejected(self):
        windower = SlidingWindow(WindowSpec(4, 2), num_features=2)
        with pytest.raises(StreamError) as err:
            windower.push(np.ones((8, 2), dtype=np.float64))
        assert err.value.code == "STREAM_BAD_FEATURES"

    def test_wrong_shape_rejected(self):
        windower = SlidingWindow(WindowSpec(4, 2), num_features=2)
        with pytest.raises(StreamError) as err:
            windower.push(np.ones((8, 3), dtype=np.int64))
        assert err.value.code == "STREAM_BAD_FEATURES"


class TestEmissionSchedule:
    def test_first_emission_at_window(self):
        windower = SlidingWindow(WindowSpec(4, 2), num_features=1)
        emissions, _ = windower.push(np.ones((10, 1), dtype=np.int64))
        assert emissions.tolist() == [4, 6, 8, 10]

    def test_short_stream_never_emits(self):
        windower = SlidingWindow(WindowSpec(window=16, stride=4),
                                 num_features=1)
        emissions, sums = windower.push(np.ones((15, 1), dtype=np.int64))
        assert len(emissions) == 0 and len(sums) == 0

    def test_single_event_chunks_match_one_shot(self):
        features = rand_features(50, cols=2, seed=3)
        spec = WindowSpec(window=7, stride=3)
        one_shot = sliding_window_sums(features, spec, chunk_size=50)
        dribble = sliding_window_sums(features, spec, chunk_size=1)
        assert np.array_equal(one_shot[0], dribble[0])
        assert np.array_equal(one_shot[1], dribble[1])

    def test_empty_chunk_is_a_noop(self):
        windower = SlidingWindow(WindowSpec(4, 2), num_features=1)
        windower.push(np.ones((5, 1), dtype=np.int64))
        emissions, sums = windower.push(np.empty((0, 1), dtype=np.int64))
        assert len(emissions) == 0 and len(sums) == 0
        assert windower.events_seen == 5

    def test_chunk_boundary_mid_window(self):
        # A window straddling the chunk edge must use the carried tail.
        features = rand_features(64, seed=1)
        spec = WindowSpec(window=16, stride=4)
        for chunk_size in (5, 16, 17, 63):
            emissions, sums = sliding_window_sums(features, spec,
                                                  chunk_size=chunk_size)
            assert np.array_equal(sums,
                                  direct_sums(features, emissions, 16))


class TestBitIdentical:
    def test_incremental_equals_recompute(self):
        features = rand_features(5000, seed=2)
        spec = WindowSpec(window=512, stride=32)
        em_fast, fast = sliding_window_sums(features, spec,
                                            incremental=True)
        em_slow, slow = sliding_window_sums(features, spec,
                                            incremental=False)
        assert np.array_equal(em_fast, em_slow)
        assert np.array_equal(fast, slow)
        assert np.array_equal(fast, direct_sums(features, em_fast, 512))

    @given(
        seed=st.integers(0, 2 ** 16),
        n=st.integers(1, 400),
        window=st.integers(1, 64),
        stride_off=st.integers(0, 63),
        chunk_size=st.integers(1, 128),
        magnitude=st.sampled_from([10, 10 ** 6, 2 ** 40]),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_random_streams(self, seed, n, window, stride_off,
                                     chunk_size, magnitude):
        stride = 1 + stride_off % window
        rng = np.random.default_rng(seed)
        features = rng.integers(0, magnitude, size=(n, 2), dtype=np.int64)
        spec = WindowSpec(window=window, stride=stride)
        em_fast, fast = sliding_window_sums(features, spec,
                                            chunk_size=chunk_size,
                                            incremental=True)
        em_slow, slow = sliding_window_sums(features, spec,
                                            chunk_size=chunk_size,
                                            incremental=False)
        assert np.array_equal(em_fast, em_slow)
        assert np.array_equal(fast, slow)
        if len(em_fast):
            assert np.array_equal(fast,
                                  direct_sums(features, em_fast, window))


class TestInjectionFallback:
    def test_injection_forces_recompute(self):
        features = rand_features(300, seed=4)
        spec = WindowSpec(window=32, stride=8)
        clean = SlidingWindow(spec, 3, incremental=True)
        _, expected = clean.push(features)
        assert clean.last_mode == "incremental"

        with inject_faults(FaultPlan(seed=0)):
            gated = SlidingWindow(spec, 3, incremental=True)
            _, got = gated.push(features)
            assert gated.last_mode == "recompute"
        assert np.array_equal(got, expected)
