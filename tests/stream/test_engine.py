"""Streaming engine: hysteresis semantics, flips, explainability."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.model.decision import (
    Recommendation,
    RecommendedModel,
    Zone,
    keep_current,
)
from repro.model.speedup import SpeedupEstimate
from repro.stream.engine import (
    StreamConfig,
    StreamTuner,
    _Hysteresis,
    proposed_model,
)
from repro.stream.sources import CounterWindowSource


def make_rec(model, speedup=None):
    estimate = None
    if speedup is not None:
        capped = 1.0 + speedup / 100.0
        estimate = SpeedupEstimate(raw=capped, capped=capped, cap=2.0,
                                   direction="SC->ZC")
    return Recommendation(
        model=model, zone=Zone.BELOW_THRESHOLD,
        cpu_cache_usage_pct=1.0, gpu_cache_usage_pct=1.0,
        cpu_threshold_pct=50.0, gpu_threshold_pct=10.0,
        gpu_zone2_pct=20.0, reason="test", estimate=estimate,
    )


class TestProposedModel:
    def test_zero_copy_proposes_zc(self):
        rec = make_rec(RecommendedModel.ZERO_COPY)
        assert proposed_model(rec, "SC") == "ZC"

    def test_copy_family_proposes_sc(self):
        rec = make_rec(RecommendedModel.STANDARD_COPY_OR_UM)
        assert proposed_model(rec, "ZC") == "SC"

    def test_no_change_keeps_active(self):
        rec = make_rec(RecommendedModel.NO_CHANGE)
        assert proposed_model(rec, "UM") == "UM"

    def test_keep_current_keeps_active(self):
        assert proposed_model(keep_current("ZC", "why"), "ZC") == "ZC"

    def test_conditional_needs_positive_estimate(self):
        conditional = RecommendedModel.ZERO_COPY_CONDITIONAL
        assert proposed_model(make_rec(conditional, speedup=12.0),
                              "SC") == "ZC"
        assert proposed_model(make_rec(conditional, speedup=0.0),
                              "SC") == "SC"
        assert proposed_model(make_rec(conditional), "SC") == "SC"


class TestHysteresis:
    def test_commits_after_threshold(self):
        h = _Hysteresis(3)
        assert h.observe("ZC", "SC") is None
        assert h.observe("ZC", "SC") is None
        assert h.observe("ZC", "SC") == "ZC"

    def test_matching_proposal_resets_streak(self):
        h = _Hysteresis(3)
        h.observe("ZC", "SC")
        h.observe("ZC", "SC")
        assert h.observe("SC", "SC") is None  # blip back to active
        assert h.observe("ZC", "SC") is None  # streak restarted
        assert h.observe("ZC", "SC") is None
        assert h.observe("ZC", "SC") == "ZC"

    def test_target_change_restarts_streak(self):
        h = _Hysteresis(2)
        assert h.observe("ZC", "SC") is None
        assert h.observe("UM", "SC") is None
        assert h.observe("UM", "SC") == "UM"

    def test_threshold_one_commits_immediately(self):
        assert _Hysteresis(1).observe("ZC", "SC") == "ZC"


class TestConfig:
    @pytest.mark.parametrize("kwargs,code", [
        ({"hysteresis": 0}, "STREAM_BAD_HYSTERESIS"),
        ({"chunk_size": 0}, "STREAM_BAD_CHUNK"),
        ({"window": 0}, "STREAM_BAD_WINDOW"),
        ({"stride": 0}, "STREAM_BAD_STRIDE"),
    ])
    def test_bad_values(self, kwargs, code):
        with pytest.raises(StreamError) as err:
            StreamConfig(**kwargs).validated()
        assert err.value.code == code


CONFIG = StreamConfig(window=1024, stride=128, hysteresis=3,
                      chunk_size=2048)


class TestSingleApp:
    def test_board_mismatch_rejected(self, framework, xavier_device,
                                     shwfs_profile):
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=2048)
        source.board_name = "tx2"
        with pytest.raises(StreamError) as err:
            StreamTuner(framework, source, xavier_device, CONFIG)
        assert err.value.code == "STREAM_BAD_APPSET"

    def test_stationary_stream_flips_at_most_once(
            self, framework, xavier_device, shwfs_profile):
        # A stationary stream replays one behaviour; the only
        # legitimate flip is the initial correction onto the tuned
        # model, after which the stream must hold with zero drift.
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=4096)
        result = StreamTuner(framework, source, xavier_device,
                             CONFIG).run()
        assert result.drift_windows == 0
        assert len(result.flips) <= 1
        assert result.window_mode == "incremental"
        assert result.decisions == result.windows > 0
        # The stream ends at equilibrium: the last decision (made
        # against the final active model) proposes no further change.
        assert proposed_model(result.last_recommendation,
                              result.final_model) == result.final_model
        if result.flips:
            assert result.flips[0].from_model == "SC"
            assert result.flips[0].to_model == result.final_model

    def test_flips_are_explainable(self, framework, xavier_device,
                                   shwfs_profile):
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=4096)
        result = StreamTuner(framework, source, xavier_device,
                             CONFIG).run()
        for flip in result.flips:
            assert flip.report is not None
            assert flip.report.recommendation.reason
            assert flip.tune_report is not None
            d = flip.to_dict()
            assert d["reason"] and d["to"] == flip.to_model

    def test_runs_are_deterministic(self, framework, xavier_device,
                                    shwfs_profile):
        def run():
            source = CounterWindowSource.from_profile(shwfs_profile,
                                                      samples=4096)
            return StreamTuner(framework, source, xavier_device,
                               CONFIG).run()

        first, second = run(), run()
        assert first.final_model == second.final_model
        assert first.drift_windows == second.drift_windows
        assert [f.emission for f in first.flips] == \
            [f.emission for f in second.flips]
        assert [(f.from_model, f.to_model) for f in first.flips] == \
            [(f.from_model, f.to_model) for f in second.flips]

    def test_drifting_stream_flags_drift(self, framework, xavier_device,
                                         shwfs_profile, orbslam_profile):
        source = CounterWindowSource.drifting(shwfs_profile,
                                              orbslam_profile,
                                              samples=6144)
        result = StreamTuner(framework, source, xavier_device,
                             CONFIG).run()
        assert result.drift_windows > 0

    def test_high_hysteresis_suppresses_flips(self, framework,
                                              xavier_device,
                                              shwfs_profile):
        # More consecutive proposals required than the stream has
        # emissions: nothing may commit no matter what decide() says.
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=2048)
        config = StreamConfig(window=1024, stride=128,
                              hysteresis=10_000)
        result = StreamTuner(framework, source, xavier_device,
                             config).run()
        assert result.flips == ()
        assert result.final_model == "SC"

    def test_obs_counters_advance(self, framework, xavier_device,
                                  shwfs_profile):
        from repro.obs.metrics import REGISTRY

        before = REGISTRY.counter("stream.decisions").value
        source = CounterWindowSource.from_profile(shwfs_profile,
                                                  samples=2048)
        result = StreamTuner(framework, source, xavier_device,
                             CONFIG).run()
        after = REGISTRY.counter("stream.decisions").value
        assert after - before == result.decisions
