"""Report aggregation from benchmark artefacts."""

import pathlib

import pytest

from repro.analysis.export import ExportError, build_report


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table1_tx2.txt").write_text("Table I tx2 content\n")
    (directory / "fig7_xavier.txt").write_text("Fig 7 content\n")
    return directory


class TestBuildReport:
    def test_includes_present_artefacts(self, results_dir):
        status = build_report(results_dir)
        assert "table1_tx2" in status.included
        assert "fig7_xavier" in status.included
        report = (results_dir / "REPORT.md").read_text()
        assert "Table I tx2 content" in report
        assert "Fig 7 content" in report
        assert "## Table I — peak GPU cache throughput" in report

    def test_reports_missing(self, results_dir):
        status = build_report(results_dir)
        assert "reproduction_summary" in status.missing
        assert not status.complete

    def test_skips_empty_sections(self, results_dir):
        report = build_report(results_dir) and \
            (results_dir / "REPORT.md").read_text()
        assert "## Energy" not in report

    def test_custom_output_path(self, results_dir, tmp_path):
        target = tmp_path / "custom.md"
        build_report(results_dir, output_path=target)
        assert target.is_file()

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            build_report(tmp_path / "nope")


class TestAgainstRealArtefacts:
    def test_full_report_from_benchmark_run(self):
        """When the benchmarks have run, the real results directory
        assembles into a complete-enough report."""
        real = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "results"
        if not real.is_dir() or not any(real.glob("*.txt")):
            pytest.skip("benchmarks have not been run")
        status = build_report(real)
        assert len(status.included) >= 10
        report = (real / "REPORT.md").read_text()
        assert "Reproduction report" in report
