"""Table rendering and paper-reference data."""

import pytest

from repro.analysis.tables import (
    PAPER_REFERENCE,
    Table,
    TableError,
    comparison_row,
    format_table,
    paper_speedup_pct,
    reference,
)


class TestTableRendering:
    def test_basic_render(self):
        table = Table("Demo", ["board", "value"])
        table.add_row("tx2", 97.34)
        text = table.render()
        assert "Demo" in text
        assert "tx2" in text
        assert "97.3" in text

    def test_row_width_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(TableError):
            table.add_row(1)

    def test_format_validates(self):
        with pytest.raises(TableError):
            format_table("t", [], [])
        with pytest.raises(TableError):
            format_table("t", ["a"], [[1, 2]])

    def test_number_formatting(self):
        table = Table("t", ["v"])
        table.add_row(1234.5)
        table.add_row(0.012)
        text = table.render()
        assert "1,234" in text or "1,235" in text
        assert "0.01" in text


class TestPaperReference:
    def test_table1_values(self):
        table1 = reference("table1")
        assert table1["tx2"]["ZC"] == 1.28
        assert table1["xavier"]["SC"] == 214.64

    def test_all_experiments_present(self):
        for key in ("table1", "table2", "table3", "table4", "table5",
                    "fig3", "fig5", "fig6", "fig7", "energy"):
            assert key in PAPER_REFERENCE

    def test_unknown_rejected(self):
        with pytest.raises(TableError):
            reference("table9")

    def test_table3_totals_consistent(self):
        rows = reference("table3")["rows"]
        assert rows["xavier"]["zc_speedup_pct"] == 38.0
        assert rows["nano"]["zc_speedup_pct"] == -67.0


class TestPaperSpeedupConvention:
    def test_faster_is_ratio_minus_one(self):
        # 304.57 -> 220.15: the paper quotes +38 %
        assert paper_speedup_pct(304.57e-6, 220.15e-6) == pytest.approx(38.3, abs=0.5)

    def test_slower_is_negative_slowdown(self):
        # 70 ms -> 521 ms: the paper quotes -744 %
        assert paper_speedup_pct(70e-3, 521e-3) == pytest.approx(-644.3, abs=1.0)

    def test_equal_times(self):
        assert paper_speedup_pct(1.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(TableError):
            paper_speedup_pct(0.0, 1.0)


class TestComparisonRow:
    def test_complete_row(self):
        row = comparison_row("kernel", 100.0, 110.0)
        assert row[0] == "kernel"
        assert row[3] == "1.10x"

    def test_missing_values(self):
        row = comparison_row("x", None, 5.0)
        assert row[1] == "-"
        assert row[3] == "-"
