"""Figure series and terminal charts."""

import pytest

from repro.analysis.figures import FigureError, FigureSeries, ascii_chart


@pytest.fixture
def series():
    fig = FigureSeries(
        title="demo", x_label="fraction", y_label="GB/s",
        x_values=[0.01, 0.1, 0.25, 0.5],
    )
    fig.add_series("SC", [10.0, 50.0, 90.0, 97.0])
    fig.add_series("ZC", [10.0, 32.0, 32.0, 32.0])
    return fig


class TestFigureSeries:
    def test_csv_layout(self, series):
        csv = series.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "fraction,SC,ZC"
        assert len(lines) == 5
        assert lines[1].startswith("0.01,")

    def test_length_mismatch_rejected(self, series):
        with pytest.raises(FigureError):
            series.add_series("bad", [1.0])

    def test_ascii_render_contains_legend(self, series):
        text = series.render_ascii()
        assert "SC" in text
        assert "ZC" in text
        assert "GB/s" in text


class TestAsciiChart:
    def test_requires_series(self):
        with pytest.raises(FigureError):
            ascii_chart([1, 2], {})

    def test_requires_points(self):
        with pytest.raises(FigureError):
            ascii_chart([1], {"a": [1.0]})

    def test_log_x_mode(self, series):
        text = series.render_ascii(log_x=True)
        assert text  # renders without error

    def test_flat_series_renders(self):
        text = ascii_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "*" in text

    def test_zero_x_span_rejected(self):
        with pytest.raises(FigureError):
            ascii_chart([2, 2], {"a": [1.0, 2.0]})
