"""Reproduction scoring machinery."""

import pytest

from repro.analysis.validation import (
    ReproductionCheck,
    Verdict,
    _grade,
    _grade_sign,
    run_reproduction_checks,
    summarize,
)


class TestGrading:
    def test_tight_match_reproduced(self):
        assert _grade(100.0, 104.0) is Verdict.REPRODUCED

    def test_loose_match_magnitude(self):
        assert _grade(100.0, 140.0) is Verdict.MAGNITUDE

    def test_far_off_deviates(self):
        assert _grade(100.0, 300.0) is Verdict.DEVIATES

    def test_zero_paper_value(self):
        assert _grade(0.0, 0.0) is Verdict.REPRODUCED
        assert _grade(0.0, 5.0) is Verdict.MAGNITUDE

    def test_sign_flip_deviates(self):
        assert _grade_sign(38.0, -10.0) is Verdict.DEVIATES
        assert _grade_sign(-67.0, 12.0) is Verdict.DEVIATES

    def test_same_sign_graded_by_error(self):
        assert _grade_sign(-5.0, -5.2) is Verdict.REPRODUCED
        assert _grade_sign(-744.0, -311.0) is Verdict.MAGNITUDE


class TestSummarize:
    def test_renders_score_line(self):
        checks = [
            ReproductionCheck("T", "a", 1.0, 1.0, Verdict.REPRODUCED),
            ReproductionCheck("T", "b", 1.0, 1.4, Verdict.MAGNITUDE),
        ]
        text = summarize(checks)
        assert "1/2 reproduced" in text
        assert "1 magnitude-only" in text
        assert "0 deviating" in text


class TestFullRun:
    @pytest.fixture(scope="class")
    def checks(self, characterization_suite):
        return run_reproduction_checks(characterization_suite)

    def test_covers_all_artefacts(self, checks):
        experiments = {c.experiment for c in checks}
        assert experiments >= {"Table I", "Fig 3", "Fig 6", "Fig 7",
                               "Table II", "Table III", "Table IV", "Table V"}

    def test_nothing_deviates(self, checks):
        assert all(c.verdict is not Verdict.DEVIATES for c in checks)

    def test_majority_reproduced(self, checks):
        reproduced = sum(c.verdict is Verdict.REPRODUCED for c in checks)
        assert reproduced / len(checks) >= 0.70

    def test_all_decisions_reproduce(self, checks):
        for check in checks:
            if check.quantity.endswith(" decision") or \
                    check.quantity.endswith(" zone"):
                assert check.verdict is Verdict.REPRODUCED, check
