"""Micro-benchmark 1: peak GPU LL-L1 throughput (Table I / Fig 5)."""

import pytest

from repro.microbench.first import FirstMicroBenchmark
from repro.units import to_gbps


@pytest.fixture(scope="module")
def tx2_result():
    from repro.soc.board import jetson_tx2
    from repro.soc.soc import SoC

    return FirstMicroBenchmark().run(SoC(jetson_tx2()))


@pytest.fixture(scope="module")
def xavier_result():
    from repro.soc.board import jetson_xavier
    from repro.soc.soc import SoC

    return FirstMicroBenchmark().run(SoC(jetson_xavier()))


class TestTable1Reproduction:
    def test_tx2_row(self, tx2_result):
        throughput = tx2_result.gpu_max_throughput
        assert to_gbps(throughput["ZC"]) == pytest.approx(1.28, rel=0.05)
        assert to_gbps(throughput["SC"]) == pytest.approx(97.34, rel=0.05)
        assert to_gbps(throughput["UM"]) == pytest.approx(104.15, rel=0.05)

    def test_xavier_row(self, xavier_result):
        throughput = xavier_result.gpu_max_throughput
        assert to_gbps(throughput["ZC"]) == pytest.approx(32.29, rel=0.05)
        assert to_gbps(throughput["SC"]) == pytest.approx(214.64, rel=0.05)
        assert to_gbps(throughput["UM"]) == pytest.approx(231.14, rel=0.05)

    def test_tx2_zc_gap_about_77x(self, tx2_result):
        throughput = tx2_result.gpu_max_throughput
        assert 60 < throughput["SC"] / throughput["ZC"] < 90

    def test_xavier_zc_gap_about_7x(self, xavier_result):
        throughput = xavier_result.gpu_max_throughput
        assert 5 < throughput["SC"] / throughput["ZC"] < 9


class TestFig5Reproduction:
    def test_zc_kernel_slowest_everywhere(self, tx2_result, xavier_result):
        for result in (tx2_result, xavier_result):
            zc = result.measurement("ZC").kernel_time_s
            sc = result.measurement("SC").kernel_time_s
            um = result.measurement("UM").kernel_time_s
            assert zc > sc
            assert zc > um

    def test_tx2_cpu_routine_degrades_under_zc(self, tx2_result):
        """TX2 disables the CPU cache too: the CPU routine slows
        noticeably (paper: "up to 70 %")."""
        sc = tx2_result.measurement("SC").cpu_time_s
        zc = tx2_result.measurement("ZC").cpu_time_s
        assert 1.2 < zc / sc < 2.2

    def test_xavier_cpu_routine_unaffected(self, xavier_result):
        sc = xavier_result.measurement("SC").cpu_time_s
        zc = xavier_result.measurement("ZC").cpu_time_s
        assert zc == pytest.approx(sc, rel=0.05)

    def test_um_close_to_sc(self, tx2_result):
        sc = tx2_result.measurement("SC")
        um = tx2_result.measurement("UM")
        assert um.kernel_time_s == pytest.approx(sc.kernel_time_s, rel=0.10)
        assert um.cpu_time_s == pytest.approx(sc.cpu_time_s, rel=0.10)


class TestDeviceCaps:
    def test_zc_sc_kernel_ratio_is_upper_bound(self, tx2_result, xavier_result):
        """The paper's Max_{ZC/SC} values: ~70 on TX2, single digits on
        Xavier."""
        assert 40 < tx2_result.zc_sc_kernel_ratio < 90
        assert 2 < xavier_result.zc_sc_kernel_ratio < 9

    def test_cpu_probe_measures_llc_path(self, tx2_result):
        cpu = tx2_result.cpu_max_throughput
        assert to_gbps(cpu["SC"]) == pytest.approx(24.0, rel=0.1)
        assert cpu["ZC"] < cpu["SC"]


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FirstMicroBenchmark(matrix_fraction_of_llc=0.0)
        with pytest.raises(ValueError):
            FirstMicroBenchmark(gpu_sweep_repeats=1)

    def test_matrix_sized_to_llc(self, tx2_result):
        from repro.soc.board import jetson_tx2

        assert tx2_result.matrix_bytes == jetson_tx2().gpu.llc.size_bytes // 2
