"""Characterization suite: assembly and caching."""

import pytest

from repro.microbench.suite import MicrobenchmarkSuite
from repro.soc.board import get_board


class TestCharacterization:
    def test_assembles_device(self, tx2_device):
        assert tx2_device.board_name == "tx2"
        assert not tx2_device.io_coherent
        assert set(tx2_device.gpu_cache_throughput) == {"SC", "UM", "ZC"}
        assert tx2_device.sc_zc_max_speedup >= 1.0
        assert tx2_device.zc_sc_max_speedup > 1.0

    def test_xavier_is_io_coherent(self, xavier_device):
        assert xavier_device.io_coherent
        assert xavier_device.gpu_zone2_pct > xavier_device.gpu_threshold_pct

    def test_tx2_zones_collapse(self, tx2_device):
        assert tx2_device.gpu_zone2_pct == tx2_device.gpu_threshold_pct

    def test_throughput_ratio_property(self, tx2_device, xavier_device):
        assert tx2_device.zc_sc_throughput_ratio > \
            xavier_device.zc_sc_throughput_ratio

    def test_caching_by_board_name(self, characterization_suite):
        a = characterization_suite.characterize(get_board("tx2"))
        b = characterization_suite.characterize(get_board("tx2"))
        assert a is b

    def test_force_recomputes(self):
        suite = MicrobenchmarkSuite()
        a = suite.characterize(get_board("nano"))
        b = suite.characterize(get_board("nano"), force=True)
        assert a is not b

    def test_raw_results_stored(self, characterization_suite, tx2_device):
        raw = characterization_suite.raw_results("tx2")
        assert raw is not None
        assert raw.first.board_name == "tx2"
        assert raw.third.data_bytes == 2 ** 27 * 4
