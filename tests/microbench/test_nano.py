"""Micro-benchmarks on the synthesized Nano preset.

The paper omits the Nano's MB1/MB2 plots "as the results are
equivalent to those of the TX2"; the preset must honour that claim.
"""

import pytest

from repro.microbench.first import FirstMicroBenchmark
from repro.microbench.second import SecondMicroBenchmark
from repro.soc.board import jetson_nano, jetson_tx2
from repro.soc.soc import SoC


@pytest.fixture(scope="module")
def nano_first():
    return FirstMicroBenchmark().run(SoC(jetson_nano()))


@pytest.fixture(scope="module")
def tx2_first():
    return FirstMicroBenchmark().run(SoC(jetson_tx2()))


class TestNanoEquivalence:
    def test_same_model_ordering(self, nano_first, tx2_first):
        for result in (nano_first, tx2_first):
            kernel = {m: result.measurement(m).kernel_time_s
                      for m in ("SC", "UM", "ZC")}
            assert kernel["ZC"] > kernel["SC"]
            assert kernel["ZC"] > kernel["UM"]

    def test_nano_gap_is_tx2_class(self, nano_first, tx2_first):
        """Both boards show a double-digit ZC kernel blow-up (unlike
        the Xavier's single-digit one)."""
        assert nano_first.zc_sc_kernel_ratio > 20
        assert tx2_first.zc_sc_kernel_ratio > 20

    def test_nano_cpu_degrades_like_tx2(self, nano_first, tx2_first):
        for result in (nano_first, tx2_first):
            ratio = (result.measurement("ZC").cpu_time_s
                     / result.measurement("SC").cpu_time_s)
            assert ratio > 1.2

    def test_nano_is_slower_overall(self, nano_first, tx2_first):
        assert nano_first.measurement("SC").cpu_time_s > \
            tx2_first.measurement("SC").cpu_time_s


class TestNanoThresholds:
    @pytest.fixture(scope="class")
    def sweep(self):
        return SecondMicroBenchmark().run(SoC(jetson_nano()))

    def test_small_gpu_threshold(self, sweep):
        assert 0.5 < sweep.gpu_analysis.threshold_pct < 6.0

    def test_no_second_zone(self, sweep):
        assert sweep.gpu_analysis.zone2_pct is None

    def test_finite_cpu_threshold(self, sweep):
        assert 3.0 < sweep.cpu_analysis.threshold_pct < 25.0
