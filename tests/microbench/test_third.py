"""Micro-benchmark 3: overlap ceiling (Fig 7)."""

import pytest

from repro.microbench.third import ThirdMicroBenchmark


@pytest.fixture(scope="module")
def results():
    from repro.soc.board import jetson_tx2, jetson_xavier
    from repro.soc.soc import SoC

    bench = ThirdMicroBenchmark()  # paper scale: 2^27 floats, virtual
    return {
        "tx2": bench.run(SoC(jetson_tx2())),
        "xavier": bench.run(SoC(jetson_xavier())),
    }


class TestFig7Reproduction:
    def test_paper_data_set_size(self, results):
        assert results["xavier"].data_bytes == 2 ** 27 * 4  # 512 MB

    def test_xavier_zc_wins_big(self, results):
        """Paper: ZC up to 152 % faster than SC, 164 % than UM."""
        xavier = results["xavier"]
        assert xavier.zc_faster_than("SC") > 60.0
        assert xavier.zc_faster_than("UM") > xavier.zc_faster_than("SC")

    def test_xavier_max_speedup_band(self, results):
        """The eqn-3 cap: paper implies ~2.5x."""
        assert 1.5 < results["xavier"].sc_zc_max_speedup < 4.0

    def test_tx2_zc_does_not_win(self, results):
        """On the TX2 the uncached GPU path erases the overlap gain —
        consistent with Table II publishing no SC/ZC speedup for TX2."""
        assert results["tx2"].sc_zc_max_speedup <= 1.05

    def test_um_within_sc_envelope(self, results):
        for result in results.values():
            ratio = result.total_times["UM"] / result.total_times["SC"]
            assert 0.92 < ratio < 1.15

    def test_transfer_time_significant_under_sc(self, results):
        """The paper: with 512 MB, transfer times contribute
        significantly to the system performance."""
        xavier = results["xavier"]
        assert xavier.copy_times["SC"] > 0.2 * xavier.total_times["SC"]
        assert xavier.copy_times["ZC"] == 0.0


class TestConstruction:
    def test_small_element_count_rejected(self):
        with pytest.raises(ValueError):
            ThirdMicroBenchmark(num_elements=100)

    def test_cpu_balance_validated(self):
        with pytest.raises(ValueError):
            ThirdMicroBenchmark(cpu_balance=0.0)

    def test_balanced_tasks(self, results):
        """CPU and GPU runtimes are comparable (the paper's 'balanced
        CPU+iGPU computation')."""
        xavier = results["xavier"]
        ratio = xavier.cpu_times["SC"] / xavier.kernel_times["SC"]
        assert 0.2 < ratio < 5.0


class TestBalanceSweep:
    BOARDS = ("nano", "tx2", "xavier")

    def _run_both(self, board_name):
        from repro.soc.board import get_board
        from repro.soc.soc import SoC

        board = get_board(board_name)
        fast = ThirdMicroBenchmark(vectorized=True)
        slow = ThirdMicroBenchmark(vectorized=False)
        return (fast.balance_sweep(SoC(board)),
                slow.balance_sweep(SoC(board)))

    @pytest.mark.parametrize("board_name", BOARDS)
    def test_vectorized_matches_scalar(self, board_name):
        fast, slow = self._run_both(board_name)
        assert fast.balances == slow.balances
        for a, b in zip(fast.results, slow.results):
            for model in ("SC", "UM", "ZC"):
                assert a.total_times[model] == pytest.approx(
                    b.total_times[model], rel=1e-12
                )
                assert a.cpu_times[model] == pytest.approx(
                    b.cpu_times[model], rel=1e-12
                )
        assert fast.best_balance == slow.best_balance

    def test_speedups_vary_with_balance(self):
        fast, _ = self._run_both("xavier")
        assert len(set(fast.sc_zc_speedups)) > 1

    def test_injection_falls_back_to_scalar(self):
        from repro.robustness.faults import FaultPlan
        from repro.robustness.inject import inject_faults
        from repro.soc.board import get_board
        from repro.soc.soc import SoC

        board = get_board("tx2")
        clean = ThirdMicroBenchmark(vectorized=False).balance_sweep(SoC(board))
        with inject_faults(FaultPlan(seed=0)):
            injected = ThirdMicroBenchmark(vectorized=True).balance_sweep(
                SoC(board)
            )
        assert injected.balances == clean.balances
        for a, b in zip(injected.results, clean.results):
            assert a.total_times == b.total_times

    def test_custom_balances(self):
        from repro.soc.board import get_board
        from repro.soc.soc import SoC

        result = ThirdMicroBenchmark(vectorized=True).balance_sweep(
            SoC(get_board("tx2")), balances=(0.5, 2.0)
        )
        assert result.balances == (0.5, 2.0)
        assert len(result.results) == 2
