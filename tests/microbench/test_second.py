"""Micro-benchmark 2: threshold sweep (Figs 3 and 6)."""

import pytest

from repro.microbench.second import SecondMicroBenchmark


@pytest.fixture(scope="module")
def tx2_result():
    from repro.soc.board import jetson_tx2
    from repro.soc.soc import SoC

    return SecondMicroBenchmark().run(SoC(jetson_tx2()))


@pytest.fixture(scope="module")
def xavier_result():
    from repro.soc.board import jetson_xavier
    from repro.soc.soc import SoC

    return SecondMicroBenchmark().run(SoC(jetson_xavier()))


class TestFig6TX2:
    def test_threshold_is_small(self, tx2_result):
        """TX2's GPU threshold is a few percent (paper: 2.7 %)."""
        assert 0.5 < tx2_result.gpu_analysis.threshold_pct < 6.0

    def test_no_second_zone(self, tx2_result):
        assert tx2_result.gpu_analysis.zone2_pct is None

    def test_divergence_grows_with_fraction(self, tx2_result):
        points = list(tx2_result.gpu_points)
        first_ratio = points[0].runtime_ratio
        last_ratio = points[-1].runtime_ratio
        assert last_ratio > 5 * first_ratio


class TestFig3Xavier:
    def test_threshold_in_paper_band(self, xavier_result):
        """Xavier's threshold (paper 16.2 %) — same order of magnitude."""
        assert 4.0 < xavier_result.gpu_analysis.threshold_pct < 30.0

    def test_second_zone_exists(self, xavier_result):
        analysis = xavier_result.gpu_analysis
        assert analysis.zone2_pct is not None
        assert analysis.zone2_pct > analysis.threshold_pct

    def test_zone2_in_paper_band(self, xavier_result):
        """Paper: second zone up to 57.1 %."""
        assert 20.0 < xavier_result.gpu_analysis.zone2_pct < 75.0

    def test_xavier_threshold_higher_than_tx2(self, tx2_result, xavier_result):
        assert (xavier_result.gpu_analysis.threshold_pct
                > tx2_result.gpu_analysis.threshold_pct)


class TestCpuThresholds:
    def test_tx2_cpu_threshold_in_band(self, tx2_result):
        """Paper: 15.6 % on Nano/TX2."""
        assert 3.0 < tx2_result.cpu_analysis.threshold_pct < 25.0

    def test_xavier_cpu_threshold_saturates(self, xavier_result):
        """I/O coherence keeps CPU caches on: threshold = 100 %
        (Table II reports exactly this)."""
        assert xavier_result.cpu_analysis.threshold_pct == 100.0


class TestConstruction:
    def test_fraction_ordering(self):
        bench = SecondMicroBenchmark(fractions=(0.5, 0.01, 0.1))
        assert bench.fractions == (0.01, 0.1, 0.5)

    def test_needs_fractions(self):
        with pytest.raises(ValueError):
            SecondMicroBenchmark(fractions=())
