"""Micro-benchmark parameterization: the suite's knobs behave sanely."""

import pytest

from repro.microbench.first import FirstMicroBenchmark
from repro.microbench.second import SecondMicroBenchmark
from repro.microbench.third import ThirdMicroBenchmark
from repro.soc.board import jetson_tx2, jetson_xavier
from repro.soc.soc import SoC


class TestFirstKnobs:
    def test_larger_matrix_spills_the_llc(self):
        """A matrix sized beyond the LLC turns the SC measurement from
        cache throughput into DRAM throughput — the 'selectivity'
        property of §III-B depends on sizing it inside."""
        inside = FirstMicroBenchmark(matrix_fraction_of_llc=0.5)
        result_inside = inside.run(SoC(jetson_tx2()))
        # matrix within the LLC: measured SC throughput ≈ LLC bandwidth
        sc = result_inside.gpu_max_throughput["SC"]
        board = jetson_tx2()
        assert sc == pytest.approx(board.gpu.llc_bandwidth, rel=0.05)

    def test_more_sweeps_do_not_change_steady_state(self):
        short = FirstMicroBenchmark(gpu_sweep_repeats=8).run(SoC(jetson_tx2()))
        long = FirstMicroBenchmark(gpu_sweep_repeats=32).run(SoC(jetson_tx2()))
        assert long.gpu_max_throughput["SC"] == pytest.approx(
            short.gpu_max_throughput["SC"], rel=0.05
        )


class TestSecondKnobs:
    def test_coarse_grid_still_finds_the_knee(self):
        coarse = SecondMicroBenchmark(
            fractions=(1 / 4000, 1 / 400, 1 / 40, 1 / 4)
        ).run(SoC(jetson_xavier()))
        fine = SecondMicroBenchmark().run(SoC(jetson_xavier()))
        # Grid resolution moves the detected threshold but keeps its
        # order of magnitude.
        ratio = (coarse.gpu_analysis.threshold_pct
                 / fine.gpu_analysis.threshold_pct)
        assert 0.2 < ratio < 5.0

    def test_larger_array_same_threshold(self):
        """The threshold is a *device* property: the array size only
        positions the sweep, it must not move the knee much."""
        small = SecondMicroBenchmark(array_bytes=2 * 1024 * 1024).run(
            SoC(jetson_xavier())
        )
        large = SecondMicroBenchmark(array_bytes=8 * 1024 * 1024).run(
            SoC(jetson_xavier())
        )
        ratio = (small.gpu_analysis.threshold_pct
                 / large.gpu_analysis.threshold_pct)
        assert 0.3 < ratio < 3.0


class TestThirdKnobs:
    def test_scaled_down_data_set_preserves_the_verdict(self):
        """MB3's conclusion (ZC wins on Xavier) holds from 2^22 to the
        paper's 2^27 elements — the virtual-stream path makes both
        cheap."""
        for exponent in (22, 27):
            bench = ThirdMicroBenchmark(num_elements=2 ** exponent)
            result = bench.run(SoC(jetson_xavier()))
            assert result.zc_faster_than("SC") > 30.0, exponent

    def test_cpu_balance_shifts_cpu_share(self):
        """More CPU balance means more CPU compute; the memory part of
        the task is balance-independent, so the effect is monotone but
        sub-linear."""
        light = ThirdMicroBenchmark(num_elements=2 ** 22, cpu_balance=0.5)
        heavy = ThirdMicroBenchmark(num_elements=2 ** 22, cpu_balance=4.0)
        soc = SoC(jetson_xavier())
        t_light = light.run(soc).cpu_times["SC"]
        soc.reset()
        t_heavy = heavy.run(soc).cpu_times["SC"]
        assert t_heavy > t_light * 1.2
