"""Unit conversion helpers."""

import pytest

from repro import units


class TestSizes:
    def test_binary_sizes(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GIB == 1024 ** 3

    def test_kib_mib_helpers(self):
        assert units.kib(32) == 32 * 1024
        assert units.mib(2) == 2 * 1024 ** 2

    def test_kib_accepts_fractions(self):
        assert units.kib(0.5) == 512


class TestThroughput:
    def test_gbps_round_trip(self):
        assert units.to_gbps(units.gbps(97.34)) == pytest.approx(97.34)

    def test_gbps_is_decimal(self):
        assert units.gbps(1.0) == 1e9


class TestTime:
    def test_us_round_trip(self):
        assert units.to_us(units.us(453.5)) == pytest.approx(453.5)

    def test_ms_round_trip(self):
        assert units.to_ms(units.ms(70.0)) == pytest.approx(70.0)

    def test_us_is_micro(self):
        assert units.us(1.0) == 1e-6


class TestCycles:
    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(2e9, units.ghz(2.0)) == pytest.approx(1.0)

    def test_seconds_to_cycles(self):
        assert units.seconds_to_cycles(1.0, units.ghz(1.3)) == pytest.approx(1.3e9)

    def test_round_trip(self):
        freq = units.ghz(1.43)
        assert units.seconds_to_cycles(
            units.cycles_to_seconds(12345.0, freq), freq
        ) == pytest.approx(12345.0)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1.0, 0.0)
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1.0, -1.0)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 4096, 2 ** 20])
    def test_powers(self, value):
        assert units.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100, 2 ** 20 + 1])
    def test_non_powers(self, value):
        assert not units.is_power_of_two(value)
