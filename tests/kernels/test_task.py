"""CPU tasks and GPU kernels."""

import pytest

from repro.kernels.ops import OpMix
from repro.kernels.patterns import LinearPattern, SingleAddressPattern
from repro.kernels.task import CpuTask, GpuKernel
from repro.soc.address import MemoryRegion, RegionKind


@pytest.fixture
def buffers():
    region = MemoryRegion(name="r", base=0, size=1 << 20, kind=RegionKind.PINNED)
    return {"a": region.allocate("a", 8 * 1024, element_size=4)}


class TestCpuTask:
    def test_compute_cycles_from_mix(self):
        task = CpuTask(name="t", ops=OpMix({"add": 100}))
        assert task.compute_cycles() == pytest.approx(100.0)

    def test_single_pattern_stream(self, buffers):
        task = CpuTask(name="t", ops=OpMix(), pattern=LinearPattern(buffer="a"))
        streams = task.build_streams(buffers, 64)
        assert len(streams) == 1
        assert len(streams[0]) > 0

    def test_extra_patterns_ordered(self, buffers):
        task = CpuTask(
            name="t",
            ops=OpMix(),
            pattern=SingleAddressPattern(buffer="a", count=5),
            extra_patterns=(LinearPattern(buffer="a", read_write_pairs=False),),
        )
        streams = task.build_streams(buffers, 64)
        assert len(streams) == 2
        assert len(streams[0]) == 5

    def test_patternless_task_yields_empty_stream(self, buffers):
        task = CpuTask(name="t", ops=OpMix({"add": 1}))
        streams = task.build_streams(buffers, 64)
        assert len(streams) == 1
        assert len(streams[0]) == 0


class TestGpuKernel:
    def test_total_flops_from_mix(self):
        kernel = GpuKernel(name="k", ops=OpMix({"fma": 50}))
        assert kernel.total_flops() == pytest.approx(100.0)

    def test_multi_stream_kernel(self, buffers):
        kernel = GpuKernel(
            name="k",
            ops=OpMix(),
            pattern=LinearPattern(buffer="a", read_write_pairs=False),
            extra_patterns=(LinearPattern(buffer="a", write=True,
                                          read_write_pairs=False),),
        )
        streams = kernel.build_streams(buffers, 64)
        assert len(streams) == 2
        assert not streams[0].is_write.any()
        assert streams[1].is_write.all()
