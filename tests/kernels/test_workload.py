"""Workload definitions and copy accounting."""

import pytest

from repro.errors import WorkloadError
from repro.kernels.ops import OpMix
from repro.kernels.task import CpuTask, GpuKernel
from repro.kernels.workload import BufferSpec, Direction, Workload


def simple_workload(**kwargs):
    defaults = dict(
        name="w",
        buffers=(
            BufferSpec("in", 1024, shared=True, direction=Direction.TO_GPU),
            BufferSpec("out", 256, shared=True, direction=Direction.TO_CPU),
            BufferSpec("scratch", 512),
        ),
        gpu_kernel=GpuKernel(name="k", ops=OpMix({"add": 1})),
    )
    defaults.update(kwargs)
    return Workload(**defaults)


class TestBufferSpec:
    def test_size_bytes(self):
        assert BufferSpec("b", 100, element_size=4).size_bytes == 400

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BufferSpec("b", 0)
        with pytest.raises(WorkloadError):
            BufferSpec("b", 10, element_size=0)


class TestWorkload:
    def test_copy_accounting(self):
        workload = simple_workload()
        assert workload.bytes_to_gpu == 1024 * 4
        assert workload.bytes_to_cpu == 256 * 4
        assert workload.copied_bytes_per_iteration == (1024 + 256) * 4

    def test_bidirectional_counts_both_ways(self):
        workload = simple_workload(
            buffers=(BufferSpec("pp", 1024, shared=True,
                                direction=Direction.BIDIRECTIONAL),),
        )
        assert workload.bytes_to_gpu == 4096
        assert workload.bytes_to_cpu == 4096

    def test_resident_buffers_not_copied(self):
        workload = simple_workload(
            buffers=(
                BufferSpec("pyramid", 1024, shared=True,
                           direction=Direction.RESIDENT),
                BufferSpec("features", 64, shared=True,
                           direction=Direction.TO_CPU),
            ),
        )
        assert workload.bytes_to_gpu == 0
        assert workload.bytes_to_cpu == 64 * 4
        assert len(workload.shared_buffers) == 2

    def test_private_buffers_not_shared(self):
        workload = simple_workload()
        assert [b.name for b in workload.shared_buffers] == ["in", "out"]

    def test_total_footprint(self):
        workload = simple_workload()
        assert workload.total_footprint_bytes == (1024 + 256 + 512) * 4

    def test_buffer_lookup(self):
        workload = simple_workload()
        assert workload.buffer("scratch").num_elements == 512
        with pytest.raises(WorkloadError):
            workload.buffer("missing")

    def test_needs_some_task(self):
        with pytest.raises(WorkloadError):
            simple_workload(gpu_kernel=None)

    def test_duplicate_buffer_names_rejected(self):
        with pytest.raises(WorkloadError):
            simple_workload(
                buffers=(BufferSpec("x", 10), BufferSpec("x", 10)),
            )

    def test_needs_buffers(self):
        with pytest.raises(WorkloadError):
            simple_workload(buffers=())

    def test_iterations_validated(self):
        with pytest.raises(WorkloadError):
            simple_workload(iterations=0)

    def test_fixed_overhead_validated(self):
        with pytest.raises(WorkloadError):
            simple_workload(fixed_iteration_overhead_s=-1.0)

    def test_cpu_only_workload_allowed(self):
        workload = simple_workload(
            gpu_kernel=None,
            cpu_task=CpuTask(name="t", ops=OpMix({"add": 1})),
        )
        assert workload.gpu_kernel is None
        assert workload.cpu_task is not None
