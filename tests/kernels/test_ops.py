"""Operation cost table and mixes."""

import pytest

from repro.errors import WorkloadError
from repro.kernels.ops import OpMix, op_table


class TestOpTable:
    def test_contains_paper_instructions(self):
        table = op_table()
        # The paper's micro-benchmark mixes: sqrt/div/mul (CPU), add and
        # fused multiply-add (GPU).
        for name in ("sqrt", "div", "mul", "add", "fma"):
            assert name in table

    def test_expensive_ops_cost_more(self):
        table = op_table()
        assert table["sqrt"].cpu_cycles > table["add"].cpu_cycles
        assert table["div"].gpu_flops > table["add"].gpu_flops

    def test_fma_counts_two_flops(self):
        assert op_table()["fma"].gpu_flops == 2.0


class TestOpMix:
    def test_cpu_cycles(self):
        mix = OpMix({"add": 10, "sqrt": 2})
        table = op_table()
        expected = 10 * table["add"].cpu_cycles + 2 * table["sqrt"].cpu_cycles
        assert mix.cpu_cycles() == pytest.approx(expected)

    def test_gpu_flops(self):
        mix = OpMix({"fma": 100})
        assert mix.gpu_flops() == pytest.approx(200.0)

    def test_per_element(self):
        mix = OpMix.per_element({"fma": 2.0}, 1000)
        assert mix.counts["fma"] == pytest.approx(2000.0)
        assert mix.total_ops == pytest.approx(2000.0)

    def test_scaled(self):
        mix = OpMix({"add": 10}).scaled(2.5)
        assert mix.counts["add"] == pytest.approx(25.0)

    def test_merged(self):
        merged = OpMix({"add": 1, "mul": 2}).merged(OpMix({"add": 3, "div": 1}))
        assert merged.counts["add"] == 4
        assert merged.counts["mul"] == 2
        assert merged.counts["div"] == 1

    def test_empty_mix(self):
        mix = OpMix()
        assert mix.cpu_cycles() == 0.0
        assert mix.gpu_flops() == 0.0

    def test_unknown_op_rejected(self):
        with pytest.raises(WorkloadError):
            OpMix({"teleport": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            OpMix({"add": -1})

    def test_negative_scale_rejected(self):
        with pytest.raises(WorkloadError):
            OpMix({"add": 1}).scaled(-1)

    def test_negative_elements_rejected(self):
        with pytest.raises(WorkloadError):
            OpMix.per_element({"add": 1}, -5)
