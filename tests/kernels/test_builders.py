"""Workload templates."""

import pytest

from repro.comm.base import get_model
from repro.errors import WorkloadError
from repro.kernels.builders import (
    gpu_offload,
    ping_pong,
    producer_consumer,
    streaming_reduction,
)
from repro.kernels.workload import Direction
from repro.model.framework import Framework
from repro.soc.board import get_board
from repro.soc.soc import SoC


class TestProducerConsumer:
    def test_structure(self):
        workload = producer_consumer("pc", 64 * 1024)
        assert workload.bytes_to_gpu == 64 * 1024 * 4
        assert workload.bytes_to_cpu == 0
        assert workload.overlappable

    def test_runs_under_every_model(self):
        workload = producer_consumer("pc", 16 * 1024, iterations=3)
        soc = SoC(get_board("tx2"))
        for model in ("SC", "UM", "ZC"):
            report = get_model(model).execute(workload, soc)
            assert report.total_time_s > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            producer_consumer("bad", 0)


class TestPingPong:
    def test_bidirectional_copies(self):
        workload = ping_pong("pp", 32 * 1024)
        assert workload.bytes_to_gpu == workload.bytes_to_cpu > 0

    def test_tiled_overlap_under_zc(self):
        workload = ping_pong("pp", 32 * 1024, iterations=3)
        report = get_model("ZC").execute(workload, SoC(get_board("xavier")))
        assert report.steady_iteration.is_overlapped


class TestGpuOffload:
    def test_only_result_copied(self):
        workload = gpu_offload("off", result_elements=1024)
        assert workload.bytes_to_gpu == 0
        assert workload.bytes_to_cpu == 1024 * 4
        assert workload.buffer("hot").direction is Direction.RESIDENT

    def test_reuse_creates_gpu_cache_dependence(self):
        light = gpu_offload("light", 1024, reuse_passes=1, iterations=3)
        heavy = gpu_offload("heavy", 1024, reuse_passes=32, iterations=3)
        framework = Framework()
        board = get_board("tx2")
        usage_light = framework.tune(light, board).gpu_cache_usage_pct
        usage_heavy = framework.tune(heavy, board).gpu_cache_usage_pct
        assert usage_heavy > usage_light


class TestStreamingReduction:
    def test_structure(self):
        workload = streaming_reduction("red", 256 * 1024)
        assert workload.cpu_task is None
        assert workload.bytes_to_cpu == 64 * 4

    def test_must_shrink(self):
        with pytest.raises(WorkloadError):
            streaming_reduction("bad", 100, output_elements=100)

    def test_profiles_as_not_cache_dependent(self):
        """A single-pass stream never looks GPU-cache-dependent on the
        Xavier (demand far below the zone-2 bound)."""
        workload = streaming_reduction("red", 128 * 1024, iterations=3,
                                       gpu_ops_per_element=64.0)
        report = Framework().tune(workload, get_board("xavier"))
        assert report.gpu_cache_usage_pct < \
            report.recommendation.gpu_zone2_pct
