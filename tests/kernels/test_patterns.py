"""Pattern specs materialize correctly against placed buffers."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kernels.patterns import (
    FractionPattern,
    LinearPattern,
    SingleAddressPattern,
    SparsePattern,
    StridedPattern,
    TiledPattern,
    VirtualLinearPattern,
    VirtualSparsePattern,
)
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.stream import PatternKind


@pytest.fixture
def buffers():
    region = MemoryRegion(name="pinned", base=0, size=1 << 22,
                          kind=RegionKind.PINNED)
    return {
        "image": region.allocate("image", 64 * 1024, element_size=4),
        "out": region.allocate("out", 4 * 1024, element_size=4),
    }


class TestResolution:
    def test_unknown_buffer_rejected(self, buffers):
        with pytest.raises(WorkloadError):
            LinearPattern(buffer="missing").build(buffers, 64)

    def test_region_kind_tagged(self, buffers):
        stream = LinearPattern(buffer="image").build(buffers, 64)
        assert stream.region_kind is RegionKind.PINNED


class TestShapes:
    def test_linear(self, buffers):
        stream = LinearPattern(buffer="image", read_write_pairs=False,
                               repeats=3).build(buffers, 64)
        assert stream.pattern is PatternKind.LINEAR
        assert stream.repeats == 3
        assert len(stream) == buffers["image"].num_elements

    def test_single_address(self, buffers):
        stream = SingleAddressPattern(buffer="out", count=128).build(buffers, 64)
        assert stream.pattern is PatternKind.SINGLE_ADDRESS
        assert len(np.unique(stream.addresses)) == 1

    def test_fraction(self, buffers):
        stream = FractionPattern(buffer="image", fraction=0.25).build(buffers, 64)
        assert stream.footprint_bytes == buffers["image"].size // 4

    def test_strided(self, buffers):
        stream = StridedPattern(buffer="image", stride_elements=3).build(buffers, 64)
        assert np.all(np.diff(stream.addresses) == 12)

    def test_sparse_uses_processor_line_size(self, buffers):
        stream = SparsePattern(buffer="image", count=100).build(buffers, 128)
        lines = stream.addresses // 128
        assert len(np.unique(lines)) == 100

    def test_tiled_parities_are_disjoint(self, buffers):
        even = TiledPattern(buffer="image", num_tiles=16, parity=0).build(buffers, 64)
        odd = TiledPattern(buffer="image", num_tiles=16, parity=1).build(buffers, 64)
        assert not set(even.addresses.tolist()) & set(odd.addresses.tolist())

    def test_tiled_validation(self):
        with pytest.raises(WorkloadError):
            TiledPattern(buffer="image", num_tiles=0, parity=0)
        with pytest.raises(WorkloadError):
            TiledPattern(buffer="image", num_tiles=4, parity=2)

    def test_tiled_too_small_buffer(self, buffers):
        with pytest.raises(WorkloadError):
            TiledPattern(buffer="out", num_tiles=10 ** 6, parity=0).build(buffers, 64)


class TestVirtualPatterns:
    def test_virtual_linear_uses_buffer_size(self, buffers):
        stream = VirtualLinearPattern(buffer="image").build(buffers, 64)
        assert stream.is_virtual
        assert stream.footprint_bytes == buffers["image"].size
        assert stream.region_kind is RegionKind.PINNED

    def test_virtual_sparse_accesses(self, buffers):
        stream = VirtualSparsePattern(
            buffer="image", accesses_per_element=2.0
        ).build(buffers, 64)
        assert stream.total_transactions == 2 * buffers["image"].num_elements
