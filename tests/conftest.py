"""Shared fixtures.

Board presets and SoC instances are cheap to build, but the
micro-benchmark characterization is not — it is cached per session.
"""

from __future__ import annotations

import os

import pytest

from repro.microbench.suite import MicrobenchmarkSuite
from repro.soc.board import get_board, jetson_nano, jetson_tx2, jetson_xavier
from repro.soc.soc import SoC


@pytest.fixture(scope="session", autouse=True)
def _isolated_characterization_cache(tmp_path_factory):
    """Point the persistent characterization cache at a throwaway dir.

    The CLI enables the on-disk cache by default; without this fixture
    a CLI test would write under the invoking user's ``~/.cache``.
    """
    path = tmp_path_factory.mktemp("characterization-cache")
    saved = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if saved is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = saved


@pytest.fixture
def tx2_board():
    """Fresh TX2 preset."""
    return jetson_tx2()


@pytest.fixture
def xavier_board():
    """Fresh Xavier preset."""
    return jetson_xavier()


@pytest.fixture
def nano_board():
    """Fresh Nano preset."""
    return jetson_nano()


@pytest.fixture
def tx2_soc(tx2_board):
    """Instantiated TX2."""
    return SoC(tx2_board)


@pytest.fixture
def xavier_soc(xavier_board):
    """Instantiated Xavier."""
    return SoC(xavier_board)


@pytest.fixture
def nano_soc(nano_board):
    """Instantiated Nano."""
    return SoC(nano_board)


_SUITE = MicrobenchmarkSuite()


@pytest.fixture(scope="session")
def characterization_suite():
    """Session-wide micro-benchmark suite (characterizations cached)."""
    return _SUITE


@pytest.fixture(scope="session")
def tx2_device(characterization_suite):
    """Cached TX2 characterization."""
    return characterization_suite.characterize(get_board("tx2"))


@pytest.fixture(scope="session")
def xavier_device(characterization_suite):
    """Cached Xavier characterization."""
    return characterization_suite.characterize(get_board("xavier"))


@pytest.fixture(scope="session")
def nano_device(characterization_suite):
    """Cached Nano characterization."""
    return characterization_suite.characterize(get_board("nano"))
