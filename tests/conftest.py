"""Shared fixtures.

Board presets and SoC instances are cheap to build, but the
micro-benchmark characterization is not — it is cached per session.
"""

from __future__ import annotations

import pytest

from repro.microbench.suite import MicrobenchmarkSuite
from repro.soc.board import get_board, jetson_nano, jetson_tx2, jetson_xavier
from repro.soc.soc import SoC


@pytest.fixture
def tx2_board():
    """Fresh TX2 preset."""
    return jetson_tx2()


@pytest.fixture
def xavier_board():
    """Fresh Xavier preset."""
    return jetson_xavier()


@pytest.fixture
def nano_board():
    """Fresh Nano preset."""
    return jetson_nano()


@pytest.fixture
def tx2_soc(tx2_board):
    """Instantiated TX2."""
    return SoC(tx2_board)


@pytest.fixture
def xavier_soc(xavier_board):
    """Instantiated Xavier."""
    return SoC(xavier_board)


@pytest.fixture
def nano_soc(nano_board):
    """Instantiated Nano."""
    return SoC(nano_board)


_SUITE = MicrobenchmarkSuite()


@pytest.fixture(scope="session")
def characterization_suite():
    """Session-wide micro-benchmark suite (characterizations cached)."""
    return _SUITE


@pytest.fixture(scope="session")
def tx2_device(characterization_suite):
    """Cached TX2 characterization."""
    return characterization_suite.characterize(get_board("tx2"))


@pytest.fixture(scope="session")
def xavier_device(characterization_suite):
    """Cached Xavier characterization."""
    return characterization_suite.characterize(get_board("xavier"))


@pytest.fixture(scope="session")
def nano_device(characterization_suite):
    """Cached Nano characterization."""
    return characterization_suite.characterize(get_board("nano"))
