"""Every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["Recommendation", "Validation"],
    "shwfs_tuning.py": ["recovered modes", "Table III"],
    "orbslam_tuning.py": ["estimated shift", "Table V"],
    "zero_copy_pattern.py": ["race-free", "Tile-size ablation"],
    "custom_board.py": ["Xavier-Next"],
    "trace_driven_tuning.py": ["Trace-driven tuning"],
    "workload_templates.py": ["Decision matrix"],
}


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS[name]:
        assert marker in result.stdout, (name, marker)


def test_quickstart_accepts_board_argument():
    result = run_example("quickstart.py", "tx2")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Jetson TX2" in result.stdout


def test_all_examples_are_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)
