"""Shared fixtures for the resilience test package."""

import pytest

from repro.soc.board import get_board


@pytest.fixture(scope="session")
def shwfs_workload_tx2():
    """The SHWFS workload calibrated for the TX2 (session-cached)."""
    from repro.apps.shwfs import ShwfsPipeline

    return ShwfsPipeline().workload(board_name=get_board("tx2").name)
