"""The chaos harness: determinism, accounting, and the CLI seam."""

import json

import pytest

from repro.cli import main
from repro.resilience.chaos import (
    ChaosOutcome,
    ChaosSchedule,
    build_schedule,
    run_chaos,
    run_schedule,
)

RECOGNIZED_STATUSES = {"clean", "recovered", "degraded", "error"}


class TestSchedules:
    def test_build_schedule_is_deterministic(self):
        a = build_schedule(seed=3, index=5)
        b = build_schedule(seed=3, index=5)
        assert a == b

    def test_different_indices_differ(self):
        schedules = [build_schedule(seed=0, index=i) for i in range(10)]
        assert len({s.fault_seed for s in schedules}) > 1

    def test_explicit_deadline_pins_every_schedule(self):
        schedules = [build_schedule(seed=0, index=i, deadline_s=2.5)
                     for i in range(6)]
        assert all(s.deadline_s == 2.5 for s in schedules)

    def test_boards_and_apps_are_respected(self):
        schedule = build_schedule(seed=0, index=0, apps=("shwfs",),
                                  boards=("nano",))
        assert schedule.apps == ("shwfs",)
        assert schedule.board_name == "nano"

    def test_to_dict_round_trip_fields(self):
        data = build_schedule(seed=1, index=2).to_dict()
        assert data["seed"] == 1 and data["index"] == 2
        assert set(data) >= {"apps", "board", "strict", "deadline_s",
                             "retry_attempts", "breaker_threshold"}


@pytest.mark.fault
class TestSoak:
    def test_small_soak_passes_and_accounts_everything(self):
        report = run_chaos(schedules=3, seed=0)
        assert len(report.outcomes) == 3
        assert report.passed, report.violations
        for outcome in report.outcomes:
            assert outcome.status in RECOGNIZED_STATUSES
            assert outcome.wall_s >= 0
        rendered = report.render()
        assert "3 schedule(s)" in rendered
        assert "no guard violations" in rendered

    def test_soak_is_deterministic_in_classification(self):
        first = run_chaos(schedules=2, seed=5)
        second = run_chaos(schedules=2, seed=5)
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.schedule == b.schedule
            assert a.status == b.status
            assert a.error_code == b.error_code
            assert a.faults_fired == b.faults_fired

    def test_strict_error_outcomes_carry_codes(self):
        report = run_chaos(schedules=6, seed=0, validate_guards=False)
        errored = [o for o in report.outcomes if o.status == "error"]
        assert all(o.error_code for o in errored)

    def test_uncoded_escape_is_a_violation(self, monkeypatch):
        schedule = build_schedule(seed=0, index=0)

        import repro.model.framework as framework_mod

        def explode(self, *args, **kwargs):
            raise RuntimeError("raw crash with no code")

        monkeypatch.setattr(framework_mod.Framework, "tune_many", explode)
        outcome = run_schedule(schedule, validate_guards=False)
        assert outcome.status == "error"
        assert outcome.error_code is None
        assert not outcome.passed
        assert any("uncoded" in v for v in outcome.violations)


@pytest.mark.fault
class TestCli:
    def test_chaos_command_exit_zero_and_json(self, tmp_path, capsys):
        artifact = tmp_path / "soak.json"
        code = main(["chaos", "--schedules", "2", "--seed", "0",
                     "--no-validate", "--json", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 schedule(s)" in out
        data = json.loads(artifact.read_text())
        assert data["passed"] is True
        assert len(data["outcomes"]) == 2


class TestClassification:
    def _outcome(self, **overrides):
        schedule = build_schedule(seed=0, index=0)
        base = dict(schedule=schedule, status="clean", wall_s=0.1)
        base.update(overrides)
        return ChaosOutcome(**base)

    def test_degraded_without_codes_is_a_violation(self):
        from repro.resilience.chaos import _classify

        outcome = self._outcome(degraded_reports=1, total_reports=1,
                                caveat_codes=[])
        _classify(outcome)
        assert outcome.status == "degraded"
        assert not outcome.passed

    def test_hang_cap_violation(self):
        from repro.resilience.chaos import HANG_CAP_S, _classify

        outcome = self._outcome(wall_s=HANG_CAP_S + 1)
        _classify(outcome)
        assert any("hang" in v for v in outcome.violations)

    def test_deadline_overshoot_violation(self):
        from repro.resilience.chaos import _classify

        schedule = ChaosSchedule(
            index=0, seed=0, apps=("shwfs",), board_name="tx2",
            strict=True, deadline_s=1.0, retry_attempts=1,
            breaker_threshold=None, fault_seed=0, max_faults=1,
        )
        outcome = ChaosOutcome(schedule=schedule, status="clean",
                               wall_s=10.0)
        _classify(outcome)
        assert any("overshot" in v for v in outcome.violations)
