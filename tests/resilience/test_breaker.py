"""Circuit breakers: the state machine, shedding, and the registry."""

import pytest

from repro.errors import CircuitOpenError, ReproError
from repro.obs.metrics import REGISTRY
from repro.resilience.breaker import (
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _boom(code="SEAM_FAULT"):
    raise ReproError("seam failed", code=code)


def _breaker(threshold=2, recovery_s=10.0):
    clock = FakeClock()
    return CircuitBreaker("characterize", failure_threshold=threshold,
                          recovery_s=recovery_s, clock=clock), clock


class TestStateMachine:
    def test_starts_closed(self):
        breaker, _ = _breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_invalid_threshold(self):
        with pytest.raises(ReproError) as exc:
            CircuitBreaker("x", failure_threshold=0)
        assert exc.value.code == "BREAKER_CONFIG_INVALID"

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = _breaker(threshold=3)
        for _ in range(2):
            with pytest.raises(ReproError):
                breaker.call(_boom)
        assert breaker.state is BreakerState.CLOSED
        with pytest.raises(ReproError):
            breaker.call(_boom)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_run(self):
        breaker, _ = _breaker(threshold=2)
        with pytest.raises(ReproError):
            breaker.call(_boom)
        breaker.call(lambda: "ok")
        with pytest.raises(ReproError):
            breaker.call(_boom)
        assert breaker.state is BreakerState.CLOSED

    def test_open_sheds_with_structured_error(self):
        breaker, _ = _breaker(threshold=1)
        with pytest.raises(ReproError):
            breaker.call(lambda: _boom(code="MICROBENCH_FAILED"))
        with pytest.raises(CircuitOpenError) as exc:
            breaker.call(lambda: "never runs")
        error = exc.value
        assert error.code == "BREAKER_OPEN"
        assert error.details["seam"] == "characterize"
        assert error.details["last_failure_code"] == "MICROBENCH_FAILED"
        assert error.details["retry_in_s"] > 0

    def test_half_open_after_recovery_then_closes_on_success(self):
        breaker, clock = _breaker(threshold=1, recovery_s=10.0)
        with pytest.raises(ReproError):
            breaker.call(_boom)
        assert breaker.state is BreakerState.OPEN
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        breaker.call(lambda: "probe ok")
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = _breaker(threshold=1, recovery_s=10.0)
        with pytest.raises(ReproError):
            breaker.call(_boom)
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        with pytest.raises(ReproError):
            breaker.call(_boom)
        assert breaker.state is BreakerState.OPEN
        clock.advance(5.0)
        assert breaker.state is BreakerState.OPEN  # window restarted

    def test_unstructured_exceptions_do_not_trip(self):
        breaker, _ = _breaker(threshold=1)

        def unstructured():
            raise ValueError("infrastructure bug")

        with pytest.raises(ValueError):
            breaker.call(unstructured)
        assert breaker.state is BreakerState.CLOSED

    def test_snapshot(self):
        breaker, _ = _breaker(threshold=1)
        with pytest.raises(ReproError):
            breaker.call(_boom)
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["consecutive_failures"] == 1
        assert snap["last_failure_code"] == "SEAM_FAULT"


class TestObsIntegration:
    def test_transitions_emit_counters_and_gauge(self):
        breaker, _ = _breaker(threshold=1)
        before = REGISTRY.counter(
            "resilience.breaker.characterize.open").value
        with pytest.raises(ReproError):
            breaker.call(_boom)
        after = REGISTRY.counter(
            "resilience.breaker.characterize.open").value
        assert after == before + 1
        assert REGISTRY.gauge(
            "resilience.breaker.characterize.state").value == 2

    def test_shed_counter(self):
        breaker, _ = _breaker(threshold=1)
        with pytest.raises(ReproError):
            breaker.call(_boom)
        before = REGISTRY.counter(
            "resilience.breaker.characterize.shed").value
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: None)
        assert REGISTRY.counter(
            "resilience.breaker.characterize.shed").value == before + 1


class TestRegistry:
    def test_get_creates_one_breaker_per_seam(self):
        registry = BreakerRegistry(failure_threshold=2)
        assert registry.get("a") is registry.get("a")
        assert registry.get("a") is not registry.get("b")

    def test_call_routes_through_the_seam_breaker(self):
        registry = BreakerRegistry(failure_threshold=1)
        with pytest.raises(ReproError):
            registry.call("profile", _boom)
        with pytest.raises(CircuitOpenError):
            registry.call("profile", lambda: "shed")
        # other seams are unaffected
        assert registry.call("characterize", lambda: "fine") == "fine"

    def test_snapshot_covers_every_seam(self):
        registry = BreakerRegistry(failure_threshold=1)
        registry.call("a", lambda: 1)
        with pytest.raises(ReproError):
            registry.call("b", _boom)
        snap = registry.snapshot()
        assert set(snap) == {"a", "b"}
        assert snap["a"]["state"] == "closed"
        assert snap["b"]["state"] == "open"
