"""The (fault seam × strict × retry budget) robustness matrix.

Every cell asserts the same contract: strict mode aborts with a
structured ``ReproError`` (a machine-readable SCREAMING_SNAKE code),
degraded mode answers with a deterministic conservative
``KEEP_CURRENT`` whose caveats carry the codes — and running the same
cell twice yields the identical answer.
"""

import re

import pytest

from repro.errors import MicrobenchmarkError, ReproError
from repro.microbench.suite import MicrobenchmarkSuite
from repro.model.decision import Confidence, RecommendedModel
from repro.model.framework import Framework
from repro.resilience.retry import RetryPolicy
from repro.robustness.faults import FaultKind, FaultPlan, FaultSpec
from repro.robustness.inject import inject_faults
from repro.soc.board import get_board

CODE_RE = re.compile(r"\b[A-Z][A-Z0-9]*(?:_[A-Z0-9]+)+\b")

STRICTS = (True, False)
RETRIES = (0, 2)


@pytest.fixture(scope="module")
def tx2_board():
    return get_board("tx2")


@pytest.fixture(scope="module")
def warm_suite(tx2_board):
    """A suite whose characterization is already in the memory cache,
    so injected faults hit only the downstream seams."""
    suite = MicrobenchmarkSuite()
    suite.characterize(tx2_board)
    return suite


def _coded(caveats):
    return [code for caveat in caveats for code in CODE_RE.findall(caveat)]


def _run_with_broken_characterize(shwfs_workload_tx2, tx2_board, strict,
                                  retries, monkeypatch):
    """Seam 1: characterization always dies with a structured error."""
    suite = MicrobenchmarkSuite()

    def broken(board):
        raise MicrobenchmarkError("sweep never converged",
                                  code="MICROBENCH_FAILED")

    monkeypatch.setattr(suite, "_characterize_once", broken)
    framework = Framework(suite=suite,
                          retry_policy=RetryPolicy.from_attempts(retries))
    return framework.tune(shwfs_workload_tx2, tx2_board, strict=strict)


def _run_with_fault(warm_suite, shwfs_workload_tx2, tx2_board, strict,
                    retries, kind):
    """Seams 2-3: a deterministic profiling/decision-input fault."""
    framework = Framework(suite=warm_suite,
                          retry_policy=RetryPolicy.from_attempts(retries))
    plan = FaultPlan(seed=0, faults=(FaultSpec(kind, probability=1.0),))
    with inject_faults(plan):
        return framework.tune(shwfs_workload_tx2, tx2_board, strict=strict)


class TestCharacterizeSeam:
    @pytest.mark.parametrize("strict", STRICTS)
    @pytest.mark.parametrize("retries", RETRIES)
    def test_matrix_cell(self, strict, retries, shwfs_workload_tx2,
                         tx2_board, monkeypatch):
        if strict:
            with pytest.raises(ReproError) as exc:
                _run_with_broken_characterize(
                    shwfs_workload_tx2, tx2_board, strict, retries,
                    monkeypatch)
            assert CODE_RE.fullmatch(exc.value.code)
            return
        report = _run_with_broken_characterize(
            shwfs_workload_tx2, tx2_board, strict, retries, monkeypatch)
        rec = report.recommendation
        assert rec.model is RecommendedModel.KEEP_CURRENT
        assert rec.confidence is Confidence.LOW
        codes = _coded(rec.caveats)
        expected = ("MICROBENCH_RETRIES_EXHAUSTED" if retries
                    else "MICROBENCH_FAILED")
        assert expected in codes

    @pytest.mark.parametrize("retries", RETRIES)
    def test_degraded_answer_is_deterministic(self, retries,
                                              shwfs_workload_tx2, tx2_board,
                                              monkeypatch):
        runs = [
            _run_with_broken_characterize(
                shwfs_workload_tx2, tx2_board, False, retries, monkeypatch)
            for _ in range(2)
        ]
        first, second = (r.recommendation for r in runs)
        assert first.model is second.model is RecommendedModel.KEEP_CURRENT
        assert first.caveats == second.caveats
        assert first.reason == second.reason


@pytest.mark.fault
@pytest.mark.parametrize("kind,expected_prefix", [
    (FaultKind.COUNTER_NAN, "PROFILE_"),
    (FaultKind.CACHE_MISREPORT, None),  # any structured code qualifies
])
@pytest.mark.parametrize("strict", STRICTS)
@pytest.mark.parametrize("retries", RETRIES)
class TestInjectedSeams:
    def test_matrix_cell(self, kind, expected_prefix, strict, retries,
                         warm_suite, shwfs_workload_tx2, tx2_board):
        def run():
            return _run_with_fault(warm_suite, shwfs_workload_tx2,
                                   tx2_board, strict, retries, kind)

        if strict:
            try:
                first = run()
            except ReproError as error:
                assert CODE_RE.fullmatch(error.code)
                if expected_prefix:
                    assert error.code.startswith(expected_prefix)
                # determinism: the second run fails identically
                with pytest.raises(ReproError) as exc:
                    run()
                assert exc.value.code == error.code
                return
            # the fault was absorbed as tolerable noise — the decision
            # must still be deterministic and fully confident
            second = run()
            assert first.recommendation.model is second.recommendation.model
            return
        first, second = run(), run()
        rec = first.recommendation
        if rec.degraded:
            assert rec.model is RecommendedModel.KEEP_CURRENT
            assert rec.confidence is Confidence.LOW
            codes = _coded(rec.caveats)
            assert codes, rec.caveats
            if expected_prefix:
                assert any(code.startswith(expected_prefix)
                           for code in codes)
        assert rec.model is second.recommendation.model
        assert rec.caveats == second.recommendation.caveats
