"""Single-flight dedup: in-process, cross-process locks, staleness."""

import threading
import time

from repro.resilience.singleflight import SingleFlight


class Compute:
    """A slow-ish computation counting its invocations (thread-safe)."""

    def __init__(self, value="result", delay_s=0.05):
        self.value = value
        self.delay_s = delay_s
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
        time.sleep(self.delay_s)
        return self.value


class TestInProcess:
    def test_single_caller_computes(self):
        sf = SingleFlight()
        compute = Compute()
        assert sf.do("key", compute) == "result"
        assert compute.calls == 1

    def test_concurrent_callers_with_reload_compute_once(self):
        sf = SingleFlight()
        compute = Compute()
        store = {}

        def compute_and_store():
            value = compute()
            store["key"] = value
            return value

        results = []

        def caller():
            results.append(sf.do("key", compute_and_store,
                                 reload=lambda: store.get("key")))

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == ["result"] * 4
        assert compute.calls == 1

    def test_follower_without_reload_recomputes(self):
        sf = SingleFlight()
        compute = Compute()
        results = []

        def caller():
            results.append(sf.do("key", compute))

        threads = [threading.Thread(target=caller) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # the window is deduped, but correctness never depends on it:
        # the follower recomputes because it cannot re-check a store
        assert results == ["result"] * 2
        assert compute.calls == 2

    def test_distinct_keys_do_not_serialize(self):
        sf = SingleFlight()
        a, b = Compute("a"), Compute("b")
        assert sf.do("ka", a) == "a"
        assert sf.do("kb", b) == "b"
        assert (a.calls, b.calls) == (1, 1)


class TestCrossProcess:
    def test_leader_creates_and_removes_lock_file(self, tmp_path):
        sf = SingleFlight(lock_dir=tmp_path)
        lock = tmp_path / "key.lock"

        def compute():
            assert lock.exists()
            return "value"

        assert sf.do("key", compute) == "value"
        assert not lock.exists()

    def test_foreign_lock_holds_follower_until_released(self, tmp_path):
        sf = SingleFlight(lock_dir=tmp_path, wait_s=5.0, poll_s=0.01)
        lock = tmp_path / "key.lock"
        lock.write_text("12345")  # another process leads
        store = {}

        def release_later():
            time.sleep(0.05)
            store["key"] = "from-leader"
            lock.unlink()

        releaser = threading.Thread(target=release_later)
        releaser.start()
        compute = Compute("recomputed", delay_s=0.0)
        result = sf.do("key", compute, reload=lambda: store.get("key"))
        releaser.join()
        assert result == "from-leader"
        assert compute.calls == 0

    def test_stale_lock_is_broken(self, tmp_path):
        import os

        sf = SingleFlight(lock_dir=tmp_path, wait_s=5.0, stale_s=0.5)
        lock = tmp_path / "key.lock"
        lock.write_text("dead-leader")
        old = time.time() - 60.0
        os.utime(lock, (old, old))
        compute = Compute("recovered", delay_s=0.0)
        assert sf.do("key", compute) == "recovered"
        assert compute.calls == 1
        assert not lock.exists()

    def test_wait_timeout_falls_back_to_compute(self, tmp_path):
        sf = SingleFlight(lock_dir=tmp_path, wait_s=0.05, poll_s=0.01,
                          stale_s=60.0)
        (tmp_path / "key.lock").write_text("slow-leader")
        compute = Compute("fallback", delay_s=0.0)
        assert sf.do("key", compute) == "fallback"
        assert compute.calls == 1

    def test_unwritable_lock_dir_still_computes(self, tmp_path):
        import os

        if os.geteuid() == 0:  # root ignores mode bits
            import pytest

            pytest.skip("permission bits do not bind as root")
        locked = tmp_path / "no-write"
        locked.mkdir()
        locked.chmod(0o500)
        try:
            sf = SingleFlight(lock_dir=locked)
            compute = Compute("still-works", delay_s=0.0)
            assert sf.do("key", compute) == "still-works"
            assert compute.calls == 1
        finally:
            locked.chmod(0o700)
