"""RetryPolicy: budgets, allowlists, deterministic backoff schedules."""

import random

import pytest

from repro.errors import DeadlineError, ReproError
from repro.resilience.deadline import Deadline, deadline_scope
from repro.resilience.retry import RetryPolicy


def _flaky(fail_times, code="TRANSIENT_FAULT"):
    """A callable failing the first ``fail_times`` invocations."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= fail_times:
            raise ReproError(f"attempt {calls['n']} failed", code=code)
        return calls["n"]

    fn.calls = calls
    return fn


class TestPolicyValidation:
    def test_defaults_are_single_attempt(self):
        assert RetryPolicy().max_attempts == 1

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -1.0},
        {"multiplier": 0.5},
        {"jitter": -0.1},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ReproError) as exc:
            RetryPolicy(**kwargs)
        assert exc.value.code == "RETRY_POLICY_INVALID"

    def test_from_attempts_maps_legacy_integer(self):
        assert RetryPolicy.from_attempts(0).max_attempts == 1
        assert RetryPolicy.from_attempts(2).max_attempts == 3
        assert RetryPolicy.from_attempts(-1).max_attempts == 1


class TestCall:
    def test_success_needs_no_budget(self):
        assert RetryPolicy().call(lambda: 42) == 42

    def test_retries_until_success(self):
        fn = _flaky(2)
        assert RetryPolicy(max_attempts=3).call(fn) == 3
        assert fn.calls["n"] == 3

    def test_exhaustion_reraises_last_error_unchanged(self):
        fn = _flaky(5)
        with pytest.raises(ReproError) as exc:
            RetryPolicy(max_attempts=3).call(fn)
        assert exc.value.code == "TRANSIENT_FAULT"
        assert "attempt 3" in exc.value.message
        assert fn.calls["n"] == 3

    def test_non_retryable_code_fails_fast(self):
        fn = _flaky(5, code="FATAL_FAULT")
        policy = RetryPolicy(max_attempts=3,
                             retryable_codes=("TRANSIENT_FAULT",))
        with pytest.raises(ReproError):
            policy.call(fn)
        assert fn.calls["n"] == 1

    def test_retryable_code_in_allowlist_retries(self):
        fn = _flaky(1)
        policy = RetryPolicy(max_attempts=2,
                             retryable_codes=("TRANSIENT_FAULT",))
        assert policy.call(fn) == 2

    def test_exceptions_filter_narrows_absorption(self):
        def fn():
            raise ValueError("not structured")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=3).call(fn)

    def test_on_attempt_failed_callback(self):
        seen = []
        fn = _flaky(2)
        RetryPolicy(max_attempts=3).call(
            fn, on_attempt_failed=lambda n, e: seen.append((n, e.code)))
        assert seen == [(1, "TRANSIENT_FAULT"), (2, "TRANSIENT_FAULT")]


class TestBackoff:
    def test_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1,
                             multiplier=2.0, max_delay_s=10.0)
        rng = random.Random(0)
        assert policy.delay_s(0, rng) == pytest.approx(0.1)
        assert policy.delay_s(1, rng) == pytest.approx(0.2)
        assert policy.delay_s(2, rng) == pytest.approx(0.4)

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0,
                             multiplier=10.0, max_delay_s=2.0)
        assert policy.delay_s(3, random.Random(0)) == pytest.approx(2.0)

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1,
                             jitter=0.5, seed=7)
        a = [policy.delay_s(i, random.Random(7)) for i in range(3)]
        b = [policy.delay_s(i, random.Random(7)) for i in range(3)]
        assert a == b
        assert all(0.1 * 2 ** i <= d <= 0.1 * 2 ** i * 1.5
                   for i, d in enumerate(a))

    def test_sleep_schedule_is_deterministic(self):
        def run():
            slept = []
            fn = _flaky(2)
            RetryPolicy(max_attempts=3, base_delay_s=0.05, jitter=0.5,
                        seed=3).call(fn, sleep=slept.append)
            return slept

        first, second = run(), run()
        assert first == second
        assert len(first) == 2

    def test_backoff_never_sleeps_past_deadline(self):
        slept = []
        fn = _flaky(1)
        with deadline_scope(Deadline(0.01)):
            RetryPolicy(max_attempts=2, base_delay_s=5.0).call(
                fn, sleep=slept.append)
        assert all(duration <= 0.01 for duration in slept)

    def test_expired_deadline_beats_retry_budget(self):
        clock_budget = Deadline(0.000001)
        import time as _time

        _time.sleep(0.001)
        fn = _flaky(5)
        with deadline_scope(clock_budget):
            with pytest.raises(DeadlineError):
                RetryPolicy(max_attempts=5).call(fn)
        # the attempt checkpoint tripped before burning the full budget
        assert fn.calls["n"] < 5
