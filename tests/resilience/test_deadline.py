"""Cooperative deadlines: budget accounting, ambient scope, checkpoints."""

import pytest

from repro.errors import DeadlineError, ReproError
from repro.resilience.deadline import (
    Deadline,
    active_deadline,
    checkpoint,
    deadline_scope,
    remaining_s,
    sleep_cooperatively,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining_s() == 2.0
        clock.advance(0.5)
        assert deadline.elapsed_s() == 0.5
        assert deadline.remaining_s() == 1.5
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.expired()

    def test_invalid_budget(self):
        with pytest.raises(ReproError) as exc:
            Deadline(0.0)
        assert exc.value.code == "DEADLINE_INVALID"
        with pytest.raises(ReproError):
            Deadline(-1.0)

    def test_check_records_completed_stages(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("stage-a")
        deadline.check("stage-b")
        assert deadline.completed == ["stage-a", "stage-b"]

    def test_check_raises_structured_error_with_progress(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("stage-a")
        clock.advance(2.0)
        with pytest.raises(DeadlineError) as exc:
            deadline.check("stage-b", items_done=3)
        error = exc.value
        assert error.code == "DEADLINE_EXCEEDED"
        assert error.details["stage"] == "stage-b"
        assert error.details["budget_s"] == 1.0
        assert error.details["completed"] == ["stage-a"]
        assert error.details["items_done"] == 3

    def test_deadline_error_is_repro_error(self):
        assert issubclass(DeadlineError, ReproError)


class TestAmbientScope:
    def test_no_ambient_deadline_by_default(self):
        assert active_deadline() is None
        assert remaining_s() is None
        checkpoint("free")  # must be a no-op, not a crash

    def test_scope_sets_and_restores(self):
        deadline = Deadline(5.0)
        with deadline_scope(deadline):
            assert active_deadline() is deadline
            assert remaining_s() is not None
        assert active_deadline() is None

    def test_checkpoint_raises_inside_expired_scope(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineError):
                checkpoint("late-stage")

    def test_nested_scope_shadows_and_restores(self):
        outer = Deadline(10.0)
        inner = Deadline(1.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer

    def test_none_scope_clears(self):
        with deadline_scope(Deadline(5.0)):
            with deadline_scope(None):
                assert active_deadline() is None


class TestSleepCooperatively:
    def test_plain_sleep_without_deadline(self):
        sleep_cooperatively(0.0, "noop")  # returns immediately

    def test_sleep_raises_when_budget_gone(self):
        with deadline_scope(Deadline(0.001)):
            with pytest.raises(DeadlineError):
                sleep_cooperatively(0.5, "stall", tick_s=0.001)
