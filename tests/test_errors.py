"""Exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.AddressError,
    errors.AllocationError,
    errors.SimulationError,
    errors.CoherenceError,
    errors.RaceConditionError,
    errors.ProfilingError,
    errors.ModelError,
    errors.WorkloadError,
    errors.MicrobenchmarkError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_coherence_error_is_simulation_error():
    assert issubclass(errors.CoherenceError, errors.SimulationError)


def test_race_condition_is_simulation_error():
    assert issubclass(errors.RaceConditionError, errors.SimulationError)


def test_catching_base_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.MicrobenchmarkError("sweep too short")
