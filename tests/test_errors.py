"""Exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.AddressError,
    errors.AllocationError,
    errors.SimulationError,
    errors.CoherenceError,
    errors.RaceConditionError,
    errors.ProfilingError,
    errors.ModelError,
    errors.WorkloadError,
    errors.MicrobenchmarkError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_coherence_error_is_simulation_error():
    assert issubclass(errors.CoherenceError, errors.SimulationError)


def test_race_condition_is_simulation_error():
    assert issubclass(errors.RaceConditionError, errors.SimulationError)


def test_catching_base_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.MicrobenchmarkError("sweep too short")


def test_invariant_error_is_simulation_error():
    assert issubclass(errors.InvariantError, errors.SimulationError)


class TestStructuredErrors:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_every_class_has_a_default_code(self, error_type):
        error = error_type("something broke")
        assert error.code == error_type.default_code
        assert error.code.isupper()
        assert error.details == {}

    def test_explicit_code_overrides_default(self):
        error = errors.ModelError("bad usage", code="GUARD_CACHE_USAGE")
        assert error.code == "GUARD_CACHE_USAGE"

    def test_details_are_copied(self):
        payload = {"counter": "cpu_time_s"}
        error = errors.ProfilingError("bad", details=payload)
        payload["counter"] = "mutated"
        assert error.details == {"counter": "cpu_time_s"}

    def test_message_preserved(self):
        error = errors.ReproError("plain message")
        assert error.message == "plain message"
        assert str(error) == "plain message"

    def test_to_dict_shape(self):
        error = errors.CoherenceError(
            "stale data", code="GUARD_DIRTY_HANDOFF",
            details={"phase": "consume"},
        )
        assert error.to_dict() == {
            "type": "CoherenceError",
            "code": "GUARD_DIRTY_HANDOFF",
            "message": "stale data",
            "details": {"phase": "consume"},
        }

    def test_default_codes_are_distinct_where_it_matters(self):
        codes = {e.default_code for e in ALL_ERRORS}
        assert len(codes) == len(ALL_ERRORS)
