"""Public-API contract: the names a downstream user may rely on.

Renaming or dropping anything here is a breaking change and must be
deliberate.
"""

import pytest

import repro


TOP_LEVEL_API = [
    # framework
    "Framework", "TuningReport", "Recommendation", "decide",
    "DeviceCharacterization",
    # workloads
    "Workload", "BufferSpec", "CpuTask", "GpuKernel", "OpMix",
    # execution
    "get_model", "ExecutionReport", "SoC",
    # boards
    "BoardConfig", "available_boards", "get_board",
    "jetson_nano", "jetson_tx2", "jetson_xavier",
    # micro-benchmarks
    "FirstMicroBenchmark", "SecondMicroBenchmark", "ThirdMicroBenchmark",
    "MicrobenchmarkSuite",
    # profiling
    "AppProfile", "Profiler",
    # streams
    "AccessStream",
]


@pytest.mark.parametrize("name", TOP_LEVEL_API)
def test_top_level_name_exported(name):
    assert hasattr(repro, name), name
    assert name in repro.__all__


def test_version_string():
    major, minor, patch = repro.__version__.split(".")
    assert int(major) >= 1


def test_subpackage_apis():
    from repro.analysis import run_reproduction_checks, summarize  # noqa: F401
    from repro.comm import TilingPlan, TilingPlan2D  # noqa: F401
    from repro.kernels import producer_consumer, ping_pong  # noqa: F401
    from repro.model import zc_bandwidth_sweep  # noqa: F401
    from repro.profiling import RecordedTrace, workload_from_trace  # noqa: F401
    from repro.soc.dvfs import apply_operating_point  # noqa: F401


def test_apps_importable():
    from repro.apps.orbslam import OrbPipeline, build_orbslam_workload  # noqa: F401
    from repro.apps.shwfs import ShwfsPipeline, build_shwfs_workload  # noqa: F401


def test_cli_entry_point():
    from repro.cli import main  # noqa: F401

    assert callable(main)
