"""Potential-speedup estimators (eqns 3-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.speedup import sc_to_zc_speedup, zc_to_sc_speedup
from repro.units import us


class TestEqn3:
    def test_formula_value(self):
        """Hand-computed: SC=300us, copy=60us, CPU=120us, GPU=120us.
        ZC estimate = (300-60)/(1+1) = 120us -> speedup 2.5x."""
        est = sc_to_zc_speedup(us(300), us(60), us(120), us(120),
                               max_speedup=10.0)
        assert est.raw == pytest.approx(2.5)
        assert est.capped == pytest.approx(2.5)
        assert est.percent == pytest.approx(150.0)

    def test_cap_applies(self):
        est = sc_to_zc_speedup(us(300), us(60), us(120), us(120),
                               max_speedup=1.5)
        assert est.capped == pytest.approx(1.5)
        assert est.raw == pytest.approx(2.5)
        assert est.cap == 1.5

    def test_no_copy_no_overlap_means_no_gain(self):
        est = sc_to_zc_speedup(us(300), 0.0, 0.0, us(300), max_speedup=10.0)
        assert est.raw == pytest.approx(1.0)

    def test_more_copy_more_gain(self):
        small = sc_to_zc_speedup(us(300), us(10), us(100), us(100), 10.0)
        large = sc_to_zc_speedup(us(300), us(100), us(100), us(100), 10.0)
        assert large.raw > small.raw

    def test_balanced_tasks_double_overlap_gain(self):
        est = sc_to_zc_speedup(us(200), 0.0, us(100), us(100), 10.0)
        assert est.raw == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            sc_to_zc_speedup(0.0, 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ModelError):
            sc_to_zc_speedup(us(100), us(100), us(10), us(10), 1.0)  # copy==runtime
        with pytest.raises(ModelError):
            sc_to_zc_speedup(us(100), us(10), us(10), 0.0, 1.0)
        with pytest.raises(ModelError):
            sc_to_zc_speedup(us(100), us(10), us(10), us(10), 0.0)

    @given(
        runtime=st.floats(1e-5, 1e-1),
        copy_fraction=st.floats(0.0, 0.9),
        ratio=st.floats(0.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_speedup_at_least_one(self, runtime, copy_fraction, ratio):
        """Removing copies and overlapping can never predict a slowdown."""
        est = sc_to_zc_speedup(
            runtime, runtime * copy_fraction, ratio * 1e-4, 1e-4,
            max_speedup=100.0,
        )
        assert est.raw >= 1.0 - 1e-9


class TestEqn4:
    def test_serialization_penalty(self):
        """ZC=100us overlapped with CPU=GPU: the SC estimate serializes
        (x2) and adds the copy."""
        est = zc_to_sc_speedup(us(100), us(20), us(100), us(100),
                               max_speedup=1.0)
        assert est.raw == pytest.approx(100 / 220, rel=1e-3)

    def test_cache_cap_recovers_kernel_time(self):
        """With a large ZC->SC cache gain (e.g. TX2's ~70x) the switch
        is predicted beneficial despite serialization."""
        est = zc_to_sc_speedup(us(800), us(20), us(50), us(800),
                               max_speedup=70.0)
        assert est.capped > 1.0

    def test_capped_never_exceeds_cap(self):
        est = zc_to_sc_speedup(us(800), us(20), us(50), us(800),
                               max_speedup=70.0)
        assert est.capped <= 70.0

    def test_direction_label(self):
        est = zc_to_sc_speedup(us(100), us(10), us(10), us(10), 2.0)
        assert est.direction == "ZC->SC"

    def test_validation(self):
        with pytest.raises(ModelError):
            zc_to_sc_speedup(0.0, 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ModelError):
            zc_to_sc_speedup(us(100), -1.0, us(10), us(10), 1.0)
        with pytest.raises(ModelError):
            zc_to_sc_speedup(us(100), us(10), us(10), us(10), 0.0)

    @given(
        zc_runtime=st.floats(1e-5, 1e-1),
        copy=st.floats(0.0, 1e-2),
        cpu=st.floats(0.0, 1e-2),
        gpu=st.floats(1e-6, 1e-2),
        cap=st.floats(1.0, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_capped_bounded(self, zc_runtime, copy, cpu, gpu, cap):
        est = zc_to_sc_speedup(zc_runtime, copy, cpu, gpu, cap)
        assert est.capped <= cap + 1e-9
        assert est.capped >= est.raw - 1e-9
