"""Threshold and zone extraction from MB2-style sweeps."""

import pytest

from repro.errors import MicrobenchmarkError
from repro.model.thresholds import (
    SweepPoint,
    ThresholdAnalysis,
    analyze_sweep,
)
from repro.units import gbps, us


def synthetic_sweep(zc_ceiling_gbps=32.0, peak_gbps=214.0, points=24):
    """A sweep whose ZC throughput saturates at a known ceiling.

    Demand grows linearly with the fraction; SC always satisfies it,
    ZC clips at the ceiling and its time stretches correspondingly.
    """
    sweep = []
    for i in range(1, points + 1):
        fraction = i / points * 0.5
        demand = fraction * 2.0 * peak_gbps  # reaches peak at f=0.25
        sc_tp = min(demand, peak_gbps)
        zc_tp = min(demand, zc_ceiling_gbps)
        sc_time = us(100) * demand / sc_tp
        zc_time = us(100) * demand / zc_tp
        sweep.append(
            SweepPoint(
                fraction=fraction,
                zc_throughput=gbps(zc_tp),
                sc_throughput=gbps(sc_tp),
                zc_time_s=zc_time,
                sc_time_s=sc_time,
            )
        )
    return sweep


class TestSweepPoint:
    def test_comparable_within_tolerance(self):
        point = SweepPoint(0.1, gbps(30.0), gbps(31.0), us(10), us(10))
        assert point.throughput_comparable

    def test_not_comparable_beyond_tolerance(self):
        point = SweepPoint(0.1, gbps(10.0), gbps(31.0), us(30), us(10))
        assert not point.throughput_comparable

    def test_runtime_ratio(self):
        point = SweepPoint(0.1, gbps(1), gbps(1), us(30), us(10))
        assert point.runtime_ratio == pytest.approx(3.0)


class TestAnalyzeSweep:
    def test_threshold_at_zc_ceiling(self):
        sweep = synthetic_sweep(zc_ceiling_gbps=32.0, peak_gbps=214.0)
        analysis = analyze_sweep(sweep, peak_throughput=gbps(214.0))
        # The last comparable point sits where demand ~ the ZC ceiling:
        # usage ~ 32/214 ~ 15 %.
        assert analysis.threshold_pct == pytest.approx(15.0, abs=5.0)

    def test_lower_ceiling_lower_threshold(self):
        low = analyze_sweep(synthetic_sweep(zc_ceiling_gbps=4.0),
                            peak_throughput=gbps(214.0))
        high = analyze_sweep(synthetic_sweep(zc_ceiling_gbps=64.0),
                             peak_throughput=gbps(214.0))
        assert low.threshold_pct < high.threshold_pct

    def test_zone2_detected_when_requested(self):
        sweep = synthetic_sweep()
        analysis = analyze_sweep(sweep, peak_throughput=gbps(214.0),
                                 detect_zone2=True)
        assert analysis.zone2_pct is not None
        assert analysis.zone2_pct > analysis.threshold_pct

    def test_zone2_absent_when_not_requested(self):
        analysis = analyze_sweep(synthetic_sweep(),
                                 peak_throughput=gbps(214.0))
        assert analysis.zone2_pct is None

    def test_threshold_capped_at_100(self):
        # ZC == SC everywhere: the threshold saturates.
        sweep = [
            SweepPoint(f, gbps(10 * f), gbps(10 * f), us(10), us(10))
            for f in (0.1, 0.2, 0.4)
        ]
        analysis = analyze_sweep(sweep, peak_throughput=gbps(1.0))
        assert analysis.threshold_pct == 100.0

    def test_validation(self):
        sweep = synthetic_sweep()
        with pytest.raises(MicrobenchmarkError):
            analyze_sweep(sweep[:1], peak_throughput=gbps(1.0))
        with pytest.raises(MicrobenchmarkError):
            analyze_sweep(sweep, peak_throughput=0.0)
        with pytest.raises(MicrobenchmarkError):
            analyze_sweep(list(reversed(sweep)), peak_throughput=gbps(1.0))


class TestZones:
    @pytest.fixture
    def analysis(self):
        return analyze_sweep(synthetic_sweep(), peak_throughput=gbps(214.0),
                             detect_zone2=True)

    def test_zone_classification(self, analysis):
        assert analysis.zone_of(analysis.threshold_pct / 2) == 1
        mid = (analysis.threshold_pct + analysis.zone2_pct) / 2
        assert analysis.zone_of(mid) == 2
        assert analysis.zone_of(analysis.zone2_pct + 10) == 3

    def test_zones_collapse_without_zone2(self):
        analysis = analyze_sweep(synthetic_sweep(),
                                 peak_throughput=gbps(214.0))
        beyond = analysis.threshold_pct + 1.0
        assert analysis.zone_of(beyond) == 3

    def test_negative_usage_rejected(self, analysis):
        with pytest.raises(MicrobenchmarkError):
            analysis.zone_of(-1.0)
