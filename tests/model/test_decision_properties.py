"""Property-based tests of the decision flow (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.decision import RecommendedModel, Zone, decide
from tests.model.test_decision import make_device, make_profile


@given(
    cpu_usage=st.floats(0.0, 60.0),
    gpu_usage=st.floats(0.0, 95.0),
    current=st.sampled_from(["SC", "UM", "ZC"]),
    io_coherent=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_every_profile_gets_exactly_one_recommendation(
    cpu_usage, gpu_usage, current, io_coherent
):
    device = make_device(io_coherent=io_coherent,
                         gpu_zone2=40.0 if io_coherent else None)
    rec = decide(make_profile(cpu_usage, gpu_usage, model=current), device)
    assert rec.model in RecommendedModel
    assert rec.zone in Zone
    assert rec.reason


@given(
    cpu_usage=st.floats(0.0, 60.0),
    gpu_usage=st.floats(0.0, 95.0),
    current=st.sampled_from(["SC", "UM", "ZC"]),
)
@settings(max_examples=100, deadline=None)
def test_bottlenecked_zone_never_gets_zero_copy(cpu_usage, gpu_usage, current):
    device = make_device()
    rec = decide(make_profile(cpu_usage, gpu_usage, model=current), device)
    if rec.zone is Zone.BOTTLENECKED:
        assert rec.model not in (RecommendedModel.ZERO_COPY,
                                 RecommendedModel.ZERO_COPY_CONDITIONAL)


@given(
    cpu_usage=st.floats(0.0, 60.0),
    gpu_usage=st.floats(0.0, 95.0),
)
@settings(max_examples=100, deadline=None)
def test_no_change_iff_current_model_matches_advice(cpu_usage, gpu_usage):
    """If the SC profile maps to NO_CHANGE, the same profile presented
    as ZC must map to a copy-model switch or vice versa — the flow must
    never tell *both* sides to stay unless it is truly indifferent."""
    device = make_device()
    rec_sc = decide(make_profile(cpu_usage, gpu_usage, model="SC"), device)
    rec_zc = decide(make_profile(cpu_usage, gpu_usage, model="ZC"), device)
    both_stay = (rec_sc.model is RecommendedModel.NO_CHANGE
                 and rec_zc.model is RecommendedModel.NO_CHANGE)
    # Both staying is only consistent in the conditional zone (where the
    # flow tolerates either model).
    if both_stay:
        assert rec_sc.zone is Zone.CONDITIONAL


@given(
    cpu_usage=st.floats(0.0, 60.0),
    gpu_usage=st.floats(0.0, 95.0),
)
@settings(max_examples=100, deadline=None)
def test_estimates_only_accompany_switches(cpu_usage, gpu_usage):
    device = make_device(io_coherent=True, gpu_zone2=40.0)
    for current in ("SC", "ZC"):
        rec = decide(make_profile(cpu_usage, gpu_usage, model=current),
                     device)
        if rec.estimate is not None:
            assert rec.model is not RecommendedModel.NO_CHANGE
            assert rec.estimate.capped <= rec.estimate.cap + 1e-9


@given(gpu_usage=st.floats(0.0, 95.0))
@settings(max_examples=60, deadline=None)
def test_zone_monotone_in_gpu_usage(gpu_usage):
    device = make_device(io_coherent=True, gpu_threshold=10.0, gpu_zone2=50.0)
    rec_low = decide(make_profile(0.0, 0.0), device)
    rec = decide(make_profile(0.0, gpu_usage), device)
    assert rec.zone >= rec_low.zone
