"""What-if sensitivity sweeps."""

import pytest

from repro.apps.orbslam import OrbPipeline
from repro.errors import ModelError
from repro.model.whatif import (
    DEFAULT_FACTORS,
    scale_zc_path,
    zc_bandwidth_sweep,
)
from repro.soc.board import get_board


class TestScaleZcPath:
    def test_scales_both_paths(self):
        board = get_board("tx2")
        scaled = scale_zc_path(board, 4.0)
        assert scaled.zero_copy.gpu_zc_bandwidth == \
            pytest.approx(4 * board.zero_copy.gpu_zc_bandwidth)
        assert scaled.zero_copy.cpu_zc_bandwidth == \
            pytest.approx(4 * board.zero_copy.cpu_zc_bandwidth)
        assert scaled.zero_copy.cpu_uncached_latency_s == \
            pytest.approx(board.zero_copy.cpu_uncached_latency_s / 4)

    def test_original_untouched(self):
        board = get_board("tx2")
        scale_zc_path(board, 2.0)
        assert get_board("tx2").zero_copy.gpu_zc_bandwidth == \
            board.zero_copy.gpu_zc_bandwidth

    def test_name_annotated(self):
        assert scale_zc_path(get_board("tx2"), 2.0).name == "tx2-zc2x"

    def test_invalid_factor(self):
        with pytest.raises(ModelError):
            scale_zc_path(get_board("tx2"), 0.0)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        workload = OrbPipeline().workload(iterations=50, board_name="tx2")
        return zc_bandwidth_sweep(workload, get_board("tx2"),
                                  factors=(1.0, 8.0, 32.0))

    def test_zc_improves_monotonically(self, sweep):
        times = [p.zc_time_s for p in sweep.points]
        assert times == sorted(times, reverse=True)

    def test_sc_baseline_constant(self, sweep):
        baselines = {p.sc_time_s for p in sweep.points}
        assert len(baselines) == 1

    def test_crossover_found_for_orb_on_tx2(self, sweep):
        """The cache-dependent ORB app needs a much faster ZC path —
        a crossover exists above 1x (which is the paper's point: the
        TX2's path is far too slow, the Xavier's is adequate)."""
        assert sweep.points[0].winner == "SC"
        assert sweep.crossover_factor is not None
        assert sweep.crossover_factor > 1.0

    def test_factors_sorted_and_deduped(self):
        workload = OrbPipeline().workload(iterations=10, board_name="tx2")
        result = zc_bandwidth_sweep(workload, get_board("tx2"),
                                    factors=(4.0, 1.0, 4.0))
        assert [p.factor for p in result.points] == [1.0, 4.0]

    def test_empty_factors_rejected(self):
        workload = OrbPipeline().workload(iterations=10)
        with pytest.raises(ModelError):
            zc_bandwidth_sweep(workload, get_board("tx2"), factors=())


def _pinned_workload():
    """The MB3 shape: all-shared, cache-independent — the workload
    class the closed-form sweep evaluator covers."""
    from repro.microbench.third import ThirdMicroBenchmark
    from repro.soc.soc import SoC

    board = get_board("tx2")
    return ThirdMicroBenchmark(num_elements=2 ** 20).build_workload(
        SoC(board)
    ), board


class TestVectorizedSweep:
    def test_closed_form_matches_executor(self):
        workload, board = _pinned_workload()
        fast = zc_bandwidth_sweep(workload, board, vectorized=True)
        slow = zc_bandwidth_sweep(workload, board, vectorized=False)
        assert [p.factor for p in fast.points] == \
            [p.factor for p in slow.points]
        for a, b in zip(fast.points, slow.points):
            assert a.sc_time_s == b.sc_time_s
            assert a.zc_time_s == pytest.approx(b.zc_time_s, rel=1e-12)
            assert a.winner == b.winner
        assert fast.crossover_factor == slow.crossover_factor

    def test_unsupported_workload_falls_back(self):
        """Cached apps cannot use the closed form; both flags must run
        the identical per-factor executor sweep."""
        workload = OrbPipeline().workload(iterations=10, board_name="tx2")
        fast = zc_bandwidth_sweep(workload, get_board("tx2"),
                                  factors=(1.0, 4.0), vectorized=True)
        slow = zc_bandwidth_sweep(workload, get_board("tx2"),
                                  factors=(1.0, 4.0), vectorized=False)
        assert [p.zc_time_s for p in fast.points] == \
            [p.zc_time_s for p in slow.points]

    def test_injection_falls_back(self):
        from repro.robustness.faults import FaultPlan
        from repro.robustness.inject import inject_faults

        workload, board = _pinned_workload()
        clean = zc_bandwidth_sweep(workload, board, vectorized=False)
        with inject_faults(FaultPlan(seed=0)):
            injected = zc_bandwidth_sweep(workload, board, vectorized=True)
        assert [p.zc_time_s for p in injected.points] == \
            [p.zc_time_s for p in clean.points]


class TestEarlyExit:
    def test_stops_at_first_zc_win(self):
        workload, board = _pinned_workload()
        full = zc_bandwidth_sweep(workload, board)
        truncated = zc_bandwidth_sweep(workload, board, early_exit=True)
        assert full.crossover_factor is not None
        assert truncated.points[-1].factor == full.crossover_factor
        assert len(truncated.points) < len(full.points)

    def test_decisions_match_full_sweep(self):
        workload, board = _pinned_workload()
        full = zc_bandwidth_sweep(workload, board)
        truncated = zc_bandwidth_sweep(workload, board, early_exit=True)
        assert truncated.crossover_factor == full.crossover_factor
        assert truncated.zc_always_wins == full.zc_always_wins

    def test_no_win_evaluates_everything(self):
        workload = OrbPipeline().workload(iterations=10, board_name="tx2")
        result = zc_bandwidth_sweep(workload, get_board("tx2"),
                                    factors=(0.25, 0.5), early_exit=True)
        assert len(result.points) == 2
        assert result.crossover_factor is None

    def test_scalar_path_also_exits_early(self):
        workload, board = _pinned_workload()
        full = zc_bandwidth_sweep(workload, board, vectorized=False)
        truncated = zc_bandwidth_sweep(workload, board, vectorized=False,
                                       early_exit=True)
        assert truncated.crossover_factor == full.crossover_factor
        assert len(truncated.points) < len(full.points)
