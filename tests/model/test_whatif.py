"""What-if sensitivity sweeps."""

import pytest

from repro.apps.orbslam import OrbPipeline
from repro.errors import ModelError
from repro.model.whatif import (
    DEFAULT_FACTORS,
    scale_zc_path,
    zc_bandwidth_sweep,
)
from repro.soc.board import get_board


class TestScaleZcPath:
    def test_scales_both_paths(self):
        board = get_board("tx2")
        scaled = scale_zc_path(board, 4.0)
        assert scaled.zero_copy.gpu_zc_bandwidth == \
            pytest.approx(4 * board.zero_copy.gpu_zc_bandwidth)
        assert scaled.zero_copy.cpu_zc_bandwidth == \
            pytest.approx(4 * board.zero_copy.cpu_zc_bandwidth)
        assert scaled.zero_copy.cpu_uncached_latency_s == \
            pytest.approx(board.zero_copy.cpu_uncached_latency_s / 4)

    def test_original_untouched(self):
        board = get_board("tx2")
        scale_zc_path(board, 2.0)
        assert get_board("tx2").zero_copy.gpu_zc_bandwidth == \
            board.zero_copy.gpu_zc_bandwidth

    def test_name_annotated(self):
        assert scale_zc_path(get_board("tx2"), 2.0).name == "tx2-zc2x"

    def test_invalid_factor(self):
        with pytest.raises(ModelError):
            scale_zc_path(get_board("tx2"), 0.0)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        workload = OrbPipeline().workload(iterations=50, board_name="tx2")
        return zc_bandwidth_sweep(workload, get_board("tx2"),
                                  factors=(1.0, 8.0, 32.0))

    def test_zc_improves_monotonically(self, sweep):
        times = [p.zc_time_s for p in sweep.points]
        assert times == sorted(times, reverse=True)

    def test_sc_baseline_constant(self, sweep):
        baselines = {p.sc_time_s for p in sweep.points}
        assert len(baselines) == 1

    def test_crossover_found_for_orb_on_tx2(self, sweep):
        """The cache-dependent ORB app needs a much faster ZC path —
        a crossover exists above 1x (which is the paper's point: the
        TX2's path is far too slow, the Xavier's is adequate)."""
        assert sweep.points[0].winner == "SC"
        assert sweep.crossover_factor is not None
        assert sweep.crossover_factor > 1.0

    def test_factors_sorted_and_deduped(self):
        workload = OrbPipeline().workload(iterations=10, board_name="tx2")
        result = zc_bandwidth_sweep(workload, get_board("tx2"),
                                    factors=(4.0, 1.0, 4.0))
        assert [p.factor for p in result.points] == [1.0, 4.0]

    def test_empty_factors_rejected(self):
        workload = OrbPipeline().workload(iterations=10)
        with pytest.raises(ModelError):
            zc_bandwidth_sweep(workload, get_board("tx2"), factors=())
