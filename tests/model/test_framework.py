"""Framework façade: the end-to-end Fig-2 flow."""

import pytest

from repro.errors import ModelError
from repro.kernels.ops import OpMix
from repro.kernels.patterns import LinearPattern
from repro.kernels.task import CpuTask, GpuKernel
from repro.kernels.workload import BufferSpec, Direction, Workload
from repro.model.framework import Framework
from repro.soc.board import get_board


def streaming_workload():
    frame = BufferSpec("frame", 64 * 1024, shared=True,
                       direction=Direction.TO_GPU)
    return Workload(
        name="stream",
        buffers=(frame,),
        cpu_task=CpuTask(
            name="produce",
            ops=OpMix.per_element({"mul": 1.0}, 64 * 1024),
            pattern=LinearPattern(buffer="frame", read_write_pairs=True),
        ),
        gpu_kernel=GpuKernel(
            name="consume",
            ops=OpMix.per_element({"fma": 2.0}, 64 * 1024),
            pattern=LinearPattern(buffer="frame", read_write_pairs=False),
        ),
        iterations=10,
        overlappable=True,
    )


@pytest.fixture(scope="module")
def framework(characterization_suite):
    return Framework(suite=characterization_suite)


class TestTune:
    def test_full_flow(self, framework):
        report = framework.tune(streaming_workload(), get_board("xavier"))
        assert report.board_name == "xavier"
        assert report.current_model == "SC"
        assert report.profile.model == "SC"
        assert 0 <= report.cpu_cache_usage_pct <= 100
        assert 0 <= report.gpu_cache_usage_pct <= 100
        assert report.recommendation is not None
        assert report.kernel_time_s > 0

    def test_streaming_app_gets_zc_on_xavier(self, framework):
        report = framework.tune(streaming_workload(), get_board("xavier"))
        assert "ZC" in report.recommendation.model.value

    def test_current_model_validated(self, framework):
        with pytest.raises(ModelError):
            framework.tune(streaming_workload(), get_board("tx2"),
                           current_model="PCIE")

    def test_characterization_reused(self, framework):
        a = framework.characterize(get_board("tx2"))
        b = framework.characterize(get_board("tx2"))
        assert a is b

    def test_compare_models_runs_all_three(self, framework):
        results = framework.compare_models(streaming_workload(),
                                           get_board("tx2"))
        assert set(results) == {"SC", "UM", "ZC"}
        for model, report in results.items():
            assert report.model == model
            assert report.total_time_s > 0
