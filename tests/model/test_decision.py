"""The Fig-2 decision flow."""

import pytest

from repro.errors import ModelError
from repro.model.decision import Recommendation, RecommendedModel, Zone, decide
from repro.model.device import DeviceCharacterization
from repro.model.thresholds import SweepPoint, ThresholdAnalysis
from repro.profiling.counters import AppProfile
from repro.units import gbps, us


def make_device(
    io_coherent=False,
    gpu_threshold=5.0,
    gpu_zone2=None,
    cpu_threshold=15.0,
    board="tx2",
):
    points = [
        SweepPoint(0.01, gbps(1), gbps(1), us(10), us(10)),
        SweepPoint(0.5, gbps(1), gbps(30), us(300), us(10)),
    ]
    gpu = ThresholdAnalysis(
        threshold_pct=gpu_threshold, threshold_fraction=0.01,
        zone2_pct=gpu_zone2, zone2_fraction=0.2 if gpu_zone2 else None,
        peak_throughput=gbps(100.0), points=points,
    )
    cpu = ThresholdAnalysis(
        threshold_pct=cpu_threshold, threshold_fraction=0.01,
        zone2_pct=None, zone2_fraction=None,
        peak_throughput=gbps(24.0), points=points,
    )
    return DeviceCharacterization(
        board_name=board,
        io_coherent=io_coherent,
        gpu_cache_throughput={"SC": gbps(100.0), "UM": gbps(105.0),
                              "ZC": gbps(1.3)},
        cpu_cache_throughput={"SC": gbps(24.0), "UM": gbps(24.0),
                              "ZC": gbps(3.2)},
        gpu_thresholds=gpu,
        cpu_thresholds=cpu,
        sc_zc_max_speedup=2.0,
        zc_sc_max_speedup=70.0,
    )


def make_profile(cpu_usage_pct=0.0, gpu_usage_pct=0.0, model="SC",
                 board="tx2"):
    """Build a profile whose eqn-1/2 metrics equal the requested usage
    percentages against ``make_device``'s 100 GB/s GPU peak."""
    # cpu usage: l1_miss * (1 - llc_miss) * 100
    l1_miss = cpu_usage_pct / 100.0
    # gpu usage: t_n * t_size / runtime / peak * 100 with hit=0
    runtime = us(100)
    demand = gpu_usage_pct / 100.0 * gbps(100.0)
    transactions = int(demand * runtime / 64.0)
    return AppProfile(
        workload_name="app", board_name=board, model=model,
        cpu_l1_miss_rate=l1_miss, cpu_llc_miss_rate=0.0, cpu_time_s=us(50),
        gpu_l1_hit_rate=0.0, gpu_transactions=transactions,
        gpu_transaction_size=64.0, kernel_runtime_s=runtime,
        copy_time_s=us(10), total_runtime_s=us(200),
    )


class TestLowUsagePaths:
    def test_both_low_recommends_zc_for_energy(self):
        rec = decide(make_profile(1.0, 1.0), make_device())
        assert rec.model is RecommendedModel.ZERO_COPY
        assert rec.energy_motivated
        assert rec.zone is Zone.BELOW_THRESHOLD
        assert rec.estimate is not None

    def test_already_zc_stays(self):
        rec = decide(make_profile(1.0, 1.0, model="ZC"), make_device())
        assert rec.model is RecommendedModel.NO_CHANGE


class TestCpuDependentPaths:
    def test_no_io_coherence_recommends_copy_models(self):
        rec = decide(make_profile(cpu_usage_pct=20.0), make_device())
        assert rec.model is RecommendedModel.NO_CHANGE  # already on SC
        rec_zc = decide(make_profile(cpu_usage_pct=20.0, model="ZC"),
                        make_device())
        assert rec_zc.model is RecommendedModel.STANDARD_COPY_OR_UM

    def test_io_coherence_allows_zc(self):
        device = make_device(io_coherent=True, cpu_threshold=15.0)
        rec = decide(make_profile(cpu_usage_pct=20.0), device)
        assert rec.model is RecommendedModel.ZERO_COPY


class TestGpuDependentPaths:
    def test_bottlenecked_zone_keeps_sc(self):
        rec = decide(make_profile(gpu_usage_pct=40.0), make_device())
        assert rec.zone is Zone.BOTTLENECKED
        assert rec.model is RecommendedModel.NO_CHANGE  # paper: no change

    def test_bottlenecked_zone_moves_zc_app_to_sc(self):
        rec = decide(make_profile(gpu_usage_pct=40.0, model="ZC"),
                     make_device())
        assert rec.model is RecommendedModel.STANDARD_COPY_OR_UM
        assert rec.estimate is not None
        assert rec.estimate.direction == "ZC->SC"

    def test_zone2_conditional_zc(self):
        device = make_device(io_coherent=True, gpu_threshold=10.0,
                             gpu_zone2=50.0)
        rec = decide(make_profile(gpu_usage_pct=30.0), device)
        assert rec.zone is Zone.CONDITIONAL
        assert rec.model is RecommendedModel.ZERO_COPY_CONDITIONAL

    def test_zone2_zc_app_stays(self):
        device = make_device(io_coherent=True, gpu_threshold=10.0,
                             gpu_zone2=50.0)
        rec = decide(make_profile(gpu_usage_pct=30.0, model="ZC"), device)
        assert rec.model is RecommendedModel.NO_CHANGE


class TestRecommendationRecord:
    def test_usage_values_recorded(self):
        rec = decide(make_profile(12.0, 3.0), make_device())
        assert rec.cpu_cache_usage_pct == pytest.approx(12.0, abs=0.5)
        assert rec.gpu_cache_usage_pct == pytest.approx(3.0, abs=0.5)
        assert rec.gpu_threshold_pct == 5.0

    def test_estimated_speedup_pct(self):
        rec = decide(make_profile(1.0, 1.0), make_device())
        assert rec.estimated_speedup_pct is not None
        assert rec.estimated_speedup_pct >= 0.0

    def test_board_mismatch_rejected(self):
        with pytest.raises(ModelError):
            decide(make_profile(board="xavier"), make_device(board="tx2"))

    def test_suggests_switch(self):
        rec = decide(make_profile(1.0, 1.0), make_device())
        assert rec.suggests_switch
        keep = decide(make_profile(1.0, 1.0, model="ZC"), make_device())
        assert not keep.suggests_switch
