"""Fig-1 semantics: what each communication model must and must not do.

These are the behavioural contracts of the three models, independent of
calibration: SC copies and flushes, UM migrates instead of copying, ZC
does neither but pays the cache penalty.
"""

import pytest

from repro.comm.base import get_model
from repro.errors import ConfigurationError
from repro.kernels.ops import OpMix
from repro.kernels.patterns import LinearPattern, SingleAddressPattern
from repro.kernels.task import CpuTask, GpuKernel
from repro.kernels.workload import BufferSpec, Direction, Workload
from repro.soc.board import jetson_tx2, jetson_xavier
from repro.soc.soc import SoC


def make_workload(elements=64 * 1024, overlappable=False, iterations=4):
    frame = BufferSpec("frame", elements, shared=True,
                       direction=Direction.TO_GPU)
    result = BufferSpec("result", 256, shared=True, direction=Direction.TO_CPU)
    cpu = CpuTask(
        name="produce",
        ops=OpMix.per_element({"mul": 1.0}, elements),
        pattern=LinearPattern(buffer="frame", read_write_pairs=True),
    )
    gpu = GpuKernel(
        name="consume",
        ops=OpMix.per_element({"fma": 2.0}, elements),
        pattern=LinearPattern(buffer="frame", read_write_pairs=False),
    )
    return Workload(
        name="semantics",
        buffers=(frame, result),
        cpu_task=cpu,
        gpu_kernel=gpu,
        iterations=iterations,
        overlappable=overlappable,
    )


@pytest.fixture
def soc():
    return SoC(jetson_tx2())


class TestRegistry:
    def test_known_models(self):
        for name in ("SC", "UM", "ZC", "sc", "zc"):
            assert get_model(name) is not None

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_model("PCIE")


class TestStandardCopySemantics:
    def test_copies_performed(self, soc):
        workload = make_workload()
        report = get_model("SC").execute(workload, soc)
        assert report.steady_iteration.copy_time_s > 0
        assert report.copied_bytes_per_iteration == \
            workload.copied_bytes_per_iteration

    def test_flushes_performed(self, soc):
        report = get_model("SC").execute(make_workload(), soc)
        assert report.steady_iteration.flush_time_s > 0

    def test_no_migration(self, soc):
        report = get_model("SC").execute(make_workload(), soc)
        assert report.steady_iteration.migration_time_s == 0

    def test_tasks_serialized(self, soc):
        report = get_model("SC").execute(make_workload(overlappable=True), soc)
        assert not report.steady_iteration.is_overlapped


class TestUnifiedMemorySemantics:
    def test_migration_instead_of_copy(self, soc):
        report = get_model("UM").execute(make_workload(), soc)
        assert report.steady_iteration.migration_time_s > 0
        assert report.steady_iteration.copy_time_s == 0

    def test_within_sc_envelope(self, soc):
        """UM total within the paper's ±8 % of SC."""
        workload = make_workload()
        sc = get_model("SC").execute(workload, soc)
        soc.reset()
        um = get_model("UM").execute(workload, soc)
        ratio = um.time_per_iteration_s / sc.time_per_iteration_s
        assert 0.92 <= ratio <= 1.08

    def test_tasks_serialized(self, soc):
        report = get_model("UM").execute(make_workload(overlappable=True), soc)
        assert not report.steady_iteration.is_overlapped


class TestZeroCopySemantics:
    def test_no_copies_no_flushes(self, soc):
        report = get_model("ZC").execute(make_workload(), soc)
        assert report.steady_iteration.copy_time_s == 0
        assert report.steady_iteration.flush_time_s == 0
        assert report.copied_bytes_per_iteration == 0

    def test_overlappable_workload_overlaps(self, soc):
        report = get_model("ZC").execute(make_workload(overlappable=True), soc)
        assert report.steady_iteration.is_overlapped
        assert report.steady_iteration.sync_overhead_s > 0

    def test_overlap_bounded_by_components(self, soc):
        report = get_model("ZC").execute(make_workload(overlappable=True), soc)
        steady = report.steady_iteration
        assert steady.overlapped_time_s <= steady.cpu_time_s + steady.kernel_time_s
        # The overlapped time may shed per-launch overheads, so the
        # lower bound is slightly loose.
        assert steady.overlapped_time_s >= max(
            steady.cpu_time_s, steady.kernel_time_s
        ) * 0.95

    def test_kernel_slower_than_sc_on_tx2(self, soc):
        workload = make_workload()
        sc = get_model("SC").execute(workload, soc)
        soc.reset()
        zc = get_model("ZC").execute(workload, soc)
        assert zc.kernel_time_s > sc.kernel_time_s

    def test_kernel_penalty_small_on_xavier(self):
        soc = SoC(jetson_xavier())
        workload = make_workload()
        sc = get_model("SC").execute(workload, soc)
        soc.reset()
        zc = get_model("ZC").execute(workload, soc)
        tx2 = SoC(jetson_tx2())
        sc_tx2 = get_model("SC").execute(workload, tx2)
        tx2.reset()
        zc_tx2 = get_model("ZC").execute(workload, tx2)
        xavier_penalty = zc.kernel_time_s / sc.kernel_time_s
        tx2_penalty = zc_tx2.kernel_time_s / sc_tx2.kernel_time_s
        assert xavier_penalty < tx2_penalty


class TestEnergySemantics:
    def test_zc_saves_energy_when_time_comparable(self):
        """The paper's energy claim: ZC saves J/s versus SC on Xavier
        (copy traffic is gone)."""
        soc = SoC(jetson_xavier())
        workload = make_workload(overlappable=True)
        sc = get_model("SC").execute(workload, soc)
        soc.reset()
        zc = get_model("ZC").execute(workload, soc)
        assert zc.energy is not None and sc.energy is not None
        # energy per unit of work done
        sc_j_per_iter = sc.energy.total_j / workload.iterations
        zc_j_per_iter = zc.energy.total_j / workload.iterations
        assert zc_j_per_iter < sc_j_per_iter


class TestReportShape:
    def test_iterations_accumulate(self, soc):
        workload = make_workload(iterations=10)
        report = get_model("SC").execute(workload, soc)
        assert report.total_time_s == pytest.approx(
            report.first_iteration.total_s
            + 9 * report.steady_iteration.total_s
        )

    def test_phases_attached(self, soc):
        report = get_model("SC").execute(make_workload(), soc)
        assert report.cpu_phase is not None
        assert report.gpu_phase is not None
        assert report.cpu_phase.processor == "cpu"
        assert report.gpu_phase.processor == "gpu"


class TestUnifiedMemoryColdFaults:
    def test_resident_buffers_fault_only_once(self, soc):
        """GPU-resident shared buffers migrate on first touch only:
        the cold iteration pays more migration than steady state."""
        from repro.kernels.workload import BufferSpec, Direction, Workload
        from repro.kernels.ops import OpMix
        from repro.kernels.patterns import LinearPattern
        from repro.kernels.task import GpuKernel

        pyramid = BufferSpec("pyramid", 64 * 1024, shared=True,
                             direction=Direction.RESIDENT)
        out = BufferSpec("out", 256, shared=True, direction=Direction.TO_CPU)
        workload = Workload(
            name="resident-um",
            buffers=(pyramid, out),
            gpu_kernel=GpuKernel(
                name="k", ops=OpMix({"fma": 1000.0}),
                pattern=LinearPattern(buffer="pyramid",
                                      read_write_pairs=False),
            ),
            iterations=4,
        )
        report = get_model("UM").execute(workload, soc)
        assert report.first_iteration.migration_time_s > \
            report.steady_iteration.migration_time_s
