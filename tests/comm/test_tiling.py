"""The Fig-4 tiled zero-copy pattern: geometry, race freedom, timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.tiling import (
    TiledZeroCopyPattern,
    TilingPlan,
    check_race_free,
)
from repro.errors import ConfigurationError, RaceConditionError
from repro.kernels.workload import BufferSpec, Direction
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.board import jetson_tx2, jetson_xavier
from repro.soc.events import OverlapJob
from repro.soc.stream import AccessStream
from repro.units import gbps


def make_spec(size_bytes=64 * 1024):
    return BufferSpec("image", size_bytes // 4, element_size=4, shared=True,
                      direction=Direction.BIDIRECTIONAL)


def place(spec):
    region = MemoryRegion(name="p", base=0, size=1 << 22, kind=RegionKind.PINNED)
    return {spec.name: region.allocate(spec.name, spec.size_bytes,
                                       element_size=spec.element_size)}


class TestPlanGeometry:
    def test_tile_is_smaller_llc_block(self):
        board = jetson_tx2()
        plan = TilingPlan.for_buffer(make_spec(), board)
        assert plan.tile_bytes == min(
            board.cpu.llc.line_size, board.gpu.llc.line_size
        )

    def test_tiles_cover_buffer(self):
        plan = TilingPlan.for_buffer(make_spec(64 * 1024), jetson_tx2())
        assert plan.num_tiles * plan.tile_bytes == 64 * 1024

    def test_parities_swap_between_phases(self):
        plan = TilingPlan.for_buffer(make_spec(), jetson_tx2())
        assert plan.cpu_parity(0) != plan.cpu_parity(1)
        assert plan.cpu_parity(0) == plan.gpu_parity(1)
        for phase in range(4):
            assert plan.cpu_parity(phase) != plan.gpu_parity(phase)

    def test_tiny_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            TilingPlan.for_buffer(make_spec(64), jetson_tx2(), tile_bytes=64)

    def test_coalescing_efficiency(self):
        board = jetson_xavier()
        full = TilingPlan.for_buffer(make_spec(), board)
        assert full.coalescing_efficiency == 1.0
        tiny = TilingPlan.for_buffer(make_spec(), board, tile_bytes=16)
        assert tiny.coalescing_efficiency == pytest.approx(16 / 64)

    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            TilingPlan(buffer_name="b", buffer_bytes=128, element_size=4,
                       tile_bytes=0, num_tiles=2)
        with pytest.raises(ConfigurationError):
            TilingPlan(buffer_name="b", buffer_bytes=128, element_size=4,
                       tile_bytes=64, num_tiles=1)


class TestRaceFreedom:
    def test_phase_streams_are_disjoint(self):
        spec = make_spec()
        plan = TilingPlan.for_buffer(spec, jetson_tx2())
        buffers = place(spec)
        for phase in (0, 1):
            cpu_spec, gpu_spec = plan.phase_patterns(phase)
            cpu = cpu_spec.build(buffers, 64)
            gpu = gpu_spec.build(buffers, 64)
            check_race_free(cpu, gpu, granularity=plan.tile_bytes)

    def test_same_parity_detected(self):
        spec = make_spec()
        plan = TilingPlan.for_buffer(spec, jetson_tx2())
        buffers = place(spec)
        cpu_spec, _ = plan.phase_patterns(0)
        stream = cpu_spec.build(buffers, 64)
        with pytest.raises(RaceConditionError):
            check_race_free(stream, stream, granularity=plan.tile_bytes)

    def test_empty_stream_is_race_free(self):
        spec = make_spec()
        buffers = place(spec)
        plan = TilingPlan.for_buffer(spec, jetson_tx2())
        cpu_spec, _ = plan.phase_patterns(0)
        stream = cpu_spec.build(buffers, 64)
        check_race_free(stream, AccessStream.empty(), granularity=64)

    def test_granularity_validated(self):
        with pytest.raises(ConfigurationError):
            check_race_free(AccessStream.empty(), AccessStream.empty(),
                            granularity=0)

    @given(num_tiles_exp=st.integers(min_value=1, max_value=8),
           phase=st.integers(min_value=0, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_property_any_tiling_is_race_free(self, num_tiles_exp, phase):
        """For any power-of-two tile count and any phase, the pattern's
        two tile sets never collide."""
        num_tiles = 2 ** num_tiles_exp
        spec = make_spec(64 * 1024)
        buffers = place(spec)
        plan = TilingPlan(
            buffer_name="image", buffer_bytes=spec.size_bytes, element_size=4,
            tile_bytes=spec.size_bytes // num_tiles, num_tiles=num_tiles,
        )
        cpu_spec, gpu_spec = plan.phase_patterns(phase)
        cpu = cpu_spec.build(buffers, 64)
        gpu = gpu_spec.build(buffers, 64)
        check_race_free(cpu, gpu, granularity=plan.tile_bytes)

    def test_two_phases_cover_everything_for_both(self):
        """Over phases i and i+1 each processor touches every tile."""
        spec = make_spec(4 * 1024)
        buffers = place(spec)
        plan = TilingPlan.for_buffer(spec, jetson_tx2())
        cpu_addresses = set()
        for phase in (0, 1):
            cpu_spec, _ = plan.phase_patterns(phase)
            cpu_addresses.update(
                cpu_spec.build(buffers, 64).addresses.tolist()
            )
        full = AccessStream.linear(buffers["image"], read_write_pairs=True)
        assert cpu_addresses == set(full.addresses.tolist())


class TestOverlappedTiming:
    def make_jobs(self):
        cpu = OverlapJob(name="cpu", compute_time_s=1e-3,
                         memory_bytes=gbps(3.2) * 0.5e-3,
                         solo_bandwidth=gbps(3.2),
                         overlap_compute_memory=False)
        gpu = OverlapJob(name="gpu", compute_time_s=0.8e-3,
                         memory_bytes=gbps(1.28) * 0.5e-3,
                         solo_bandwidth=gbps(1.28))
        return cpu, gpu

    def test_total_includes_barriers(self):
        board = jetson_tx2()
        plan = TilingPlan.for_buffer(make_spec(), board)
        pattern = TiledZeroCopyPattern(plan)
        cpu, gpu = self.make_jobs()
        execution = pattern.overlapped_execution(cpu, gpu, board.interconnect)
        assert execution.sync_overhead_s == pytest.approx(
            plan.num_phases * plan.barrier_overhead_s
        )
        assert execution.total_time_s > execution.overlapped_time_s

    def test_phase_count_matches_plan(self):
        board = jetson_tx2()
        plan = TilingPlan.for_buffer(make_spec(), board, num_phases=4)
        pattern = TiledZeroCopyPattern(plan)
        cpu, gpu = self.make_jobs()
        execution = pattern.overlapped_execution(cpu, gpu, board.interconnect)
        assert len(execution.phase_results) == 4

    def test_sub_line_tiles_slow_execution(self):
        board = jetson_xavier()
        cpu, gpu = self.make_jobs()
        good = TilingPlan.for_buffer(make_spec(), board)
        bad = TilingPlan.for_buffer(make_spec(), board, tile_bytes=8)
        t_good = TiledZeroCopyPattern(good).overlapped_execution(
            cpu, gpu, board.interconnect).total_time_s
        t_bad = TiledZeroCopyPattern(bad).overlapped_execution(
            cpu, gpu, board.interconnect).total_time_s
        assert t_bad > t_good


class TestVectorizedTiming:
    def make_jobs(self):
        cpu = OverlapJob(name="cpu", compute_time_s=1e-3,
                         memory_bytes=gbps(3.2) * 0.5e-3,
                         solo_bandwidth=gbps(3.2),
                         overlap_compute_memory=False)
        gpu = OverlapJob(name="gpu", compute_time_s=0.8e-3,
                         memory_bytes=gbps(1.28) * 0.5e-3,
                         solo_bandwidth=gbps(1.28))
        return cpu, gpu

    @pytest.mark.parametrize("phases", [2, 8, 64])
    def test_matches_scalar_loop_exactly(self, phases):
        board = jetson_tx2()
        plan = TilingPlan.for_buffer(make_spec(), board, num_phases=phases)
        cpu, gpu = self.make_jobs()
        fast = TiledZeroCopyPattern(plan, vectorized=True) \
            .overlapped_execution(cpu, gpu, board.interconnect)
        slow = TiledZeroCopyPattern(plan, vectorized=False) \
            .overlapped_execution(cpu, gpu, board.interconnect)
        assert fast.total_time_s == slow.total_time_s
        assert fast.sync_overhead_s == slow.sync_overhead_s
        assert len(fast.phase_results) == len(slow.phase_results) == phases
        for a, b in zip(fast.phase_results, slow.phase_results):
            assert a.makespan_s == b.makespan_s

    def test_injection_uses_per_phase_loop(self):
        from repro.robustness.faults import FaultPlan
        from repro.robustness.inject import inject_faults

        board = jetson_xavier()
        plan = TilingPlan.for_buffer(make_spec(), board, num_phases=4)
        cpu, gpu = self.make_jobs()
        clean = TiledZeroCopyPattern(plan, vectorized=False) \
            .overlapped_execution(cpu, gpu, board.interconnect)
        with inject_faults(FaultPlan(seed=0)):
            injected = TiledZeroCopyPattern(plan, vectorized=True) \
                .overlapped_execution(cpu, gpu, board.interconnect)
        assert injected.total_time_s == clean.total_time_s
