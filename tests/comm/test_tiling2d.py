"""2-D checkerboard zero-copy pattern."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.tiling import check_race_free
from repro.comm.tiling2d import Checkerboard2DPattern, TilingPlan2D
from repro.errors import ConfigurationError, RaceConditionError, WorkloadError
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.board import jetson_tx2


def make_plan(width=64, height=32, tile_width=16, tile_height=1):
    return TilingPlan2D(
        buffer_name="matrix", width=width, height=height, element_size=4,
        tile_width=tile_width, tile_height=tile_height,
    )


def place(plan):
    region = MemoryRegion(name="p", base=0x8000, size=1 << 22,
                          kind=RegionKind.PINNED)
    size = plan.width * plan.height * plan.element_size
    return {plan.buffer_name: region.allocate(plan.buffer_name, size,
                                              element_size=plan.element_size)}


class TestPlanGeometry:
    def test_counts(self):
        plan = make_plan()
        assert plan.tiles_x == 4
        assert plan.tiles_y == 32
        assert plan.num_tiles == 128
        assert plan.tile_bytes == 64

    def test_checkerboard_parity(self):
        plan = make_plan()
        assert plan.tile_parity(0, 0) == 0
        assert plan.tile_parity(1, 0) == 1
        assert plan.tile_parity(0, 1) == 1
        assert plan.tile_parity(1, 1) == 0

    def test_parities_partition_all_tiles(self):
        plan = make_plan()
        black = set(plan.tiles_of_parity(0))
        white = set(plan.tiles_of_parity(1))
        assert not black & white
        assert len(black) + len(white) == plan.num_tiles

    def test_for_matrix_uses_block_size(self):
        board = jetson_tx2()
        plan = TilingPlan2D.for_matrix("m", width=320, height=240,
                                       element_size=4, board=board)
        assert plan.tile_width * plan.element_size == 64  # min LLC block

    def test_for_matrix_override(self):
        board = jetson_tx2()
        plan = TilingPlan2D.for_matrix("m", width=320, height=240,
                                       element_size=4, board=board,
                                       tiles_x=10)
        assert plan.tile_width == 32

    def test_sub_block_override_rejected(self):
        board = jetson_tx2()
        with pytest.raises(ConfigurationError):
            TilingPlan2D.for_matrix("m", width=320, height=240,
                                    element_size=4, board=board, tiles_x=40)

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            make_plan(width=60, tile_width=16)  # not divisible
        with pytest.raises(ConfigurationError):
            make_plan(width=16, height=1, tile_width=16, tile_height=1)


class TestPatternStreams:
    def test_colours_cover_matrix(self):
        plan = make_plan()
        buffers = place(plan)
        black = Checkerboard2DPattern(buffer="matrix", plan=plan, parity=0,
                                      read_write_pairs=False)
        white = Checkerboard2DPattern(buffer="matrix", plan=plan, parity=1,
                                      read_write_pairs=False)
        a = black.build(buffers, 64).addresses
        b = white.build(buffers, 64).addresses
        combined = set(a.tolist()) | set(b.tolist())
        buffer = buffers["matrix"]
        expected = set(range(buffer.base, buffer.base + buffer.size, 4))
        assert combined == expected
        assert not set(a.tolist()) & set(b.tolist())

    def test_phase_streams_race_free(self):
        plan = make_plan()
        buffers = place(plan)
        for phase in (0, 1, 2):
            cpu_spec, gpu_spec = plan.phase_patterns(phase)
            cpu = cpu_spec.build(buffers, 64)
            gpu = gpu_spec.build(buffers, 64)
            check_race_free(cpu, gpu, granularity=plan.tile_bytes)

    def test_same_colour_conflicts(self):
        plan = make_plan()
        buffers = place(plan)
        spec = Checkerboard2DPattern(buffer="matrix", plan=plan, parity=0)
        stream = spec.build(buffers, 64)
        with pytest.raises(RaceConditionError):
            check_race_free(stream, stream, granularity=plan.tile_bytes)

    def test_read_write_pairs(self):
        plan = make_plan()
        buffers = place(plan)
        spec = Checkerboard2DPattern(buffer="matrix", plan=plan, parity=0)
        stream = spec.build(buffers, 64)
        assert stream.write_fraction == pytest.approx(0.5)

    def test_small_buffer_rejected(self):
        plan = make_plan()
        region = MemoryRegion(name="p", base=0, size=1 << 20,
                              kind=RegionKind.PINNED)
        tiny = {"matrix": region.allocate("matrix", 64, element_size=4)}
        with pytest.raises(WorkloadError):
            Checkerboard2DPattern(buffer="matrix", plan=plan,
                                  parity=0).build(tiny, 64)

    def test_element_size_mismatch_rejected(self):
        plan = make_plan()
        region = MemoryRegion(name="p", base=0, size=1 << 22,
                              kind=RegionKind.PINNED)
        wrong = {"matrix": region.allocate(
            "matrix", plan.width * plan.height * 8, element_size=8
        )}
        with pytest.raises(WorkloadError):
            Checkerboard2DPattern(buffer="matrix", plan=plan,
                                  parity=0).build(wrong, 64)


@given(
    tiles_x_exp=st.integers(min_value=1, max_value=4),
    height=st.integers(min_value=2, max_value=16),
    phase=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_property_checkerboard_race_free(tiles_x_exp, height, phase):
    """Any checkerboard geometry keeps the two colours block-disjoint
    in every phase."""
    tiles_x = 2 ** tiles_x_exp
    tile_width = 16  # 64 B rows
    plan = TilingPlan2D(
        buffer_name="matrix",
        width=tiles_x * tile_width,
        height=height,
        element_size=4,
        tile_width=tile_width,
        tile_height=1,
    )
    buffers = place(plan)
    cpu_spec, gpu_spec = plan.phase_patterns(phase)
    cpu = cpu_spec.build(buffers, 64)
    gpu = gpu_spec.build(buffers, 64)
    check_race_free(cpu, gpu, granularity=plan.tile_bytes)
