"""Execution report arithmetic."""

import pytest

from repro.comm.report import ExecutionReport, IterationBreakdown
from repro.errors import ModelError


def breakdown(**kwargs):
    defaults = dict(cpu_time_s=100e-6, kernel_time_s=50e-6,
                    copy_time_s=10e-6, flush_time_s=5e-6)
    defaults.update(kwargs)
    return IterationBreakdown(**defaults)


def report(first=None, steady=None, iterations=10):
    return ExecutionReport(
        workload_name="w", model="SC", board_name="tx2",
        iterations=iterations,
        first_iteration=first or breakdown(),
        steady_iteration=steady or breakdown(),
        cpu_phase=None, gpu_phase=None,
        copied_bytes_per_iteration=4096,
    )


class TestIterationBreakdown:
    def test_serial_total(self):
        b = breakdown()
        assert b.total_s == pytest.approx(165e-6)
        assert not b.is_overlapped

    def test_overlapped_total_replaces_task_sum(self):
        b = breakdown(overlapped_time_s=120e-6, sync_overhead_s=4e-6)
        assert b.is_overlapped
        assert b.total_s == pytest.approx(120e-6 + 10e-6 + 5e-6 + 4e-6)

    def test_other_time_included(self):
        b = breakdown(other_time_s=200e-6)
        assert b.total_s == pytest.approx(365e-6)

    def test_migration_included(self):
        b = breakdown(migration_time_s=20e-6, copy_time_s=0.0)
        assert b.total_s == pytest.approx(175e-6)


class TestExecutionReport:
    def test_total_time_weights_cold_and_warm(self):
        cold = breakdown(cpu_time_s=200e-6)
        warm = breakdown()
        r = report(first=cold, steady=warm, iterations=5)
        assert r.total_time_s == pytest.approx(cold.total_s + 4 * warm.total_s)

    def test_single_iteration(self):
        r = report(iterations=1)
        assert r.total_time_s == pytest.approx(r.first_iteration.total_s)

    def test_steady_accessors(self):
        r = report()
        assert r.kernel_time_s == pytest.approx(50e-6)
        assert r.cpu_time_s == pytest.approx(100e-6)
        assert r.copy_time_s == pytest.approx(10e-6)
        assert r.time_per_iteration_s == pytest.approx(165e-6)

    def test_speedup_vs(self):
        fast = report(steady=breakdown(cpu_time_s=50e-6))
        slow = report()
        assert fast.speedup_vs(slow) > 0
        assert slow.speedup_vs(fast) < 0

    def test_zero_iterations_rejected(self):
        with pytest.raises(ModelError):
            report(iterations=0)

    def test_energy_per_second_without_energy(self):
        assert report().energy_per_second_w == 0.0
