"""Buffer placement per communication model."""

import pytest

from repro.comm.base import get_model
from repro.kernels.ops import OpMix
from repro.kernels.task import GpuKernel
from repro.kernels.workload import BufferSpec, Direction, Workload
from repro.soc.address import RegionKind
from repro.soc.board import jetson_tx2
from repro.soc.soc import SoC


def make_workload():
    return Workload(
        name="placement",
        buffers=(
            BufferSpec("shared_in", 1024, shared=True,
                       direction=Direction.TO_GPU),
            BufferSpec("resident", 2048, shared=True,
                       direction=Direction.RESIDENT),
            BufferSpec("private", 512),
        ),
        gpu_kernel=GpuKernel(name="k", ops=OpMix({"add": 1})),
    )


@pytest.fixture
def soc():
    return SoC(jetson_tx2())


class TestStandardCopyPlacement:
    def test_two_partitions(self, soc):
        placed = get_model("SC").place(make_workload(), soc)
        for name in ("shared_in", "resident", "private"):
            cpu_buf = placed.cpu_buffers[name]
            gpu_buf = placed.gpu_buffers[name]
            assert cpu_buf.region.kind is RegionKind.CPU_PARTITION
            assert gpu_buf.region.kind is RegionKind.GPU_PARTITION
            assert not cpu_buf.overlaps(gpu_buf)


class TestUnifiedMemoryPlacement:
    def test_single_unified_view(self, soc):
        placed = get_model("UM").place(make_workload(), soc)
        for name in placed.cpu_buffers:
            assert placed.cpu_buffers[name] is placed.gpu_buffers[name]
            assert placed.cpu_buffers[name].region.kind is RegionKind.UNIFIED


class TestZeroCopyPlacement:
    def test_shared_buffers_pinned(self, soc):
        placed = get_model("ZC").place(make_workload(), soc)
        assert placed.cpu_buffers["shared_in"].region.kind is RegionKind.PINNED
        assert placed.cpu_buffers["resident"].region.kind is RegionKind.PINNED

    def test_private_buffers_stay_cacheable(self, soc):
        placed = get_model("ZC").place(make_workload(), soc)
        assert placed.cpu_buffers["private"].region.kind is RegionKind.PRIVATE

    def test_one_view_for_both_processors(self, soc):
        placed = get_model("ZC").place(make_workload(), soc)
        for name in placed.cpu_buffers:
            assert placed.cpu_buffers[name] is placed.gpu_buffers[name]
