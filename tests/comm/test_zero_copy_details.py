"""Zero-copy executor internals and edge cases."""

import pytest

from repro.comm.base import get_model
from repro.comm.zero_copy import ZeroCopyModel
from repro.kernels.ops import OpMix
from repro.kernels.patterns import LinearPattern
from repro.kernels.task import CpuTask, GpuKernel
from repro.kernels.workload import BufferSpec, Direction, Workload
from repro.soc.board import jetson_tx2, jetson_xavier
from repro.soc.phase import PhaseResult
from repro.soc.soc import SoC


def tiny_overlappable_workload():
    """Shared buffer below two tiles: the tiled plan cannot be built."""
    crumb = BufferSpec("crumb", 16, element_size=4, shared=True,
                       direction=Direction.TO_GPU)
    return Workload(
        name="tiny",
        buffers=(crumb,),
        cpu_task=CpuTask(
            name="cpu", ops=OpMix({"add": 1000.0}),
            pattern=LinearPattern(buffer="crumb", read_write_pairs=True),
        ),
        gpu_kernel=GpuKernel(
            name="gpu", ops=OpMix({"fma": 1000.0}),
            pattern=LinearPattern(buffer="crumb", read_write_pairs=False),
        ),
        iterations=2,
        overlappable=True,
    )


class TestFallbacks:
    def test_untileable_workload_runs_serial(self):
        soc = SoC(jetson_tx2())
        report = get_model("ZC").execute(tiny_overlappable_workload(), soc)
        assert not report.steady_iteration.is_overlapped
        assert report.total_time_s > 0

    def test_gpu_only_workload_never_overlaps(self):
        frame = BufferSpec("frame", 4096, shared=True,
                           direction=Direction.TO_GPU)
        workload = Workload(
            name="gpu-only",
            buffers=(frame,),
            gpu_kernel=GpuKernel(
                name="k", ops=OpMix({"fma": 100.0}),
                pattern=LinearPattern(buffer="frame", read_write_pairs=False),
            ),
            iterations=2,
            overlappable=True,
        )
        report = get_model("ZC").execute(workload, SoC(jetson_tx2()))
        assert not report.steady_iteration.is_overlapped
        assert report.cpu_time_s == 0.0


class TestFabricBandwidths:
    def test_tx2_cpu_rides_zc_path(self):
        soc = SoC(jetson_tx2())
        cpu_bw, gpu_bw = ZeroCopyModel()._fabric_bandwidths(soc)
        assert cpu_bw == soc.board.zero_copy.cpu_zc_bandwidth
        assert gpu_bw == soc.board.zero_copy.gpu_zc_bandwidth

    def test_xavier_cpu_keeps_full_fabric(self):
        soc = SoC(jetson_xavier())
        cpu_bw, _ = ZeroCopyModel()._fabric_bandwidths(soc)
        assert cpu_bw == soc.dram.config.effective_bandwidth


class TestJobConversion:
    def make_phase(self, compute=1e-3, memory=2e-3, total=None,
                   processor="gpu"):
        from repro.soc.hierarchy import LevelTraffic, MemoryResult

        result = MemoryResult(
            transactions=0, bytes_requested=0,
            levels=[LevelTraffic(name="l1", enabled=True)],
            dram_read_bytes=0, dram_write_bytes=0, dram_transactions=0,
            stage_times={}, streaming_time_s=memory, exposed_latency_s=0.0,
        )
        return PhaseResult(
            name="p", processor=processor, compute_time_s=compute,
            memory_time_s=memory,
            time_s=total if total is not None else max(compute, memory),
            memory=result,
        )

    def test_gpu_job_preserves_solo_time(self):
        phase = self.make_phase(compute=1e-3, memory=2e-3)
        job = ZeroCopyModel._job_from_phase(phase, bandwidth=1e9, overlap=True)
        solo = max(job.compute_time_s, job.memory_bytes / job.solo_bandwidth)
        assert solo == pytest.approx(2e-3)

    def test_cpu_job_preserves_solo_time(self):
        phase = self.make_phase(compute=1e-3, memory=0.5e-3, total=1.2e-3,
                                processor="cpu")
        job = ZeroCopyModel._job_from_phase(phase, bandwidth=1e9,
                                            overlap=False)
        solo = job.compute_time_s + job.memory_bytes / job.solo_bandwidth
        assert solo == pytest.approx(1.2e-3)
