"""SH-WFS simulator workload: calibration against Table II/III."""

import pytest

from repro.apps.shwfs.workload import (
    FIXED_OVERHEAD_S,
    ShwfsWorkloadConfig,
    build_shwfs_workload,
)
from repro.comm.base import get_model
from repro.kernels.workload import Direction
from repro.soc.board import get_board
from repro.soc.soc import SoC
from repro.units import to_us


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in ("nano", "tx2", "xavier"):
        workload = build_shwfs_workload(ShwfsWorkloadConfig(board_name=name))
        soc = SoC(get_board(name))
        out[name] = {
            model: get_model(model).execute(workload, soc)
            for model in ("SC", "UM", "ZC")
        }
    return out


class TestWorkloadShape:
    def test_camera_frame_is_half_megabyte_class(self):
        workload = build_shwfs_workload()
        frame = workload.buffer("frame")
        assert frame.size_bytes == 320 * 240 * 4
        assert frame.direction is Direction.TO_GPU

    def test_copied_payload(self):
        workload = build_shwfs_workload()
        # frame + calibration table to the GPU, centroids back
        assert workload.bytes_to_gpu == 320 * 240 * 4 + 48 * 1024
        assert workload.bytes_to_cpu == workload.buffer("centroids").size_bytes

    def test_overlappable_producer_consumer(self):
        assert build_shwfs_workload().overlappable

    def test_board_overhead_applied(self):
        for name, overhead in FIXED_OVERHEAD_S.items():
            workload = build_shwfs_workload(ShwfsWorkloadConfig(board_name=name))
            assert workload.fixed_iteration_overhead_s == overhead
        assert build_shwfs_workload().fixed_iteration_overhead_s == 0.0


class TestTable3Calibration:
    """Measured values against the paper's Table III (loose bands)."""

    PAPER_SC_TOTAL_US = {"nano": 1070.1, "tx2": 765.04, "xavier": 304.57}
    PAPER_SC_KERNEL_US = {"nano": 453.54, "tx2": 175.18, "xavier": 41.24}
    PAPER_SC_CPU_US = {"nano": 238.6, "tx2": 79.6, "xavier": 41.9}
    PAPER_COPY_US = {"nano": 44.8, "tx2": 22.4, "xavier": 16.88}

    @pytest.mark.parametrize("board", ["nano", "tx2", "xavier"])
    def test_sc_total(self, results, board):
        measured = to_us(results[board]["SC"].time_per_iteration_s)
        assert measured == pytest.approx(self.PAPER_SC_TOTAL_US[board], rel=0.15)

    @pytest.mark.parametrize("board", ["nano", "tx2", "xavier"])
    def test_sc_kernel(self, results, board):
        measured = to_us(results[board]["SC"].kernel_time_s)
        assert measured == pytest.approx(self.PAPER_SC_KERNEL_US[board], rel=0.15)

    @pytest.mark.parametrize("board", ["nano", "tx2", "xavier"])
    def test_sc_cpu(self, results, board):
        measured = to_us(results[board]["SC"].cpu_time_s)
        assert measured == pytest.approx(self.PAPER_SC_CPU_US[board], rel=0.15)

    @pytest.mark.parametrize("board", ["nano", "tx2", "xavier"])
    def test_copy_time(self, results, board):
        measured = to_us(results[board]["SC"].copy_time_s)
        assert measured == pytest.approx(self.PAPER_COPY_US[board], rel=0.25)

    @pytest.mark.parametrize("board", ["nano", "tx2", "xavier"])
    def test_um_within_envelope(self, results, board):
        ratio = (results[board]["UM"].time_per_iteration_s
                 / results[board]["SC"].time_per_iteration_s)
        assert 0.92 < ratio < 1.08


class TestTable3Outcomes:
    """The headline: who wins on which board."""

    def test_zc_loses_on_nano(self, results):
        assert results["nano"]["ZC"].speedup_vs(results["nano"]["SC"]) < -0.10

    def test_zc_slightly_worse_on_tx2(self, results):
        speedup = results["tx2"]["ZC"].speedup_vs(results["tx2"]["SC"])
        assert -0.15 < speedup < 0.0

    def test_zc_wins_on_xavier(self, results):
        speedup = results["xavier"]["ZC"].speedup_vs(results["xavier"]["SC"])
        assert 0.20 < speedup < 0.60  # paper: +38 %

    def test_zc_cpu_degradation_ranks_nano_worst(self, results):
        """Table III: ZC CPU time 4.7x on Nano, 3.9x on TX2, ~1x Xavier."""
        def penalty(board):
            return (results[board]["ZC"].cpu_time_s
                    / results[board]["SC"].cpu_time_s)

        assert penalty("nano") > penalty("tx2") > 1.5
        assert penalty("xavier") < 1.1

    def test_zc_kernel_penalty_tx2_matches_paper(self, results):
        """Paper: TX2 ZC kernel 244 µs vs 175 µs SC (-39 %)."""
        ratio = (results["tx2"]["ZC"].kernel_time_s
                 / results["tx2"]["SC"].kernel_time_s)
        assert 1.2 < ratio < 1.6

    def test_zc_kernel_penalty_small_on_nano(self, results):
        """Paper: Nano's kernel is compute-bound, ZC only -3 %."""
        ratio = (results["nano"]["ZC"].kernel_time_s
                 / results["nano"]["SC"].kernel_time_s)
        assert ratio < 1.15

    def test_energy_saving_on_xavier(self, results):
        """Same frames processed, less energy: the paper's ZC energy
        argument (copy traffic eliminated)."""
        sc = results["xavier"]["SC"]
        zc = results["xavier"]["ZC"]
        assert zc.energy.total_j < sc.energy.total_j
