"""ORB multi-frame trajectory tracking (functional-depth test)."""

import numpy as np
import pytest

from repro.apps.orbslam.pipeline import (
    OrbPipeline,
    shift_scene,
    synthetic_scene,
)


class TestTrajectory:
    def test_camera_path_recovered(self):
        """Accumulate frame-to-frame shift estimates along a known
        camera path; the integrated trajectory must track the truth."""
        pipeline = OrbPipeline()
        base = synthetic_scene(seed=11)
        path = [(4, 0), (3, 2), (0, -3), (-2, -2), (5, 1)]

        position = np.zeros(2)
        estimate = np.zeros(2)
        previous = base
        errors = []
        for dx, dy in path:
            position += (dx, dy)
            current = shift_scene(base, int(position[0]), int(position[1]))
            result = pipeline.track(previous, current)
            assert result.estimated_shift is not None
            estimate += result.estimated_shift
            errors.append(float(np.linalg.norm(estimate - position)))
            previous = current

        assert errors[-1] < 2.0  # end-to-end drift under 2 px
        assert max(errors) < 3.0

    def test_match_counts_stay_healthy_along_path(self):
        pipeline = OrbPipeline()
        base = synthetic_scene(seed=13)
        previous = base
        for step in range(1, 5):
            current = shift_scene(base, 3 * step, -2 * step)
            result = pipeline.track(previous, current)
            assert result.num_matches > 15, step
            previous = current

    def test_large_jump_still_tracked(self):
        """A 30-pixel jump (10 % of the frame) is still matched thanks
        to descriptor invariance."""
        pipeline = OrbPipeline()
        base = synthetic_scene(seed=17)
        result = pipeline.track(base, shift_scene(base, 30, -20))
        assert result.num_matches > 10
        dx, dy = result.estimated_shift
        assert dx == pytest.approx(30.0, abs=2.0)
        assert dy == pytest.approx(-20.0, abs=2.0)
