"""SH-WFS pipeline object, including a closed adaptive-optics loop."""

import numpy as np
import pytest

from repro.apps.shwfs.centroid import CentroidMethod
from repro.apps.shwfs.optics import ShwfsOptics, zernike_surface
from repro.apps.shwfs.pipeline import ShwfsPipeline
from repro.model.framework import Framework
from repro.soc.board import get_board


class TestFrameProcessing:
    def test_process_frame_end_to_end(self):
        pipeline = ShwfsPipeline()
        image, truth = pipeline.make_frame([0, 0.3, -0.2, 0.4], noise_rms=3.0)
        result = pipeline.process_frame(image, truth)
        assert result.displacement_rmse_px < 0.2
        assert result.recovered_modes is not None
        assert result.slopes.shape == (pipeline.grid.count, 2)

    def test_reconstruction_optional(self):
        pipeline = ShwfsPipeline()
        image, truth = pipeline.make_frame([0, 0.3])
        result = pipeline.process_frame(image, truth, reconstruct=False)
        assert result.recovered_modes is None

    def test_method_selectable(self):
        pipeline = ShwfsPipeline(method=CentroidMethod.WINDOWED_COG)
        image, truth = pipeline.make_frame([0, 0.2, 0.2])
        result = pipeline.process_frame(image, truth)
        assert result.centroids.method is CentroidMethod.WINDOWED_COG

    def test_deterministic_frames(self):
        pipeline = ShwfsPipeline()
        a, _ = pipeline.make_frame([0, 0.1], noise_rms=2.0, seed=9)
        b, _ = pipeline.make_frame([0, 0.1], noise_rms=2.0, seed=9)
        assert np.array_equal(a, b)


class TestClosedLoop:
    def test_ao_loop_converges(self):
        """The full adaptive-optics loop: measure -> reconstruct ->
        correct.  Residual aberration shrinks monotonically-ish and ends
        far below the injected level."""
        pipeline = ShwfsPipeline(modes=(2, 3, 4, 5, 6))
        injected = np.array([0.0, 0.45, -0.30, 0.50, 0.20, -0.25])
        correction = np.zeros_like(injected)
        gain = 0.6
        residual_norms = []
        for _ in range(6):
            residual = injected - correction
            surface = zernike_surface(residual.tolist(), size=64)
            from repro.apps.shwfs.optics import simulate_shwfs_image

            image, _ = simulate_shwfs_image(surface, pipeline.optics)
            result = pipeline.process_frame(image, reconstruct=True)
            correction[1:6] += gain * result.recovered_modes
            residual_norms.append(float(np.linalg.norm(injected - correction)))
        assert residual_norms[-1] < 0.1 * float(np.linalg.norm(injected))
        assert residual_norms[-1] < residual_norms[0]

    def test_loop_stable_with_noise(self):
        pipeline = ShwfsPipeline(modes=(2, 3, 4))
        injected = np.array([0.0, 0.4, -0.3, 0.3])
        correction = np.zeros_like(injected)
        rng_seed = 0
        from repro.apps.shwfs.optics import simulate_shwfs_image

        for step in range(8):
            residual = injected - correction
            surface = zernike_surface(residual.tolist(), size=64)
            image, _ = simulate_shwfs_image(
                surface, pipeline.optics, noise_rms=4.0,
                rng=np.random.default_rng(rng_seed + step),
            )
            result = pipeline.process_frame(image, reconstruct=True)
            correction[1:4] += 0.5 * result.recovered_modes
        final = float(np.linalg.norm(injected - correction))
        assert final < 0.25 * float(np.linalg.norm(injected))


class TestTuningHooks:
    def test_workload_geometry_follows_optics(self):
        optics = ShwfsOptics(image_width=160, image_height=120,
                             subaperture_px=20)
        pipeline = ShwfsPipeline(optics=optics)
        workload = pipeline.workload()
        assert workload.buffer("frame").num_elements == 160 * 120

    def test_tune_smoke(self):
        report = ShwfsPipeline().tune(Framework(), get_board("nano"))
        assert report.board_name == "nano"


class TestProcessFrames:
    """Batch frame processing over the shared-memory fan-out."""

    @staticmethod
    def _frames(pipeline, count=4):
        return [
            pipeline.make_frame([0, 0.1 * (i + 1), -0.05 * i], seed=i)[0]
            for i in range(count)
        ]

    @staticmethod
    def _assert_results_equal(batch, serial):
        assert len(batch) == len(serial)
        for got, want in zip(batch, serial):
            np.testing.assert_array_equal(
                got.centroids.centroids, want.centroids.centroids
            )
            np.testing.assert_array_equal(
                got.centroids.displacements, want.centroids.displacements
            )
            np.testing.assert_array_equal(got.slopes, want.slopes)
            np.testing.assert_array_equal(
                got.recovered_modes, want.recovered_modes
            )

    def test_matches_serial_loop(self):
        from repro.perf.parallel import ParallelRunner

        pipeline = ShwfsPipeline(modes=(2, 3, 4))
        frames = self._frames(pipeline)
        serial = [pipeline.process_frame(f) for f in frames]
        runner = ParallelRunner()
        batch = pipeline.process_frames(frames, runner=runner)
        self._assert_results_equal(batch, serial)
        assert runner.last_transport in ("shared", "pickle", "inline")

    def test_inline_fallback_matches(self):
        from repro.perf.parallel import ParallelRunner

        pipeline = ShwfsPipeline()
        frames = self._frames(pipeline, count=3)
        serial = [pipeline.process_frame(f) for f in frames]
        runner = ParallelRunner(parallel=False)
        batch = pipeline.process_frames(frames, runner=runner)
        self._assert_results_equal(batch, serial)
        assert runner.last_transport == "inline"

    def test_empty_batch(self):
        assert ShwfsPipeline().process_frames([]) == []

    def test_reconstruct_flag_forwarded(self):
        pipeline = ShwfsPipeline()
        frames = self._frames(pipeline, count=2)
        batch = pipeline.process_frames(frames, reconstruct=False)
        assert all(r.recovered_modes is None for r in batch)

    def test_injection_runs_serially(self):
        from repro.robustness.inject import FaultInjector, FaultPlan

        pipeline = ShwfsPipeline()
        frames = self._frames(pipeline, count=2)
        clean = pipeline.process_frames(frames)
        with FaultInjector(FaultPlan(seed=0)):
            injected = pipeline.process_frames(frames)
        self._assert_results_equal(injected, clean)
