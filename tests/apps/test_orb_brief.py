"""Oriented rBRIEF descriptors."""

import numpy as np
import pytest

from repro.apps.orbslam.brief import (
    BriefError,
    brief_pattern,
    compute_orientations,
    rbrief_descriptors,
)


def textured_image(seed=0, size=96):
    rng = np.random.default_rng(seed)
    image = rng.uniform(0, 255, size=(size, size))
    # Smooth slightly so gradients are meaningful.
    return (image + np.roll(image, 1, 0) + np.roll(image, 1, 1)) / 3.0


class TestPattern:
    def test_deterministic(self):
        assert np.array_equal(brief_pattern(seed=7), brief_pattern(seed=7))

    def test_shape_and_bounds(self):
        pattern = brief_pattern(bits=256, radius=15)
        assert pattern.shape == (256, 4)
        assert pattern.max() <= 14
        assert pattern.min() >= -14


class TestOrientation:
    def test_gradient_direction_recovered(self):
        # Brightness increasing along +x -> centroid points along +x.
        image = np.tile(np.arange(64, dtype=float), (64, 1))
        angles = compute_orientations(image, np.array([[32, 32]]))
        assert abs(angles[0]) < 0.1

    def test_rotated_gradient(self):
        image = np.tile(np.arange(64, dtype=float)[:, None], (1, 64))  # +y
        angles = compute_orientations(image, np.array([[32, 32]]))
        assert angles[0] == pytest.approx(np.pi / 2, abs=0.1)

    def test_border_keypoints_get_zero(self):
        image = textured_image()
        angles = compute_orientations(image, np.array([[1, 1]]))
        assert angles[0] == 0.0


class TestDescriptors:
    def test_shape_is_packed_256_bits(self):
        image = textured_image()
        keypoints = np.array([[40, 40], [50, 50]])
        descriptors, valid = rbrief_descriptors(image, keypoints)
        assert descriptors.shape == (2, 32)
        assert descriptors.dtype == np.uint8
        assert valid.all()

    def test_deterministic(self):
        image = textured_image()
        keypoints = np.array([[40, 40]])
        a, _ = rbrief_descriptors(image, keypoints)
        b, _ = rbrief_descriptors(image, keypoints)
        assert np.array_equal(a, b)

    def test_border_keypoints_filtered(self):
        image = textured_image()
        keypoints = np.array([[2, 2], [48, 48]])
        descriptors, valid = rbrief_descriptors(image, keypoints)
        assert list(valid) == [False, True]
        assert descriptors.shape[0] == 1

    def test_different_points_differ(self):
        image = textured_image()
        keypoints = np.array([[30, 30], [60, 60]])
        descriptors, _ = rbrief_descriptors(image, keypoints)
        assert not np.array_equal(descriptors[0], descriptors[1])

    def test_same_texture_matches_across_images(self):
        """A descriptor should be stable when the patch translates."""
        base = textured_image(seed=2, size=120)
        shifted = np.roll(base, 10, axis=1)
        kp_a = np.array([[50, 60]])
        kp_b = np.array([[60, 60]])
        da, _ = rbrief_descriptors(base, kp_a)
        db, _ = rbrief_descriptors(shifted, kp_b)
        distance = np.unpackbits(np.bitwise_xor(da[0], db[0])).sum()
        assert distance < 40  # same patch: small Hamming distance

    def test_empty_keypoints(self):
        descriptors, valid = rbrief_descriptors(
            textured_image(), np.zeros((0, 2), dtype=int)
        )
        assert descriptors.shape == (0, 32)

    def test_validation(self):
        with pytest.raises(BriefError):
            rbrief_descriptors(np.zeros((10, 10, 3)), np.zeros((1, 2), dtype=int))
        with pytest.raises(BriefError):
            rbrief_descriptors(textured_image(), np.zeros((3,), dtype=int))
