"""Centroid extraction: accuracy against injected ground truth."""

import numpy as np
import pytest

from repro.apps.shwfs.centroid import (
    CentroidError,
    CentroidMethod,
    SubapertureGrid,
    displacements_to_slopes,
    extract_centroids,
    reconstruct_modes,
)
from repro.apps.shwfs.optics import (
    ShwfsOptics,
    reference_centers,
    simulate_shwfs_image,
    zernike_surface,
)

OPTICS = ShwfsOptics()
GRID = SubapertureGrid.from_optics(OPTICS)
COEFFS = [0.0, 0.35, -0.25, 0.4, 0.1, -0.15]


def make_frame(noise=0.0, seed=0):
    surface = zernike_surface(COEFFS, size=64)
    return simulate_shwfs_image(surface, OPTICS, noise_rms=noise,
                                rng=np.random.default_rng(seed))


class TestGrid:
    def test_from_optics(self):
        assert GRID.rows == 12
        assert GRID.cols == 16
        assert GRID.count == 192

    def test_frame_validation(self):
        with pytest.raises(CentroidError):
            GRID.validate(np.zeros((100, 100)))

    def test_invalid_grid(self):
        with pytest.raises(CentroidError):
            SubapertureGrid(rows=0, cols=4, size_px=20)


class TestAccuracy:
    @pytest.mark.parametrize("method", list(CentroidMethod))
    def test_clean_frame_recovers_displacements(self, method):
        image, truth = make_frame()
        result = extract_centroids(image, GRID, method=method,
                                   reference=reference_centers(OPTICS))
        error = result.displacements - truth
        rmse = np.sqrt(np.mean(error ** 2))
        assert rmse < 0.1, method

    def test_thresholded_beats_plain_cog_under_noise(self):
        image, truth = make_frame(noise=25.0)
        reference = reference_centers(OPTICS)
        plain = extract_centroids(image, GRID, method=CentroidMethod.COG,
                                  reference=reference)
        robust = extract_centroids(
            image, GRID, method=CentroidMethod.THRESHOLDED_COG,
            reference=reference,
        )
        rmse_plain = np.sqrt(np.mean((plain.displacements - truth) ** 2))
        rmse_robust = np.sqrt(np.mean((robust.displacements - truth) ** 2))
        assert rmse_robust < rmse_plain

    def test_windowed_accurate_under_noise(self):
        image, truth = make_frame(noise=15.0, seed=3)
        result = extract_centroids(
            image, GRID, method=CentroidMethod.WINDOWED_COG,
            reference=reference_centers(OPTICS),
        )
        rmse = np.sqrt(np.mean((result.displacements - truth) ** 2))
        assert rmse < 0.5

    def test_empty_subaperture_falls_back_to_center(self):
        image = np.zeros((GRID.rows * GRID.size_px, GRID.cols * GRID.size_px),
                         dtype=np.float32)
        result = extract_centroids(image, GRID)
        assert np.allclose(result.displacements, 0.0)
        assert np.allclose(result.intensities, 0.0)


class TestValidation:
    def test_threshold_fraction_range(self):
        image, _ = make_frame()
        with pytest.raises(CentroidError):
            extract_centroids(image, GRID, threshold_fraction=1.0)

    def test_reference_shape_checked(self):
        image, _ = make_frame()
        with pytest.raises(CentroidError):
            extract_centroids(image, GRID, reference=np.zeros((3, 2)))


class TestSlopesAndReconstruction:
    def test_slope_conversion_inverts_gain(self):
        displacements = np.array([[4.0, -2.0]])
        slopes = displacements_to_slopes(displacements, gradient_gain_px=8.0)
        assert slopes[0, 0] == pytest.approx(0.5)
        assert slopes[0, 1] == pytest.approx(-0.25)

    def test_zero_gain_rejected(self):
        with pytest.raises(CentroidError):
            displacements_to_slopes(np.zeros((1, 2)), 0.0)

    def test_modal_reconstruction_recovers_coefficients(self):
        image, _ = make_frame()
        result = extract_centroids(image, GRID,
                                   reference=reference_centers(OPTICS))
        slopes = displacements_to_slopes(result.displacements,
                                         OPTICS.gradient_gain_px)
        modes = (2, 3, 4, 5, 6)
        recovered = reconstruct_modes(slopes, OPTICS, modes)
        injected = np.array(COEFFS[1:6])
        assert np.allclose(recovered, injected, atol=0.05)

    def test_piston_rejected(self):
        with pytest.raises(CentroidError):
            reconstruct_modes(np.zeros((GRID.count, 2)), OPTICS, modes=(1, 2))


class TestVectorizedEquivalence:
    def _run_both(self, frame, grid, method, **kwargs):
        from repro.apps.shwfs.centroid import extract_centroids

        fast = extract_centroids(frame, grid, method, vectorized=True,
                                 **kwargs)
        slow = extract_centroids(frame, grid, method, vectorized=False,
                                 **kwargs)
        return fast, slow

    @pytest.mark.parametrize("method", list(CentroidMethod))
    def test_matches_scalar_loop(self, method):
        rng = np.random.default_rng(6)
        grid = SubapertureGrid(rows=5, cols=7, size_px=12)
        frame = rng.random((5 * 12, 7 * 12))
        fast, slow = self._run_both(frame, grid, method)
        assert np.allclose(fast.centroids, slow.centroids,
                           rtol=1e-12, atol=1e-12)
        assert np.allclose(fast.intensities, slow.intensities,
                           rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("method", list(CentroidMethod))
    def test_all_zero_frame_falls_back_to_centers(self, method):
        grid = SubapertureGrid(rows=3, cols=3, size_px=8)
        frame = np.zeros((24, 24))
        fast, slow = self._run_both(frame, grid, method)
        assert np.array_equal(fast.centroids, slow.centroids)
        assert np.all(fast.intensities == 0.0)

    def test_sparse_spots_identical(self):
        # Single-pixel spots exercise the thresholding and the
        # windowed refinement's clamped sub-window edges.
        grid = SubapertureGrid(rows=4, cols=4, size_px=10)
        frame = np.zeros((40, 40))
        rng = np.random.default_rng(8)
        for row in range(4):
            for col in range(4):
                y = row * 10 + int(rng.integers(0, 10))
                x = col * 10 + int(rng.integers(0, 10))
                frame[y, x] = float(rng.integers(50, 255))
        fast, slow = self._run_both(frame, grid,
                                    CentroidMethod.WINDOWED_COG)
        assert np.allclose(fast.centroids, slow.centroids,
                           rtol=1e-12, atol=1e-12)

    def test_negative_frame_uses_scalar_path(self):
        rng = np.random.default_rng(10)
        grid = SubapertureGrid(rows=2, cols=2, size_px=6)
        frame = rng.random((12, 12)) - 0.5
        fast, slow = self._run_both(frame, grid, CentroidMethod.COG)
        assert np.array_equal(fast.centroids, slow.centroids)
        assert np.array_equal(fast.intensities, slow.intensities)

    def test_injection_uses_scalar_path(self):
        from repro.robustness.faults import FaultPlan
        from repro.robustness.inject import inject_faults

        rng = np.random.default_rng(12)
        grid = SubapertureGrid(rows=3, cols=4, size_px=8)
        frame = rng.random((24, 32))
        from repro.apps.shwfs.centroid import extract_centroids

        clean = extract_centroids(frame, grid, vectorized=False)
        with inject_faults(FaultPlan(seed=0)):
            injected = extract_centroids(frame, grid, vectorized=True)
        assert np.array_equal(injected.centroids, clean.centroids)
