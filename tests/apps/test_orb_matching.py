"""Hamming matcher with ratio test and cross-check."""

import numpy as np
import pytest

from repro.apps.orbslam.matching import (
    MatchingError,
    hamming_distance_matrix,
    match_descriptors,
)


def descriptor(*byte_values):
    d = np.zeros(32, dtype=np.uint8)
    for i, v in enumerate(byte_values):
        d[i] = v
    return d


class TestHammingMatrix:
    def test_identical_is_zero(self):
        a = np.stack([descriptor(0xFF, 0x0F)])
        assert hamming_distance_matrix(a, a)[0, 0] == 0

    def test_known_distance(self):
        a = np.stack([descriptor(0b1111_0000)])
        b = np.stack([descriptor(0b0000_1111)])
        assert hamming_distance_matrix(a, b)[0, 0] == 8

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, size=(5, 32), dtype=np.uint8)
        b = rng.integers(0, 256, size=(7, 32), dtype=np.uint8)
        d = hamming_distance_matrix(a, b)
        assert d.shape == (5, 7)
        assert np.array_equal(d, hamming_distance_matrix(b, a).T)

    def test_empty_inputs(self):
        empty = np.zeros((0, 32), dtype=np.uint8)
        some = np.zeros((3, 32), dtype=np.uint8)
        assert hamming_distance_matrix(empty, some).shape == (0, 3)

    def test_width_mismatch_rejected(self):
        with pytest.raises(MatchingError):
            hamming_distance_matrix(
                np.zeros((2, 32), dtype=np.uint8),
                np.zeros((2, 16), dtype=np.uint8),
            )


class TestMatching:
    def test_exact_matches_found(self):
        rng = np.random.default_rng(1)
        train = rng.integers(0, 256, size=(10, 32), dtype=np.uint8)
        query = train[[3, 7]]
        matches = match_descriptors(query, train)
        assert {(m.query_index, m.train_index) for m in matches} == {(0, 3), (1, 7)}
        assert all(m.distance == 0 for m in matches)

    def test_max_distance_rejects_weak_matches(self):
        query = np.stack([descriptor(0xFF, 0xFF, 0xFF, 0xFF)])
        train = np.stack([descriptor()])  # 32 bits away
        assert match_descriptors(query, train, max_distance=10) == []

    def test_ratio_test_rejects_ambiguous(self):
        # Two train descriptors both 1 bit from the query: ambiguous.
        query = np.stack([descriptor(0b11)])
        train = np.stack([descriptor(0b01), descriptor(0b10)])
        assert match_descriptors(query, train, ratio=0.8,
                                 cross_check=False) == []

    def test_cross_check_requires_mutual_best(self):
        # q0 and q1 both closest to t0; only one survives cross-check.
        query = np.stack([descriptor(0x00), descriptor(0x01)])
        train = np.stack([descriptor(0x00), descriptor(0xF0, 0xFF)])
        matches = match_descriptors(query, train, ratio=1.0, cross_check=True)
        pairs = {(m.query_index, m.train_index) for m in matches}
        assert pairs == {(0, 0)}

    def test_empty_inputs(self):
        empty = np.zeros((0, 32), dtype=np.uint8)
        assert match_descriptors(empty, empty) == []

    def test_ratio_validated(self):
        with pytest.raises(MatchingError):
            match_descriptors(np.zeros((1, 32), dtype=np.uint8),
                              np.zeros((1, 32), dtype=np.uint8), ratio=0.0)


class TestVectorizedEquivalence:
    def _random_pair(self, n=40, m=50, width=32, seed=2):
        rng = np.random.default_rng(seed)
        return (rng.integers(0, 256, size=(n, width), dtype=np.uint8),
                rng.integers(0, 256, size=(m, width), dtype=np.uint8))

    def test_packed_distances_identical(self):
        from repro.apps.orbslam.matching import packed_hamming_distance_matrix

        a, b = self._random_pair()
        packed = packed_hamming_distance_matrix(a, b)
        reference = hamming_distance_matrix(a, b, vectorized=False)
        assert np.array_equal(packed, reference)

    def test_blas_branch_identical(self):
        # 300 x 250 crosses the 2^16-pair threshold: the matmul
        # identity path must still be bit-exact.
        a, b = self._random_pair(n=300, m=250)
        assert a.shape[0] * b.shape[0] >= 1 << 16
        fast = hamming_distance_matrix(a, b, vectorized=True)
        slow = hamming_distance_matrix(a, b, vectorized=False)
        assert np.array_equal(fast, slow)

    def test_odd_width_uses_lut(self):
        from repro.apps.orbslam.matching import packed_hamming_distance_matrix

        a, b = self._random_pair(width=9)
        fast = hamming_distance_matrix(a, b, vectorized=True)
        slow = hamming_distance_matrix(a, b, vectorized=False)
        assert np.array_equal(fast, slow)
        with pytest.raises(MatchingError):
            packed_hamming_distance_matrix(a, b)

    @pytest.mark.parametrize("cross_check", [True, False])
    @pytest.mark.parametrize("max_distance,ratio", [
        (64, 0.8), (32, 0.8), (256, 1.0), (64, 0.5),
    ])
    def test_match_lists_identical(self, cross_check, max_distance, ratio):
        a, b = self._random_pair(n=60, m=80, seed=5)
        fast = match_descriptors(a, b, max_distance=max_distance,
                                 ratio=ratio, cross_check=cross_check,
                                 vectorized=True)
        slow = match_descriptors(a, b, max_distance=max_distance,
                                 ratio=ratio, cross_check=cross_check,
                                 vectorized=False)
        assert fast == slow

    def test_single_train_descriptor(self):
        # One train column: the ratio test has no second-best to apply.
        a, b = self._random_pair(n=8, m=1)
        assert match_descriptors(a, b, max_distance=256, vectorized=True) \
            == match_descriptors(a, b, max_distance=256, vectorized=False)

    def test_injection_uses_scalar_path(self):
        from repro.robustness.faults import FaultPlan
        from repro.robustness.inject import inject_faults

        a, b = self._random_pair()
        clean = match_descriptors(a, b, vectorized=False)
        with inject_faults(FaultPlan(seed=0)):
            injected = match_descriptors(a, b, vectorized=True)
        assert injected == clean
