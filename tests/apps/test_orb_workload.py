"""ORB-SLAM simulator workload: calibration against Table IV/V."""

import pytest

from repro.apps.orbslam.workload import (
    OrbWorkloadConfig,
    build_orbslam_workload,
)
from repro.comm.base import get_model
from repro.kernels.workload import Direction
from repro.soc.board import get_board
from repro.soc.soc import SoC
from repro.units import to_ms, to_us


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in ("tx2", "xavier"):
        workload = build_orbslam_workload(OrbWorkloadConfig(board_name=name))
        soc = SoC(get_board(name))
        out[name] = {
            model: get_model(model).execute(workload, soc)
            for model in ("SC", "ZC")
        }
    return out


class TestWorkloadShape:
    def test_only_features_copied(self):
        workload = build_orbslam_workload()
        assert workload.bytes_to_gpu == 0
        assert workload.bytes_to_cpu == 22 * 1024

    def test_pyramid_is_resident_shared(self):
        workload = build_orbslam_workload()
        pyramid = workload.buffer("pyramid")
        assert pyramid.shared
        assert pyramid.direction is Direction.RESIDENT

    def test_staging_is_private(self):
        workload = build_orbslam_workload()
        assert not workload.buffer("staging").shared

    def test_not_overlappable(self):
        # the extraction feeds the tracking: no cross-task overlap
        assert not build_orbslam_workload().overlappable


class TestTable4Calibration:
    PAPER_KERNEL_US = {"tx2": 93.56, "xavier": 24.22}
    PAPER_COPY_US = {"tx2": 1.57, "xavier": 1.35}

    @pytest.mark.parametrize("board", ["tx2", "xavier"])
    def test_sc_kernel_time(self, results, board):
        measured = to_us(results[board]["SC"].kernel_time_s)
        assert measured == pytest.approx(self.PAPER_KERNEL_US[board], rel=0.15)

    @pytest.mark.parametrize("board", ["tx2", "xavier"])
    def test_copy_time(self, results, board):
        measured = to_us(results[board]["SC"].copy_time_s)
        assert measured == pytest.approx(self.PAPER_COPY_US[board], rel=0.35)


class TestTable5Outcomes:
    def test_sc_frame_times_in_band(self, results):
        """Paper: 70 ms on TX2, 30 ms on Xavier per frame batch."""
        assert to_ms(results["tx2"]["SC"].total_time_s) == pytest.approx(70, rel=0.35)
        assert to_ms(results["xavier"]["SC"].total_time_s) == pytest.approx(30, rel=0.35)

    def test_zc_catastrophic_on_tx2(self, results):
        """Paper: 70 ms -> 521 ms (-744 %)."""
        ratio = (results["tx2"]["ZC"].total_time_s
                 / results["tx2"]["SC"].total_time_s)
        assert ratio > 3.0

    def test_zc_kernel_blowup_on_tx2(self, results):
        """Paper: kernel 93.56 us -> 824 us (-880 %)."""
        ratio = (results["tx2"]["ZC"].kernel_time_s
                 / results["tx2"]["SC"].kernel_time_s)
        assert ratio > 5.0

    def test_zc_parity_class_on_xavier(self, results):
        """Paper: 30 ms -> 30 ms (0 %)."""
        ratio = (results["xavier"]["ZC"].total_time_s
                 / results["xavier"]["SC"].total_time_s)
        assert 0.75 < ratio < 1.25

    def test_zc_kernel_penalty_small_on_xavier(self, results):
        """Paper: kernel -10 % under ZC on Xavier."""
        ratio = (results["xavier"]["ZC"].kernel_time_s
                 / results["xavier"]["SC"].kernel_time_s)
        assert 1.0 <= ratio < 1.6

    def test_zc_eliminates_copy_energy_on_xavier(self, results):
        """ZC removes the copy-engine energy entirely.

        Note a documented deviation (EXPERIMENTS.md): the paper reports
        a net 0.17 J/s saving for ORB on Xavier, while this model's ZC
        spends *more* DRAM energy because the uncached pyramid traffic
        re-reads DRAM on every pass that the SC caches would have
        served.  The copy-side saving itself reproduces.
        """
        sc = results["xavier"]["SC"]
        zc = results["xavier"]["ZC"]
        assert zc.energy.copy_j == 0.0
        assert sc.energy.copy_j > 0.0
