"""FAST-9 corner detector."""

import numpy as np
import pytest

from repro.apps.orbslam.fast import FastError, fast_corners


def blank(h=64, w=64, value=50.0):
    return np.full((h, w), value)


def add_square(image, x, y, size, value=200.0):
    image[y:y + size, x:x + size] = value
    return image


class TestDetection:
    def test_uniform_image_has_no_corners(self):
        keypoints, _ = fast_corners(blank())
        assert len(keypoints) == 0

    def test_square_corners_detected(self):
        image = add_square(blank(), 20, 20, 16)
        keypoints, scores = fast_corners(image)
        assert len(keypoints) >= 4
        assert len(scores) == len(keypoints)
        # detections cluster near the square's vertices
        corners = np.array([[20, 20], [35, 20], [20, 35], [35, 35]])
        for corner in corners:
            distances = np.linalg.norm(keypoints - corner, axis=1)
            assert distances.min() <= 2.5

    def test_dark_square_also_detected(self):
        image = add_square(blank(value=200.0), 20, 20, 16, value=30.0)
        keypoints, _ = fast_corners(image)
        assert len(keypoints) >= 4

    def test_straight_edge_is_not_a_corner(self):
        image = blank()
        image[:, 32:] = 200.0  # vertical edge through the image
        keypoints, _ = fast_corners(image)
        # Interior edge pixels have an 8-pixel bright arc: below FAST-9.
        for x, y in keypoints:
            assert not (10 < y < 54 and abs(x - 32) <= 1)

    def test_threshold_controls_sensitivity(self):
        image = add_square(blank(), 20, 20, 16, value=75.0)  # weak contrast
        strong, _ = fast_corners(image, threshold=50.0)
        weak, _ = fast_corners(image, threshold=10.0)
        assert len(weak) > len(strong)

    def test_nonmax_suppression_thins_detections(self):
        image = add_square(blank(), 20, 20, 16)
        with_nms, _ = fast_corners(image, nonmax_suppression=True)
        without, _ = fast_corners(image, nonmax_suppression=False)
        assert len(with_nms) <= len(without)

    def test_keypoints_respect_border(self):
        image = add_square(blank(), 0, 0, 10)
        keypoints, _ = fast_corners(image)
        if len(keypoints):
            assert keypoints[:, 0].min() >= 3
            assert keypoints[:, 1].min() >= 3

    def test_scores_positive(self):
        image = add_square(blank(), 20, 20, 16)
        _, scores = fast_corners(image)
        assert np.all(scores > 0)


class TestValidation:
    def test_rejects_3d_input(self):
        with pytest.raises(FastError):
            fast_corners(np.zeros((10, 10, 3)))

    def test_rejects_tiny_images(self):
        with pytest.raises(FastError):
            fast_corners(np.zeros((5, 5)))

    def test_rejects_bad_threshold(self):
        with pytest.raises(FastError):
            fast_corners(blank(), threshold=0.0)
