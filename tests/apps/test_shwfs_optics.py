"""Shack-Hartmann optics: Zernike math and frame synthesis."""

import numpy as np
import pytest

from repro.apps.shwfs.optics import (
    OpticsError,
    ShwfsOptics,
    noll_to_nm,
    reference_centers,
    simulate_shwfs_image,
    wavefront_slopes,
    zernike,
    zernike_surface,
)


class TestNollIndexing:
    @pytest.mark.parametrize("j,expected", [
        (1, (0, 0)),    # piston
        (2, (1, 1)),    # tip
        (3, (1, -1)),   # tilt
        (4, (2, 0)),    # defocus
        (5, (2, -2)),   # oblique astigmatism
        (6, (2, 2)),    # vertical astigmatism
        (7, (3, -1)),   # vertical coma
        (8, (3, 1)),    # horizontal coma
        (11, (4, 0)),   # spherical
    ])
    def test_standard_mapping(self, j, expected):
        assert noll_to_nm(j) == expected

    def test_invalid_index(self):
        with pytest.raises(OpticsError):
            noll_to_nm(0)


class TestZernikePolynomials:
    @pytest.fixture
    def grid(self):
        ys, xs = np.mgrid[0:65, 0:65]
        x = (xs - 32) / 32.0
        y = (ys - 32) / 32.0
        rho = np.sqrt(x * x + y * y)
        theta = np.arctan2(y, x)
        mask = rho <= 1.0
        return rho, theta, mask

    def test_piston_is_constant(self, grid):
        rho, theta, mask = grid
        values = zernike(1, rho, theta)
        assert np.allclose(values[mask], values[mask][0])

    def test_orthogonality_on_disk(self, grid):
        """Distinct low-order modes are (numerically) orthogonal over
        the unit disk."""
        rho, theta, mask = grid
        pairs = [(2, 3), (2, 4), (4, 6), (5, 6), (3, 7)]
        for a, b in pairs:
            za = zernike(a, rho, theta)[mask]
            zb = zernike(b, rho, theta)[mask]
            correlation = abs(np.sum(za * zb)) / np.sqrt(
                np.sum(za ** 2) * np.sum(zb ** 2)
            )
            assert correlation < 0.02, (a, b)

    def test_defocus_is_radially_symmetric(self, grid):
        rho, theta, mask = grid
        values = zernike(4, rho, theta)
        rotated = zernike(4, rho, theta + 1.3)
        assert np.allclose(values, rotated)

    def test_surface_zero_outside_disk(self):
        surface = zernike_surface([0.0, 1.0], size=33)
        assert surface[0, 0] == 0.0  # corner is outside the unit disk

    def test_surface_size_validated(self):
        with pytest.raises(OpticsError):
            zernike_surface([1.0], size=1)


class TestOpticsGeometry:
    def test_grid_dimensions(self):
        optics = ShwfsOptics(image_width=320, image_height=240,
                             subaperture_px=20)
        assert optics.grid_cols == 16
        assert optics.grid_rows == 12
        assert optics.num_subapertures == 192

    def test_misaligned_geometry_rejected(self):
        with pytest.raises(OpticsError):
            ShwfsOptics(image_width=321, image_height=240, subaperture_px=20)

    def test_reference_centers_inside_subapertures(self):
        optics = ShwfsOptics()
        centers = reference_centers(optics)
        assert centers.shape == (optics.num_subapertures, 2)
        assert centers[:, 0].max() < optics.image_width
        assert centers[:, 1].max() < optics.image_height


class TestFrameSynthesis:
    def test_flat_wavefront_centers_spots(self):
        optics = ShwfsOptics()
        image, displacements = simulate_shwfs_image(np.zeros((64, 64)), optics)
        assert image.shape == (optics.image_height, optics.image_width)
        assert np.allclose(displacements, 0.0)

    def test_uniform_ramp_displaces_all_spots_equally(self):
        optics = ShwfsOptics()
        # A pure linear ramp has a constant gradient everywhere (a
        # Zernike tilt would be clipped at the unit-disk boundary).
        surface = np.tile(np.arange(64, dtype=float) * 0.05, (64, 1))
        _, displacements = simulate_shwfs_image(surface, optics)
        dx = displacements[:, 0]
        assert np.all(dx > 0.05)
        assert np.std(dx) < 0.1 * np.abs(np.mean(dx))
        assert np.allclose(displacements[:, 1], 0.0, atol=1e-6)

    def test_displacements_clamped_inside_subapertures(self):
        optics = ShwfsOptics()
        surface = zernike_surface([0.0, 50.0], size=64)  # huge tilt
        _, displacements = simulate_shwfs_image(surface, optics)
        limit = optics.subaperture_px / 2.0
        assert np.all(np.abs(displacements) < limit)

    def test_noise_is_deterministic_by_rng(self):
        optics = ShwfsOptics()
        surface = np.zeros((64, 64))
        a, _ = simulate_shwfs_image(surface, optics, noise_rms=3.0,
                                    rng=np.random.default_rng(5))
        b, _ = simulate_shwfs_image(surface, optics, noise_rms=3.0,
                                    rng=np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_slopes_pool_to_grid(self):
        optics = ShwfsOptics()
        gx, gy = wavefront_slopes(np.zeros((64, 64)), optics)
        assert gx.shape == (optics.grid_rows, optics.grid_cols)
        assert gy.shape == (optics.grid_rows, optics.grid_cols)
