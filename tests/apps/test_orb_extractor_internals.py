"""ORB extractor internals: pyramid, budgets, downscaling."""

import numpy as np
import pytest

from repro.apps.orbslam.orb import OrbExtractor, downscale
from repro.apps.orbslam.pipeline import synthetic_scene


class TestDownscale:
    def test_factor_one_is_identity(self):
        image = synthetic_scene(seed=2)
        assert downscale(image, 1.0) is image

    def test_shape_shrinks_by_factor(self):
        image = np.zeros((120, 160))
        small = downscale(image, 2.0)
        assert small.shape == (60, 80)

    def test_floor_dimension(self):
        image = np.zeros((16, 16))
        tiny = downscale(image, 100.0)
        assert min(tiny.shape) >= 8

    def test_preserves_intensity_range(self):
        image = synthetic_scene(seed=4)
        small = downscale(image, 1.7)
        assert small.min() >= image.min()
        assert small.max() <= image.max()


class TestLevelBudgets:
    def test_budgets_sum_close_to_total(self):
        extractor = OrbExtractor(num_features=500, num_levels=4)
        budgets = [extractor._level_budget(level) for level in range(4)]
        assert sum(budgets) == pytest.approx(500, abs=4)

    def test_budgets_decay_with_level(self):
        extractor = OrbExtractor(num_features=500, num_levels=4)
        budgets = [extractor._level_budget(level) for level in range(4)]
        assert budgets == sorted(budgets, reverse=True)
        assert budgets[-1] >= 1

    def test_single_level_gets_everything(self):
        extractor = OrbExtractor(num_features=100, num_levels=1)
        assert extractor._level_budget(0) == 100


class TestExtractionDetails:
    @pytest.fixture(scope="class")
    def features(self):
        return OrbExtractor(num_features=300).extract(synthetic_scene(seed=8))

    def test_arrays_consistent(self, features):
        n = len(features)
        assert features.scores.shape == (n,)
        assert features.levels.shape == (n,)
        assert features.angles.shape == (n,)
        assert features.descriptors.shape == (n, 32)

    def test_angles_in_range(self, features):
        assert np.all(features.angles >= -np.pi)
        assert np.all(features.angles <= np.pi)

    def test_scores_positive(self, features):
        assert np.all(features.scores > 0)

    def test_levels_valid(self, features):
        assert features.levels.min() >= 0
        assert features.levels.max() < 4

    def test_stronger_threshold_fewer_features(self):
        scene = synthetic_scene(seed=8)
        loose = OrbExtractor(fast_threshold=10.0).extract(scene)
        strict = OrbExtractor(fast_threshold=60.0).extract(scene)
        assert len(strict) <= len(loose)
