"""ORB extractor and end-to-end tracking pipeline."""

import numpy as np
import pytest

from repro.apps.orbslam.orb import OrbError, OrbExtractor
from repro.apps.orbslam.pipeline import (
    OrbPipeline,
    shift_scene,
    synthetic_scene,
)


@pytest.fixture(scope="module")
def scene():
    return synthetic_scene(seed=1)


@pytest.fixture(scope="module")
def extractor():
    return OrbExtractor()


class TestExtractor:
    def test_pyramid_levels_shrink(self, extractor, scene):
        pyramid = extractor.build_pyramid(scene)
        assert len(pyramid) == extractor.num_levels
        for smaller, larger in zip(pyramid[1:], pyramid):
            assert smaller.shape[0] < larger.shape[0]

    def test_features_extracted(self, extractor, scene):
        features = extractor.extract(scene)
        assert len(features) > 50
        assert features.descriptors.shape == (len(features), 32)
        assert features.keypoints.shape == (len(features), 2)

    def test_budget_respected(self, scene):
        extractor = OrbExtractor(num_features=40)
        features = extractor.extract(scene)
        assert len(features) <= 40 * 1.1

    def test_multiple_levels_contribute(self, extractor, scene):
        features = extractor.extract(scene)
        assert len(np.unique(features.levels)) >= 2

    def test_keypoints_in_level0_coordinates(self, extractor, scene):
        features = extractor.extract(scene)
        assert features.keypoints[:, 0].max() < scene.shape[1]
        assert features.keypoints[:, 1].max() < scene.shape[0]

    def test_blank_image_yields_nothing(self, extractor):
        features = extractor.extract(np.full((120, 160), 80.0))
        assert len(features) == 0

    def test_config_validation(self):
        with pytest.raises(OrbError):
            OrbExtractor(num_features=0)
        with pytest.raises(OrbError):
            OrbExtractor(num_levels=0)
        with pytest.raises(OrbError):
            OrbExtractor(scale_factor=1.0)


class TestTracking:
    def test_known_shift_recovered(self, scene):
        pipeline = OrbPipeline()
        result = pipeline.track(scene, shift_scene(scene, 6, -2))
        assert result.num_matches > 20
        dx, dy = result.estimated_shift
        assert dx == pytest.approx(6.0, abs=1.0)
        assert dy == pytest.approx(-2.0, abs=1.0)

    def test_identical_frames_zero_shift(self, scene):
        pipeline = OrbPipeline()
        result = pipeline.track(scene, scene)
        dx, dy = result.estimated_shift
        assert abs(dx) < 0.5
        assert abs(dy) < 0.5

    def test_unrelated_frames_match_poorly(self):
        pipeline = OrbPipeline()
        a = synthetic_scene(seed=1)
        b = synthetic_scene(seed=99)
        related = pipeline.track(a, shift_scene(a, 3, 3)).num_matches
        unrelated = pipeline.track(a, b).num_matches
        assert unrelated < related


class TestSyntheticScene:
    def test_deterministic(self):
        assert np.array_equal(synthetic_scene(seed=5), synthetic_scene(seed=5))

    def test_shift_wraps(self):
        scene = synthetic_scene()
        assert np.array_equal(shift_scene(scene, 0, 0), scene)
        roundtrip = shift_scene(shift_scene(scene, 7, 3), -7, -3)
        assert np.array_equal(roundtrip, scene)


class TestSceneRasterization:
    def test_vectorized_scene_identical(self):
        for seed in (0, 1, 9):
            fast = synthetic_scene(seed=seed, vectorized=True)
            slow = synthetic_scene(seed=seed, vectorized=False)
            assert np.array_equal(fast, slow)

    def test_odd_geometry_identical(self):
        fast = synthetic_scene(width=97, height=61, blobs=33,
                               seed=4, vectorized=True)
        slow = synthetic_scene(width=97, height=61, blobs=33,
                               seed=4, vectorized=False)
        assert np.array_equal(fast, slow)

    def test_zero_blobs_background_only(self):
        scene = synthetic_scene(blobs=0)
        assert np.all(scene == 20.0)

    def test_injection_uses_slice_loop(self):
        from repro.robustness.faults import FaultPlan
        from repro.robustness.inject import inject_faults

        clean = synthetic_scene(seed=2, vectorized=False)
        with inject_faults(FaultPlan(seed=0)):
            injected = synthetic_scene(seed=2, vectorized=True)
        assert np.array_equal(injected, clean)
