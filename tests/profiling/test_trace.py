"""Trace-driven workloads."""

import io

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.kernels.workload import Direction
from repro.model.framework import Framework
from repro.profiling.trace import (
    RecordedTrace,
    TracePattern,
    workload_from_trace,
)
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.board import get_board


def sequential_trace(n=1024, access_size=4, write_every=0):
    offsets = np.arange(n, dtype=np.int64) * access_size
    writes = np.zeros(n, dtype=bool)
    if write_every:
        writes[write_every - 1 :: write_every] = True
    return RecordedTrace(offsets=offsets, is_write=writes,
                         access_size=access_size)


class TestRecordedTrace:
    def test_properties(self):
        trace = sequential_trace(100, write_every=2)
        assert trace.num_accesses == 100
        assert trace.extent_bytes == 400
        assert trace.footprint_bytes == 400
        assert trace.write_fraction == pytest.approx(0.5)

    def test_from_addresses_rebases(self):
        trace = RecordedTrace.from_addresses(
            np.array([0x7000_1000, 0x7000_1004]),
            np.array([False, True]),
        )
        assert trace.offsets.tolist() == [0, 4]

    def test_validation(self):
        with pytest.raises(ProfilingError):
            RecordedTrace(offsets=np.array([]), is_write=np.array([]))
        with pytest.raises(ProfilingError):
            RecordedTrace(offsets=np.array([-4]), is_write=np.array([False]))
        with pytest.raises(ProfilingError):
            RecordedTrace(offsets=np.array([0]), is_write=np.array([False]),
                          access_size=0)


class TestLoaders:
    def test_csv_round_trip(self):
        text = "offset,rw\n0,R\n4,W\n8,r\n64,w\n"
        trace = RecordedTrace.from_csv(io.StringIO(text))
        assert trace.offsets.tolist() == [0, 4, 8, 64]
        assert trace.is_write.tolist() == [False, True, False, True]

    def test_csv_numeric_rw(self):
        trace = RecordedTrace.from_csv(io.StringIO("0,0\n4,1\n"))
        assert trace.is_write.tolist() == [False, True]

    def test_csv_empty_rejected(self):
        with pytest.raises(ProfilingError):
            RecordedTrace.from_csv(io.StringIO("offset,rw\n"))

    def test_csv_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,R\n128,W\n")
        trace = RecordedTrace.from_csv(path)
        assert trace.num_accesses == 2

    def test_npz_round_trip(self, tmp_path):
        original = sequential_trace(64, write_every=4)
        path = tmp_path / "trace.npz"
        original.save_npz(path)
        loaded = RecordedTrace.from_npz(path)
        assert np.array_equal(loaded.offsets, original.offsets)
        assert np.array_equal(loaded.is_write, original.is_write)
        assert loaded.access_size == original.access_size

    def test_npz_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, offsets=np.array([0]))
        with pytest.raises(ProfilingError):
            RecordedTrace.from_npz(path)


class TestTracePattern:
    def test_replay_addresses(self):
        region = MemoryRegion(name="r", base=0x4000, size=1 << 20,
                              kind=RegionKind.PINNED)
        buffer = region.allocate("traced", 8192, element_size=4)
        trace = sequential_trace(16)
        stream = TracePattern(buffer="traced", trace=trace).build(
            {"traced": buffer}, 64
        )
        assert stream.addresses[0] == buffer.base
        assert stream.addresses[-1] == buffer.base + 60
        assert stream.region_kind is RegionKind.PINNED

    def test_oversized_trace_rejected(self):
        region = MemoryRegion(name="r", base=0, size=1 << 20,
                              kind=RegionKind.PINNED)
        buffer = region.allocate("traced", 16, element_size=4)
        trace = sequential_trace(1024)
        with pytest.raises(ProfilingError):
            TracePattern(buffer="traced", trace=trace).build(
                {"traced": buffer}, 64
            )


class TestWorkloadFromTrace:
    def test_gpu_only_workload(self):
        workload = workload_from_trace("traced-app", sequential_trace(4096))
        assert workload.gpu_kernel is not None
        assert workload.cpu_task is None
        assert workload.buffer("traced").shared

    def test_with_cpu_trace(self):
        workload = workload_from_trace(
            "traced-app", sequential_trace(4096),
            cpu_trace=sequential_trace(512),
        )
        assert workload.cpu_task is not None
        assert not workload.buffer("cpu_traced").shared

    def test_tunable_end_to_end(self):
        """A recorded trace flows through the whole Fig-2 pipeline."""
        workload = workload_from_trace(
            "traced-app", sequential_trace(8192, write_every=2),
            gpu_flops_per_access=8.0, iterations=4,
        )
        report = Framework().tune(workload, get_board("tx2"))
        assert report.recommendation is not None
        assert report.profile.gpu_transactions > 0

    def test_resident_direction_skips_copies(self):
        workload = workload_from_trace(
            "traced-app", sequential_trace(1024),
            shared_direction=Direction.RESIDENT,
        )
        assert workload.copied_bytes_per_iteration == 0

    def test_iterations_validated(self):
        with pytest.raises(ProfilingError):
            workload_from_trace("x", sequential_trace(16), iterations=0)
