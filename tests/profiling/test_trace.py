"""Trace-driven workloads."""

import io

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.kernels.workload import Direction
from repro.model.framework import Framework
from repro.profiling.trace import (
    RecordedTrace,
    TracePattern,
    workload_from_trace,
)
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.board import get_board


def sequential_trace(n=1024, access_size=4, write_every=0):
    offsets = np.arange(n, dtype=np.int64) * access_size
    writes = np.zeros(n, dtype=bool)
    if write_every:
        writes[write_every - 1 :: write_every] = True
    return RecordedTrace(offsets=offsets, is_write=writes,
                         access_size=access_size)


class TestRecordedTrace:
    def test_properties(self):
        trace = sequential_trace(100, write_every=2)
        assert trace.num_accesses == 100
        assert trace.extent_bytes == 400
        assert trace.footprint_bytes == 400
        assert trace.write_fraction == pytest.approx(0.5)

    def test_from_addresses_rebases(self):
        trace = RecordedTrace.from_addresses(
            np.array([0x7000_1000, 0x7000_1004]),
            np.array([False, True]),
        )
        assert trace.offsets.tolist() == [0, 4]

    def test_validation(self):
        with pytest.raises(ProfilingError):
            RecordedTrace(offsets=np.array([]), is_write=np.array([]))
        with pytest.raises(ProfilingError):
            RecordedTrace(offsets=np.array([-4]), is_write=np.array([False]))
        with pytest.raises(ProfilingError):
            RecordedTrace(offsets=np.array([0]), is_write=np.array([False]),
                          access_size=0)


class TestLoaders:
    def test_csv_round_trip(self):
        text = "offset,rw\n0,R\n4,W\n8,r\n64,w\n"
        trace = RecordedTrace.from_csv(io.StringIO(text))
        assert trace.offsets.tolist() == [0, 4, 8, 64]
        assert trace.is_write.tolist() == [False, True, False, True]

    def test_csv_numeric_rw(self):
        trace = RecordedTrace.from_csv(io.StringIO("0,0\n4,1\n"))
        assert trace.is_write.tolist() == [False, True]

    def test_csv_empty_rejected(self):
        with pytest.raises(ProfilingError):
            RecordedTrace.from_csv(io.StringIO("offset,rw\n"))

    def test_csv_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,R\n128,W\n")
        trace = RecordedTrace.from_csv(path)
        assert trace.num_accesses == 2

    def test_npz_round_trip(self, tmp_path):
        original = sequential_trace(64, write_every=4)
        path = tmp_path / "trace.npz"
        original.save_npz(path)
        loaded = RecordedTrace.from_npz(path)
        assert np.array_equal(loaded.offsets, original.offsets)
        assert np.array_equal(loaded.is_write, original.is_write)
        assert loaded.access_size == original.access_size

    def test_npz_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, offsets=np.array([0]))
        with pytest.raises(ProfilingError):
            RecordedTrace.from_npz(path)


class TestTracePattern:
    def test_replay_addresses(self):
        region = MemoryRegion(name="r", base=0x4000, size=1 << 20,
                              kind=RegionKind.PINNED)
        buffer = region.allocate("traced", 8192, element_size=4)
        trace = sequential_trace(16)
        stream = TracePattern(buffer="traced", trace=trace).build(
            {"traced": buffer}, 64
        )
        assert stream.addresses[0] == buffer.base
        assert stream.addresses[-1] == buffer.base + 60
        assert stream.region_kind is RegionKind.PINNED

    def test_oversized_trace_rejected(self):
        region = MemoryRegion(name="r", base=0, size=1 << 20,
                              kind=RegionKind.PINNED)
        buffer = region.allocate("traced", 16, element_size=4)
        trace = sequential_trace(1024)
        with pytest.raises(ProfilingError):
            TracePattern(buffer="traced", trace=trace).build(
                {"traced": buffer}, 64
            )


class TestWorkloadFromTrace:
    def test_gpu_only_workload(self):
        workload = workload_from_trace("traced-app", sequential_trace(4096))
        assert workload.gpu_kernel is not None
        assert workload.cpu_task is None
        assert workload.buffer("traced").shared

    def test_with_cpu_trace(self):
        workload = workload_from_trace(
            "traced-app", sequential_trace(4096),
            cpu_trace=sequential_trace(512),
        )
        assert workload.cpu_task is not None
        assert not workload.buffer("cpu_traced").shared

    def test_tunable_end_to_end(self):
        """A recorded trace flows through the whole Fig-2 pipeline."""
        workload = workload_from_trace(
            "traced-app", sequential_trace(8192, write_every=2),
            gpu_flops_per_access=8.0, iterations=4,
        )
        report = Framework().tune(workload, get_board("tx2"))
        assert report.recommendation is not None
        assert report.profile.gpu_transactions > 0

    def test_resident_direction_skips_copies(self):
        workload = workload_from_trace(
            "traced-app", sequential_trace(1024),
            shared_direction=Direction.RESIDENT,
        )
        assert workload.copied_bytes_per_iteration == 0

    def test_iterations_validated(self):
        with pytest.raises(ProfilingError):
            workload_from_trace("x", sequential_trace(16), iterations=0)


# ----------------------------------------------------------------------
# vectorized CSV decoder vs the csv-module reference
# ----------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robustness.faults import FaultPlan
from repro.robustness.inject import inject_faults


def parse_both(text, access_size=4):
    fast = RecordedTrace.from_csv(io.StringIO(text), access_size=access_size,
                                  vectorized=True)
    slow = RecordedTrace.from_csv(io.StringIO(text), access_size=access_size,
                                  vectorized=False)
    return fast, slow


EDGE_CASE_TEXTS = (
    "offset,rw\n0,R\n4,W\n8,r\n64,w\n",       # plain
    "0,0\n4,1\n",                             # numeric flags
    "\n\noffset,rw\n\n12,w\n\n8,r\n",         # blank lines everywhere
    "offset,rw\r\n16,W\r\n20,R\r\n",          # CRLF endings
    "0,R\r4,W\r",                             # bare-CR endings
    "﻿offset,rw\n0,w\n",                 # UTF-8 BOM
    " 8 , W \n 12 , r \n",                    # padded cells
    "08,w\n012,R\n",                          # leading zeros
    "# trace dump\n0,r\n4,w\n",               # non-numeric first line
    "0,r,extra,cols\n4,w,x\n",                # extra columns ignored
    "0,write\n4,read\n8,st\n12,ld\n",         # long flag spellings
    "0,R\n4,W",                               # no trailing newline
    "999999999999999999,w\n0,r\n",            # 18-digit offset
    '"0","W"\n"4","r"\n',                     # quoted cells
)


class TestVectorizedCsv:
    @pytest.mark.parametrize("text", EDGE_CASE_TEXTS)
    def test_equivalent_to_scalar(self, text):
        fast, slow = parse_both(text)
        assert fast.offsets.tolist() == slow.offsets.tolist()
        assert fast.is_write.tolist() == slow.is_write.tolist()
        assert fast.access_size == slow.access_size

    @pytest.mark.parametrize("text", [
        "5\n0,r\n",            # row missing the rw cell
        "0,r\n7\n",            # ...in any position
    ])
    def test_short_row_error_identical(self, text):
        with pytest.raises(ProfilingError) as fast_err:
            RecordedTrace.from_csv(io.StringIO(text), vectorized=True)
        with pytest.raises(ProfilingError) as slow_err:
            RecordedTrace.from_csv(io.StringIO(text), vectorized=False)
        assert str(fast_err.value) == str(slow_err.value)

    @pytest.mark.parametrize("text", [
        "-4,r\n",                       # negative offset
        "--5,w\n",
        "18446744073709551615,w\n",     # > int64
        "offset,rw\n",                  # no data rows
        "",                             # empty file
    ])
    def test_rejections_raise_same_type(self, text):
        for vectorized in (True, False):
            with pytest.raises(
                    (ProfilingError, OverflowError, ValueError)) as err:
                RecordedTrace.from_csv(io.StringIO(text),
                                       vectorized=vectorized)
            if vectorized:
                first_type = type(err.value)
            else:
                assert type(err.value) is first_type

    def test_injection_uses_scalar_path(self):
        text = "0,R\n4,W\n8,r\n"
        clean = RecordedTrace.from_csv(io.StringIO(text), vectorized=False)
        with inject_faults(FaultPlan(seed=0)):
            injected = RecordedTrace.from_csv(io.StringIO(text),
                                              vectorized=True)
        assert injected.offsets.tolist() == clean.offsets.tolist()
        assert injected.is_write.tolist() == clean.is_write.tolist()

    @given(
        offsets=st.lists(
            st.integers(min_value=0, max_value=10 ** 17),
            min_size=1, max_size=60,
        ),
        flags=st.lists(
            st.sampled_from(["r", "w", "R", "W", "0", "1", "read", "write",
                             "st", "ld", "true", "false"]),
            min_size=1, max_size=60,
        ),
        header=st.booleans(),
        crlf=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_traces_agree(self, offsets, flags, header, crlf):
        rows = [f"{o},{f}" for o, f in zip(offsets, flags)]
        text = ("offset,rw\n" if header else "") + "\n".join(rows) + "\n"
        if crlf:
            text = text.replace("\n", "\r\n")
        fast, slow = parse_both(text)
        assert fast.offsets.tolist() == slow.offsets.tolist()
        assert fast.is_write.tolist() == slow.is_write.tolist()

    @given(
        n=st.integers(min_value=1, max_value=200),
        access_size=st.sampled_from([1, 4, 8, 64]),
        seed=st.integers(min_value=0, max_value=2 ** 31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_npz_round_trip(self, tmp_path_factory, n, access_size,
                                     seed):
        rng = np.random.default_rng(seed)
        original = RecordedTrace(
            offsets=rng.integers(0, 1 << 40, size=n).astype(np.int64),
            is_write=rng.random(n) < 0.5,
            access_size=access_size,
        )
        path = tmp_path_factory.mktemp("npz") / "trace.npz"
        original.save_npz(path)
        loaded = RecordedTrace.from_npz(path)
        assert np.array_equal(loaded.offsets, original.offsets)
        assert np.array_equal(loaded.is_write, original.is_write)
        assert loaded.access_size == original.access_size
