"""Profiler: counter extraction from simulator runs."""

import pytest

from repro.errors import ProfilingError
from repro.kernels.ops import OpMix
from repro.kernels.patterns import LinearPattern, StridedPattern
from repro.kernels.task import CpuTask, GpuKernel
from repro.kernels.workload import BufferSpec, Direction, Workload
from repro.profiling.counters import AppProfile
from repro.profiling.profiler import Profiler
from repro.soc.board import jetson_tx2
from repro.soc.soc import SoC


def make_workload(cpu=True):
    buffers = (
        BufferSpec("frame", 64 * 1024, shared=True, direction=Direction.TO_GPU),
    )
    cpu_task = CpuTask(
        name="pre",
        ops=OpMix.per_element({"mul": 1.0}, 64 * 1024),
        pattern=StridedPattern(buffer="frame", stride_elements=3, repeats=2),
    ) if cpu else None
    gpu = GpuKernel(
        name="k",
        ops=OpMix.per_element({"fma": 4.0}, 64 * 1024),
        pattern=LinearPattern(buffer="frame", read_write_pairs=False),
    )
    return Workload(name="prof", buffers=buffers, cpu_task=cpu_task,
                    gpu_kernel=gpu, iterations=4)


@pytest.fixture
def profiler():
    return Profiler(SoC(jetson_tx2()))


class TestProfiler:
    def test_profile_extracts_counters(self, profiler):
        profile = profiler.profile(make_workload(), model="SC")
        assert profile.model == "SC"
        assert profile.board_name == "tx2"
        assert 0.0 <= profile.cpu_l1_miss_rate <= 1.0
        assert 0.0 <= profile.gpu_l1_hit_rate <= 1.0
        assert profile.gpu_transactions > 0
        assert profile.kernel_runtime_s > 0
        assert profile.total_runtime_s >= profile.kernel_runtime_s

    def test_transaction_size_is_coalesced(self, profiler):
        profile = profiler.profile(make_workload(), model="SC")
        # linear float reads coalesce to 64-byte lines
        assert profile.gpu_transaction_size == pytest.approx(64.0)

    def test_copy_time_positive_under_sc(self, profiler):
        profile = profiler.profile(make_workload(), model="SC")
        assert profile.copy_time_s > 0

    def test_zero_copy_profile_has_no_copy_time(self, profiler):
        profile = profiler.profile(make_workload(), model="ZC")
        assert profile.copy_time_s == 0.0

    def test_gpu_only_workload(self, profiler):
        profile = profiler.profile(make_workload(cpu=False), model="SC")
        assert profile.cpu_time_s == 0.0
        assert profile.cpu_l1_miss_rate == 0.0

    def test_workload_without_kernel_rejected(self, profiler):
        workload = Workload(
            name="cpu-only",
            buffers=(BufferSpec("b", 128),),
            cpu_task=CpuTask(name="t", ops=OpMix({"add": 1})),
        )
        with pytest.raises(ProfilingError):
            profiler.profile(workload, model="SC")


class TestAppProfileValidation:
    def base(self, **kwargs):
        defaults = dict(
            workload_name="w", board_name="tx2", model="SC",
            cpu_l1_miss_rate=0.2, cpu_llc_miss_rate=0.1, cpu_time_s=1e-4,
            gpu_l1_hit_rate=0.3, gpu_transactions=1000,
            gpu_transaction_size=64.0, kernel_runtime_s=1e-4,
            copy_time_s=1e-5, total_runtime_s=3e-4,
        )
        defaults.update(kwargs)
        return AppProfile(**defaults)

    def test_valid(self):
        profile = self.base()
        assert profile.gpu_bytes_requested == pytest.approx(64000.0)
        assert profile.cpu_gpu_time_ratio == pytest.approx(1.0)

    def test_rate_bounds(self):
        with pytest.raises(ProfilingError):
            self.base(cpu_l1_miss_rate=1.2)

    def test_copy_exceeding_total_rejected(self):
        with pytest.raises(ProfilingError):
            self.base(copy_time_s=1.0)

    def test_time_ratio_needs_kernel(self):
        profile = self.base(kernel_runtime_s=0.0, copy_time_s=0.0,
                            total_runtime_s=1e-4)
        with pytest.raises(ProfilingError):
            profile.cpu_gpu_time_ratio
