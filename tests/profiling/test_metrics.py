"""The paper's cache-usage metrics (eqns 1-2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.profiling.metrics import cpu_cache_usage, gpu_cache_usage
from repro.units import gbps, us


class TestCpuCacheUsage:
    def test_equation_form(self):
        # 40 % L1 misses, 10 % LLC misses -> 36 % of requests served by LLC
        assert cpu_cache_usage(0.4, 0.1) == pytest.approx(36.0)

    def test_perfect_l1_means_zero_llc_usage(self):
        assert cpu_cache_usage(0.0, 0.5) == 0.0

    def test_all_miss_everywhere_means_zero(self):
        # Every request goes to DRAM: the LLC does no useful work.
        assert cpu_cache_usage(1.0, 1.0) == 0.0

    def test_table2_tx2_point(self):
        """The SH-WFS TX2 profile (19.8 %) corresponds to ~20 % L1
        misses served almost entirely by the LLC."""
        assert cpu_cache_usage(0.198, 0.0) == pytest.approx(19.8)

    @pytest.mark.parametrize("l1,llc", [(-0.1, 0.0), (1.1, 0.0), (0.0, 2.0)])
    def test_rates_validated(self, l1, llc):
        with pytest.raises(ModelError):
            cpu_cache_usage(l1, llc)

    @given(l1=st.floats(0, 1), llc=st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_property_bounded_percentage(self, l1, llc):
        usage = cpu_cache_usage(l1, llc)
        assert 0.0 <= usage <= 100.0


class TestGpuCacheUsage:
    def test_equation_form(self):
        # 1M transactions x 64 B, no L1 hits, 1 ms kernel => 64 GB/s
        # demand; with a 214.64 GB/s peak that is ~29.8 %.
        usage = gpu_cache_usage(
            transactions=1_000_000,
            transaction_size=64.0,
            l1_hit_rate=0.0,
            kernel_runtime_s=1e-3,
            max_throughput=gbps(214.64),
        )
        assert usage == pytest.approx(100 * 64e9 / 214.64e9, rel=1e-6)

    def test_l1_hits_reduce_llc_demand(self):
        kwargs = dict(transactions=1000, transaction_size=64.0,
                      kernel_runtime_s=us(100), max_throughput=gbps(100.0))
        full = gpu_cache_usage(l1_hit_rate=0.0, **kwargs)
        half = gpu_cache_usage(l1_hit_rate=0.5, **kwargs)
        assert half == pytest.approx(full / 2)

    def test_perfect_l1_means_zero(self):
        assert gpu_cache_usage(1000, 64.0, 1.0, us(100), gbps(100.0)) == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            gpu_cache_usage(1000, 64.0, 1.5, us(100), gbps(100.0))
        with pytest.raises(ModelError):
            gpu_cache_usage(1000, 64.0, 0.5, 0.0, gbps(100.0))
        with pytest.raises(ModelError):
            gpu_cache_usage(1000, 64.0, 0.5, us(100), 0.0)
        with pytest.raises(ModelError):
            gpu_cache_usage(-1, 64.0, 0.5, us(100), gbps(100.0))

    @given(
        transactions=st.integers(0, 10 ** 7),
        hit=st.floats(0, 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_nonnegative(self, transactions, hit):
        usage = gpu_cache_usage(transactions, 32.0, hit, us(50), gbps(100.0))
        assert usage >= 0.0
