"""CLI surface of the serving layer: ``repro serve``."""

import json

from repro.cli import main


def test_serve_requests_file(tmp_path, capsys):
    requests = [
        {"board": "tx2", "app": "shwfs", "tenant": "alice"},
        {"board": "tx2", "app": "shwfs", "tenant": "bob"},
    ]
    path = tmp_path / "requests.json"
    path.write_text(json.dumps(requests))
    assert main(["serve", str(path),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "Served 2 request(s)" in out
    assert "alice" in out and "bob" in out
    assert "shed: 0, errors: 0" in out


def test_serve_without_input_is_an_error(capsys):
    assert main(["serve"]) == 2
    err = capsys.readouterr().err
    assert "error[SERVE_BAD_REQUEST]" in err


def test_serve_rejects_unknown_fields(tmp_path, capsys):
    path = tmp_path / "requests.json"
    path.write_text(json.dumps([{"board": "tx2", "app": "shwfs",
                                 "frobnicate": True}]))
    assert main(["serve", str(path)]) == 2
    err = capsys.readouterr().err
    assert "frobnicate" in err


def test_serve_bench_smoke(tmp_path, capsys):
    # the smallest meaningful self-drive: one window's worth of traffic
    assert main(["serve", "--bench", "--requests", "6",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Serve bench — 6 requests" in out
    assert "coalesced:" in out and "speedup:" in out
