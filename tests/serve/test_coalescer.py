"""Coalescer invariants: keyed windows, dedup planning, shed answers."""

import math

import pytest

from repro.errors import ServeError
from repro.serve.coalescer import (
    BatchKey,
    Coalescer,
    PendingItem,
    TuneRequest,
    plan_unique_jobs,
    shed_report,
)


def _key(**overrides):
    base = dict(characterization="abcd" * 16, board="tx2",
                current_model="SC", strict=False)
    base.update(overrides)
    return BatchKey(**base)


def _item(board="tx2", app="shwfs", **overrides):
    return PendingItem(request=TuneRequest(board=board, app=app,
                                           **overrides),
                       future=None)


class TestRequestValidation:
    def test_app_and_workload_are_mutually_exclusive(self):
        with pytest.raises(ServeError) as excinfo:
            TuneRequest(board="tx2").validate()
        assert excinfo.value.code == "SERVE_BAD_REQUEST"

    def test_unknown_app_rejected(self):
        with pytest.raises(ServeError) as excinfo:
            TuneRequest(board="tx2", app="doom").validate()
        assert excinfo.value.code == "SERVE_BAD_REQUEST"

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ServeError):
            TuneRequest(board="tx2", app="shwfs", deadline_s=0.0).validate()

    def test_valid_request_passes(self):
        TuneRequest(board="tx2", app="shwfs", deadline_s=1.0).validate()


class TestCoalescer:
    def test_bad_config_rejected(self):
        with pytest.raises(ServeError):
            Coalescer(window_s=-1.0)
        with pytest.raises(ServeError):
            Coalescer(max_batch=0)

    def test_first_add_opens_batch(self):
        coalescer = Coalescer()
        batch, opened, full = coalescer.add(_key(), object(), _item())
        assert opened and not full
        assert len(batch) == 1 and len(coalescer) == 1

    def test_batches_never_mix_keys(self):
        coalescer = Coalescer()
        keys = [_key(), _key(current_model="ZC"), _key(strict=True),
                _key(board="xavier"), _key(characterization="ef01" * 16)]
        for key in keys:
            for _ in range(3):
                coalescer.add(key, object(), _item())
        batches = coalescer.open_batches
        assert len(batches) == len(keys)
        for batch in batches:
            assert len(batch) == 3
        # every queued item sits under exactly its own key
        assert {batch.key for batch in batches} == set(keys)

    def test_size_window_closes_batch(self):
        coalescer = Coalescer(max_batch=2)
        _, _, full = coalescer.add(_key(), object(), _item())
        assert not full
        _, _, full = coalescer.add(_key(), object(), _item())
        assert full

    def test_pop_if_ignores_successor_batch(self):
        coalescer = Coalescer()
        stale, _, _ = coalescer.add(_key(), object(), _item())
        assert coalescer.pop(_key()) is stale
        fresh, _, _ = coalescer.add(_key(), object(), _item())
        # the stale batch's timer must not steal the fresh window
        assert coalescer.pop_if(_key(), stale) is None
        assert coalescer.pop_if(_key(), fresh) is fresh

    def test_flush_drains_everything(self):
        coalescer = Coalescer()
        coalescer.add(_key(), object(), _item())
        coalescer.add(_key(board="nano"), object(), _item(board="nano"))
        assert len(coalescer.flush()) == 2
        assert len(coalescer) == 0 and coalescer.flush() == []


class TestUniqueJobPlanning:
    def test_identical_app_requests_collapse(self):
        items = [_item(), _item(), _item(app="orbslam"), _item()]
        jobs = plan_unique_jobs(items)
        assert [len(job.items) for job in jobs] == [3, 1]
        assert jobs[0].items == [items[0], items[1], items[3]]

    def test_explicit_workloads_never_deduplicate(self):
        from repro.cli import _get_pipeline

        workload = _get_pipeline("shwfs").workload(board_name="tx2")
        items = [
            PendingItem(request=TuneRequest(board="tx2", workload=workload),
                        future=None)
            for _ in range(3)
        ]
        assert [len(job.items) for job in plan_unique_jobs(items)] == [1, 1, 1]

    def test_job_order_follows_first_appearance(self):
        items = [_item(app="orbslam"), _item(), _item(app="orbslam")]
        jobs = plan_unique_jobs(items)
        assert jobs[0].items[0].request.app == "orbslam"
        assert jobs[1].items[0].request.app == "shwfs"


class TestShedReport:
    def test_shed_report_is_coded_keep_current(self):
        request = TuneRequest(board="tx2", app="shwfs", current_model="zc")
        report = shed_report(request, "SERVE_OVERLOADED", "queue full")
        rec = report.recommendation
        assert report.workload_name == "shwfs"
        assert report.current_model == "ZC"
        assert rec.model.value == "keep current"
        assert any("request shed — SERVE_OVERLOADED: queue full" in caveat
                   for caveat in rec.caveats)
        assert math.isnan(report.gpu_cache_usage_pct)
