"""Tests for the ``repro.serve`` tuning-as-a-service layer."""
