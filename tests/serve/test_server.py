"""TuneServer end-to-end: transparency, backpressure, deadlines,
error isolation.

The load-bearing invariant is *answer transparency*: a batched answer
must be bit-identical to what a serial ``Framework.tune`` returns for
the same request.  Reports carry NaN fields (degraded thresholds), so
identity is asserted on a JSON fingerprint — NaN serializes
deterministically — rather than dataclass ``==``.
"""

import asyncio
import dataclasses
import json

import pytest

from repro.errors import ReproError, ServeError
from repro.model.framework import Framework
from repro.serve import ServeConfig, TuneRequest, TuneServer, serve_all
from repro.soc.board import get_board

#: A window generous enough that every concurrently submitted request
#: lands in its key's first batch, keeping the tests deterministic.
WIDE = ServeConfig(window_s=0.1)


def fingerprint(report):
    """Bit-stable identity for a TuningReport (NaN-safe)."""
    return json.dumps(dataclasses.asdict(report), sort_keys=True,
                      default=str)


@pytest.fixture(scope="module")
def warm_framework(tmp_path_factory):
    """One framework over a warm characterization store."""
    cache_dir = str(tmp_path_factory.mktemp("serve-store"))
    framework = Framework(cache_dir=cache_dir)
    for name in ("tx2", "xavier"):
        framework.characterize(get_board(name))
    return framework


class TestAnswerTransparency:
    def test_batched_answers_bit_identical_to_serial(self, warm_framework):
        from repro.cli import _get_pipeline

        requests = [
            TuneRequest(board="tx2", app="shwfs", tenant="a"),
            TuneRequest(board="tx2", app="shwfs", tenant="b"),
            TuneRequest(board="tx2", app="orbslam", tenant="c"),
            TuneRequest(board="xavier", app="shwfs", tenant="d"),
            TuneRequest(board="tx2", app="shwfs", tenant="e"),
        ]
        serial = []
        for request in requests:
            workload = _get_pipeline(request.app).workload(
                board_name=request.board)
            serial.append(warm_framework.tune(
                workload, get_board(request.board),
                current_model=request.current_model,
                strict=request.strict))

        answers = serve_all(requests, warm_framework, WIDE)

        assert [answer.request.tenant for answer in answers] == \
            ["a", "b", "c", "d", "e"]
        assert all(answer.ok for answer in answers)
        for answer, report in zip(answers, serial):
            assert fingerprint(answer.report) == fingerprint(report)

    def test_duplicate_requests_share_one_tune(self, warm_framework):
        requests = [TuneRequest(board="tx2", app="shwfs",
                                tenant=f"t{i}") for i in range(4)]
        answers = serve_all(requests, warm_framework, WIDE)
        assert all(answer.batch_size == 4 for answer in answers)
        assert all(answer.coalesced_with == 3 for answer in answers)
        # dedup shares the very report object across the duplicates
        assert len({id(answer.report) for answer in answers}) == 1

    def test_incompatible_keys_never_share_a_batch(self, warm_framework):
        requests = (
            [TuneRequest(board="tx2", app="shwfs")] * 3
            + [TuneRequest(board="tx2", app="shwfs",
                           current_model="ZC")] * 2
            + [TuneRequest(board="xavier", app="shwfs")]
        )
        answers = serve_all(requests, warm_framework, WIDE)
        assert [answer.batch_size for answer in answers] == \
            [3, 3, 3, 2, 2, 1]
        assert answers[3].report.current_model == "ZC"
        assert answers[0].report.current_model == "SC"


class TestBackpressure:
    def test_overload_sheds_with_coded_caveat(self, warm_framework):
        config = ServeConfig(window_s=0.1, max_pending=2)
        requests = [TuneRequest(board="tx2", app="shwfs",
                                tenant=f"t{i}") for i in range(6)]
        answers = serve_all(requests, warm_framework, config)
        served = [answer for answer in answers if answer.ok]
        shed = [answer for answer in answers if answer.shed]
        assert len(served) == 2 and len(shed) == 4
        for answer in shed:
            rec = answer.report.recommendation
            assert rec.model.value == "keep current"
            assert any("SERVE_OVERLOADED" in caveat
                       for caveat in rec.caveats)

    def test_shed_answer_never_raises_in_strict_mode(self, warm_framework):
        config = ServeConfig(window_s=0.05, max_pending=1)
        requests = [TuneRequest(board="tx2", app="shwfs", strict=True),
                    TuneRequest(board="tx2", app="shwfs", strict=True)]
        answers = serve_all(requests, warm_framework, config)
        assert answers[0].ok and answers[1].shed


class TestDeadlines:
    def test_expired_queue_deadline_sheds(self, warm_framework):
        requests = [
            TuneRequest(board="tx2", app="shwfs", deadline_s=1e-4),
            TuneRequest(board="tx2", app="shwfs"),
        ]
        answers = serve_all(requests, warm_framework, WIDE)
        assert answers[0].shed
        caveats = answers[0].report.recommendation.caveats
        assert any("DEADLINE_EXCEEDED" in caveat for caveat in caveats)
        assert answers[1].ok

    def test_generous_deadline_is_served(self, warm_framework):
        answers = serve_all(
            [TuneRequest(board="tx2", app="shwfs", deadline_s=30.0)],
            warm_framework, WIDE)
        assert answers[0].ok


class TestErrorIsolation:
    def test_one_failing_job_spares_its_neighbours(
            self, warm_framework, monkeypatch):
        real_tune = warm_framework.tune

        def poisoned_tune_many(*args, **kwargs):
            raise ReproError("batched path poisoned", code="TEST_BOOM")

        def orb_hating_tune(workload, board, **kwargs):
            if "orb" in workload.name:
                raise ReproError("orb job fails", code="TEST_ORB")
            return real_tune(workload, board, **kwargs)

        monkeypatch.setattr(warm_framework, "tune_many",
                            poisoned_tune_many)
        monkeypatch.setattr(warm_framework, "tune", orb_hating_tune)
        requests = [TuneRequest(board="tx2", app="shwfs"),
                    TuneRequest(board="tx2", app="orbslam")]
        answers = serve_all(requests, warm_framework, WIDE)
        assert answers[0].ok
        assert answers[1].status == "error"
        assert answers[1].error["code"] == "TEST_ORB"
        assert answers[1].report is None


class TestLifecycle:
    def test_submit_after_stop_raises(self, warm_framework):
        async def _run():
            server = TuneServer(warm_framework, WIDE)
            async with server:
                pass
            with pytest.raises(ServeError) as excinfo:
                await server.submit(TuneRequest(board="tx2", app="shwfs"))
            assert excinfo.value.code == "SERVE_STOPPED"

        asyncio.run(_run())

    def test_stop_flushes_open_windows(self, warm_framework):
        async def _run():
            # a window far longer than the test: only the stop() flush
            # can possibly dispatch the batch
            config = ServeConfig(window_s=30.0)
            async with TuneServer(warm_framework, config) as server:
                task = asyncio.ensure_future(server.submit(
                    TuneRequest(board="tx2", app="shwfs")))
                await asyncio.sleep(0.01)
            return await task

        answer = asyncio.run(_run())
        assert answer.ok

    def test_bad_config_rejected_at_construction(self, warm_framework):
        with pytest.raises(ServeError):
            TuneServer(warm_framework, ServeConfig(max_pending=0))

    def test_stats_account_for_every_request(self, warm_framework):
        requests = [TuneRequest(board="tx2", app="shwfs",
                                tenant=f"t{i}") for i in range(5)]

        async def _run():
            async with TuneServer(warm_framework, WIDE) as server:
                answers = await server.submit_many(requests)
                return answers, server.stats

        answers, stats = asyncio.run(_run())
        assert stats.submitted == 5
        assert stats.answered == 5
        assert stats.batches == 1
        assert stats.coalesced == 4
        assert stats.errors == 0
        assert all(answer.ok for answer in answers)
