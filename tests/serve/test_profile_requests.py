"""Profile-carrying re-tune requests riding the coalescing server."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.model.framework import Framework
from repro.serve.coalescer import (
    PendingItem,
    TuneRequest,
    plan_unique_jobs,
)
from repro.serve.server import serve_all
from repro.soc.board import get_board


@pytest.fixture(scope="module")
def framework():
    return Framework()


@pytest.fixture(scope="module")
def tx2_profile(framework):
    from repro.apps.shwfs import build_shwfs_workload

    return framework.profile(build_shwfs_workload(), get_board("tx2"),
                             model="SC")


class TestValidation:
    def test_profile_is_a_full_payload(self, tx2_profile):
        with pytest.raises(ServeError) as err:
            TuneRequest(board="tx2", app="shwfs",
                        profile=tx2_profile).validate()
        assert err.value.code == "SERVE_BAD_REQUEST"

    def test_profile_board_must_match(self, tx2_profile):
        with pytest.raises(ServeError) as err:
            TuneRequest(board="xavier", profile=tx2_profile).validate()
        assert err.value.code == "SERVE_BAD_REQUEST"

    def test_profile_only_is_valid(self, tx2_profile):
        request = TuneRequest(board="tx2", profile=tx2_profile)
        request.validate()
        assert request.workload_name == tx2_profile.workload_name


class TestDedupe:
    def test_identical_profiles_share_one_job(self, tx2_profile):
        items = [
            PendingItem(request=TuneRequest(board="tx2",
                                            profile=tx2_profile),
                        future=None),
            PendingItem(request=TuneRequest(board="tx2",
                                            profile=tx2_profile,
                                            tenant="other"),
                        future=None),
        ]
        jobs = plan_unique_jobs(items)
        assert len(jobs) == 1
        assert jobs[0].profile == tx2_profile
        assert len(jobs[0].items) == 2

    def test_distinct_profiles_split(self, tx2_profile):
        other = dataclasses.replace(
            tx2_profile,
            gpu_transactions=tx2_profile.gpu_transactions * 2)
        items = [
            PendingItem(request=TuneRequest(board="tx2",
                                            profile=tx2_profile),
                        future=None),
            PendingItem(request=TuneRequest(board="tx2", profile=other),
                        future=None),
        ]
        assert len(plan_unique_jobs(items)) == 2


class TestServing:
    def test_profile_requests_answered_via_retune(self, framework,
                                                  tx2_profile):
        requests = [
            TuneRequest(board="tx2", profile=tx2_profile, tenant="a"),
            TuneRequest(board="tx2", profile=tx2_profile, tenant="b"),
        ]
        answers = serve_all(requests, framework=framework)
        assert all(answer.ok for answer in answers)
        reference = framework.retune(tx2_profile, board=get_board("tx2"))
        for answer in answers:
            assert answer.report.recommendation.model is \
                reference.recommendation.model
            assert answer.report.workload_name == \
                tx2_profile.workload_name
        # Identical windows coalesce onto one retune.
        assert answers[0].coalesced_with >= 1

    def test_mixed_app_and_profile_batch(self, framework, tx2_profile):
        requests = [
            TuneRequest(board="tx2", app="shwfs"),
            TuneRequest(board="tx2", profile=tx2_profile),
        ]
        answers = serve_all(requests, framework=framework)
        assert all(answer.ok for answer in answers)
        # Both paths answer the same underlying question identically.
        assert answers[0].report.recommendation.model is \
            answers[1].report.recommendation.model


def test_cli_serve_accepts_profile_requests(tmp_path, capsys, framework,
                                            tx2_profile):
    requests = [
        {"board": "tx2", "profile": dataclasses.asdict(tx2_profile),
         "tenant": "stream-1"},
        {"board": "tx2", "app": "shwfs", "tenant": "cold-start"},
    ]
    path = tmp_path / "requests.json"
    path.write_text(json.dumps(requests))
    assert main(["serve", str(path),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "Served 2 request(s)" in out
    assert "stream-1" in out
    assert "shed: 0, errors: 0" in out


def test_cli_serve_rejects_malformed_profile(tmp_path, capsys):
    path = tmp_path / "requests.json"
    path.write_text(json.dumps([
        {"board": "tx2", "profile": {"workload_name": "x"}},
    ]))
    assert main(["serve", str(path)]) == 2
    err = capsys.readouterr().err
    assert "error[SERVE_BAD_REQUEST]" in err
