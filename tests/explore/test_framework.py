"""Surrogate fast path through Framework.tune, warm_store and serving."""

from __future__ import annotations

import pytest

from repro.apps.orbslam import OrbPipeline
from repro.apps.shwfs import ShwfsPipeline
from repro.model.framework import Framework
from repro.obs import metrics, state


@pytest.fixture()
def obs_registry():
    saved = state.ENABLED
    state.enable()
    metrics.REGISTRY.reset()
    yield metrics.REGISTRY
    metrics.REGISTRY.reset()
    state.ENABLED = saved


def _tune(board, workload, surrogate=None, **kwargs):
    framework = Framework(surrogate=surrogate)
    return framework.tune(workload, board, **kwargs)


class TestTuneFastPath:
    def test_surrogate_hit_agrees_with_full_flow(self, tx2_space, surrogate):
        # ORB-SLAM on this board sits far from every threshold, so the
        # margin check passes and the surrogate answers from probes.
        board = tx2_space.board_at((0.9, 1.4))
        workload = OrbPipeline().workload(board_name=board.name)
        fast = _tune(board, workload, surrogate=surrogate)
        full = _tune(board, workload)
        assert fast.via_surrogate
        assert not full.via_surrogate
        assert fast.recommendation.model == full.recommendation.model
        assert fast.recommendation.zone == full.recommendation.zone

    def test_low_margin_falls_back_and_still_agrees(self, tx2_space,
                                                    surrogate):
        # SHWFS usages sit within ~1pp of the predicted thresholds on
        # the TX2 panel: the surrogate must refuse rather than risk a
        # decision flip, and the full flow answers instead.
        board = tx2_space.board_at((1.0, 1.0))
        workload = ShwfsPipeline().workload(board_name=board.name)
        fast = _tune(board, workload, surrogate=surrogate)
        full = _tune(board, workload)
        assert not fast.via_surrogate
        assert surrogate.last_fallback_reason == "low_margin"
        assert fast.recommendation.model == full.recommendation.model

    def test_out_of_hull_board_uses_full_flow(self, surrogate):
        from repro.soc.board import derive_board, get_board

        board = derive_board(get_board("tx2"), "tx2-ool", dram_bandwidth=3.0)
        workload = OrbPipeline().workload(board_name=board.name)
        report = _tune(board, workload, surrogate=surrogate)
        assert not report.via_surrogate
        assert report.recommendation.model is not None

    def test_degraded_mode_ignores_surrogate(self, tx2_space, surrogate,
                                             obs_registry):
        board = tx2_space.board_at((0.9, 1.4))
        workload = OrbPipeline().workload(board_name=board.name)
        report = _tune(board, workload, surrogate=surrogate, strict=False)
        assert not report.via_surrogate
        assert obs_registry.counter("surrogate.hit").value == 0

    def test_hit_counter_increments(self, tx2_space, surrogate,
                                    obs_registry):
        board = tx2_space.board_at((0.9, 1.4))
        workload = OrbPipeline().workload(board_name=board.name)
        report = _tune(board, workload, surrogate=surrogate)
        assert report.via_surrogate
        assert obs_registry.counter("surrogate.hit").value == 1

    def test_framework_level_surrogate_is_default(self, tx2_space,
                                                  surrogate):
        board = tx2_space.board_at((0.9, 1.4))
        workload = OrbPipeline().workload(board_name=board.name)
        framework = Framework(surrogate=surrogate)
        report = framework.tune(workload, board)
        assert report.via_surrogate

    def test_tune_many_uses_surrogate(self, tx2_space, surrogate):
        board = tx2_space.board_at((0.9, 1.4))
        workloads = [
            OrbPipeline().workload(board_name=board.name),
            ShwfsPipeline().workload(board_name=board.name),
        ]
        framework = Framework(surrogate=surrogate)
        reports = framework.tune_many(workloads, board)
        assert len(reports) == 2
        # ORB-SLAM rides the fast path; SHWFS may fall back on margin —
        # either way every report carries a real recommendation.
        assert reports[0].via_surrogate
        for report in reports:
            assert report.recommendation.model is not None


class TestDecisionAgreement:
    def test_heldout_boards_agree_everywhere(self, tx2_space, surrogate):
        # The acceptance bar: on held-out in-hull boards the surrogate
        # path and the full path must agree on every decision, whether
        # the surrogate answered or honestly fell back.
        boards = tx2_space.sample(3, seed=29)
        for board in boards:
            for pipeline in (OrbPipeline(), ShwfsPipeline()):
                workload = pipeline.workload(board_name=board.name)
                fast = _tune(board, workload, surrogate=surrogate)
                full = _tune(board, workload)
                assert fast.recommendation.model == \
                    full.recommendation.model, board.name
                assert fast.recommendation.zone == \
                    full.recommendation.zone, board.name


class TestWarmStore:
    def test_covered_boards_are_skipped(self, tmp_path, surrogate,
                                        obs_registry):
        from repro.perf.grid import warm_store

        # The tx2 preset lies at the hull centre (all ratios 1.0), so
        # the surrogate covers it; nano has a foreign panel fingerprint.
        computed = warm_store(["tx2", "nano"], str(tmp_path),
                              surrogate=surrogate)
        assert computed == 1
        assert obs_registry.counter("explore.warm_skip").value == 1

    def test_without_surrogate_everything_is_computed(self, tmp_path):
        from repro.perf.grid import warm_store

        assert warm_store(["tx2", "nano"], str(tmp_path)) == 2


class TestServe:
    def test_surrogate_reaches_batched_tunes(self, surrogate, obs_registry):
        from repro.serve import TuneRequest, serve_all

        # strict=True: serve's default degraded mode ignores the
        # surrogate on purpose (its guarantees cover the healthy flow).
        answers = serve_all(
            [TuneRequest(board="tx2", app="orbslam", tenant="a",
                         strict=True),
             TuneRequest(board="tx2", app="shwfs", tenant="b",
                         strict=True)],
            surrogate=surrogate,
        )
        assert len(answers) == 2
        assert all(a.status == "ok" for a in answers)
        assert all(a.report.recommendation.model is not None
                   for a in answers)
        # The orbslam request rides the fast path (tx2 preset is the
        # hull centre), so at least one surrogate hit is recorded.
        assert obs_registry.counter("surrogate.hit").value >= 1
