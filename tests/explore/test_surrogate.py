"""Unit tests for the characterization surrogate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ExploreError
from repro.explore import (
    PROBE_FRACTIONS,
    CharacterizationSurrogate,
    device_outputs,
    sweep_space,
)
from repro.microbench.suite import MicrobenchmarkSuite
from repro.soc.board import derive_board, get_board


class TestSweep:
    def test_sweep_covers_every_grid_board(self, tx2_space, fitted):
        _, _, sweep = fitted
        assert sweep.num_boards == tx2_space.grid_size
        (panel,) = sweep.panels
        assert len(panel.devices) == tx2_space.grid_size

    def test_surfaces_are_grid_shaped(self, tx2_space, fitted):
        _, _, sweep = fitted
        (panel,) = sweep.panels
        surfaces = panel.surfaces(tx2_space)
        assert "gpu_threshold_pct" in surfaces
        for grid in surfaces.values():
            assert grid.shape == tx2_space.shape

    def test_device_outputs_expose_probe_points(self, fitted):
        _, _, sweep = fitted
        device = sweep.panels[0].devices[0]
        outputs = device_outputs(device, PROBE_FRACTIONS)
        for fraction in PROBE_FRACTIONS:
            zc = outputs[f"probe_zc@{fraction:.6g}"]
            sc = outputs[f"probe_sc@{fraction:.6g}"]
            assert zc > 0.0 and sc > 0.0


class TestPrediction:
    def test_grid_point_prediction_matches_swept_device(self, tx2_space,
                                                        fitted):
        surrogate, _, sweep = fitted
        point = (1.0, 1.0)
        board = tx2_space.board_at(point)
        prediction = surrogate.characterize(board,
                                            suite=MicrobenchmarkSuite())
        assert prediction is not None
        assert prediction.probed
        index = list(tx2_space.grid_points()).index(point)
        swept = sweep.panels[0].devices[index]
        expected = device_outputs(swept, PROBE_FRACTIONS)
        for key, value in expected.items():
            got = prediction.outputs[key]
            if math.isnan(value):
                assert math.isnan(got)
            else:
                assert got == pytest.approx(value, rel=1e-6), key

    def test_off_grid_prediction_within_calibrated_bounds(self, tx2_space,
                                                          fitted):
        surrogate, report, _ = fitted
        board = tx2_space.board_at((0.9, 1.4))
        prediction = surrogate.characterize(board,
                                            suite=MicrobenchmarkSuite())
        assert prediction is not None
        device = MicrobenchmarkSuite().characterize(board)
        actual = device_outputs(device, PROBE_FRACTIONS)
        key = "gpu_threshold_pct"
        assert abs(prediction.outputs[key] - actual[key]) <= \
            report.bounds[key] + 0.5

    def test_prediction_device_is_decidable(self, tx2_space, surrogate):
        board = tx2_space.board_at((1.1, 0.8))
        prediction = surrogate.characterize(board,
                                            suite=MicrobenchmarkSuite())
        assert prediction is not None
        device = prediction.device
        assert device.board_name == board.name
        assert device.gpu_thresholds.threshold_pct > 0.0
        assert device.sc_zc_max_speedup >= 1.0
        assert device.zc_sc_max_speedup >= 1.0


class TestFallbacks:
    def test_uncalibrated_never_answers(self, tx2_space, fitted):
        _, _, sweep = fitted
        raw = CharacterizationSurrogate.from_sweep(sweep)
        assert not raw.error_bounds
        board = tx2_space.board_at((1.0, 1.0))
        assert not raw.covers(board)
        assert raw.characterize(board, probe=False) is None
        assert raw.last_fallback_reason == "uncalibrated"

    def test_out_of_hull_falls_back(self, tx2_space, surrogate):
        base = get_board("tx2")
        outside = derive_board(base, "tx2-hot-dram", dram_bandwidth=2.0)
        assert not surrogate.covers(outside)
        assert surrogate.characterize(outside, probe=False) is None
        assert surrogate.last_fallback_reason == "out_of_hull"

    def test_unswept_axis_excursion_is_out_of_hull(self, surrogate):
        base = get_board("tx2")
        moved = derive_board(base, "tx2-oc", gpu_clock=1.3)
        assert surrogate.characterize(moved, probe=False) is None
        assert surrogate.last_fallback_reason == "out_of_hull"

    def test_unknown_panel_falls_back(self, surrogate):
        nano = get_board("nano")
        assert not surrogate.covers(nano)
        assert surrogate.characterize(nano, probe=False) is None
        assert surrogate.last_fallback_reason == "unknown_panel"

    def test_fault_injection_disables_surrogate(self, tx2_space, surrogate):
        from repro.robustness.faults import FaultPlan
        from repro.robustness.inject import inject_faults

        board = tx2_space.board_at((1.0, 1.0))
        with inject_faults(FaultPlan.chaos(seed=3)):
            assert surrogate.characterize(board, probe=False) is None
        assert surrogate.last_fallback_reason == "fault_injection"


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, tx2_space, surrogate):
        path = tmp_path / "surrogate.json"
        surrogate.save(path)
        restored = CharacterizationSurrogate.load(path)
        board = tx2_space.board_at((0.9, 1.4))
        original = surrogate.characterize(board, probe=False)
        loaded = restored.characterize(board, probe=False)
        assert original is not None and loaded is not None
        for key, value in original.outputs.items():
            got = loaded.outputs[key]
            if math.isnan(value):
                assert math.isnan(got)
            else:
                assert got == pytest.approx(value, rel=0, abs=0), key
        assert restored.error_bounds == pytest.approx(surrogate.error_bounds)

    def test_load_rejects_unknown_version(self, tmp_path, surrogate):
        payload = surrogate.to_dict()
        payload["artifact_version"] = 99
        with pytest.raises(ExploreError):
            CharacterizationSurrogate.from_dict(payload)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ExploreError):
            CharacterizationSurrogate.load(tmp_path / "nope.json")


class TestCalibration:
    def test_calibration_report_has_rows_and_bounds(self, fitted):
        _, report, _ = fitted
        assert len(report.rows) == 2
        assert report.bounds["gpu_threshold_pct"] >= 0.25
        assert report.safety == pytest.approx(1.5)

    def test_calibrate_requires_at_least_one_holdout(self, tx2_space,
                                                     fitted):
        _, _, sweep = fitted
        raw = CharacterizationSurrogate.from_sweep(sweep)
        with pytest.raises(ExploreError):
            raw.calibrate(tx2_space, n=0)


class TestProbe:
    def test_probe_mismatch_falls_back(self, tx2_space, fitted, monkeypatch):
        surrogate, _, _ = fitted
        board = tx2_space.board_at((1.0, 1.0))
        suite = MicrobenchmarkSuite()
        real = suite.probe_points(board, PROBE_FRACTIONS)

        def skewed(board_arg, fractions):
            points = real if tuple(fractions) == tuple(PROBE_FRACTIONS) \
                else suite.probe_points(board_arg, fractions)
            import dataclasses as dc

            return [dc.replace(p, zc_throughput=p.zc_throughput * 3.0)
                    for p in points]

        monkeypatch.setattr(suite, "probe_points", skewed)
        assert surrogate.characterize(board, suite=suite) is None
        assert surrogate.last_fallback_reason == "probe_mismatch"

    def test_probe_points_match_full_sweep(self, tx2_space):
        board = tx2_space.board_at((1.0, 1.0))
        suite = MicrobenchmarkSuite()
        points = suite.probe_points(board, PROBE_FRACTIONS)
        assert len(points) == len(PROBE_FRACTIONS)
        device = suite.characterize(board)
        full = {p.fraction: p for p in device.gpu_thresholds.points}
        for probe in points:
            match = min(full, key=lambda f: abs(f - probe.fraction))
            assert match == pytest.approx(probe.fraction, rel=1e-9)
            assert probe.zc_throughput == pytest.approx(
                full[match].zc_throughput, rel=0.05)
            assert probe.sc_throughput == pytest.approx(
                full[match].sc_throughput, rel=0.05)


class TestObservability:
    def test_fallback_counters(self, surrogate):
        from repro.obs import metrics, state

        saved = state.ENABLED
        state.enable()
        metrics.REGISTRY.reset()
        try:
            surrogate.characterize(get_board("nano"), probe=False)
            registry = metrics.REGISTRY
            assert registry.counter("surrogate.fallback").value >= 1
            assert registry.counter(
                "surrogate.fallback.unknown_panel").value >= 1
        finally:
            metrics.REGISTRY.reset()
            state.ENABLED = saved
