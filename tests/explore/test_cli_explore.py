"""CLI surface of the explorer: ``repro explore``, ``--surrogate``,
``repro cache info --json``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestCacheInfoJson:
    def test_json_output_parses(self, tmp_path, capsys):
        assert main(["characterize", "tx2",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--dir", str(tmp_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == str(tmp_path)
        assert payload["total_entries"] == 1
        assert payload["num_shards"] == 8
        assert len(payload["shards"]) == 8
        (entry,) = payload["entries"]
        assert entry["name"].startswith("tx2")
        assert entry["status"] == "ok"

    def test_json_on_empty_store(self, tmp_path, capsys):
        assert main(["cache", "info", "--dir", str(tmp_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_entries"] == 0
        assert payload["entries"] == []


class TestExploreParser:
    def test_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.base == "tx2"
        assert args.holdout == 4
        assert args.out == "surrogate.json"

    def test_axis_spec(self):
        args = build_parser().parse_args(
            ["explore", "--axis", "dram_bandwidth=0.8,1.0,1.25"])
        assert args.axis == ["dram_bandwidth=0.8,1.0,1.25"]

    def test_unknown_base_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--base", "orin"])


class TestExploreCommand:
    def test_malformed_axis_exits_with_code(self, tmp_path, capsys):
        assert main(["explore", "--axis", "dram_bandwidth",
                     "--out", str(tmp_path / "s.json")]) == 2
        err = capsys.readouterr().err
        assert "EXPLORE_BAD_AXIS" in err

    def test_unknown_axis_exits_with_code(self, tmp_path, capsys):
        assert main(["explore", "--axis", "warp_width=1,2",
                     "--out", str(tmp_path / "s.json")]) == 2

    def test_small_sweep_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "surrogate.json"
        assert main([
            "explore",
            "--axis", "dram_bandwidth=0.8,1.0,1.25",
            "--axis", "zc_bandwidth=0.5,1.0,2.0",
            "--holdout", "2", "--seed", "7", "--jobs", "1",
            "--app", "orbslam",
            "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "Design-space exploration" in text or "surrogate" in text
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["artifact_version"] == 1

        # The artifact round-trips through the tune fast path.
        from repro.explore import CharacterizationSurrogate

        surrogate = CharacterizationSurrogate.load(out)
        assert surrogate.error_bounds

    def test_tune_reports_device_source(self, tmp_path, capsys):
        out = tmp_path / "surrogate.json"
        assert main([
            "explore",
            "--axis", "dram_bandwidth=0.8,1.0,1.25",
            "--axis", "zc_bandwidth=0.5,1.0,2.0",
            "--holdout", "2", "--seed", "7", "--jobs", "1",
            "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["tune", "orbslam", "tx2",
                     "--surrogate", str(out)]) == 0
        text = capsys.readouterr().out
        assert "device source" in text
        assert "surrogate" in text
