"""Property and unit tests for the design-space generator."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ReproError
from repro.explore import (
    AXIS_NAMES,
    Axis,
    BoardSpace,
    axis_coordinate,
    base_field_values,
    default_axes,
    panel_fingerprint,
)
from repro.robustness.guards import validate
from repro.soc.board import available_boards, derive_board, get_board


@pytest.fixture(scope="module")
def shwfs_workload_tx2():
    from repro.apps.shwfs import ShwfsPipeline

    return ShwfsPipeline().workload(board_name=get_board("tx2").name)


class TestAxis:
    def test_known_names_only(self):
        with pytest.raises(ReproError):
            Axis("warp_width", (0.5, 1.0))

    def test_values_strictly_increasing(self):
        with pytest.raises(ReproError):
            Axis("dram_bandwidth", (1.0, 1.0))
        with pytest.raises(ReproError):
            Axis("dram_bandwidth", (1.25, 0.8))

    def test_at_least_two_values(self):
        with pytest.raises(ReproError):
            Axis("gpu_clock", (1.0,))

    def test_lo_hi(self):
        axis = Axis("gpu_clock", (0.8, 1.0, 1.25))
        assert axis.lo == pytest.approx(0.8)
        assert axis.hi == pytest.approx(1.25)


class TestBoardSpace:
    def test_default_axes_cover_known_names(self):
        for axis in default_axes():
            assert axis.name in AXIS_NAMES

    def test_grid_shape_and_size(self):
        space = BoardSpace("tx2")
        assert space.grid_size == len(list(space.grid_points()))
        expected = 1
        for axis in space.axes:
            expected *= len(axis.values)
        assert space.grid_size == expected

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ReproError):
            BoardSpace("tx2", axes=(
                Axis("gpu_clock", (0.8, 1.0)),
                Axis("gpu_clock", (1.0, 1.25)),
            ))

    def test_unknown_coherence_rejected(self):
        with pytest.raises(ReproError):
            BoardSpace("tx2", coherence=("write_through",))

    def test_board_names_unique(self):
        space = BoardSpace("tx2")
        names = [b.name for b in space.all_grid_boards()]
        assert len(names) == len(set(names))

    def test_base_point_reproduces_preset_fields(self):
        space = BoardSpace("tx2")
        board = space.board_at(tuple(1.0 for _ in space.axes))
        base = get_board("tx2")
        assert board.dram.peak_bandwidth == pytest.approx(
            base.dram.peak_bandwidth)
        assert board.gpu.frequency_hz == pytest.approx(base.gpu.frequency_hz)


class TestDerivedBoardProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        base=st.sampled_from(sorted(available_boards())),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=4),
    )
    def test_sampling_is_deterministic(self, base, seed, n):
        space = BoardSpace(base)
        first = space.sample(n, seed=seed)
        second = space.sample(n, seed=seed)
        assert [b.name for b in first] == [b.name for b in second]
        assert [dataclasses.asdict(b) for b in first] == \
            [dataclasses.asdict(b) for b in second]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_sampled_boards_pass_guard_suite(self, shwfs_workload_tx2, seed):
        space = BoardSpace("tx2")
        (board,) = space.sample(1, seed=seed)
        report = validate(board, shwfs_workload_tx2,
                          models=("SC", "ZC"), characterize=False)
        assert not report.violations, report.render()

    def test_grid_boards_pass_guard_suite(self, shwfs_workload_tx2):
        space = BoardSpace("tx2", axes=(
            Axis("dram_bandwidth", (0.8, 1.25)),
            Axis("zc_bandwidth", (0.5, 2.0)),
        ))
        for board in space.all_grid_boards():
            report = validate(board, shwfs_workload_tx2,
                              models=("SC", "ZC"), characterize=False)
            assert not report.violations, report.render()

    def test_llc_size_must_stay_power_of_two(self):
        base = get_board("tx2")
        with pytest.raises((ReproError, ConfigurationError)):
            derive_board(base, "bad-llc", llc_size=1.3)


class TestPanelGeometry:
    def test_fingerprint_masks_swept_axes(self):
        base = get_board("tx2")
        scaled = derive_board(base, "tx2-fast-dram", dram_bandwidth=1.25,
                              gpu_clock=0.9)
        assert panel_fingerprint(scaled) == panel_fingerprint(base)

    def test_fingerprint_differs_across_presets(self):
        assert panel_fingerprint(get_board("tx2")) != \
            panel_fingerprint(get_board("xavier"))

    def test_coherence_variants_get_distinct_fingerprints(self):
        # TX2 ships with ZC caches disabled: forcing io_coherent is a real
        # change (distinct fingerprint) while caches_disabled is a no-op
        # (fingerprint collapses back onto the base panel).
        base = get_board("tx2")
        coherent = derive_board(base, "tx2-io", coherence="io_coherent")
        noop = derive_board(base, "tx2-nc", coherence="caches_disabled")
        assert panel_fingerprint(coherent) != panel_fingerprint(base)
        assert panel_fingerprint(noop) == panel_fingerprint(base)

    def test_axis_coordinate_roundtrip(self):
        base = get_board("tx2")
        fields = base_field_values(base)
        scaled = derive_board(base, "tx2-x", dram_bandwidth=1.17)
        ratio = axis_coordinate(scaled, fields["dram_bandwidth"],
                                "dram_bandwidth")
        assert ratio == pytest.approx(1.17)
        untouched = axis_coordinate(scaled, fields["gpu_clock"], "gpu_clock")
        assert untouched == pytest.approx(1.0)

    def test_axis_coordinate_rejects_inconsistent_fields(self):
        base = get_board("tx2")
        fields = base_field_values(base)
        # Scale only one of the two zero-copy bandwidths by hand.
        tampered = dataclasses.replace(
            base,
            zero_copy=dataclasses.replace(
                base.zero_copy,
                gpu_zc_bandwidth=base.zero_copy.gpu_zc_bandwidth * 2.0,
            ),
        )
        assert axis_coordinate(tampered, fields["zc_bandwidth"],
                               "zc_bandwidth") is None
