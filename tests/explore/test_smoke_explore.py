"""Wall-clock smoke check for the surrogate fast path.

Marked ``perf`` like the other timing smokes: the committed
BENCH_perf.json records the real speedup (>= 20x enforced by
``repro bench --check``); this floor is deliberately lax so it only
catches the fast path silently degrading to a full characterization.
"""

from __future__ import annotations

import time

import pytest

from repro.microbench.suite import MicrobenchmarkSuite

pytestmark = pytest.mark.perf

LAX_FLOOR = 5.0


def test_surrogate_answers_much_faster_than_characterization(tx2_space,
                                                             surrogate):
    board = tx2_space.board_at((0.9, 1.4))

    t0 = time.perf_counter()
    MicrobenchmarkSuite().characterize(board)
    t_cold = time.perf_counter() - t0

    best = float("inf")
    for _ in range(3):
        suite = MicrobenchmarkSuite()  # fresh: no persistent cache
        t0 = time.perf_counter()
        prediction = surrogate.characterize(board, suite=suite)
        best = min(best, time.perf_counter() - t0)
        assert prediction is not None, surrogate.last_fallback_reason

    assert t_cold / best >= LAX_FLOOR, (
        f"surrogate only {t_cold / best:.1f}x faster than a full "
        f"characterization ({t_cold * 1e3:.1f}ms -> {best * 1e3:.1f}ms)"
    )
