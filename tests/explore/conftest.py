"""Shared fixtures for the design-space explorer tests.

Fitting a surrogate sweeps a 3x3 grid plus holdout boards, so the fitted
surrogate is session-scoped and shared by every test that only reads it.
"""

from __future__ import annotations

import pytest

from repro.explore import Axis, BoardSpace, fit_surrogate
from repro.microbench.suite import MicrobenchmarkSuite


@pytest.fixture(scope="session")
def tx2_space() -> BoardSpace:
    """A small 2-axis space around the TX2 preset (9 grid boards)."""
    return BoardSpace(
        "tx2",
        axes=(
            Axis("dram_bandwidth", (0.8, 1.0, 1.25)),
            Axis("zc_bandwidth", (0.5, 1.0, 2.0)),
        ),
    )


@pytest.fixture(scope="session")
def fitted(tx2_space):
    """(surrogate, calibration report, sweep) fitted over ``tx2_space``."""
    suite = MicrobenchmarkSuite()
    return fit_surrogate(tx2_space, suite=suite, holdout=2, seed=7)


@pytest.fixture(scope="session")
def surrogate(fitted):
    return fitted[0]
