"""Paper fidelity under the surrogate fast path.

The Tables II-V decisions for the three paper boards must be identical
whether the surrogate is disabled or enabled: the presets sit outside
this surrogate's trust region (the swept hull deliberately excludes
ratio 1.0, and Nano/Xavier have foreign panel fingerprints), so every
preset tune must fall back to the full characterization — never
silently extrapolate.
"""

from __future__ import annotations

import pytest

from repro.apps.orbslam import OrbPipeline
from repro.apps.shwfs import ShwfsPipeline
from repro.explore import Axis, BoardSpace, fit_surrogate
from repro.microbench.suite import MicrobenchmarkSuite
from repro.model.decision import RecommendedModel
from repro.model.framework import Framework
from repro.soc.board import get_board

BOARDS = ("nano", "tx2", "xavier")


@pytest.fixture(scope="module")
def off_hull_surrogate():
    """Calibrated surrogate whose hull excludes every preset board."""
    space = BoardSpace("tx2", axes=(
        Axis("dram_bandwidth", (1.1, 1.5)),
        Axis("zc_bandwidth", (1.1, 1.5)),
    ))
    surrogate, _, _ = fit_surrogate(space, suite=MicrobenchmarkSuite(),
                                    holdout=1, seed=5)
    return surrogate


@pytest.fixture(scope="module")
def reports(characterization_suite, off_hull_surrogate):
    """(baseline, with-surrogate) tuning reports per board and app."""
    plain = Framework(suite=characterization_suite)
    fast = Framework(suite=characterization_suite,
                     surrogate=off_hull_surrogate)
    out = {}
    for name in BOARDS:
        board = get_board(name)
        for app, pipeline in (("shwfs", ShwfsPipeline()),
                              ("orbslam", OrbPipeline())):
            workload = pipeline.workload(board_name=name)
            out[(name, app)] = (plain.tune(workload, board),
                                fast.tune(workload, board))
    return out


class TestPresetsFallBack:
    def test_no_preset_is_covered(self, off_hull_surrogate):
        for name in BOARDS:
            assert not off_hull_surrogate.covers(get_board(name)), name

    def test_fallback_reasons_are_honest(self, off_hull_surrogate):
        surrogate = off_hull_surrogate
        assert surrogate.characterize(get_board("tx2"), probe=False) is None
        assert surrogate.last_fallback_reason == "out_of_hull"
        for name in ("nano", "xavier"):
            assert surrogate.characterize(get_board(name),
                                          probe=False) is None
            assert surrogate.last_fallback_reason == "unknown_panel"

    def test_no_tune_went_via_surrogate(self, reports):
        for (name, app), (_, fast) in reports.items():
            assert not fast.via_surrogate, (name, app)


class TestDecisionsUnchanged:
    def test_decisions_identical_with_and_without_surrogate(self, reports):
        for key, (plain, fast) in reports.items():
            assert fast.recommendation.model == \
                plain.recommendation.model, key
            assert fast.recommendation.zone == plain.recommendation.zone, key

    def test_paper_table_decisions_hold(self, reports):
        # Table II: SH-WFS keeps SC on Nano/TX2, switches to ZC on
        # Xavier. Tables IV/V: ORB stays on SC on TX2 (zone 3).
        for _, fast in (reports[("nano", "shwfs")],
                        reports[("tx2", "shwfs")]):
            assert fast.recommendation.model is RecommendedModel.NO_CHANGE
        _, xavier = reports[("xavier", "shwfs")]
        assert xavier.recommendation.model is RecommendedModel.ZERO_COPY
        _, orb_tx2 = reports[("tx2", "orbslam")]
        assert orb_tx2.recommendation.model is RecommendedModel.NO_CHANGE
