"""Acceptance: both timing backends reach the paper's decisions.

The analytic model reproduces the decisions of the paper's Tables
II–V; the event-driven simulator is an independent timing engine, so
agreement here is the strongest evidence the framework's
recommendations are not an artifact of one model's simplifications.
The contract is *exact* decision agreement for every paper workload on
every board — timing may drift (the crosscheck report tracks it
against a tolerance), decisions may not.
"""

import pytest

from repro.sim.crosscheck import (
    DEFAULT_APPS,
    DEFAULT_BOARDS,
    run_crosscheck,
)

#: The verified paper decisions ((app, board) -> (model, zone)), from
#: the analytic reproduction of Tables II-V.
EXPECTED_DECISIONS = {
    ("shwfs", "nano"): ("keep current", 1),
    ("shwfs", "tx2"): ("keep current", 3),
    ("shwfs", "xavier"): ("ZC", 1),
    ("orbslam", "nano"): ("keep current", 3),
    ("orbslam", "tx2"): ("keep current", 3),
    ("orbslam", "xavier"): ("ZC (zone 2)", 2),
}


@pytest.fixture(scope="module")
def report():
    return run_crosscheck(boards=DEFAULT_BOARDS, apps=DEFAULT_APPS)


def test_full_grid_covered(report):
    cells = {(d.app, d.board) for d in report.decisions}
    assert cells == {
        (app, board) for app in DEFAULT_APPS for board in DEFAULT_BOARDS
    }


def test_decisions_identical_on_every_cell(report):
    mismatches = [
        f"{d.app}/{d.board}: analytic={d.analytic_decision} "
        f"(zone {d.analytic_zone}) simulated={d.simulated_decision} "
        f"(zone {d.simulated_zone})"
        for d in report.disagreements
    ]
    assert report.passed, "\n".join(mismatches)


def test_analytic_decisions_match_paper_tables(report):
    for decision in report.decisions:
        model, zone = EXPECTED_DECISIONS[(decision.app, decision.board)]
        assert decision.analytic_decision == model, (
            f"{decision.app}/{decision.board}"
        )
        assert decision.analytic_zone == zone, (
            f"{decision.app}/{decision.board}"
        )


def test_timing_deltas_within_tolerance(report):
    excursions = [
        f"{t.app}/{t.board}/{t.model}/{t.quantity}: {t.relative_error:.1%}"
        for t in report.excursions
    ]
    assert not excursions, "\n".join(excursions)


def test_every_model_compared_per_cell(report):
    # 3 communication models x 4 timing quantities per cell.
    per_cell = len(report.timings) / len(report.decisions)
    assert per_cell == 12
