"""Streaming fidelity: the paper's decisions survive the online path.

Streaming the original (stationary) application behaviour through the
windowed engine must reproduce exactly the Tables II-V decision the
one-shot ``Framework`` flow makes — zero drift windows, no spurious
flips, and a final model equal to the batch recommendation.  Anything
else would mean the online engine changes the reproduction.
"""

import pytest

from repro.model.decision import decide
from repro.model.framework import Framework
from repro.soc.board import get_board
from repro.stream.engine import StreamConfig, StreamTuner, proposed_model
from repro.stream.sources import CounterWindowSource

BOARDS = ("nano", "tx2", "xavier")
APPS = ("shwfs", "orbslam")

CONFIG = StreamConfig(window=1024, stride=128, hysteresis=3,
                      chunk_size=2048)


def build_workload(app):
    if app == "shwfs":
        from repro.apps.shwfs import build_shwfs_workload

        return build_shwfs_workload()
    from repro.apps.orbslam import build_orbslam_workload

    return build_orbslam_workload()


@pytest.fixture(scope="module")
def framework():
    return Framework()


@pytest.mark.parametrize("board_name", BOARDS)
@pytest.mark.parametrize("app", APPS)
def test_stationary_stream_reproduces_batch_decision(framework, board_name,
                                                     app):
    board = get_board(board_name)
    device = framework.characterize(board)
    profile = framework.profile(build_workload(app), board, model="SC")
    reference = decide(profile, device)
    expected_final = proposed_model(reference, "SC")

    source = CounterWindowSource.from_profile(profile, samples=4096)
    result = StreamTuner(framework, source, device, CONFIG).run()

    # No drift on a stationary stream — ever.
    assert result.drift_windows == 0
    # The model settles on the batch answer: at most the one initial
    # corrective flip, and no flapping afterwards.
    assert result.final_model == expected_final
    assert len(result.flips) == (0 if expected_final == "SC" else 1)
    for flip in result.flips:
        # The flip's own report was decided from the original model —
        # it must carry the very Tables II-V recommendation, fully
        # explained.
        assert flip.to_model == expected_final
        assert flip.report is not None
        assert flip.report.recommendation.model is reference.model
        assert flip.report.recommendation.zone is reference.zone
        assert flip.tune_report is not None
    if not result.flips:
        # No flip means the stream kept proposing the current model:
        # the last decision must agree with the batch flow verbatim.
        assert result.last_recommendation.model is reference.model
    # After settling, the stream is at equilibrium with the batch
    # decision — the final recommendation proposes no further change.
    assert proposed_model(result.last_recommendation,
                          result.final_model) == result.final_model
