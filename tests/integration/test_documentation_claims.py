"""Documentation-drift guard.

README.md and EXPERIMENTS.md quote measured numbers.  These tests
recompute the headline figures and assert they still match what the
documents claim, so the docs cannot silently rot as the model evolves.
"""

import pathlib

import pytest

from repro.analysis.tables import paper_speedup_pct
from repro.apps.shwfs import ShwfsPipeline
from repro.model.framework import Framework
from repro.soc.board import get_board
from repro.units import to_gbps

ROOT = pathlib.Path(__file__).parent.parent.parent


@pytest.fixture(scope="module")
def framework(characterization_suite):
    return Framework(suite=characterization_suite)


class TestReadmeHeadlines:
    """The README's "Reproduction status" table."""

    def test_table1_tx2_row(self, tx2_device):
        # README claims: 1.28 / 97.07 / 103.84
        assert to_gbps(tx2_device.gpu_cache_throughput["ZC"]) == \
            pytest.approx(1.28, abs=0.02)
        assert to_gbps(tx2_device.gpu_cache_throughput["SC"]) == \
            pytest.approx(97.07, abs=1.0)
        assert to_gbps(tx2_device.gpu_cache_throughput["UM"]) == \
            pytest.approx(103.84, abs=1.0)

    def test_shwfs_speedups_row(self, framework):
        # README claims: −30 % / −5 % / +35 %
        claimed = {"nano": -30.0, "tx2": -5.0, "xavier": 35.0}
        pipeline = ShwfsPipeline()
        for board_name, expected in claimed.items():
            results = framework.compare_models(
                pipeline.workload(board_name=board_name),
                get_board(board_name),
            )
            measured = paper_speedup_pct(
                results["SC"].time_per_iteration_s,
                results["ZC"].time_per_iteration_s,
            )
            assert measured == pytest.approx(expected, abs=4.0), board_name

    def test_mb3_row(self, framework, xavier_device):
        # README claims: +165 % / +184 % on Xavier.
        raw = framework.suite.raw_results("xavier")
        assert raw.third.zc_faster_than("SC") == pytest.approx(165.0, abs=15.0)
        assert raw.third.zc_faster_than("UM") == pytest.approx(184.0, abs=15.0)


class TestDocumentsMentionKeyFacts:
    """Sanity: the documents exist and state the load-bearing facts."""

    def test_readme_quotes_current_calibration(self):
        readme = (ROOT / "README.md").read_text()
        for token in ("97.07", "1.28", "DAC 2021", "EXPERIMENTS.md"):
            assert token in readme, token

    def test_experiments_covers_every_artefact(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for token in ("Table I", "Table II", "Table III", "Table IV",
                      "Table V", "Fig. 3", "Fig. 5", "Fig. 6", "Fig. 7",
                      "known deviations"):
            assert token in experiments, token

    def test_design_records_substitutions(self):
        design = (ROOT / "DESIGN.md").read_text()
        for token in ("Substitutions", "Per-experiment index",
                      "Jetson Nano/TX2/AGX Xavier".split("/")[0]):
            assert token in design, token

    def test_calibration_doc_lists_inputs(self):
        calibration = (ROOT / "docs" / "CALIBRATION.md").read_text()
        for token in ("Table I", "97.34", "emerge"):
            assert token in calibration, token
