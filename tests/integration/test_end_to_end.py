"""Cross-cutting end-to-end behaviours."""

import pytest

from repro import (
    BufferSpec,
    CpuTask,
    Framework,
    GpuKernel,
    OpMix,
    SoC,
    Workload,
    get_board,
    get_model,
)
from repro.kernels.patterns import LinearPattern, SparsePattern
from repro.kernels.workload import Direction


def make_workload(gpu_heavy=False, iterations=6):
    frame = BufferSpec("frame", 32 * 1024, shared=True,
                       direction=Direction.TO_GPU)
    hot = BufferSpec("hot", 16 * 1024, shared=True, direction=Direction.RESIDENT)
    gpu_pattern = (
        LinearPattern(buffer="hot", read_write_pairs=False, repeats=32)
        if gpu_heavy else LinearPattern(buffer="frame", read_write_pairs=False)
    )
    return Workload(
        name="e2e",
        buffers=(frame, hot),
        cpu_task=CpuTask(
            name="cpu",
            ops=OpMix.per_element({"mul": 1.0}, 32 * 1024),
            pattern=LinearPattern(buffer="frame", read_write_pairs=True),
        ),
        gpu_kernel=GpuKernel(
            name="gpu",
            ops=OpMix.per_element({"fma": 1.0}, 32 * 1024),
            pattern=gpu_pattern,
        ),
        iterations=iterations,
        overlappable=True,
    )


class TestDeterminism:
    @pytest.mark.parametrize("model", ["SC", "UM", "ZC"])
    def test_repeated_runs_identical(self, model):
        a = get_model(model).execute(make_workload(), SoC(get_board("tx2")))
        b = get_model(model).execute(make_workload(), SoC(get_board("tx2")))
        assert a.total_time_s == b.total_time_s
        assert a.kernel_time_s == b.kernel_time_s

    def test_soc_reuse_is_clean(self):
        """Running one model must not contaminate the next run."""
        soc = SoC(get_board("tx2"))
        first = get_model("SC").execute(make_workload(), soc)
        get_model("ZC").execute(make_workload(), soc)
        again = get_model("SC").execute(make_workload(), soc)
        assert again.total_time_s == pytest.approx(first.total_time_s, rel=1e-9)


class TestCrossBoardOrdering:
    def test_faster_boards_run_faster(self):
        """Xavier < TX2 < Nano on the same workload (SC)."""
        times = {}
        for name in ("nano", "tx2", "xavier"):
            report = get_model("SC").execute(make_workload(),
                                             SoC(get_board(name)))
            times[name] = report.time_per_iteration_s
        assert times["xavier"] < times["tx2"] < times["nano"]

    def test_zc_penalty_ordering(self):
        """The ZC kernel penalty shrinks with better coherence:
        Nano/TX2 >> Xavier."""
        penalties = {}
        for name in ("tx2", "xavier"):
            soc = SoC(get_board(name))
            sc = get_model("SC").execute(make_workload(gpu_heavy=True), soc)
            soc.reset()
            zc = get_model("ZC").execute(make_workload(gpu_heavy=True), soc)
            penalties[name] = zc.kernel_time_s / sc.kernel_time_s
        assert penalties["tx2"] > penalties["xavier"]


class TestFrameworkAdvice:
    def test_advice_is_actionable(self):
        """Following the framework's SC->ZC advice must actually help
        on the board it was given for."""
        framework = Framework()
        board = get_board("xavier")
        workload = make_workload(iterations=20)
        report = framework.tune(workload, board, current_model="SC")
        if "ZC" in report.recommendation.model.value:
            results = framework.compare_models(workload, board)
            assert results["ZC"].time_per_iteration_s < \
                results["SC"].time_per_iteration_s

    def test_sparse_kernel_profile(self):
        """A max-miss kernel never looks cache-dependent."""
        frame = BufferSpec("frame", 256 * 1024, shared=True,
                           direction=Direction.TO_GPU)
        workload = Workload(
            name="sparse",
            buffers=(frame,),
            gpu_kernel=GpuKernel(
                name="k",
                ops=OpMix.per_element({"fma": 1.0}, 1024),
                pattern=SparsePattern(buffer="frame", count=4096),
            ),
            iterations=3,
        )
        framework = Framework()
        report = framework.tune(workload, get_board("tx2"))
        # all misses -> LLC serves everything the L1 missed; demand is
        # still far below peak on a small kernel
        assert report.profile.gpu_l1_hit_rate < 0.1
