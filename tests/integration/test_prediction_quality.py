"""Prediction quality: eqn (3) estimates are usable upper bounds.

The paper presents its speedups as "up to X %" — predictions bound the
measured gains from above (Table II predicts 69.3 % for SH-WFS on
Xavier; Table III measures 38 %).  These tests hold the reproduction to
the same contract: wherever the framework predicts an SC→ZC gain, the
measured gain must be positive and not exceed the prediction.
"""

import pytest

from repro.apps.shwfs import ShwfsPipeline
from repro.kernels.builders import ping_pong, producer_consumer
from repro.model.decision import RecommendedModel
from repro.model.framework import Framework
from repro.soc.board import get_board


@pytest.fixture(scope="module")
def framework(characterization_suite):
    return Framework(suite=characterization_suite)


def predicted_and_actual(framework, workload, board):
    report = framework.tune(workload, board, current_model="SC")
    results = framework.compare_models(workload, board)
    actual = results["ZC"].speedup_vs(results["SC"]) * 100.0
    predicted = report.recommendation.estimated_speedup_pct
    return report.recommendation, predicted, actual


class TestUpperBoundContract:
    def test_shwfs_on_xavier(self, framework):
        pipeline = ShwfsPipeline()
        rec, predicted, actual = predicted_and_actual(
            framework, pipeline.workload(board_name="xavier"),
            get_board("xavier"),
        )
        assert rec.model is RecommendedModel.ZERO_COPY
        assert predicted is not None
        assert 0 < actual <= predicted
        # The prediction is informative, not wildly loose: within ~4x.
        assert predicted < 4 * actual

    @pytest.mark.parametrize("builder,kwargs", [
        (producer_consumer, dict(frame_elements=64 * 1024, iterations=20)),
        (ping_pong, dict(elements=64 * 1024, iterations=20)),
    ])
    def test_template_workloads_on_xavier(self, framework, builder, kwargs):
        workload = builder("pred", **kwargs)
        rec, predicted, actual = predicted_and_actual(
            framework, workload, get_board("xavier")
        )
        if rec.model is RecommendedModel.ZERO_COPY and predicted is not None:
            assert actual > 0
            assert actual <= predicted + 1.0

    def test_no_gain_predicted_on_tx2_means_none_measured(self, framework):
        """Where the framework refuses to predict a gain (TX2, device
        cap 1.0), switching indeed does not help."""
        pipeline = ShwfsPipeline()
        workload = pipeline.workload(board_name="tx2")
        results = framework.compare_models(workload, get_board("tx2"))
        device = framework.characterize(get_board("tx2"))
        assert device.sc_zc_max_speedup == pytest.approx(1.0, abs=0.1)
        assert results["ZC"].speedup_vs(results["SC"]) <= 0.0
