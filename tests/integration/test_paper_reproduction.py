"""The headline reproduction assertions, one per paper artefact.

Each test states the paper's claim and asserts this reproduction's
version of it — these are the checks EXPERIMENTS.md reports on.
"""

import pytest

from repro.apps.orbslam import OrbPipeline
from repro.apps.shwfs import ShwfsPipeline
from repro.model.decision import RecommendedModel, Zone
from repro.model.framework import Framework
from repro.soc.board import get_board
from repro.units import to_gbps


@pytest.fixture(scope="module")
def framework(characterization_suite):
    return Framework(suite=characterization_suite)


class TestTable1:
    """Max GPU cache throughput: TX2 1.28/97.34/104.15, Xavier
    32.29/214.64/231.14 GB/s."""

    def test_tx2(self, tx2_device):
        assert to_gbps(tx2_device.gpu_cache_throughput["ZC"]) == \
            pytest.approx(1.28, rel=0.05)
        assert to_gbps(tx2_device.gpu_cache_throughput["SC"]) == \
            pytest.approx(97.34, rel=0.05)
        assert to_gbps(tx2_device.gpu_cache_throughput["UM"]) == \
            pytest.approx(104.15, rel=0.05)

    def test_xavier(self, xavier_device):
        assert to_gbps(xavier_device.gpu_cache_throughput["ZC"]) == \
            pytest.approx(32.29, rel=0.05)
        assert to_gbps(xavier_device.gpu_cache_throughput["SC"]) == \
            pytest.approx(214.64, rel=0.05)


class TestFig3AndFig6:
    """Thresholds: TX2 small (2.7 %), Xavier higher (16.2 %) with a
    second zone (57.1 %)."""

    def test_tx2_threshold_order_of_magnitude(self, tx2_device):
        assert 0.5 < tx2_device.gpu_threshold_pct < 6.0

    def test_xavier_threshold_band(self, xavier_device):
        assert 4.0 < xavier_device.gpu_threshold_pct < 30.0

    def test_xavier_zone2_band(self, xavier_device):
        assert 20.0 < xavier_device.gpu_zone2_pct < 75.0

    def test_ordering_between_boards(self, tx2_device, xavier_device):
        assert xavier_device.gpu_threshold_pct > tx2_device.gpu_threshold_pct

    def test_cpu_thresholds(self, tx2_device, xavier_device, nano_device):
        # Nano/TX2: finite threshold (paper 15.6 %); Xavier saturated.
        assert 3.0 < tx2_device.cpu_threshold_pct < 25.0
        assert 3.0 < nano_device.cpu_threshold_pct < 25.0
        assert xavier_device.cpu_threshold_pct == 100.0


class TestMaxSpeedups:
    """MB1/MB3 caps: ZC->SC ~70x on TX2 / ~3.7x on Xavier; SC->ZC
    ~2.5x on Xavier, none on TX2/Nano."""

    def test_zc_sc_caps(self, tx2_device, xavier_device):
        assert 40 < tx2_device.zc_sc_max_speedup < 90
        assert 2 < xavier_device.zc_sc_max_speedup < 9

    def test_sc_zc_caps(self, tx2_device, xavier_device, nano_device):
        assert xavier_device.sc_zc_max_speedup > 1.5
        assert tx2_device.sc_zc_max_speedup == pytest.approx(1.0, abs=0.1)
        assert nano_device.sc_zc_max_speedup == pytest.approx(1.0, abs=0.1)


class TestTable2Decisions:
    """SH-WFS: SC stays on Nano/TX2 (CPU-cache-dependent, no I/O
    coherence); Xavier switches to ZC with a predicted speedup."""

    @pytest.fixture(scope="class")
    def reports(self, framework):
        pipeline = ShwfsPipeline()
        return {
            name: pipeline.tune(framework, get_board(name))
            for name in ("nano", "tx2", "xavier")
        }

    def test_nano_keeps_sc(self, reports):
        assert reports["nano"].recommendation.model is RecommendedModel.NO_CHANGE

    def test_tx2_keeps_sc(self, reports):
        assert reports["tx2"].recommendation.model is RecommendedModel.NO_CHANGE

    def test_xavier_switches_to_zc(self, reports):
        rec = reports["xavier"].recommendation
        assert rec.model is RecommendedModel.ZERO_COPY
        assert rec.estimated_speedup_pct is not None
        assert rec.estimated_speedup_pct > 30.0  # paper: up to 69.3 %

    def test_cpu_dependence_ranking(self, reports):
        """Nano/TX2 exceed their CPU threshold; Xavier does not."""
        for name in ("nano", "tx2"):
            report = reports[name]
            assert report.cpu_cache_usage_pct > \
                report.recommendation.cpu_threshold_pct
        xavier = reports["xavier"]
        assert xavier.cpu_cache_usage_pct < \
            xavier.recommendation.cpu_threshold_pct


class TestTable3Performance:
    """Measured SH-WFS: ZC loses on Nano, ~breaks even on TX2 (-5 %),
    wins on Xavier (+38 %)."""

    @pytest.fixture(scope="class")
    def speedups(self, framework):
        pipeline = ShwfsPipeline()
        out = {}
        for name in ("nano", "tx2", "xavier"):
            results = framework.compare_models(
                pipeline.workload(board_name=name), get_board(name)
            )
            out[name] = results["ZC"].speedup_vs(results["SC"])
        return out

    def test_signs_match_paper(self, speedups):
        assert speedups["nano"] < -0.10
        assert -0.15 < speedups["tx2"] < 0.0
        assert speedups["xavier"] > 0.20

    def test_xavier_magnitude(self, speedups):
        assert speedups["xavier"] == pytest.approx(0.38, abs=0.15)


class TestTable4And5Orb:
    """ORB: GPU-cache-dependent everywhere; TX2 zone 3 (SC mandatory),
    Xavier zone 2 (ZC viable); ZC collapses TX2, matches on Xavier."""

    @pytest.fixture(scope="class")
    def reports(self, framework):
        pipeline = OrbPipeline()
        return {
            name: pipeline.tune(framework, get_board(name))
            for name in ("tx2", "xavier")
        }

    def test_cpu_usage_zero(self, reports):
        for report in reports.values():
            assert report.cpu_cache_usage_pct == pytest.approx(0.0, abs=1.0)

    def test_gpu_cache_dependent(self, reports):
        for report in reports.values():
            assert report.gpu_cache_usage_pct > \
                report.recommendation.gpu_threshold_pct

    def test_tx2_bottlenecked(self, reports):
        assert reports["tx2"].recommendation.zone is Zone.BOTTLENECKED
        assert reports["tx2"].recommendation.model is RecommendedModel.NO_CHANGE

    def test_xavier_zone2(self, reports):
        rec = reports["xavier"].recommendation
        assert rec.zone is Zone.CONDITIONAL
        assert rec.model is RecommendedModel.ZERO_COPY_CONDITIONAL

    def test_zc_outcomes(self, framework):
        pipeline = OrbPipeline()
        for name, (low, high) in {"tx2": (3.0, 100.0),
                                  "xavier": (0.7, 1.35)}.items():
            results = framework.compare_models(
                pipeline.workload(board_name=name), get_board(name)
            )
            ratio = results["ZC"].total_time_s / results["SC"].total_time_s
            assert low < ratio < high, name
