"""Fault taxonomy: specs, plans, parsing, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.robustness.faults import (
    COUNTER_TARGETS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpec:
    def test_default_magnitude_substituted(self):
        spec = FaultSpec(FaultKind.COUNTER_NOISE)
        assert spec.magnitude == pytest.approx(0.05)
        spec = FaultSpec(FaultKind.COPY_STALL)
        assert spec.magnitude == pytest.approx(1000.0)

    def test_explicit_magnitude_kept(self):
        assert FaultSpec(FaultKind.COPY_STALL, magnitude=7.0).magnitude == 7.0

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FaultSpec(FaultKind.COUNTER_NAN, probability=1.5)
        assert excinfo.value.code == "FAULT_PLAN_INVALID"

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.COUNTER_NOISE, magnitude=-1.0)

    def test_counter_target_validated(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FaultSpec(FaultKind.COUNTER_NAN, target="no_such_counter")
        assert excinfo.value.code == "FAULT_PLAN_INVALID"
        assert excinfo.value.details["target"] == "no_such_counter"

    def test_flush_target_validated(self):
        FaultSpec(FaultKind.FLUSH_DROP, target="cpu")  # valid
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.FLUSH_DROP, target="dsp")

    def test_matches_wildcard_and_exact(self):
        assert FaultSpec(FaultKind.COUNTER_NAN).matches("cpu_time_s")
        spec = FaultSpec(FaultKind.COUNTER_NAN, target="cpu_time_s")
        assert spec.matches("cpu_time_s")
        assert not spec.matches("copy_time_s")


class TestParse:
    def test_kind_only(self):
        spec = FaultSpec.parse("flush-drop")
        assert spec.kind is FaultKind.FLUSH_DROP
        assert spec.target == "*"
        assert spec.probability == 1.0

    def test_full_form(self):
        spec = FaultSpec.parse("counter-noise:cpu_time_s:0.2:0.5")
        assert spec.kind is FaultKind.COUNTER_NOISE
        assert spec.target == "cpu_time_s"
        assert spec.magnitude == pytest.approx(0.2)
        assert spec.probability == pytest.approx(0.5)

    def test_empty_fields_take_defaults(self):
        spec = FaultSpec.parse("copy-stall::500")
        assert spec.target == "*"
        assert spec.magnitude == pytest.approx(500.0)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FaultSpec.parse("bit-flip")
        assert excinfo.value.code == "FAULT_PLAN_INVALID"

    def test_malformed_number(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse("copy-stall::fast")


class TestFaultPlan:
    def test_seed_must_be_int(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed="7")

    def test_roundtrip_dict(self):
        plan = FaultPlan.standard(seed=3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_specs_for_filters_by_kind(self):
        plan = FaultPlan.standard(seed=0)
        specs = plan.specs_for(FaultKind.FLUSH_DROP)
        assert len(specs) == 1
        assert specs[0].kind is FaultKind.FLUSH_DROP

    def test_standard_covers_every_value_kind(self):
        # Timing faults (delay/hang) are chaos-only: the standard plan
        # keeps every value-perturbing class.
        from repro.robustness.faults import TIMING_KINDS

        expected = set(FaultKind) - set(TIMING_KINDS)
        assert set(FaultPlan.standard(seed=0).kinds) == expected

    def test_chaos_can_draw_timing_kinds(self):
        from repro.robustness.faults import TIMING_KINDS

        drawn = set()
        for seed in range(40):
            plan = FaultPlan.chaos(seed=seed, max_faults=4,
                                   kinds=list(FaultKind))
            drawn |= set(plan.kinds)
        assert drawn & set(TIMING_KINDS)

    def test_chaos_default_excludes_timing_kinds(self):
        from repro.robustness.faults import TIMING_KINDS

        for seed in range(20):
            plan = FaultPlan.chaos(seed=seed, max_faults=4)
            assert not set(plan.kinds) & set(TIMING_KINDS)

    def test_rng_streams_independent_and_deterministic(self):
        plan = FaultPlan.standard(seed=11)
        a = [plan.rng().random() for _ in range(3)]
        b = [plan.rng().random() for _ in range(3)]
        assert a == b  # each rng() call restarts the stream

    def test_describe_is_stable(self):
        plan = FaultPlan.from_cli(5, ["flush-drop:gpu", "copy-stall::50:0.5"])
        assert plan.describe() == plan.describe()
        assert "seed=5" in plan.describe()

    def test_chaos_deterministic_per_seed(self):
        assert FaultPlan.chaos(seed=9) == FaultPlan.chaos(seed=9)
        # different seeds give different plans at least somewhere
        plans = {FaultPlan.chaos(seed=s) for s in range(20)}
        assert len(plans) > 1

    def test_chaos_targets_are_valid(self):
        for seed in range(50):
            for spec in FaultPlan.chaos(seed=seed).faults:
                if spec.target == "*":
                    continue
                assert spec.target in COUNTER_TARGETS + ("cpu", "gpu")
