"""Seeded fault-injection fuzz smoke tests (``pytest -m fault``).

Each case applies a deterministically randomized chaos plan and asserts
the framework's robustness contract: every injected fault is either
*caught* — a structured :class:`~repro.errors.ReproError` with a
machine-readable code — or *absorbed* by degraded mode, which must
deliver a conservative recommendation without raising.
"""

import pytest

from repro.errors import ReproError
from repro.model.decision import Confidence
from repro.model.framework import Framework
from repro.robustness.faults import FaultPlan
from repro.robustness.guards import validate
from repro.robustness.inject import inject_faults

SEEDS = range(8)


@pytest.mark.fault
@pytest.mark.parametrize("seed", SEEDS)
def test_degraded_tune_never_raises(seed, tx2_board, shwfs_workload_tx2,
                                    characterization_suite):
    plan = FaultPlan.chaos(seed=seed)
    framework = Framework(suite=characterization_suite)
    with inject_faults(plan):
        report = framework.tune(shwfs_workload_tx2, tx2_board, strict=False)
    rec = report.recommendation
    if rec.degraded:
        # absorbed: the caveats must carry structured error codes
        assert rec.confidence is Confidence.LOW
        assert rec.caveats
    else:
        assert rec.confidence is Confidence.HIGH


@pytest.mark.fault
@pytest.mark.parametrize("seed", SEEDS)
def test_guarded_validation_never_crashes(seed, tx2_board,
                                          shwfs_workload_tx2):
    plan = FaultPlan.chaos(seed=seed)
    with inject_faults(plan):
        report = validate(tx2_board, shwfs_workload_tx2, characterize=False)
    # violations are allowed — uncaught exceptions are not
    for outcome in report.violations:
        assert outcome.code, f"violation without a code: {outcome}"


@pytest.mark.fault
@pytest.mark.parametrize("seed", [3, 17])
def test_fuzz_is_deterministic(seed, tx2_board, shwfs_workload_tx2):
    outcomes = []
    for _ in range(2):
        plan = FaultPlan.chaos(seed=seed)
        with inject_faults(plan) as injector:
            report = validate(tx2_board, shwfs_workload_tx2,
                              characterize=False)
        outcomes.append((report.render(), injector.log.events))
    assert outcomes[0] == outcomes[1]


@pytest.mark.fault
def test_strict_mode_surfaces_structured_errors(tx2_board,
                                                shwfs_workload_tx2,
                                                characterization_suite):
    """Across many seeds, strict mode either succeeds or raises a coded
    ReproError — never a bare exception."""
    framework = Framework(suite=characterization_suite)
    raised = 0
    for seed in range(12):
        plan = FaultPlan.chaos(seed=seed)
        try:
            with inject_faults(plan):
                framework.tune(shwfs_workload_tx2, tx2_board, strict=True)
        except ReproError as error:
            raised += 1
            assert error.code
            assert error.code.isupper()
    # the chaos plans are aggressive enough that some seeds must trip
    assert raised > 0
