"""Shared fixtures for the robustness tests."""

from __future__ import annotations

import pytest

from repro.profiling.counters import AppProfile
from repro.soc.board import get_board


@pytest.fixture(scope="session")
def shwfs_workload_tx2():
    """The SHWFS workload calibrated for the TX2 (session-cached)."""
    from repro.apps.shwfs import ShwfsPipeline

    return ShwfsPipeline().workload(board_name=get_board("tx2").name)


def make_profile(**overrides) -> AppProfile:
    """A small, valid SC profile; override single counters per test."""
    values = dict(
        workload_name="unit",
        board_name="tx2",
        model="SC",
        cpu_l1_miss_rate=0.1,
        cpu_llc_miss_rate=0.4,
        cpu_time_s=0.002,
        gpu_l1_hit_rate=0.6,
        gpu_transactions=10_000,
        gpu_transaction_size=32.0,
        kernel_runtime_s=0.001,
        copy_time_s=0.0005,
        total_runtime_s=0.004,
    )
    values.update(overrides)
    return AppProfile(**values)
