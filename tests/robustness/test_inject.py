"""The injection harness: patching, determinism, fault application."""

import pytest

from repro.errors import ProfilingError, SimulationError
from repro.profiling.profiler import Profiler
from repro.robustness.faults import FaultKind, FaultPlan, FaultSpec
from repro.robustness.inject import FaultInjector, inject_faults
from repro.soc.soc import SoC

from tests.robustness.conftest import make_profile


def plan_of(*specs, seed=0):
    return FaultPlan(seed=seed, faults=tuple(specs))


class TestActivation:
    def test_patches_restored_on_exit(self):
        before = (SoC._copy_time, SoC.flush_cpu_caches,
                  SoC.flush_gpu_caches, Profiler.__dict__["from_report"])
        with inject_faults(FaultPlan.standard(seed=0)):
            assert SoC._copy_time is not before[0]
        after = (SoC._copy_time, SoC.flush_cpu_caches,
                 SoC.flush_gpu_caches, Profiler.__dict__["from_report"])
        assert before == after

    def test_patches_restored_on_error(self):
        before = SoC._copy_time
        with pytest.raises(RuntimeError):
            with inject_faults(FaultPlan.standard(seed=0)):
                raise RuntimeError("boom")
        assert SoC._copy_time is before

    def test_nested_injectors_rejected(self):
        with inject_faults(FaultPlan.standard(seed=0)):
            with pytest.raises(SimulationError) as excinfo:
                FaultInjector(FaultPlan.standard(seed=1)).__enter__()
        assert excinfo.value.code == "INJECTOR_NESTED"


class TestCounterFaults:
    def test_noise_perturbs_counters(self):
        spec = FaultSpec(FaultKind.COUNTER_NOISE, target="cpu_time_s",
                         magnitude=0.1)
        profile = make_profile()
        with FaultInjector(plan_of(spec)) as injector:
            noisy = injector._perturb_profile(profile)
        assert noisy.cpu_time_s != profile.cpu_time_s
        assert noisy.cpu_time_s == pytest.approx(profile.cpu_time_s, rel=1.0)
        assert injector.log.counts() == {"counter-noise": 1}

    def test_nan_fault_raises_structured_error(self):
        spec = FaultSpec(FaultKind.COUNTER_NAN, target="kernel_runtime_s")
        with FaultInjector(plan_of(spec)) as injector:
            with pytest.raises(ProfilingError) as excinfo:
                injector._perturb_profile(make_profile())
        assert excinfo.value.code == "PROFILE_COUNTER_NONFINITE"
        assert excinfo.value.details["counter"] == "kernel_runtime_s"

    def test_drop_fault_raises_missing_counter(self):
        spec = FaultSpec(FaultKind.COUNTER_DROP, target="cpu_time_s")
        with FaultInjector(plan_of(spec)) as injector:
            with pytest.raises(ProfilingError) as excinfo:
                injector._perturb_profile(make_profile())
        assert excinfo.value.code == "PROFILE_COUNTER_MISSING"

    def test_misreport_scales_counter(self):
        spec = FaultSpec(FaultKind.CACHE_MISREPORT,
                         target="gpu_transactions", magnitude=50.0)
        profile = make_profile()
        with FaultInjector(plan_of(spec)) as injector:
            skewed = injector._perturb_profile(profile)
        assert skewed.gpu_transactions == profile.gpu_transactions * 50

    def test_probability_zero_never_fires(self):
        spec = FaultSpec(FaultKind.COUNTER_NAN, probability=0.0)
        profile = make_profile()
        with FaultInjector(plan_of(spec)) as injector:
            same = injector._perturb_profile(profile)
        assert same == profile
        assert injector.log.events == []

    def test_same_seed_same_perturbation(self):
        spec = FaultSpec(FaultKind.COUNTER_NOISE, magnitude=0.3)
        results = []
        for _ in range(2):
            with FaultInjector(plan_of(spec, seed=42)) as injector:
                results.append(injector._perturb_profile(make_profile()))
        assert results[0] == results[1]

    def test_different_seed_different_perturbation(self):
        spec = FaultSpec(FaultKind.COUNTER_NOISE, magnitude=0.3)
        results = []
        for seed in (1, 2):
            with FaultInjector(plan_of(spec, seed=seed)) as injector:
                results.append(injector._perturb_profile(make_profile()))
        assert results[0] != results[1]


class TestSoCFaults:
    def test_copy_stall_inflates_copy_time(self, tx2_board):
        spec = FaultSpec(FaultKind.COPY_STALL, magnitude=100.0)
        clean = SoC(tx2_board)
        with clean.communication("SC"):
            baseline = clean.copy(1 << 20).time_s
        with inject_faults(plan_of(spec)) as injector:
            soc = SoC(tx2_board)
            with soc.communication("SC"):
                stalled = soc.copy(1 << 20).time_s
        assert stalled == pytest.approx(baseline * 100.0)
        assert injector.log.counts() == {"copy-stall": 1}

    @staticmethod
    def _run_producer_phase(soc):
        from repro.soc.address import RegionKind
        from repro.soc.stream import AccessStream

        region = soc.make_region("cpu_partition", 1 << 20,
                                 RegionKind.CPU_PARTITION)
        buf = region.allocate("a", 1 << 16)
        soc.run_cpu("produce", 10_000.0, AccessStream.linear(buf, write=True))

    def test_flush_drop_keeps_hierarchy_marked_dirty(self, tx2_board):
        spec = FaultSpec(FaultKind.FLUSH_DROP, target="cpu")
        with inject_faults(plan_of(spec)) as injector:
            soc = SoC(tx2_board)
            with soc.communication("SC") as active:
                self._run_producer_phase(active)
                assert active._cpu_needs_flush
                result = active.flush_cpu_caches()
                # the flush was dropped: no time, no writebacks, still dirty
                assert result.time_s == 0.0
                assert result.writeback_bytes == 0
                assert active._cpu_needs_flush
        assert injector.log.counts() == {"flush-drop": 1}

    def test_gpu_flush_drop_only_hits_gpu(self, tx2_board):
        spec = FaultSpec(FaultKind.FLUSH_DROP, target="gpu")
        with inject_faults(plan_of(spec)):
            soc = SoC(tx2_board)
            with soc.communication("SC") as active:
                self._run_producer_phase(active)
                active.flush_cpu_caches()
                assert not active._cpu_needs_flush


class TestInjectionLog:
    def test_render_empty(self):
        assert FaultInjector(plan_of()).log.render() == "no faults fired"

    def test_counts_accumulate(self):
        injector = FaultInjector(plan_of())
        injector.log.record(FaultKind.FLUSH_DROP, "s", "d")
        injector.log.record(FaultKind.FLUSH_DROP, "s", "d")
        injector.log.record(FaultKind.COPY_STALL, "s", "d")
        assert injector.log.counts() == {"flush-drop": 2, "copy-stall": 1}
        assert "flush-drop: 2" in injector.log.render()
