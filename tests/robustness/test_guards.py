"""Runtime invariant guards and the validate suite."""

import pytest

from repro.errors import CoherenceError, InvariantError
from repro.robustness.faults import FaultKind, FaultPlan, FaultSpec
from repro.robustness.guards import (
    SoCGuards,
    check_execution_report,
    validate,
)
from repro.robustness.inject import inject_faults
from repro.soc.address import RegionKind
from repro.soc.phase import PhaseResult
from repro.soc.soc import SoC
from repro.soc.stream import AccessStream


def guarded_soc(board):
    soc = SoC(board)
    soc.guards = SoCGuards()
    return soc


def run_cpu_phase(soc, name="produce"):
    region = soc.address_space.region("cpu_partition")
    buf = region.buffer("a")
    return soc.run_cpu(name, 10_000.0, AccessStream.linear(buf, write=True))


def make_layout(soc):
    region = soc.make_region("cpu_partition", 1 << 20,
                             RegionKind.CPU_PARTITION)
    region.allocate("a", 1 << 16)


def fake_phase(**overrides):
    values = dict(name="p", processor="cpu", compute_time_s=1e-3,
                  memory_time_s=2e-3, time_s=2e-3, memory=None)
    values.update(overrides)
    return PhaseResult(**values)


class TestPhaseGuards:
    def test_clean_run_passes_and_counts(self, tx2_board):
        soc = guarded_soc(tx2_board)
        with soc.communication("SC") as active:
            make_layout(active)
            run_cpu_phase(active)
            active.flush_cpu_caches()
        assert soc.guards.checks_passed > 0

    def test_negative_phase_time_caught(self):
        guards = SoCGuards()
        with pytest.raises(InvariantError) as excinfo:
            guards.check_phase_timing(fake_phase(time_s=-1.0))
        assert excinfo.value.code == "GUARD_PHASE_TIMING"

    def test_nan_phase_time_caught(self):
        guards = SoCGuards()
        with pytest.raises(InvariantError) as excinfo:
            guards.check_phase_timing(fake_phase(time_s=float("nan")))
        assert excinfo.value.code == "GUARD_PHASE_TIMING"
        assert excinfo.value.details["component"] == "time_s"

    def test_total_below_components_caught(self):
        guards = SoCGuards()
        with pytest.raises(InvariantError):
            guards.check_phase_timing(
                fake_phase(compute_time_s=5e-3, time_s=1e-3))

    def test_exact_equality_allowed(self):
        guards = SoCGuards()
        guards.check_phase_timing(
            fake_phase(compute_time_s=2e-3, memory_time_s=1e-3, time_s=2e-3))


class TestCoherenceGuards:
    def test_dropped_cpu_flush_caught_at_handoff(self, tx2_board):
        plan = FaultPlan(seed=0,
                         faults=(FaultSpec(FaultKind.FLUSH_DROP,
                                           target="cpu"),))
        soc = guarded_soc(tx2_board)
        with inject_faults(plan):
            with pytest.raises(CoherenceError) as excinfo:
                with soc.communication("SC") as active:
                    make_layout(active)
                    run_cpu_phase(active)
                    active.flush_cpu_caches()  # dropped by the injector
                    buf = active.address_space.region("cpu_partition").buffer("a")
                    active.run_gpu("consume", 10_000.0,
                                   AccessStream.linear(buf))
        assert excinfo.value.code == "GUARD_DIRTY_HANDOFF"
        # the context manager must have cleaned up regardless
        assert soc.active_model is None

    def test_unflushed_exit_caught(self, tx2_board):
        soc = guarded_soc(tx2_board)
        with pytest.raises(CoherenceError) as excinfo:
            with soc.communication("SC") as active:
                make_layout(active)
                run_cpu_phase(active)
                # never flushed before leaving the context
        assert excinfo.value.code == "GUARD_UNFLUSHED_EXIT"

    def test_clean_handoff_passes(self, tx2_board):
        soc = guarded_soc(tx2_board)
        with soc.communication("SC") as active:
            make_layout(active)
            run_cpu_phase(active)
            active.flush_cpu_caches()
            buf = active.address_space.region("cpu_partition").buffer("a")
            active.run_gpu("consume", 10_000.0, AccessStream.linear(buf))
            active.flush_gpu_caches()


class TestCopyGuards:
    def test_copy_stall_caught(self, tx2_board):
        plan = FaultPlan(seed=0,
                         faults=(FaultSpec(FaultKind.COPY_STALL,
                                           magnitude=1000.0),))
        soc = guarded_soc(tx2_board)
        with inject_faults(plan):
            with pytest.raises(InvariantError) as excinfo:
                with soc.communication("SC") as active:
                    active.copy(1 << 20)
        assert excinfo.value.code == "GUARD_COPY_STALL"
        assert excinfo.value.details["num_bytes"] == 1 << 20

    def test_honest_copy_passes(self, tx2_board):
        soc = guarded_soc(tx2_board)
        with soc.communication("SC") as active:
            active.copy(1 << 20)
        assert soc.guards.checks_passed > 0


class TestReportChecks:
    def test_clean_report_passes(self, tx2_board, shwfs_workload_tx2):
        from repro.comm.base import get_model

        report = get_model("SC").execute(shwfs_workload_tx2, SoC(tx2_board))
        check_execution_report(report)

    def test_negative_energy_caught(self, tx2_board, shwfs_workload_tx2):
        import dataclasses

        from repro.comm.base import get_model

        report = get_model("SC").execute(shwfs_workload_tx2, SoC(tx2_board))
        bad = dataclasses.replace(
            report,
            energy=dataclasses.replace(report.energy, dram_j=-1.0),
        )
        with pytest.raises(InvariantError) as excinfo:
            check_execution_report(bad)
        assert excinfo.value.code == "GUARD_ENERGY"


class TestValidateSuite:
    def test_clean_validation_passes(self, tx2_board, shwfs_workload_tx2,
                                     characterization_suite):
        report = validate(tx2_board, shwfs_workload_tx2,
                          suite=characterization_suite)
        assert report.passed
        assert report.violations == []
        assert report.guard_checks_passed > 0
        rendered = report.render()
        assert "[ OK ]" in rendered
        assert "0 violation(s)" in rendered

    def test_validation_under_flush_drop_reports_violations(
            self, tx2_board, shwfs_workload_tx2):
        plan = FaultPlan(seed=0,
                         faults=(FaultSpec(FaultKind.FLUSH_DROP,
                                           target="cpu"),))
        with inject_faults(plan):
            report = validate(tx2_board, shwfs_workload_tx2,
                              characterize=False)
        assert not report.passed
        codes = {o.code for o in report.violations}
        assert codes == {"GUARD_DIRTY_HANDOFF"}
        # ZC does not flush, so it must have survived
        passed = {o.name for o in report.outcomes if o.passed}
        assert any("ZC" in name for name in passed)
        assert "[FAIL]" in report.render()

    def test_validation_render_is_deterministic(self, tx2_board,
                                                shwfs_workload_tx2):
        renders = []
        for _ in range(2):
            plan = FaultPlan.standard(seed=5)
            with inject_faults(plan):
                report = validate(tx2_board, shwfs_workload_tx2,
                                  characterize=False)
            renders.append(report.render())
        assert renders[0] == renders[1]


class TestLayoutGuard:
    def test_valid_layout_passes(self, tx2_board):
        soc = guarded_soc(tx2_board)
        make_layout(soc)
        soc.guards.check_layout(soc)

    def test_region_overlap_caught(self, tx2_board):
        from repro.soc.address import MemoryRegion

        soc = guarded_soc(tx2_board)
        make_layout(soc)
        # forge an overlapping region behind the allocator's back
        rogue = MemoryRegion(name="rogue", base=0, size=1 << 12,
                             kind=RegionKind.CPU_PARTITION)
        soc.address_space._regions["rogue"] = rogue
        with pytest.raises(InvariantError) as excinfo:
            soc.guards.check_layout(soc)
        assert excinfo.value.code == "GUARD_LAYOUT"
