"""Degraded-mode decision flow: strict vs absorbing behaviour."""

import math

import pytest

from repro.errors import MicrobenchmarkError, ModelError, ProfilingError
from repro.model.decision import (
    Confidence,
    RecommendedModel,
    decide,
    keep_current,
)
from repro.model.framework import Framework
from repro.robustness.faults import FaultKind, FaultPlan, FaultSpec
from repro.robustness.inject import inject_faults

from tests.robustness.conftest import make_profile


class TestKeepCurrent:
    def test_shape(self, tx2_device):
        rec = keep_current("SC", "inputs were bad",
                           caveats=("X: y",), device=tx2_device)
        assert rec.model is RecommendedModel.KEEP_CURRENT
        assert rec.model is RecommendedModel.NO_CHANGE  # alias
        assert rec.zone is None
        assert rec.confidence is Confidence.LOW
        assert rec.degraded
        assert not rec.suggests_switch
        assert rec.caveats == ("X: y",)
        assert math.isnan(rec.cpu_cache_usage_pct)
        # thresholds still come from the device when available
        assert rec.cpu_threshold_pct == tx2_device.cpu_threshold_pct

    def test_without_device_thresholds_are_nan(self):
        rec = keep_current("ZC", "nothing worked")
        assert math.isnan(rec.cpu_threshold_pct)
        assert "ZC" in rec.reason


class TestDecide:
    def test_strict_raises_on_board_mismatch(self, tx2_device):
        profile = make_profile(board_name="xavier")
        with pytest.raises(ModelError) as excinfo:
            decide(profile, tx2_device, strict=True)
        assert excinfo.value.code == "MODEL_BOARD_MISMATCH"

    def test_non_strict_absorbs_into_keep_current(self, tx2_device):
        profile = make_profile(board_name="xavier")
        rec = decide(profile, tx2_device, strict=False)
        assert rec.degraded
        assert any("MODEL_BOARD_MISMATCH" in c for c in rec.caveats)

    def test_implausible_usage_raises_guard_code(self, tx2_device):
        # a mis-reported transaction count makes GPU usage impossible
        profile = make_profile(gpu_transactions=10_000_000_000)
        with pytest.raises(ModelError) as excinfo:
            decide(profile, tx2_device, strict=True)
        assert excinfo.value.code == "GUARD_CACHE_USAGE"
        assert excinfo.value.details["side"] == "gpu"

    def test_implausible_usage_absorbed_when_non_strict(self, tx2_device):
        profile = make_profile(gpu_transactions=10_000_000_000)
        rec = decide(profile, tx2_device, strict=False)
        assert rec.degraded
        assert any("GUARD_CACHE_USAGE" in c for c in rec.caveats)

    def test_clean_profile_keeps_high_confidence(self, tx2_device):
        rec = decide(make_profile(), tx2_device, strict=True)
        assert rec.confidence is Confidence.HIGH
        assert not rec.degraded
        assert rec.caveats == ()


class TestTuneDegraded:
    def test_strict_tune_raises_under_counter_fault(
            self, tx2_board, shwfs_workload_tx2, characterization_suite):
        plan = FaultPlan(seed=0, faults=(
            FaultSpec(FaultKind.COUNTER_NAN, target="kernel_runtime_s"),))
        framework = Framework(suite=characterization_suite)
        with inject_faults(plan):
            with pytest.raises(ProfilingError) as excinfo:
                framework.tune(shwfs_workload_tx2, tx2_board, strict=True)
        assert excinfo.value.code == "PROFILE_COUNTER_NONFINITE"

    def test_degraded_tune_absorbs_counter_fault(
            self, tx2_board, shwfs_workload_tx2, characterization_suite):
        plan = FaultPlan(seed=0, faults=(
            FaultSpec(FaultKind.COUNTER_NAN, target="kernel_runtime_s"),))
        framework = Framework(suite=characterization_suite)
        with inject_faults(plan):
            report = framework.tune(shwfs_workload_tx2, tx2_board,
                                    strict=False)
        assert report.degraded
        rec = report.recommendation
        assert rec.model is RecommendedModel.KEEP_CURRENT
        assert rec.confidence is Confidence.LOW
        assert any("PROFILE_COUNTER_NONFINITE" in c for c in rec.caveats)
        assert report.profile is None
        assert math.isnan(report.kernel_time_s)

    def test_degraded_tune_absorbs_misreport_via_guard(
            self, tx2_board, shwfs_workload_tx2, characterization_suite):
        plan = FaultPlan(seed=0, faults=(
            FaultSpec(FaultKind.CACHE_MISREPORT, magnitude=80.0),))
        framework = Framework(suite=characterization_suite)
        with inject_faults(plan):
            report = framework.tune(shwfs_workload_tx2, tx2_board,
                                    strict=False)
        assert report.degraded
        assert any("GUARD_CACHE_USAGE" in c
                   for c in report.recommendation.caveats)

    def test_clean_tune_identical_in_both_modes(
            self, tx2_board, shwfs_workload_tx2, characterization_suite):
        framework = Framework(suite=characterization_suite)
        strict = framework.tune(shwfs_workload_tx2, tx2_board, strict=True)
        relaxed = framework.tune(shwfs_workload_tx2, tx2_board, strict=False)
        assert strict.recommendation == relaxed.recommendation
        assert not relaxed.degraded

    def test_degraded_tune_never_raises_under_standard_plan(
            self, tx2_board, shwfs_workload_tx2, characterization_suite):
        framework = Framework(suite=characterization_suite)
        with inject_faults(FaultPlan.standard(seed=123)):
            report = framework.tune(shwfs_workload_tx2, tx2_board,
                                    strict=False)
        assert report.recommendation is not None

    def test_unknown_current_model_code(
            self, tx2_board, shwfs_workload_tx2, characterization_suite):
        framework = Framework(suite=characterization_suite)
        with pytest.raises(ModelError) as excinfo:
            framework.tune(shwfs_workload_tx2, tx2_board,
                           current_model="DMA")
        assert excinfo.value.code == "MODEL_UNKNOWN"


class TestCharacterizeRetries:
    def test_no_retry_budget_preserves_raw_error(self, tx2_board,
                                                 monkeypatch):
        from repro.microbench.suite import MicrobenchmarkSuite

        suite = MicrobenchmarkSuite()
        monkeypatch.setattr(
            suite, "_characterize_once",
            lambda board: (_ for _ in ()).throw(
                MicrobenchmarkError("sweep failed",
                                    code="MICROBENCH_FAILED")),
        )
        with pytest.raises(MicrobenchmarkError) as excinfo:
            suite.characterize(tx2_board, retries=0)
        assert excinfo.value.code == "MICROBENCH_FAILED"

    def test_exhausted_retries_annotated(self, tx2_board, monkeypatch):
        from repro.microbench.suite import MicrobenchmarkSuite

        suite = MicrobenchmarkSuite()
        calls = []

        def failing(board):
            calls.append(board.name)
            raise MicrobenchmarkError("sweep failed",
                                      code="MICROBENCH_FAILED")

        monkeypatch.setattr(suite, "_characterize_once", failing)
        with pytest.raises(MicrobenchmarkError) as excinfo:
            suite.characterize(tx2_board, retries=2)
        assert excinfo.value.code == "MICROBENCH_RETRIES_EXHAUSTED"
        assert excinfo.value.details["attempts"] == 3
        assert excinfo.value.details["last_error"]["code"] == "MICROBENCH_FAILED"
        assert len(calls) == 3

    def test_retry_recovers_from_transient_failure(self, tx2_board,
                                                   monkeypatch):
        from repro.microbench.suite import MicrobenchmarkSuite

        suite = MicrobenchmarkSuite()
        real = suite._characterize_once
        attempts = []

        def flaky(board):
            attempts.append(board.name)
            if len(attempts) == 1:
                raise MicrobenchmarkError("transient",
                                          code="MICROBENCH_FAILED")
            return real(board)

        monkeypatch.setattr(suite, "_characterize_once", flaky)
        device = suite.characterize(tx2_board, retries=2)
        assert device.board_name == tx2_board.name
        assert len(attempts) == 2
