"""Coherence behaviour descriptions and cost models."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.coherence import (
    CoherenceMode,
    FlushCostModel,
    PageMigrationModel,
    ZeroCopyBehavior,
)
from repro.units import gbps


class TestZeroCopyBehavior:
    def test_disabled_cache_variant(self):
        zc = ZeroCopyBehavior(
            mode=CoherenceMode.ZC_CACHES_DISABLED,
            gpu_zc_bandwidth=gbps(1.28),
            cpu_zc_bandwidth=gbps(3.2),
        )
        assert not zc.io_coherent
        assert zc.cpu_llc_disabled

    def test_io_coherent_variant(self):
        zc = ZeroCopyBehavior(
            mode=CoherenceMode.ZC_IO_COHERENT,
            gpu_zc_bandwidth=gbps(32.29),
            cpu_zc_bandwidth=gbps(48.0),
            cpu_llc_disabled=False,
        )
        assert zc.io_coherent

    def test_io_coherent_requires_cpu_caches_on(self):
        with pytest.raises(ConfigurationError):
            ZeroCopyBehavior(
                mode=CoherenceMode.ZC_IO_COHERENT,
                gpu_zc_bandwidth=gbps(32.0),
                cpu_zc_bandwidth=gbps(48.0),
                cpu_llc_disabled=True,
            )

    def test_non_zc_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ZeroCopyBehavior(
                mode=CoherenceMode.SW_FLUSH,
                gpu_zc_bandwidth=gbps(1.0),
                cpu_zc_bandwidth=gbps(1.0),
            )

    def test_bandwidths_validated(self):
        with pytest.raises(ConfigurationError):
            ZeroCopyBehavior(
                mode=CoherenceMode.ZC_CACHES_DISABLED,
                gpu_zc_bandwidth=0.0,
                cpu_zc_bandwidth=gbps(1.0),
            )


class TestFlushCostModel:
    def test_cost_grows_with_occupancy(self):
        model = FlushCostModel()
        empty = model.flush_time(0, 0, 64, gbps(40.0))
        full = model.flush_time(4096, 2048, 64, gbps(40.0))
        assert full > empty

    def test_dirty_lines_pay_writeback_bandwidth(self):
        model = FlushCostModel(fixed_overhead_s=0.0, per_line_s=0.0)
        clean = model.flush_time(1000, 0, 64, gbps(40.0))
        dirty = model.flush_time(1000, 1000, 64, gbps(40.0))
        assert clean == 0.0
        assert dirty == pytest.approx(1000 * 64 / gbps(40.0))

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            FlushCostModel().flush_time(10, 20, 64, gbps(40.0))

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            FlushCostModel(fixed_overhead_s=-1.0)


class TestPageMigration:
    def test_pages_for(self):
        model = PageMigrationModel(page_size=4096)
        assert model.pages_for(0) == 0
        assert model.pages_for(1) == 1
        assert model.pages_for(4096) == 1
        assert model.pages_for(4097) == 2

    def test_migration_time_scales(self):
        model = PageMigrationModel()
        t1 = model.migration_time(1 << 20, copy_bandwidth=gbps(10.0))
        t2 = model.migration_time(2 << 20, copy_bandwidth=gbps(10.0))
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_faulted_fraction(self):
        model = PageMigrationModel()
        full = model.migration_time(1 << 20, copy_bandwidth=gbps(10.0))
        half = model.migration_time(1 << 20, copy_bandwidth=gbps(10.0),
                                    faulted_fraction=0.5)
        assert half == pytest.approx(full / 2)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            PageMigrationModel().migration_time(
                4096, copy_bandwidth=gbps(10.0), faulted_fraction=1.5
            )

    def test_um_stays_near_sc_envelope(self):
        """The calibrated fault overhead keeps migration within ~10 %
        of a raw copy for MB-scale payloads (the paper's ±8 % claim)."""
        model = PageMigrationModel()
        payload = 8 << 20
        copy_time = payload / gbps(14.0)
        migration = model.migration_time(payload, copy_bandwidth=gbps(14.0))
        assert migration <= copy_time * 1.10
