"""Overlapped/serial execution engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.soc.events import OverlapJob, run_overlapped, run_serial
from repro.soc.interconnect import InterconnectConfig
from repro.units import gbps


FABRIC = InterconnectConfig(total_bandwidth=gbps(40.0), arbitration_overhead=0.0)


def job(name, compute=0.0, bytes_=0.0, bw=gbps(10.0), overlap=True, start=0.0):
    return OverlapJob(
        name=name, compute_time_s=compute, memory_bytes=bytes_,
        solo_bandwidth=bw, overlap_compute_memory=overlap, start_time_s=start,
    )


class TestSingleJob:
    def test_compute_only(self):
        result = run_overlapped([job("a", compute=1e-3)], FABRIC)
        assert result.finish("a") == pytest.approx(1e-3)

    def test_memory_only(self):
        result = run_overlapped([job("a", bytes_=gbps(10.0) * 1e-3)], FABRIC)
        assert result.finish("a") == pytest.approx(1e-3)

    def test_overlap_semantics_is_max(self):
        result = run_overlapped(
            [job("a", compute=2e-3, bytes_=gbps(10.0) * 1e-3)], FABRIC
        )
        assert result.finish("a") == pytest.approx(2e-3)

    def test_serial_semantics_is_sum(self):
        result = run_overlapped(
            [job("a", compute=2e-3, bytes_=gbps(10.0) * 1e-3, overlap=False)],
            FABRIC,
        )
        assert result.finish("a") == pytest.approx(3e-3)

    def test_zero_work_finishes_immediately(self):
        result = run_overlapped([job("a")], FABRIC)
        assert result.finish("a") == 0.0

    def test_start_offset(self):
        result = run_overlapped([job("a", compute=1e-3, start=2e-3)], FABRIC)
        assert result.finish("a") == pytest.approx(3e-3)


class TestContention:
    def test_uncontended_jobs_keep_solo_times(self):
        jobs = [
            job("a", bytes_=gbps(10.0) * 1e-3, bw=gbps(10.0)),
            job("b", bytes_=gbps(10.0) * 1e-3, bw=gbps(10.0)),
        ]
        result = run_overlapped(jobs, FABRIC)
        assert result.finish("a") == pytest.approx(1e-3)
        assert result.finish("b") == pytest.approx(1e-3)

    def test_saturated_fabric_stretches_jobs(self):
        # Two jobs each wanting the whole fabric: each gets half.
        jobs = [
            job("a", bytes_=gbps(40.0) * 1e-3, bw=gbps(40.0)),
            job("b", bytes_=gbps(40.0) * 1e-3, bw=gbps(40.0)),
        ]
        result = run_overlapped(jobs, FABRIC)
        assert result.makespan_s == pytest.approx(2e-3, rel=0.01)

    def test_memory_completion_releases_bandwidth(self):
        # Short job finishes, long job speeds up afterwards.
        jobs = [
            job("short", bytes_=gbps(20.0) * 0.5e-3, bw=gbps(40.0)),
            job("long", bytes_=gbps(20.0) * 4e-3, bw=gbps(40.0)),
        ]
        result = run_overlapped(jobs, FABRIC)
        # If the long job had half bandwidth throughout: 4 ms.  It must
        # beat that because it gets the full fabric once short is done.
        assert result.finish("long") < 4e-3

    def test_non_overlap_job_demands_memory_after_compute(self):
        cpu = job("cpu", compute=1e-3, bytes_=gbps(40.0) * 1e-3,
                  bw=gbps(40.0), overlap=False)
        gpu = job("gpu", bytes_=gbps(40.0) * 1e-3, bw=gbps(40.0))
        result = run_overlapped([cpu, gpu], FABRIC)
        # The GPU streams alone during the CPU's compute, so both finish
        # around 2 ms instead of the naive 3 ms.
        assert result.finish("gpu") == pytest.approx(1e-3, rel=0.05)
        assert result.finish("cpu") == pytest.approx(2e-3, rel=0.05)


class TestSerialExecution:
    def test_serial_sums_jobs(self):
        jobs = [
            job("a", compute=1e-3),
            job("b", bytes_=gbps(10.0) * 2e-3),
        ]
        result = run_serial(jobs, FABRIC)
        assert result.finish("a") == pytest.approx(1e-3)
        assert result.finish("b") == pytest.approx(3e-3)
        assert result.makespan_s == pytest.approx(3e-3)

    def test_serial_never_faster_than_overlap(self):
        jobs = [
            job("a", compute=1e-3, bytes_=gbps(5.0) * 1e-3, bw=gbps(5.0)),
            job("b", compute=0.5e-3, bytes_=gbps(5.0) * 1e-3, bw=gbps(5.0)),
        ]
        serial = run_serial(jobs, FABRIC).makespan_s
        overlapped = run_overlapped(jobs, FABRIC).makespan_s
        assert overlapped <= serial + 1e-12


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            run_overlapped([job("a"), job("a")], FABRIC)

    def test_negative_demands_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlapJob(name="x", compute_time_s=-1.0, memory_bytes=0.0,
                       solo_bandwidth=gbps(1.0))

    def test_memory_without_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlapJob(name="x", compute_time_s=0.0, memory_bytes=100.0,
                       solo_bandwidth=0.0)

    def test_empty_job_list(self):
        result = run_overlapped([], FABRIC)
        assert result.makespan_s == 0.0


@given(
    compute_a=st.floats(min_value=0, max_value=1e-2),
    compute_b=st.floats(min_value=0, max_value=1e-2),
    mem_a=st.floats(min_value=0, max_value=1e7),
    mem_b=st.floats(min_value=0, max_value=1e7),
)
@settings(max_examples=60, deadline=None)
def test_property_overlap_bounds(compute_a, compute_b, mem_a, mem_b):
    """The overlapped makespan is bounded below by each job's solo time
    and above by the serial sum."""
    jobs = [
        job("a", compute=compute_a, bytes_=mem_a, bw=gbps(10.0)),
        job("b", compute=compute_b, bytes_=mem_b, bw=gbps(10.0)),
    ]
    solo_a = max(compute_a, mem_a / gbps(10.0))
    solo_b = max(compute_b, mem_b / gbps(10.0))
    result = run_overlapped(jobs, FABRIC)
    assert result.makespan_s >= max(solo_a, solo_b) - 1e-12
    assert result.makespan_s <= solo_a + solo_b + 1e-12
    assert result.finish("a") >= solo_a - 1e-12
    assert result.finish("b") >= solo_b - 1e-12
