"""CPU complex timing model."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.cache import CacheConfig
from repro.soc.cpu import CPUConfig, CPUModel
from repro.soc.dram import DRAMConfig, DRAMModel
from repro.soc.stream import AccessStream
from repro.units import gbps, ghz


def make_cpu(ipc=1.0, hide=0.85):
    config = CPUConfig(
        name="cpu",
        frequency_hz=ghz(2.0),
        l1=CacheConfig(name="l1", size_bytes=32 * 1024, line_size=64, ways=4),
        llc=CacheConfig(name="llc", size_bytes=2 * 1024 * 1024, line_size=64,
                        ways=16),
        l1_bandwidth=gbps(48.0),
        llc_bandwidth=gbps(24.0),
        memory_hide_factor=hide,
        ipc=ipc,
    )
    dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(59.7)))
    return CPUModel(config, dram)


def pinned_buffer(size=64 * 1024):
    region = MemoryRegion(name="p", base=0, size=1 << 24, kind=RegionKind.PINNED)
    return region.allocate("b", size, element_size=4)


def private_buffer(size=64 * 1024):
    region = MemoryRegion(name="pv", base=1 << 24, size=1 << 24,
                          kind=RegionKind.PRIVATE)
    return region.allocate("b", size, element_size=4)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(frequency_hz=0.0),
        dict(mlp=0.5),
        dict(memory_hide_factor=1.5),
        dict(ipc=0.0),
        dict(flops_per_cycle=0.0),
        dict(l1_bandwidth=0.0),
    ])
    def test_invalid(self, kwargs):
        base = dict(
            name="bad", frequency_hz=ghz(2.0),
            l1=CacheConfig(name="l1", size_bytes=32 * 1024, line_size=64, ways=4),
            llc=CacheConfig(name="llc", size_bytes=1 << 20, line_size=64, ways=16),
            l1_bandwidth=gbps(48.0), llc_bandwidth=gbps(24.0),
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            CPUConfig(**base)


class TestComputeTime:
    def test_scales_with_cycles(self):
        cpu = make_cpu()
        assert cpu.compute_time(2e9) == pytest.approx(1.0)

    def test_ipc_divides(self):
        slow = make_cpu(ipc=0.5)
        fast = make_cpu(ipc=2.0)
        assert slow.compute_time(1e6) == pytest.approx(4 * fast.compute_time(1e6))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cpu().compute_time(-1.0)


class TestRun:
    def test_compute_bound_phase(self):
        cpu = make_cpu()
        stream = AccessStream.single_address(pinned_buffer(), count=16)
        phase = cpu.run("t", compute_cycles=2e6, stream=stream)
        assert phase.time_s == pytest.approx(cpu.compute_time(2e6), rel=0.05)
        assert phase.processor == "cpu"

    def test_memory_bound_phase(self):
        cpu = make_cpu()
        stream = AccessStream.linear(pinned_buffer(4 << 20), read_write_pairs=False)
        phase = cpu.run("t", compute_cycles=0.0, stream=stream)
        assert phase.time_s >= phase.memory_time_s

    def test_hide_factor_zero_serializes(self):
        stream = AccessStream.linear(pinned_buffer(1 << 20), read_write_pairs=False)
        hidden = make_cpu(hide=1.0).run("t", 1e6, stream)
        serial = make_cpu(hide=0.0).run("t", 1e6, stream)
        assert serial.time_s > hidden.time_s

    def test_single_address_never_hidden(self):
        cpu = make_cpu(hide=1.0)
        stream = AccessStream.single_address(pinned_buffer(), count=4096)
        phase = cpu.run("t", compute_cycles=1e6, stream=stream,
                        uncached_bandwidth=gbps(3.2),
                        uncached_latency_s=100e-9)
        # serial chain: compute + latency charge, despite hide=1.0
        assert phase.time_s >= cpu.compute_time(1e6) + 4096 * 100e-9

    def test_multi_stream_merges(self):
        cpu = make_cpu()
        streams = [
            AccessStream.linear(pinned_buffer(8 * 1024), read_write_pairs=False),
            AccessStream.single_address(pinned_buffer(), count=32),
        ]
        phase = cpu.run("t", 1e5, streams)
        assert phase.memory.transactions == sum(len(s) for s in streams)

    def test_empty_stream_list_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cpu().run("t", 1.0, [])


class TestUncachedPath:
    def test_pinned_stream_capped_by_zc_bandwidth(self):
        cpu = make_cpu()
        stream = AccessStream.linear(pinned_buffer(1 << 20), read_write_pairs=False)
        cached = cpu.run("t", 0.0, stream)
        cpu.hierarchy.reset()
        uncached = cpu.run("t", 0.0, stream, uncached_bandwidth=gbps(1.0))
        assert uncached.memory_time_s > 3 * cached.memory_time_s

    def test_private_stream_unaffected_by_zc(self):
        cpu = make_cpu()
        stream = AccessStream.linear(private_buffer(64 * 1024),
                                     read_write_pairs=False, repeats=4)
        cached = cpu.run("t", 0.0, stream)
        cpu.hierarchy.reset()
        also_cached = cpu.run("t", 0.0, stream, uncached_bandwidth=gbps(1.0))
        assert also_cached.memory_time_s == pytest.approx(
            cached.memory_time_s, rel=0.05
        )

    def test_strided_uncached_pays_latency(self):
        cpu = make_cpu()
        stream = AccessStream.strided(pinned_buffer(48 * 1024), stride_elements=3)
        no_latency = cpu.run("t", 0.0, stream, uncached_bandwidth=gbps(3.2))
        cpu.hierarchy.reset()
        with_latency = cpu.run("t", 0.0, stream,
                               uncached_bandwidth=gbps(3.2),
                               uncached_latency_s=100e-9)
        expected_penalty = len(stream) * 100e-9 / cpu.config.mlp
        assert with_latency.memory_time_s - no_latency.memory_time_s == \
            pytest.approx(expected_penalty, rel=0.01)

    def test_linear_uncached_is_bandwidth_bound_only(self):
        cpu = make_cpu()
        stream = AccessStream.linear(pinned_buffer(64 * 1024),
                                     read_write_pairs=False)
        a = cpu.run("t", 0.0, stream, uncached_bandwidth=gbps(3.2))
        cpu.hierarchy.reset()
        b = cpu.run("t", 0.0, stream, uncached_bandwidth=gbps(3.2),
                    uncached_latency_s=100e-9)
        assert b.memory_time_s == pytest.approx(a.memory_time_s)

    def test_cache_state_restored_after_pinned_stream(self):
        cpu = make_cpu()
        stream = AccessStream.linear(pinned_buffer(8 * 1024),
                                     read_write_pairs=False)
        cpu.run("t", 0.0, stream, uncached_bandwidth=gbps(1.0))
        assert cpu.hierarchy.l1.enabled
        assert cpu.hierarchy.llc.enabled
        assert cpu.hierarchy.memory_port_bandwidth == float("inf")
