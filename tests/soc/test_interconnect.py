"""Shared-interconnect arbitration (max-min fairness)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.soc.interconnect import InterconnectConfig, allocate_bandwidth
from repro.units import gbps


CONFIG = InterconnectConfig(total_bandwidth=gbps(40.0), arbitration_overhead=0.0)


class TestConfig:
    def test_usable_bandwidth_degrades_with_requesters(self):
        config = InterconnectConfig(total_bandwidth=gbps(40.0),
                                    arbitration_overhead=0.05)
        assert config.usable_bandwidth(1) == gbps(40.0)
        assert config.usable_bandwidth(2) == pytest.approx(gbps(38.0))
        assert config.usable_bandwidth(3) == pytest.approx(gbps(36.0))

    def test_degradation_floor(self):
        config = InterconnectConfig(total_bandwidth=gbps(40.0),
                                    arbitration_overhead=0.4)
        assert config.usable_bandwidth(100) == pytest.approx(gbps(20.0))

    @pytest.mark.parametrize("kwargs", [
        dict(total_bandwidth=0.0),
        dict(total_bandwidth=gbps(1), arbitration_overhead=-0.1),
        dict(total_bandwidth=gbps(1), arbitration_overhead=0.6),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(**kwargs)


class TestAllocation:
    def test_single_requester_gets_its_cap(self):
        grants = allocate_bandwidth({"gpu": gbps(10.0)}, CONFIG)
        assert grants["gpu"] == pytest.approx(gbps(10.0))

    def test_uncontended_requests_fully_granted(self):
        grants = allocate_bandwidth({"a": gbps(10.0), "b": gbps(20.0)}, CONFIG)
        assert grants["a"] == pytest.approx(gbps(10.0))
        assert grants["b"] == pytest.approx(gbps(20.0))

    def test_contended_split_is_fair(self):
        grants = allocate_bandwidth({"a": gbps(40.0), "b": gbps(40.0)}, CONFIG)
        assert grants["a"] == pytest.approx(gbps(20.0))
        assert grants["b"] == pytest.approx(gbps(20.0))

    def test_small_requester_releases_surplus(self):
        grants = allocate_bandwidth({"small": gbps(5.0), "big": gbps(100.0)}, CONFIG)
        assert grants["small"] == pytest.approx(gbps(5.0))
        assert grants["big"] == pytest.approx(gbps(35.0))

    def test_zero_demand_gets_zero(self):
        grants = allocate_bandwidth({"idle": 0.0, "busy": gbps(10.0)}, CONFIG)
        assert grants["idle"] == 0.0
        assert grants["busy"] == pytest.approx(gbps(10.0))

    def test_empty_demands(self):
        assert allocate_bandwidth({}, CONFIG) == {}


@given(
    demands=st.dictionaries(
        keys=st.sampled_from(["a", "b", "c", "d", "e"]),
        values=st.floats(min_value=0.0, max_value=1e11, allow_nan=False),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=100, deadline=None)
def test_allocation_invariants(demands):
    """Grants never exceed caps, never exceed the budget in total, and
    saturate the fabric whenever total demand allows it."""
    grants = allocate_bandwidth(demands, CONFIG)
    budget = CONFIG.usable_bandwidth(sum(1 for v in demands.values() if v > 0))
    total_granted = sum(grants.values())
    total_demand = sum(demands.values())
    for name, cap in demands.items():
        assert grants[name] <= cap + 1e-3
        assert grants[name] >= 0.0
    assert total_granted <= budget + 1e-3
    # Work-conserving: either all demand is satisfied or the budget is.
    assert (total_granted >= min(total_demand, budget) - 1e-3)
