"""Property-based tests of GPU coalescing and the two-level analytic
chain (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.cache import CacheConfig
from repro.soc.dram import DRAMConfig, DRAMModel
from repro.soc.gpu import coalesce_stream
from repro.soc.hierarchy import CacheHierarchy, LevelSpec
from repro.soc.stream import AccessStream
from repro.units import gbps


def make_buffer(size_bytes):
    region = MemoryRegion(name="r", base=0, size=max(1 << 22, size_bytes * 2),
                          kind=RegionKind.PINNED)
    return region.allocate("b", size_bytes, element_size=4)


class TestCoalescingProperties:
    @given(
        elements=st.integers(min_value=1, max_value=4096),
        pairs=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_coalescing_conserves_lines(self, elements, pairs):
        """Coalesced transactions cover exactly the stream's lines, and
        never exceed the original transaction count."""
        buffer = make_buffer(elements * 4)
        stream = AccessStream.linear(buffer, read_write_pairs=pairs)
        coalesced = coalesce_stream(stream, line_size=64, warp_size=32)
        original_lines = set((stream.addresses >> 6).tolist())
        coalesced_lines = set((coalesced.addresses >> 6).tolist())
        assert coalesced_lines == original_lines
        assert len(coalesced) <= len(stream)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_sparse_never_gains_from_coalescing(self, seed):
        buffer = make_buffer(256 * 1024)
        stream = AccessStream.sparse(buffer, count=256, line_size=64,
                                     seed=seed)
        coalesced = coalesce_stream(stream, line_size=64, warp_size=32)
        assert len(coalesced) == len(stream)

    @given(elements=st.integers(min_value=64, max_value=2048))
    @settings(max_examples=30, deadline=None)
    def test_write_transactions_preserved(self, elements):
        """Coalescing must not drop the store direction of rw pairs."""
        buffer = make_buffer(elements * 4)
        stream = AccessStream.linear(buffer, read_write_pairs=True)
        coalesced = coalesce_stream(stream, line_size=64, warp_size=32)
        assert coalesced.is_write.any()
        assert not coalesced.is_write.all()


class TestTwoLevelAnalyticChain:
    """The analytic path through a full two-level hierarchy tracks the
    exact simulator — the contract behind every large benchmark."""

    def make_hierarchy(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0)))
        return CacheHierarchy(
            [
                LevelSpec(CacheConfig(name="l1", size_bytes=8 * 1024,
                                      line_size=64, ways=4),
                          bandwidth=gbps(100.0)),
                LevelSpec(CacheConfig(name="llc", size_bytes=128 * 1024,
                                      line_size=64, ways=8),
                          bandwidth=gbps(50.0)),
            ],
            dram,
        )

    @given(
        footprint_lines=st.integers(min_value=4, max_value=4096),
        repeats=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_chain_tracks_exact(self, footprint_lines, repeats):
        buffer = make_buffer(footprint_lines * 64)
        stream = AccessStream.linear(buffer, read_write_pairs=False,
                                     repeats=repeats)
        exact = self.make_hierarchy().process(stream, mode="exact")
        approx = self.make_hierarchy().process(stream, mode="analytic")
        assert approx.l1.misses == exact.l1.misses
        assert approx.llc.misses == exact.llc.misses
        assert approx.dram_read_bytes == pytest.approx(
            exact.dram_read_bytes, rel=0.02, abs=128
        )

    @given(
        footprint_lines=st.integers(min_value=4, max_value=2048),
        repeats=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_chain_rw_pairs(self, footprint_lines, repeats):
        buffer = make_buffer(footprint_lines * 64)
        stream = AccessStream.linear(buffer, read_write_pairs=True,
                                     repeats=repeats)
        exact = self.make_hierarchy().process(stream, mode="exact")
        approx = self.make_hierarchy().process(stream, mode="analytic")
        assert approx.l1.hit_rate == pytest.approx(exact.l1.hit_rate,
                                                   abs=0.01)
        assert approx.llc.hit_rate == pytest.approx(exact.llc.hit_rate,
                                                    abs=0.01)
        # Writeback (dirty) traffic is approximated; stay within 20 %.
        assert approx.dram_write_bytes == pytest.approx(
            exact.dram_write_bytes, rel=0.2, abs=4096
        )
