"""Energy model."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.energy import EnergyConfig, EnergyModel


def make_model(**kwargs):
    base = dict(static_power_w=2.0, cpu_active_power_w=1.5,
                gpu_active_power_w=5.0)
    base.update(kwargs)
    return EnergyModel(EnergyConfig(**base))


class TestConfig:
    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyConfig(static_power_w=-1.0, cpu_active_power_w=0.0,
                         gpu_active_power_w=0.0)


class TestEnergy:
    def test_static_energy_scales_with_time(self):
        model = make_model()
        short = model.execution_energy(1.0, 0, 0, 0, 0)
        long = model.execution_energy(2.0, 0, 0, 0, 0)
        assert long.static_j == pytest.approx(2 * short.static_j)

    def test_busy_time_clamped_to_window(self):
        model = make_model()
        result = model.execution_energy(1.0, cpu_busy_s=5.0, gpu_busy_s=5.0,
                                        cache_bytes=0, dram_bytes=0)
        assert result.cpu_active_j == pytest.approx(1.5)
        assert result.gpu_active_j == pytest.approx(5.0)

    def test_copy_pays_double_dram_plus_engine(self):
        model = make_model()
        no_copy = model.execution_energy(1.0, 0, 0, 0, dram_bytes=0,
                                         copied_bytes=0)
        with_copy = model.execution_energy(1.0, 0, 0, 0, dram_bytes=0,
                                           copied_bytes=1 << 20)
        extra = with_copy.total_j - no_copy.total_j
        cfg = model.config
        expected = (2 * cfg.pj_per_byte_dram + cfg.pj_per_byte_copy) * (1 << 20) * 1e-12
        assert extra == pytest.approx(expected)

    def test_cache_cheaper_than_dram_per_byte(self):
        model = make_model()
        cache = model.execution_energy(1.0, 0, 0, cache_bytes=1 << 20,
                                       dram_bytes=0)
        dram = model.execution_energy(1.0, 0, 0, cache_bytes=0,
                                      dram_bytes=1 << 20)
        assert cache.cache_j < dram.dram_j

    def test_total_is_sum_of_parts(self):
        model = make_model()
        result = model.execution_energy(1.0, 0.5, 0.25, 1 << 20, 1 << 20,
                                        1 << 19)
        assert result.total_j == pytest.approx(
            result.static_j + result.cpu_active_j + result.gpu_active_j
            + result.cache_j + result.dram_j + result.copy_j
        )

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            make_model().execution_energy(-1.0, 0, 0, 0, 0)

    def test_zero_copy_saves_energy_at_equal_runtime(self):
        """The paper's energy argument: same duration, no copy traffic
        -> less energy."""
        model = make_model()
        sc = model.execution_energy(1e-3, 0.5e-3, 0.5e-3,
                                    cache_bytes=1 << 20, dram_bytes=1 << 20,
                                    copied_bytes=1 << 20)
        zc = model.execution_energy(1e-3, 0.5e-3, 0.5e-3,
                                    cache_bytes=1 << 20, dram_bytes=1 << 20,
                                    copied_bytes=0)
        assert zc.total_j < sc.total_j
