"""Phase-result combination helper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.phase import combine_compute_memory


class TestCombineComputeMemory:
    def test_full_hiding_is_max(self):
        assert combine_compute_memory(3.0, 2.0, 1.0) == 3.0
        assert combine_compute_memory(2.0, 5.0, 1.0) == 5.0

    def test_no_hiding_is_sum(self):
        assert combine_compute_memory(3.0, 2.0, 0.0) == 5.0

    def test_half_hiding(self):
        assert combine_compute_memory(4.0, 2.0, 0.5) == 5.0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            combine_compute_memory(1.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            combine_compute_memory(1.0, 1.0, -0.1)

    @given(
        compute=st.floats(0, 1e3),
        memory=st.floats(0, 1e3),
        hide=st.floats(0, 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bounded_between_max_and_sum(self, compute, memory, hide):
        combined = combine_compute_memory(compute, memory, hide)
        assert combined >= max(compute, memory) - 1e-9
        assert combined <= compute + memory + 1e-9

    @given(
        compute=st.floats(0, 1e3),
        memory=st.floats(0, 1e3),
        hide_low=st.floats(0, 1),
        hide_high=st.floats(0, 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_more_hiding_never_slower(self, compute, memory,
                                               hide_low, hide_high):
        low, high = sorted((hide_low, hide_high))
        assert combine_compute_memory(compute, memory, high) <= \
            combine_compute_memory(compute, memory, low) + 1e-9

    @given(compute=st.floats(0, 1e3), memory=st.floats(0, 1e3))
    @settings(max_examples=50, deadline=None)
    def test_property_symmetry(self, compute, memory):
        assert combine_compute_memory(compute, memory, 0.3) == pytest.approx(
            combine_compute_memory(memory, compute, 0.3)
        )
