"""SoC assembly: communication contexts, copies, flushes, overlap."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.soc.address import RegionKind
from repro.soc.board import jetson_tx2, jetson_xavier
from repro.soc.events import OverlapJob
from repro.soc.soc import ALL_MODELS, SoC
from repro.soc.stream import AccessStream
from repro.units import gbps, to_gbps


@pytest.fixture
def soc():
    return SoC(jetson_tx2())


def pinned_stream(soc, size=256 * 1024, repeats=4):
    region = soc.make_region("pinned", 4 << 20, RegionKind.PINNED)
    buffer = region.allocate("data", size, element_size=4)
    return AccessStream.linear(buffer, read_write_pairs=False, repeats=repeats)


class TestCommunicationContext:
    def test_unknown_model_rejected(self, soc):
        with pytest.raises(ConfigurationError):
            with soc.communication("XX"):
                pass

    def test_nesting_rejected(self, soc):
        with soc.communication("SC"):
            with pytest.raises(SimulationError):
                with soc.communication("ZC"):
                    pass

    def test_active_model_tracked(self, soc):
        assert soc.active_model is None
        with soc.communication("ZC"):
            assert soc.active_model == "ZC"
        assert soc.active_model is None

    def test_caches_invalidated_on_exit(self, soc):
        stream = pinned_stream(soc)
        with soc.communication("SC"):
            soc.run_gpu("k", 0.0, stream)
        assert soc.gpu.hierarchy.llc.resident_lines == 0

    def test_all_models_accepted(self, soc):
        for model in ALL_MODELS:
            with soc.communication(model):
                pass


class TestZeroCopySemantics:
    def test_zc_slows_pinned_gpu_stream(self, soc):
        stream = pinned_stream(soc)
        with soc.communication("SC"):
            sc = soc.run_gpu("k", 0.0, stream)
        with soc.communication("ZC"):
            zc = soc.run_gpu("k", 0.0, stream)
        assert zc.time_s > 10 * sc.time_s
        assert to_gbps(zc.effective_throughput) == pytest.approx(1.28, rel=0.05)

    def test_zc_slows_tx2_cpu(self, soc):
        stream = pinned_stream(soc, size=64 * 1024)
        with soc.communication("SC"):
            sc = soc.run_cpu("t", 1e5, stream)
        with soc.communication("ZC"):
            zc = soc.run_cpu("t", 1e5, stream)
        assert zc.time_s > sc.time_s

    def test_xavier_cpu_unaffected_by_zc(self):
        soc = SoC(jetson_xavier())
        stream = pinned_stream(soc, size=64 * 1024)
        with soc.communication("SC"):
            sc = soc.run_cpu("t", 1e5, stream)
        with soc.communication("ZC"):
            zc = soc.run_cpu("t", 1e5, stream)
        assert zc.time_s == pytest.approx(sc.time_s, rel=0.05)

    def test_xavier_zc_uses_io_coherent_path(self):
        soc = SoC(jetson_xavier())
        stream = pinned_stream(soc)
        with soc.communication("ZC"):
            zc = soc.run_gpu("k", 0.0, stream)
        assert to_gbps(zc.effective_throughput) == pytest.approx(32.29, rel=0.1)


class TestCopyEngine:
    def test_copy_time_scales(self, soc):
        t1 = soc.copy(1 << 20).time_s
        t2 = soc.copy(2 << 20).time_s
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_copy_counts_double_dram_traffic(self, soc):
        before = soc.dram.total_bytes
        soc.copy(1 << 20)
        assert soc.dram.total_bytes - before == 2 << 20

    def test_zero_copy_is_free(self, soc):
        result = soc.copy(0)
        assert result.time_s == 0.0

    def test_negative_rejected(self, soc):
        with pytest.raises(ConfigurationError):
            soc.copy(-1)

    def test_throughput_capped_by_engine(self, soc):
        result = soc.copy(64 << 20)
        assert result.throughput <= soc.board.copy_engine_bandwidth * 1.01


class TestFlushes:
    def test_flush_cpu_after_writes(self, soc):
        region = soc.make_region("p", 1 << 20, RegionKind.PINNED)
        buffer = region.allocate("b", 64 * 1024, element_size=4)
        stream = AccessStream.linear(buffer, read_write_pairs=True)
        with soc.communication("SC"):
            soc.run_cpu("t", 0.0, stream)
            result = soc.flush_cpu_caches()
        assert result.writeback_bytes > 0

    def test_flush_empty_caches_cheap(self, soc):
        result = soc.flush_gpu_caches()
        assert result.writeback_bytes == 0


class TestOverlapAndReset:
    def test_overlap_beats_serial(self, soc):
        jobs = [
            OverlapJob(name="cpu", compute_time_s=1e-3, memory_bytes=0.0,
                       solo_bandwidth=gbps(1.0), overlap_compute_memory=False),
            OverlapJob(name="gpu", compute_time_s=1e-3, memory_bytes=0.0,
                       solo_bandwidth=gbps(1.0)),
        ]
        overlapped = soc.overlap(jobs).makespan_s
        serial = soc.serialize(jobs).makespan_s
        assert overlapped == pytest.approx(1e-3)
        assert serial == pytest.approx(2e-3)

    def test_reset_clears_state(self, soc):
        soc.copy(1 << 20)
        soc.reset()
        assert soc.dram.total_bytes == 0
        assert soc.copied_bytes == 0

    def test_migration_time_positive(self, soc):
        assert soc.migration_time(1 << 20) > 0
        assert soc.migration_time(0) == 0.0

    def test_region_layout_reset(self, soc):
        soc.make_region("a", 4096, RegionKind.PINNED)
        soc.reset_memory_layout()
        soc.make_region("a", 4096, RegionKind.PINNED)  # no duplicate error
