"""Access-stream builders and invariants."""

import numpy as np
import pytest

from repro.errors import AddressError
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.stream import AccessStream, PatternKind


@pytest.fixture
def buffer():
    region = MemoryRegion(name="r", base=0x10000, size=1 << 20,
                          kind=RegionKind.PINNED)
    return region.allocate("buf", 64 * 1024, element_size=4)


class TestLinear:
    def test_addresses_are_sequential(self, buffer):
        stream = AccessStream.linear(buffer, read_write_pairs=False)
        assert len(stream) == buffer.num_elements
        assert stream.addresses[0] == buffer.base
        diffs = np.diff(stream.addresses)
        assert np.all(diffs == 4)

    def test_read_write_pairs(self, buffer):
        stream = AccessStream.linear(buffer, read_write_pairs=True)
        assert len(stream) == 2 * buffer.num_elements
        # read then write of the same element
        assert stream.addresses[0] == stream.addresses[1]
        assert not stream.is_write[0]
        assert stream.is_write[1]
        assert stream.write_fraction == pytest.approx(0.5)

    def test_footprint_is_buffer_size(self, buffer):
        stream = AccessStream.linear(buffer)
        assert stream.footprint_bytes == buffer.size

    def test_pattern_tag(self, buffer):
        assert AccessStream.linear(buffer).pattern is PatternKind.LINEAR


class TestSingleAddress:
    def test_one_distinct_address(self, buffer):
        stream = AccessStream.single_address(buffer, count=100)
        assert len(np.unique(stream.addresses)) == 1
        assert stream.footprint_bytes == buffer.element_size

    def test_write_every(self, buffer):
        stream = AccessStream.single_address(buffer, count=8, write_every=2)
        assert list(stream.is_write) == [False, True] * 4

    def test_count_validated(self, buffer):
        with pytest.raises(AddressError):
            AccessStream.single_address(buffer, count=0)


class TestFraction:
    def test_covers_leading_fraction(self, buffer):
        stream = AccessStream.fraction(buffer, fraction=0.25,
                                       read_write_pairs=False)
        assert stream.footprint_bytes == buffer.size // 4
        assert stream.addresses.max() < buffer.base + buffer.size // 4

    def test_tiny_fraction_touches_one_element(self, buffer):
        stream = AccessStream.fraction(buffer, fraction=1e-9,
                                       read_write_pairs=False)
        assert stream.footprint_bytes == buffer.element_size

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction_rejected(self, buffer, fraction):
        with pytest.raises(AddressError):
            AccessStream.fraction(buffer, fraction=fraction)


class TestStrided:
    def test_stride_spacing(self, buffer):
        stream = AccessStream.strided(buffer, stride_elements=4)
        assert np.all(np.diff(stream.addresses) == 16)

    def test_subline_stride_footprint_is_span(self, buffer):
        # A 12-byte stride touches every 64-byte line of the span.
        stream = AccessStream.strided(buffer, stride_elements=3)
        assert stream.footprint_bytes == pytest.approx(buffer.size, rel=0.001)

    def test_invalid_stride_rejected(self, buffer):
        with pytest.raises(AddressError):
            AccessStream.strided(buffer, stride_elements=0)


class TestSparse:
    def test_distinct_lines(self, buffer):
        stream = AccessStream.sparse(buffer, count=512, line_size=64, seed=7)
        lines = stream.addresses // 64
        assert len(np.unique(lines)) == 512

    def test_deterministic_by_seed(self, buffer):
        a = AccessStream.sparse(buffer, count=64, line_size=64, seed=3)
        b = AccessStream.sparse(buffer, count=64, line_size=64, seed=3)
        assert np.array_equal(a.addresses, b.addresses)

    def test_different_seeds_differ(self, buffer):
        a = AccessStream.sparse(buffer, count=64, line_size=64, seed=3)
        b = AccessStream.sparse(buffer, count=64, line_size=64, seed=4)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_more_accesses_than_lines(self, buffer):
        lines = buffer.size // 64
        stream = AccessStream.sparse(buffer, count=lines + 100, line_size=64)
        assert len(stream) == lines + 100


class TestOverRanges:
    def test_covers_all_ranges(self, buffer):
        ranges = [buffer.sub_range(0, 16), buffer.sub_range(64, 16)]
        stream = AccessStream.over_ranges(ranges, read_write_pairs=False)
        assert len(stream) == 32
        assert stream.footprint_bytes == 128

    def test_empty_rejected(self):
        with pytest.raises(AddressError):
            AccessStream.over_ranges([])


class TestRepeats:
    def test_totals_scale_with_repeats(self, buffer):
        stream = AccessStream.linear(buffer, read_write_pairs=False, repeats=8)
        assert stream.total_transactions == 8 * buffer.num_elements
        assert stream.total_bytes == 8 * buffer.size
        assert stream.bytes_per_pass == buffer.size

    def test_with_repeats_copy(self, buffer):
        stream = AccessStream.linear(buffer).with_repeats(5)
        assert stream.repeats == 5
        assert stream.pattern is PatternKind.LINEAR

    def test_invalid_repeats_rejected(self, buffer):
        with pytest.raises(AddressError):
            AccessStream.linear(buffer, repeats=0)


class TestVirtualStreams:
    def test_virtual_linear_shape(self):
        stream = AccessStream.virtual_linear(2 ** 20, element_size=4)
        assert stream.is_virtual
        assert stream.transactions_per_pass == 2 ** 21  # read+write pairs
        assert stream.footprint_bytes == 4 * 2 ** 20
        assert stream.write_fraction == pytest.approx(0.5)
        assert len(stream.addresses) == 0

    def test_virtual_sparse_shape(self):
        stream = AccessStream.virtual_sparse(1000, footprint_bytes=1 << 20)
        assert stream.is_virtual
        assert stream.pattern is PatternKind.SPARSE
        assert stream.total_transactions == 1000

    def test_virtual_requires_footprint(self):
        with pytest.raises(AddressError):
            AccessStream.virtual_stream(
                pattern=PatternKind.LINEAR, per_pass=10, footprint_bytes=None  # type: ignore[arg-type]
            )

    def test_virtual_rejects_addresses(self):
        with pytest.raises(AddressError):
            AccessStream(
                addresses=np.array([0], dtype=np.int64),
                is_write=np.array([False]),
                virtual_per_pass=4,
                footprint_bytes=16,
            )


class TestValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(AddressError):
            AccessStream(
                addresses=np.zeros(4, dtype=np.int64),
                is_write=np.zeros(3, dtype=bool),
            )

    def test_concat(self, buffer):
        a = AccessStream.linear(buffer, read_write_pairs=False)
        b = AccessStream.single_address(buffer, count=10)
        combined = AccessStream.concat([a, b])
        assert len(combined) == len(a) + len(b)

    def test_concat_rejects_repeats(self, buffer):
        a = AccessStream.linear(buffer, repeats=2)
        with pytest.raises(AddressError):
            AccessStream.concat([a, a])

    def test_empty_stream(self):
        stream = AccessStream.empty()
        assert len(stream) == 0
        assert stream.total_bytes == 0
        assert stream.write_fraction == 0.0
