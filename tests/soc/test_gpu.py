"""iGPU timing model and warp coalescing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.cache import CacheConfig
from repro.soc.dram import DRAMConfig, DRAMModel
from repro.soc.gpu import GPUConfig, GPUModel, coalesce_stream
from repro.soc.stream import AccessStream, PatternKind
from repro.units import gbps, ghz


def make_gpu(sms=2):
    config = GPUConfig(
        name="gpu",
        frequency_hz=ghz(1.3),
        num_sms=sms,
        warp_size=32,
        l1=CacheConfig(name="gl1", size_bytes=48 * 1024, line_size=64, ways=6),
        llc=CacheConfig(name="gllc", size_bytes=512 * 1024, line_size=64, ways=16),
        l1_bandwidth=gbps(180.0),
        llc_bandwidth=gbps(97.34),
    )
    dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(59.7)))
    return GPUModel(config, dram)


def pinned_buffer(size=256 * 1024):
    region = MemoryRegion(name="p", base=0, size=1 << 24, kind=RegionKind.PINNED)
    return region.allocate("b", size, element_size=4)


def private_buffer(size=64 * 1024):
    region = MemoryRegion(name="pv", base=1 << 24, size=1 << 24,
                          kind=RegionKind.PRIVATE)
    return region.allocate("b", size, element_size=4)


class TestCoalescing:
    def test_linear_reads_merge_to_lines(self):
        buffer = pinned_buffer(4096)
        stream = AccessStream.linear(buffer, read_write_pairs=False)
        coalesced = coalesce_stream(stream, line_size=64, warp_size=32)
        # 1024 4-byte reads -> 64 line transactions
        assert len(coalesced) == 64
        assert coalesced.transaction_size == 64

    def test_read_write_pairs_keep_both_directions(self):
        buffer = pinned_buffer(4096)
        stream = AccessStream.linear(buffer, read_write_pairs=True)
        coalesced = coalesce_stream(stream, line_size=64, warp_size=32)
        writes = int(np.count_nonzero(coalesced.is_write))
        assert writes > 0
        assert writes < len(coalesced)

    def test_sparse_does_not_coalesce(self):
        buffer = pinned_buffer(256 * 1024)
        stream = AccessStream.sparse(buffer, count=512, line_size=64)
        coalesced = coalesce_stream(stream, line_size=64, warp_size=32)
        assert len(coalesced) == 512

    def test_line_sized_stream_untouched(self):
        buffer = pinned_buffer(4096)
        stream = AccessStream.linear(buffer, read_write_pairs=False)
        wide = coalesce_stream(stream, line_size=4, warp_size=32)
        assert wide is stream

    def test_virtual_linear_coalesces_analytically(self):
        stream = AccessStream.virtual_linear(2 ** 20, element_size=4)
        coalesced = coalesce_stream(stream, line_size=64, warp_size=32)
        assert coalesced.is_virtual
        # 2^20 elements -> 65536 lines, read+write directions
        assert coalesced.transactions_per_pass == 2 * (2 ** 20 * 4 // 64)

    def test_virtual_sparse_passes_through(self):
        stream = AccessStream.virtual_sparse(1000, footprint_bytes=1 << 20)
        assert coalesce_stream(stream, 64, 32) is stream

    def test_region_kind_preserved(self):
        buffer = pinned_buffer(4096)
        stream = AccessStream.linear(buffer, read_write_pairs=False)
        stream.region_kind = RegionKind.PINNED
        coalesced = coalesce_stream(stream, 64, 32)
        assert coalesced.region_kind is RegionKind.PINNED


class TestTiming:
    def test_latency_hiding_max_semantics(self):
        gpu = make_gpu()
        buffer = pinned_buffer(8 * 1024)
        stream = AccessStream.linear(buffer, read_write_pairs=False)
        phase = gpu.run("k", total_flops=gpu.peak_flops * 1e-3, stream=stream)
        # Memory is tiny; the phase is compute bound at ~1 ms + launch.
        assert phase.time_s == pytest.approx(
            1e-3 + gpu.config.kernel_launch_overhead_s, rel=0.01
        )

    def test_peak_flops_scale_with_sms(self):
        assert make_gpu(sms=4).peak_flops == pytest.approx(2 * make_gpu(2).peak_flops)

    def test_launch_overhead_always_paid(self):
        gpu = make_gpu()
        stream = AccessStream.linear(pinned_buffer(4096), read_write_pairs=False)
        phase = gpu.run("k", total_flops=0.0, stream=stream)
        assert phase.time_s >= gpu.config.kernel_launch_overhead_s

    def test_zc_path_slows_pinned_kernel(self):
        gpu = make_gpu()
        stream = AccessStream.linear(pinned_buffer(256 * 1024),
                                     read_write_pairs=False, repeats=8)
        cached = gpu.run("k", 0.0, stream)
        gpu.hierarchy.reset()
        uncached = gpu.run("k", 0.0, stream, uncached_bandwidth=gbps(1.28))
        assert uncached.memory_time_s > 20 * cached.memory_time_s

    def test_private_streams_keep_caches_under_zc(self):
        gpu = make_gpu()
        stream = AccessStream.linear(private_buffer(32 * 1024),
                                     read_write_pairs=False, repeats=8)
        cached = gpu.run("k", 0.0, stream)
        gpu.hierarchy.reset()
        also_cached = gpu.run("k", 0.0, stream, uncached_bandwidth=gbps(1.28))
        assert also_cached.memory_time_s == pytest.approx(
            cached.memory_time_s, rel=0.05
        )

    def test_snoop_latency_charged_per_pinned_stream(self):
        gpu = make_gpu()
        stream = AccessStream.linear(pinned_buffer(64 * 1024),
                                     read_write_pairs=False)
        base = gpu.run("k", 0.0, stream, uncached_bandwidth=gbps(32.0))
        gpu.hierarchy.reset()
        snooped = gpu.run("k", 0.0, stream, uncached_bandwidth=gbps(32.0),
                          extra_latency_s=1e-6)
        assert snooped.memory_time_s - base.memory_time_s == pytest.approx(1e-6)

    def test_multi_stream_sums_memory(self):
        gpu = make_gpu()
        streams = [
            AccessStream.linear(pinned_buffer(64 * 1024), read_write_pairs=False),
            AccessStream.linear(private_buffer(64 * 1024), read_write_pairs=False),
        ]
        phase = gpu.run("k", 0.0, streams)
        assert phase.memory.bytes_requested > 0
        assert phase.memory.transactions == sum(
            len(coalesce_stream(s, 64, 32)) for s in streams
        )

    def test_empty_stream_list_rejected(self):
        with pytest.raises(ConfigurationError):
            make_gpu().run("k", 0.0, [])

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            make_gpu().compute_time(-1.0)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(frequency_hz=0.0),
        dict(num_sms=0),
        dict(warp_size=0),
        dict(l1_bandwidth=0.0),
        dict(kernel_launch_overhead_s=-1.0),
    ])
    def test_invalid(self, kwargs):
        base = dict(
            name="bad", frequency_hz=ghz(1.0), num_sms=1, warp_size=32,
            l1=CacheConfig(name="l1", size_bytes=32 * 1024, line_size=64, ways=4),
            llc=CacheConfig(name="llc", size_bytes=1 << 19, line_size=64, ways=16),
            l1_bandwidth=gbps(100.0), llc_bandwidth=gbps(50.0),
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            GPUConfig(**base)
