"""Event engine: staggered starts and multi-job pipelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.events import OverlapJob, run_overlapped
from repro.soc.interconnect import InterconnectConfig
from repro.units import gbps

FABRIC = InterconnectConfig(total_bandwidth=gbps(40.0),
                            arbitration_overhead=0.0)


def job(name, compute=0.0, bytes_=0.0, bw=gbps(10.0), overlap=True,
        start=0.0):
    return OverlapJob(name=name, compute_time_s=compute, memory_bytes=bytes_,
                      solo_bandwidth=bw, overlap_compute_memory=overlap,
                      start_time_s=start)


class TestStaggeredStarts:
    def test_late_job_avoids_contention(self):
        # Two saturating jobs; starting the second after the first
        # finishes removes all contention.
        duration = 1e-3
        first = job("a", bytes_=gbps(40.0) * duration, bw=gbps(40.0))
        second = job("b", bytes_=gbps(40.0) * duration, bw=gbps(40.0),
                     start=duration)
        result = run_overlapped([first, second], FABRIC)
        assert result.finish("a") == pytest.approx(duration, rel=0.01)
        assert result.finish("b") == pytest.approx(2 * duration, rel=0.01)

    def test_pipeline_of_four_stages(self):
        stage = 0.5e-3
        jobs = [
            job(f"s{i}", compute=stage, start=i * stage)
            for i in range(4)
        ]
        result = run_overlapped(jobs, FABRIC)
        for i in range(4):
            assert result.finish(f"s{i}") == pytest.approx(
                (i + 1) * stage, rel=0.01
            )

    def test_memory_time_accounting(self):
        j = job("a", bytes_=gbps(10.0) * 2e-3)
        result = run_overlapped([j], FABRIC)
        assert result.memory_times["a"] == pytest.approx(2e-3, rel=0.01)


class TestManyJobs:
    def test_eight_way_fair_share(self):
        duration = 1e-3
        jobs = [
            job(f"j{i}", bytes_=gbps(40.0) * duration, bw=gbps(40.0))
            for i in range(8)
        ]
        result = run_overlapped(jobs, FABRIC)
        # Eight saturating jobs share one fabric: ~8x stretch each.
        assert result.makespan_s == pytest.approx(8 * duration, rel=0.02)

    @given(
        n=st.integers(min_value=1, max_value=6),
        per_job_bytes=st.floats(min_value=1e3, max_value=1e7),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_work_conservation(self, n, per_job_bytes):
        """Total bytes moved per unit time never exceeds the fabric,
        and the makespan is at least total_bytes / fabric."""
        jobs = [
            job(f"j{i}", bytes_=per_job_bytes, bw=gbps(40.0))
            for i in range(n)
        ]
        result = run_overlapped(jobs, FABRIC)
        lower_bound = n * per_job_bytes / FABRIC.total_bandwidth
        assert result.makespan_s >= lower_bound * (1 - 1e-9)
        assert result.makespan_s <= lower_bound * n + 1e-9
