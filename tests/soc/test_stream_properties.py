"""Property-based tests of the access-stream builders (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.stream import AccessStream, PatternKind


def make_buffer(num_elements, element_size=4):
    region = MemoryRegion(name="r", base=0x1000,
                          size=max(1 << 22, num_elements * element_size * 2),
                          kind=RegionKind.PINNED)
    return region.allocate("b", num_elements * element_size,
                           element_size=element_size)


@given(
    elements=st.integers(min_value=1, max_value=8192),
    pairs=st.booleans(),
    repeats=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_linear_invariants(elements, pairs, repeats):
    buffer = make_buffer(elements)
    stream = AccessStream.linear(buffer, read_write_pairs=pairs,
                                 repeats=repeats)
    # Addresses stay inside the buffer.
    assert stream.addresses.min() >= buffer.base
    assert stream.addresses.max() < buffer.end
    # Footprint equals the buffer and totals scale with repeats.
    assert stream.footprint_bytes == buffer.size
    assert stream.total_transactions == len(stream) * repeats
    assert stream.total_bytes == stream.bytes_per_pass * repeats
    # Write fraction is exactly 0 or 1/2.
    assert stream.write_fraction == (0.5 if pairs else 0.0)


@given(
    elements=st.integers(min_value=2, max_value=4096),
    stride=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=50, deadline=None)
def test_strided_invariants(elements, stride):
    buffer = make_buffer(elements)
    stream = AccessStream.strided(buffer, stride_elements=stride)
    assert len(stream) == -(-elements // stride)
    if len(stream) > 1:
        assert np.all(np.diff(stream.addresses) == stride * 4)
    # Footprint is the swept span, never more than the buffer.
    assert 0 < stream.footprint_bytes <= buffer.size


@given(
    count=st.integers(min_value=1, max_value=1024),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_sparse_invariants(count, seed):
    buffer = make_buffer(64 * 1024 // 4)
    stream = AccessStream.sparse(buffer, count=count, line_size=64, seed=seed)
    lines = np.unique(stream.addresses // 64)
    lines_available = buffer.size // 64
    # Distinct lines up to availability.
    assert len(lines) == min(count, lines_available)
    assert stream.addresses.min() >= buffer.base
    assert stream.addresses.max() < buffer.end


@given(fraction=st.floats(min_value=1e-6, max_value=1.0))
@settings(max_examples=50, deadline=None)
def test_fraction_invariants(fraction):
    buffer = make_buffer(4096)
    stream = AccessStream.fraction(buffer, fraction=fraction)
    assert 4 <= stream.footprint_bytes <= buffer.size
    expected = max(1, int(buffer.num_elements * fraction)) * 4
    assert stream.footprint_bytes == expected


@given(
    counts=st.lists(st.integers(min_value=1, max_value=256),
                    min_size=1, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_concat_preserves_totals(counts):
    buffer = make_buffer(4096)
    streams = [AccessStream.single_address(buffer, count=c) for c in counts]
    combined = AccessStream.concat(streams)
    assert len(combined) == sum(counts)
    assert combined.total_bytes == sum(s.total_bytes for s in streams)


@given(
    per_pass=st.integers(min_value=1, max_value=10 ** 7),
    repeats=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_virtual_stream_arithmetic(per_pass, repeats):
    stream = AccessStream.virtual_stream(
        pattern=PatternKind.LINEAR, per_pass=per_pass,
        footprint_bytes=per_pass * 4, repeats=repeats,
    )
    assert stream.is_virtual
    assert stream.total_transactions == per_pass * repeats
    assert stream.total_bytes == per_pass * repeats * 4
