"""Board presets and registry."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.board import (
    available_boards,
    get_board,
    jetson_nano,
    jetson_tx2,
    jetson_xavier,
    register_board,
)
from repro.units import to_gbps


class TestPresets:
    def test_available(self):
        assert available_boards() == ["nano", "tx2", "xavier"]

    def test_lookup_case_insensitive(self):
        assert get_board("TX2").name == "tx2"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_board("orin")

    def test_tx2_table1_calibration(self):
        board = jetson_tx2()
        assert to_gbps(board.gpu.llc_bandwidth) == pytest.approx(97.34)
        assert to_gbps(board.zero_copy.gpu_zc_bandwidth) == pytest.approx(1.28)
        assert board.um_throughput_factor == pytest.approx(104.15 / 97.34)

    def test_xavier_table1_calibration(self):
        board = jetson_xavier()
        assert to_gbps(board.gpu.llc_bandwidth) == pytest.approx(214.64)
        assert to_gbps(board.zero_copy.gpu_zc_bandwidth) == pytest.approx(32.29)

    def test_coherence_modes_match_paper(self):
        assert not jetson_tx2().io_coherent
        assert not jetson_nano().io_coherent
        assert jetson_xavier().io_coherent

    def test_tx2_disables_cpu_caches_under_zc(self):
        assert jetson_tx2().zero_copy.cpu_llc_disabled
        assert jetson_nano().zero_copy.cpu_llc_disabled
        assert not jetson_xavier().zero_copy.cpu_llc_disabled

    def test_zc_throughput_gap_ratios(self):
        """The ~77x (TX2) vs ~7x (Xavier) LL-path gap of paper §IV-A."""
        tx2 = jetson_tx2()
        xavier = jetson_xavier()
        tx2_ratio = tx2.gpu.llc_bandwidth / tx2.zero_copy.gpu_zc_bandwidth
        xavier_ratio = xavier.gpu.llc_bandwidth / xavier.zero_copy.gpu_zc_bandwidth
        assert 60 < tx2_ratio < 90
        assert 5 < xavier_ratio < 9

    def test_nano_is_tx2_like_but_slower(self):
        nano, tx2 = jetson_nano(), jetson_tx2()
        assert nano.zero_copy.cpu_llc_disabled == tx2.zero_copy.cpu_llc_disabled
        assert nano.dram.peak_bandwidth < tx2.dram.peak_bandwidth
        assert nano.gpu.num_sms <= tx2.gpu.num_sms

    def test_presets_are_fresh_objects(self):
        assert get_board("tx2") is not get_board("tx2")


class TestRegistry:
    def test_register_custom(self):
        def factory():
            board = jetson_tx2()
            object.__setattr__(board, "name", "custom-test")
            return board

        register_board("custom-test-board", factory)
        assert "custom-test-board" in available_boards()
        assert get_board("custom-test-board").name == "custom-test"

    def test_cannot_shadow_builtin(self):
        with pytest.raises(ConfigurationError):
            register_board("tx2", jetson_tx2)
