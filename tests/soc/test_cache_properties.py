"""Property-based tests of the exact cache model (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.cache import CacheConfig, SetAssociativeCache


def build_cache(ways: int, sets: int, line: int = 64) -> SetAssociativeCache:
    config = CacheConfig(
        name="prop", size_bytes=ways * sets * line, line_size=line, ways=ways
    )
    return SetAssociativeCache(config)


addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=300
)
writes_strategy = st.lists(st.booleans(), min_size=1, max_size=300)


@given(addrs=addresses_strategy)
@settings(max_examples=60, deadline=None)
def test_hits_plus_misses_equals_accesses(addrs):
    cache = build_cache(ways=2, sets=8)
    result = cache.access_trace(
        np.array(addrs, dtype=np.int64), np.zeros(len(addrs), dtype=bool)
    )
    assert result.num_hits + result.num_misses == len(addrs)
    assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


@given(addrs=addresses_strategy)
@settings(max_examples=60, deadline=None)
def test_resident_lines_never_exceed_capacity(addrs):
    cache = build_cache(ways=2, sets=4)
    cache.access_trace(
        np.array(addrs, dtype=np.int64), np.zeros(len(addrs), dtype=bool)
    )
    assert cache.resident_lines <= cache.config.num_lines
    assert cache.dirty_lines <= cache.resident_lines


@given(addrs=addresses_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_immediate_reaccess_always_hits(addrs, data):
    cache = build_cache(ways=2, sets=8)
    for addr in addrs:
        cache.access_single(addr)
        assert cache.access_single(addr)


@given(addrs=addresses_strategy)
@settings(max_examples=40, deadline=None)
def test_bigger_cache_never_misses_more(addrs):
    """Inclusion-style monotonicity: with the same sets, more ways can
    only reduce misses on any trace (true for LRU)."""
    trace = np.array(addrs, dtype=np.int64)
    writes = np.zeros(len(addrs), dtype=bool)
    small = build_cache(ways=2, sets=8)
    large = build_cache(ways=4, sets=8)
    misses_small = small.access_trace(trace, writes).num_misses
    misses_large = large.access_trace(trace, writes).num_misses
    assert misses_large <= misses_small


@given(addrs=addresses_strategy)
@settings(max_examples=40, deadline=None)
def test_flush_then_replay_reproduces_cold_behaviour(addrs):
    trace = np.array(addrs, dtype=np.int64)
    writes = np.zeros(len(addrs), dtype=bool)
    cache = build_cache(ways=2, sets=8)
    first = cache.access_trace(trace, writes)
    cache.flush()
    again = cache.access_trace(trace, writes)
    assert list(first.hits) == list(again.hits)


@given(
    addrs=addresses_strategy,
    writes=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_writebacks_bounded_by_writes(addrs, writes):
    trace = np.array(addrs, dtype=np.int64)
    w = np.array(
        writes.draw(st.lists(st.booleans(), min_size=len(addrs),
                             max_size=len(addrs))),
        dtype=bool,
    )
    cache = build_cache(ways=2, sets=4)
    result = cache.access_trace(trace, w)
    # Each writeback needs at least one prior write to a distinct line.
    distinct_written_lines = len(
        np.unique(trace[w] >> 6)
    ) if w.any() else 0
    assert result.writeback_lines <= max(
        distinct_written_lines, int(np.count_nonzero(w))
    )
    total_dirty_events = cache.dirty_lines + result.writeback_lines
    assert total_dirty_events <= int(np.count_nonzero(w)) or not w.any()


@given(addrs=addresses_strategy)
@settings(max_examples=40, deadline=None)
def test_disabled_cache_is_pure_passthrough(addrs):
    trace = np.array(addrs, dtype=np.int64)
    cache = build_cache(ways=2, sets=8)
    cache.enabled = False
    result = cache.access_trace(trace, np.zeros(len(trace), dtype=bool))
    assert result.num_hits == 0
    assert np.array_equal(result.miss_line_addresses, trace)
    assert cache.resident_lines == 0
