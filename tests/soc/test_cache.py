"""Exact set-associative cache simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.soc.cache import CacheConfig, CacheStats, SetAssociativeCache


def make_cache(size=4096, line=64, ways=4, enabled=True, **kwargs):
    config = CacheConfig(name="test", size_bytes=size, line_size=line,
                         ways=ways, **kwargs)
    return SetAssociativeCache(config, enabled=enabled)


class TestConfigValidation:
    def test_valid(self):
        config = CacheConfig(name="ok", size_bytes=32 * 1024, line_size=64, ways=4)
        assert config.num_sets == 128
        assert config.num_lines == 512

    def test_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", size_bytes=4096, line_size=48, ways=4)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", size_bytes=4096 * 3, line_size=64, ways=4)

    def test_size_not_multiple(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", size_bytes=1000, line_size=64, ways=4)

    def test_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", size_bytes=4096, line_size=64, ways=0)


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = make_cache()
        assert not cache.access_single(0x100)
        assert cache.access_single(0x100)

    def test_same_line_hits(self):
        cache = make_cache(line=64)
        cache.access_single(0x100)
        assert cache.access_single(0x13F)  # same 64-byte line
        assert not cache.access_single(0x140)  # next line

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: A, B, C evicts A.
        cache = make_cache(size=128, line=64, ways=2)
        a, b, c = 0x000, 0x040, 0x080  # wait: all map to the same set?
        # With 1 set every line shares it.
        cache.access_single(a)
        cache.access_single(b)
        cache.access_single(c)  # evicts a (LRU)
        assert not cache.access_single(a)  # a was evicted -> miss

    def test_lru_touch_refreshes(self):
        cache = make_cache(size=128, line=64, ways=2)
        a, b, c = 0x000, 0x040, 0x080
        cache.access_single(a)
        cache.access_single(b)
        cache.access_single(a)  # refresh a: b is now LRU
        cache.access_single(c)  # evicts b
        assert cache.access_single(a)
        assert not cache.access_single(b)

    def test_set_isolation(self):
        # Two sets: lines alternate; filling one set leaves the other.
        cache = make_cache(size=256, line=64, ways=2)  # 2 sets
        set0 = [0x000, 0x080, 0x100]  # same set (stride 128)
        cache.access_single(0x040)  # set 1
        for addr in set0:
            cache.access_single(addr)
        assert cache.access_single(0x040)  # set 1 untouched by set 0 traffic


class TestTraceInterface:
    def test_hit_array_matches_singles(self):
        cache = make_cache()
        addrs = np.array([0x0, 0x40, 0x0, 0x80, 0x40], dtype=np.int64)
        result = cache.access_trace(addrs, np.zeros(5, dtype=bool))
        assert list(result.hits) == [False, False, True, False, True]
        assert result.num_hits == 2
        assert result.num_misses == 3

    def test_miss_addresses_are_line_aligned(self):
        cache = make_cache(line=64)
        addrs = np.array([0x10, 0x55, 0x70], dtype=np.int64)
        result = cache.access_trace(addrs, np.zeros(3, dtype=bool))
        assert list(result.miss_line_addresses) == [0x0, 0x40]

    def test_empty_trace(self):
        cache = make_cache()
        result = cache.access_trace(np.empty(0, dtype=np.int64),
                                    np.empty(0, dtype=bool))
        assert len(result.hits) == 0
        assert cache.stats.accesses == 0


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(size=128, line=64, ways=2)
        cache.access_single(0x000, is_write=True)
        cache.access_single(0x040)
        result = cache.access_trace(
            np.array([0x080], dtype=np.int64), np.array([False])
        )
        assert result.writeback_lines == 1  # dirty 0x000 evicted

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=128, line=64, ways=2)
        cache.access_single(0x000)
        cache.access_single(0x040)
        result = cache.access_trace(
            np.array([0x080], dtype=np.int64), np.array([False])
        )
        assert result.writeback_lines == 0

    def test_write_through_never_dirty(self):
        cache = make_cache(write_back=False)
        cache.access_single(0x0, is_write=True)
        assert cache.dirty_lines == 0

    def test_write_no_allocate_skips_insert(self):
        cache = make_cache(write_allocate=False)
        cache.access_single(0x0, is_write=True)
        assert cache.resident_lines == 0
        assert not cache.access_single(0x0)  # still a miss (then allocated)


class TestFlushInvalidate:
    def test_flush_writes_back_dirty(self):
        cache = make_cache()
        cache.access_single(0x0, is_write=True)
        cache.access_single(0x40, is_write=False)
        written = cache.flush()
        assert written == 1
        assert cache.resident_lines == 0
        assert cache.stats.flush_writebacks == 1

    def test_invalidate_drops_without_writeback(self):
        cache = make_cache()
        cache.access_single(0x0, is_write=True)
        dropped = cache.invalidate()
        assert dropped == 1
        assert cache.stats.flush_writebacks == 0

    def test_access_after_flush_misses(self):
        cache = make_cache()
        cache.access_single(0x0)
        cache.flush()
        assert not cache.access_single(0x0)


class TestDisabledCache:
    def test_everything_misses(self):
        cache = make_cache(enabled=False)
        addrs = np.array([0x0, 0x0, 0x0], dtype=np.int64)
        result = cache.access_trace(addrs, np.zeros(3, dtype=bool))
        assert result.num_hits == 0
        assert cache.stats.bypassed == 3

    def test_passthrough_preserves_addresses(self):
        cache = make_cache(enabled=False)
        addrs = np.array([0x13, 0x55], dtype=np.int64)
        result = cache.access_trace(addrs, np.zeros(2, dtype=bool))
        assert list(result.miss_line_addresses) == [0x13, 0x55]

    def test_nothing_allocated(self):
        cache = make_cache(enabled=False)
        cache.access_single(0x0)
        assert cache.resident_lines == 0


class TestStats:
    def test_counters_accumulate(self):
        cache = make_cache()
        cache.access_single(0x0, is_write=True)
        cache.access_single(0x0)
        stats = cache.stats
        assert stats.accesses == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.write_accesses == 1
        assert stats.read_accesses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_snapshot_and_delta(self):
        cache = make_cache()
        cache.access_single(0x0)
        before = cache.stats.snapshot()
        cache.access_single(0x0)
        delta = cache.stats.delta_since(before)
        assert delta.accesses == 1
        assert delta.hits == 1

    def test_merge(self):
        a = CacheStats(accesses=2, hits=1, misses=1)
        b = CacheStats(accesses=3, hits=3)
        merged = a.merge(b)
        assert merged.accesses == 5
        assert merged.hits == 4

    def test_idle_rates_are_zero(self):
        assert CacheStats().hit_rate == 0.0
        assert CacheStats().miss_rate == 0.0

    def test_reset(self):
        cache = make_cache()
        cache.access_single(0x0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines == 0


class TestCapacityBehaviour:
    def test_working_set_within_capacity_all_hits_warm(self):
        cache = make_cache(size=4096, line=64, ways=4)
        addrs = np.arange(0, 4096, 64, dtype=np.int64)  # exactly capacity
        cache.access_trace(addrs, np.zeros(len(addrs), dtype=bool))
        warm = cache.access_trace(addrs, np.zeros(len(addrs), dtype=bool))
        assert warm.num_misses == 0

    def test_cyclic_thrash_beyond_capacity(self):
        # Footprint = 2x capacity, cyclic sweep: true LRU misses always.
        cache = make_cache(size=4096, line=64, ways=4)
        addrs = np.arange(0, 8192, 64, dtype=np.int64)
        cache.access_trace(addrs, np.zeros(len(addrs), dtype=bool))
        warm = cache.access_trace(addrs, np.zeros(len(addrs), dtype=bool))
        assert warm.num_hits == 0

    def test_warm_with_does_not_count_stats(self):
        cache = make_cache()
        cache.warm_with(np.array([0x0, 0x40], dtype=np.int64))
        assert cache.stats.accesses == 0
        assert cache.access_single(0x0)

    def test_contains(self):
        cache = make_cache()
        cache.access_single(0x100)
        assert cache.contains(0x100)
        assert cache.contains(0x13F)
        assert not cache.contains(0x140)
