"""DVFS operating points."""

import pytest

from repro.comm.base import get_model
from repro.apps.shwfs import ShwfsPipeline
from repro.errors import ConfigurationError
from repro.soc.board import get_board
from repro.soc.dvfs import (
    JETSON_POWER_MODES,
    OperatingPoint,
    apply_operating_point,
    available_power_modes,
    get_power_mode,
)
from repro.soc.soc import SoC


class TestOperatingPoint:
    def test_predefined_modes(self):
        assert available_power_modes() == ["10w", "15w", "maxn"]
        assert get_power_mode("MAXN").cpu_scale == 1.0

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            get_power_mode("30w")

    def test_scale_bounds(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(name="bad", cpu_scale=0.0)
        with pytest.raises(ConfigurationError):
            OperatingPoint(name="bad", gpu_scale=3.0)


class TestApply:
    def test_maxn_is_identity_on_clocks(self):
        board = get_board("xavier")
        scaled = apply_operating_point(board, get_power_mode("maxn"))
        assert scaled.cpu.frequency_hz == board.cpu.frequency_hz
        assert scaled.gpu.frequency_hz == board.gpu.frequency_hz
        assert scaled.dram.peak_bandwidth == board.dram.peak_bandwidth

    def test_domains_scale_consistently(self):
        board = get_board("xavier")
        scaled = apply_operating_point(board, get_power_mode("10w"))
        point = get_power_mode("10w")
        assert scaled.cpu.frequency_hz == pytest.approx(
            board.cpu.frequency_hz * point.cpu_scale
        )
        assert scaled.gpu.llc_bandwidth == pytest.approx(
            board.gpu.llc_bandwidth * point.gpu_scale
        )
        assert scaled.zero_copy.gpu_zc_bandwidth == pytest.approx(
            board.zero_copy.gpu_zc_bandwidth * point.memory_scale
        )
        assert scaled.copy_engine_bandwidth == pytest.approx(
            board.copy_engine_bandwidth * point.memory_scale
        )

    def test_geometry_and_coherence_preserved(self):
        board = get_board("tx2")
        scaled = apply_operating_point(board, get_power_mode("15w"))
        assert scaled.cpu.l1.size_bytes == board.cpu.l1.size_bytes
        assert scaled.zero_copy.cpu_llc_disabled == \
            board.zero_copy.cpu_llc_disabled
        assert scaled.io_coherent == board.io_coherent

    def test_name_annotated(self):
        scaled = apply_operating_point(get_board("tx2"), get_power_mode("10w"))
        assert scaled.name == "tx2@10w"


class TestBehaviour:
    def test_lower_modes_run_slower(self):
        pipeline = ShwfsPipeline()
        workload = pipeline.workload(board_name="xavier")
        times = {}
        for mode in ("maxn", "15w", "10w"):
            board = apply_operating_point(get_board("xavier"),
                                          get_power_mode(mode))
            report = get_model("SC").execute(workload, SoC(board))
            times[mode] = report.time_per_iteration_s
        assert times["maxn"] < times["15w"] < times["10w"]

    def test_lower_modes_use_less_power(self):
        pipeline = ShwfsPipeline()
        workload = pipeline.workload(board_name="xavier")
        powers = {}
        for mode in ("maxn", "10w"):
            board = apply_operating_point(get_board("xavier"),
                                          get_power_mode(mode))
            report = get_model("SC").execute(workload, SoC(board))
            powers[mode] = report.energy.total_j / report.total_time_s
        assert powers["10w"] < powers["maxn"]

    def test_zc_still_wins_on_xavier_across_modes(self):
        """The SH-WFS recommendation is robust to the power mode: the
        compute and communication domains scale together closely enough
        that ZC keeps its edge."""
        pipeline = ShwfsPipeline()
        workload = pipeline.workload(board_name="xavier")
        for mode in JETSON_POWER_MODES:
            board = apply_operating_point(get_board("xavier"),
                                          get_power_mode(mode))
            soc = SoC(board)
            sc = get_model("SC").execute(workload, soc)
            soc.reset()
            zc = get_model("ZC").execute(workload, soc)
            assert zc.time_per_iteration_s < sc.time_per_iteration_s, mode
