"""Exception safety of the ``SoC.communication`` context manager.

Regression tests: a failure anywhere inside (or during cleanup of) a
communication context must never leak state into the next experiment —
no stuck active model, no disabled caches, no stale needs-flush flags.
"""

import pytest

from repro.errors import SimulationError
from repro.soc.address import RegionKind
from repro.soc.soc import SoC
from repro.soc.stream import AccessStream


def run_phase(soc):
    region = soc.make_region("cpu_partition", 1 << 20,
                             RegionKind.CPU_PARTITION)
    buf = region.allocate("a", 1 << 16)
    soc.run_cpu("produce", 10_000.0, AccessStream.linear(buf, write=True))


class TestExceptionSafety:
    def test_exception_resets_active_model(self, tx2_soc):
        with pytest.raises(RuntimeError):
            with tx2_soc.communication("ZC"):
                raise RuntimeError("mid-simulation failure")
        assert tx2_soc.active_model is None
        # a new context must open cleanly
        with tx2_soc.communication("SC"):
            pass

    def test_exception_resets_needs_flush_flags(self, tx2_soc):
        with pytest.raises(RuntimeError):
            with tx2_soc.communication("SC") as soc:
                run_phase(soc)
                assert soc._cpu_needs_flush
                raise RuntimeError("boom")
        assert not tx2_soc._cpu_needs_flush
        assert not tx2_soc._gpu_needs_flush

    def test_failing_invalidate_still_resets_active_model(self, tx2_soc,
                                                          monkeypatch):
        def broken_invalidate():
            raise RuntimeError("cache controller wedged")

        with pytest.raises(RuntimeError, match="wedged"):
            with tx2_soc.communication("SC"):
                monkeypatch.setattr(tx2_soc.gpu.hierarchy, "invalidate_all",
                                    broken_invalidate)
        # the cleanup failure must not poison later experiments
        assert tx2_soc.active_model is None
        monkeypatch.undo()
        with tx2_soc.communication("UM"):
            pass

    def test_exception_leaves_caches_invalidated(self, tx2_soc):
        with pytest.raises(RuntimeError):
            with tx2_soc.communication("SC") as soc:
                run_phase(soc)
                raise RuntimeError("boom")
        for cache in (*tx2_soc.cpu.hierarchy.caches,
                      *tx2_soc.gpu.hierarchy.caches):
            assert cache.dirty_lines == 0

    def test_nested_context_rejected(self, tx2_soc):
        with tx2_soc.communication("SC"):
            with pytest.raises(SimulationError):
                with tx2_soc.communication("ZC"):
                    pass
        # the rejection must not have broken the outer cleanup
        assert tx2_soc.active_model is None
