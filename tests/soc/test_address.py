"""Address space, regions, and buffer allocation."""

import pytest

from repro.errors import AddressError, AllocationError
from repro.soc.address import (
    AddressSpace,
    MemoryRegion,
    RegionKind,
    align_up,
)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(256, 128) == 256

    def test_rounds_up(self):
        assert align_up(257, 128) == 384

    def test_zero(self):
        assert align_up(0, 64) == 0

    @pytest.mark.parametrize("alignment", [0, -4, 3, 100])
    def test_bad_alignment_rejected(self, alignment):
        with pytest.raises(AddressError):
            align_up(10, alignment)


class TestMemoryRegion:
    def make(self, size=1 << 20):
        return MemoryRegion(name="r", base=0x1000, size=size, kind=RegionKind.PINNED)

    def test_bounds(self):
        region = self.make()
        assert region.end == 0x1000 + (1 << 20)
        assert region.contains(0x1000)
        assert region.contains(region.end - 1)
        assert not region.contains(region.end)
        assert not region.contains(0xFFF)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(AddressError):
            MemoryRegion(name="bad", base=-1, size=16, kind=RegionKind.PINNED)
        with pytest.raises(AddressError):
            MemoryRegion(name="bad", base=0, size=0, kind=RegionKind.PINNED)

    def test_allocate_within_region(self):
        region = self.make()
        buffer = region.allocate("a", 4096, element_size=4)
        assert region.contains(buffer.base)
        assert buffer.end <= region.end
        assert buffer.num_elements == 1024

    def test_allocations_do_not_overlap(self):
        region = self.make()
        a = region.allocate("a", 4096)
        b = region.allocate("b", 4096)
        assert not a.overlaps(b)

    def test_allocations_are_aligned(self):
        region = self.make()
        region.allocate("a", 100, element_size=4)
        b = region.allocate("b", 4096)
        assert b.base % 128 == 0

    def test_duplicate_name_rejected(self):
        region = self.make()
        region.allocate("a", 64)
        with pytest.raises(AllocationError):
            region.allocate("a", 64)

    def test_overflow_rejected(self):
        region = self.make(size=4096)
        with pytest.raises(AllocationError):
            region.allocate("big", 8192)

    def test_size_not_multiple_of_element_rejected(self):
        region = self.make()
        with pytest.raises(AddressError):
            region.allocate("odd", 10, element_size=4)

    def test_lookup_and_reset(self):
        region = self.make()
        region.allocate("a", 64)
        assert region.buffer("a").name == "a"
        region.reset()
        with pytest.raises(AllocationError):
            region.buffer("a")
        assert region.bytes_used == 0


class TestBuffer:
    @pytest.fixture
    def buffer(self):
        region = MemoryRegion(name="r", base=0, size=1 << 16, kind=RegionKind.PINNED)
        return region.allocate("buf", 1024, element_size=4)

    def test_element_addresses(self, buffer):
        assert buffer.element_address(0) == buffer.base
        assert buffer.element_address(1) == buffer.base + 4
        assert buffer.element_address(255) == buffer.base + 1020

    def test_element_bounds_checked(self, buffer):
        with pytest.raises(AddressError):
            buffer.element_address(256)
        with pytest.raises(AddressError):
            buffer.element_address(-1)

    def test_sub_range(self, buffer):
        sub = buffer.sub_range(16, 32)
        assert sub.base == buffer.base + 64
        assert sub.size == 128
        assert sub.end == sub.base + 128

    def test_sub_range_bounds(self, buffer):
        with pytest.raises(AddressError):
            buffer.sub_range(250, 10)
        with pytest.raises(AddressError):
            buffer.sub_range(0, 0)

    def test_range_overlap(self, buffer):
        a = buffer.sub_range(0, 16)
        b = buffer.sub_range(8, 16)
        c = buffer.sub_range(16, 16)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestAddressSpace:
    def test_regions_are_disjoint(self):
        space = AddressSpace(1 << 24)
        a = space.add_region("a", 1 << 20, RegionKind.CPU_PARTITION)
        b = space.add_region("b", 1 << 20, RegionKind.GPU_PARTITION)
        assert a.end <= b.base

    def test_region_of(self):
        space = AddressSpace(1 << 24)
        a = space.add_region("a", 1 << 20, RegionKind.PINNED)
        assert space.region_of(a.base + 5) is a
        assert space.region_of(a.end + (1 << 21)) is None

    def test_duplicate_region_rejected(self):
        space = AddressSpace(1 << 24)
        space.add_region("a", 4096, RegionKind.PINNED)
        with pytest.raises(AllocationError):
            space.add_region("a", 4096, RegionKind.PINNED)

    def test_space_overflow_rejected(self):
        space = AddressSpace(1 << 20)
        with pytest.raises(AllocationError):
            space.add_region("too-big", 1 << 21, RegionKind.PINNED)

    def test_invalid_size_rejected(self):
        with pytest.raises(AddressError):
            AddressSpace(0)

    def test_lookup_unknown_region(self):
        space = AddressSpace(1 << 20)
        with pytest.raises(AllocationError):
            space.region("missing")
