"""DRAM model."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.dram import DRAMConfig, DRAMModel
from repro.units import gbps


class TestConfig:
    def test_effective_bandwidth(self):
        config = DRAMConfig(peak_bandwidth=gbps(59.7), efficiency=0.75)
        assert config.effective_bandwidth == pytest.approx(gbps(59.7) * 0.75)

    @pytest.mark.parametrize("kwargs", [
        dict(peak_bandwidth=0.0),
        dict(peak_bandwidth=gbps(10), efficiency=0.0),
        dict(peak_bandwidth=gbps(10), efficiency=1.5),
        dict(peak_bandwidth=gbps(10), latency_s=-1e-9),
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            DRAMConfig(**kwargs)


class TestModel:
    def test_transfer_time_scales_with_bytes(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0), latency_s=0.0))
        t1 = dram.transfer_time(1 << 20)
        t2 = dram.transfer_time(2 << 20)
        assert t2 == pytest.approx(2 * t1)

    def test_transfer_includes_latency(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0), latency_s=100e-9))
        assert dram.transfer_time(0) == 0.0
        assert dram.transfer_time(64) > 100e-9

    def test_bandwidth_cap(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0), latency_s=0.0))
        capped = dram.transfer_time(1 << 20, bandwidth_cap=gbps(1.0))
        free = dram.transfer_time(1 << 20)
        assert capped > free

    def test_traffic_accounting(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0)))
        dram.record(100, 50)
        dram.record(10, 0)
        assert dram.bytes_read == 110
        assert dram.bytes_written == 50
        assert dram.total_bytes == 160
        dram.reset()
        assert dram.total_bytes == 0

    def test_negative_traffic_rejected(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0)))
        with pytest.raises(ConfigurationError):
            dram.record(-1, 0)
