"""Analytic estimators cross-validated against the exact simulator.

This file is the contract that lets the benchmarks trust the analytic
fast path: for every supported pattern, the closed-form hit counts must
track the exact LRU simulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.soc import analytic
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.cache import CacheConfig, SetAssociativeCache
from repro.soc.stream import AccessStream, PatternKind


def make_buffer(size_bytes, element_size=4):
    region = MemoryRegion(name="r", base=0, size=max(1 << 22, size_bytes * 4),
                          kind=RegionKind.PINNED)
    return region.allocate("buf", size_bytes, element_size=element_size)


def exact_counts(stream: AccessStream, config: CacheConfig):
    """Replay the stream exactly (honouring repeats) and count."""
    cache = SetAssociativeCache(config)
    hits = misses = writebacks = 0
    for _ in range(stream.repeats):
        result = cache.access_trace(stream.addresses, stream.is_write)
        hits += result.num_hits
        misses += result.num_misses
        writebacks += result.writeback_lines
    return hits, misses, writebacks


CACHE = CacheConfig(name="val", size_bytes=16 * 1024, line_size=64, ways=4)


class TestSweepEstimates:
    @pytest.mark.parametrize("footprint_kib", [2, 8, 16])
    def test_fitting_sweep_matches_exact(self, footprint_kib):
        buffer = make_buffer(footprint_kib * 1024)
        stream = AccessStream.linear(buffer, read_write_pairs=True, repeats=4)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE
        )
        hits, misses, writebacks = exact_counts(stream, CACHE)
        assert est.misses == misses
        assert est.hits == hits
        assert est.writeback_lines == writebacks

    @pytest.mark.parametrize("footprint_kib", [32, 64])
    def test_thrashing_sweep_matches_exact(self, footprint_kib):
        buffer = make_buffer(footprint_kib * 1024)
        stream = AccessStream.linear(buffer, read_write_pairs=True, repeats=3)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE
        )
        hits, misses, _ = exact_counts(stream, CACHE)
        assert est.misses == misses
        assert est.hits == hits

    def test_thrashing_writebacks_close_to_exact(self):
        buffer = make_buffer(64 * 1024)
        stream = AccessStream.linear(buffer, read_write_pairs=True, repeats=3)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE
        )
        _, _, writebacks = exact_counts(stream, CACHE)
        assert est.writeback_lines == pytest.approx(writebacks, rel=0.15)

    def test_fraction_pattern(self):
        buffer = make_buffer(256 * 1024)
        stream = AccessStream.fraction(buffer, fraction=1 / 64, repeats=4)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE
        )
        hits, misses, _ = exact_counts(stream, CACHE)
        assert est.misses == misses
        assert est.hits == hits


class TestSingleAddress:
    def test_matches_exact(self):
        buffer = make_buffer(4096)
        stream = AccessStream.single_address(buffer, count=500)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE
        )
        hits, misses, _ = exact_counts(stream, CACHE)
        assert est.misses == misses == 1
        assert est.hits == hits


class TestSparse:
    def test_oversized_sparse_all_miss(self):
        buffer = make_buffer(256 * 1024)
        stream = AccessStream.sparse(buffer, count=2000, line_size=64, seed=1)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE
        )
        hits, misses, _ = exact_counts(stream, CACHE)
        assert est.misses == misses == 2000
        assert hits == 0

    def test_fitting_sparse_warm_hits(self):
        buffer = make_buffer(8 * 1024)
        stream = AccessStream.sparse(buffer, count=128, line_size=64, seed=1)
        stream = stream.with_repeats(3)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE
        )
        hits, misses, _ = exact_counts(stream, CACHE)
        assert est.misses == misses
        assert est.hits == hits


class TestDisabledAndEdge:
    def test_disabled_level_all_misses(self):
        buffer = make_buffer(4096)
        stream = AccessStream.linear(buffer)
        est = analytic.estimate_level(
            analytic.StreamSummary.from_stream(stream), CACHE, enabled=False
        )
        assert est.hits == 0
        assert est.misses == stream.total_transactions

    def test_unsupported_pattern_rejected(self):
        summary = analytic.StreamSummary(
            pattern=PatternKind.CUSTOM, per_pass=10, repeats=1,
            footprint_bytes=40, write_fraction=0.0, transaction_size=4,
        )
        with pytest.raises(SimulationError):
            analytic.estimate_level(summary, CACHE)

    def test_empty_summary(self):
        summary = analytic.StreamSummary(
            pattern=PatternKind.LINEAR, per_pass=0, repeats=1,
            footprint_bytes=0, write_fraction=0.0, transaction_size=4,
        )
        est = analytic.estimate_level(summary, CACHE)
        assert est.accesses == 0


class TestDeriveMissSummary:
    def test_no_misses_yields_none(self):
        buffer = make_buffer(1024)
        stream = AccessStream.single_address(buffer, count=10)
        summary = analytic.StreamSummary.from_stream(stream)
        est = analytic.estimate_level(summary, CACHE, cold_start=False)
        assert analytic.derive_miss_summary(summary, est, CACHE, True) is None

    def test_fitting_sweep_derives_single_cold_pass(self):
        buffer = make_buffer(8 * 1024)
        stream = AccessStream.linear(buffer, read_write_pairs=False, repeats=4)
        summary = analytic.StreamSummary.from_stream(stream)
        est = analytic.estimate_level(summary, CACHE)
        derived = analytic.derive_miss_summary(summary, est, CACHE, True)
        assert derived.repeats == 1
        assert derived.per_pass == 8 * 1024 // 64
        assert derived.transaction_size == 64

    def test_thrashing_sweep_derives_repeating_traffic(self):
        buffer = make_buffer(64 * 1024)
        stream = AccessStream.linear(buffer, read_write_pairs=False, repeats=4)
        summary = analytic.StreamSummary.from_stream(stream)
        est = analytic.estimate_level(summary, CACHE)
        derived = analytic.derive_miss_summary(summary, est, CACHE, True)
        assert derived.repeats == 4
        assert derived.per_pass == 64 * 1024 // 64

    def test_disabled_level_passes_summary_through(self):
        buffer = make_buffer(8 * 1024)
        stream = AccessStream.linear(buffer)
        summary = analytic.StreamSummary.from_stream(stream)
        est = analytic.estimate_level(summary, CACHE, enabled=False)
        derived = analytic.derive_miss_summary(summary, est, CACHE, False)
        assert derived == summary


@given(
    footprint_lines=st.integers(min_value=1, max_value=512),
    repeats=st.integers(min_value=1, max_value=4),
    pairs=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_property_sweep_estimates_track_exact(footprint_lines, repeats, pairs):
    """For random sweep sizes around the capacity boundary, analytic
    hit counts match the exact simulator exactly."""
    buffer = make_buffer(footprint_lines * 64)
    stream = AccessStream.linear(buffer, read_write_pairs=pairs, repeats=repeats)
    est = analytic.estimate_level(
        analytic.StreamSummary.from_stream(stream), CACHE
    )
    hits, misses, _ = exact_counts(stream, CACHE)
    assert est.misses == misses
    assert est.hits == hits
