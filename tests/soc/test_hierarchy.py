"""Cache hierarchy: traffic chaining and the streaming timing model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.soc.address import MemoryRegion, RegionKind
from repro.soc.cache import CacheConfig
from repro.soc.coherence import FlushCostModel
from repro.soc.dram import DRAMConfig, DRAMModel
from repro.soc.hierarchy import (
    CacheHierarchy,
    LevelSpec,
    merge_memory_results,
)
from repro.soc.stream import AccessStream
from repro.units import gbps


def make_hierarchy(l1_kib=4, llc_kib=64, memory_port=float("inf")):
    dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0)))
    specs = [
        LevelSpec(
            config=CacheConfig(name="l1", size_bytes=l1_kib * 1024,
                               line_size=64, ways=4),
            bandwidth=gbps(100.0),
        ),
        LevelSpec(
            config=CacheConfig(name="llc", size_bytes=llc_kib * 1024,
                               line_size=64, ways=8),
            bandwidth=gbps(50.0),
        ),
    ]
    return CacheHierarchy(specs, dram, memory_port_bandwidth=memory_port)


def make_stream(size_bytes=8 * 1024, repeats=1, pairs=False):
    region = MemoryRegion(name="r", base=0, size=1 << 24, kind=RegionKind.PINNED)
    buffer = region.allocate("b", size_bytes, element_size=4)
    return AccessStream.linear(buffer, read_write_pairs=pairs, repeats=repeats)


class TestConstruction:
    def test_requires_levels(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0)))
        with pytest.raises(ConfigurationError):
            CacheHierarchy([], dram)

    def test_rejects_shrinking_lines(self):
        dram = DRAMModel(DRAMConfig(peak_bandwidth=gbps(40.0)))
        specs = [
            LevelSpec(CacheConfig(name="a", size_bytes=4096, line_size=128,
                                  ways=4), bandwidth=gbps(10)),
            LevelSpec(CacheConfig(name="b", size_bytes=8192, line_size=64,
                                  ways=4), bandwidth=gbps(10)),
        ]
        with pytest.raises(ConfigurationError):
            CacheHierarchy(specs, dram)

    def test_level_spec_validation(self):
        with pytest.raises(ConfigurationError):
            LevelSpec(CacheConfig(name="a", size_bytes=4096, line_size=64,
                                  ways=4), bandwidth=0.0)


class TestTrafficChaining:
    def test_l1_hit_traffic_stops_at_l1(self):
        hierarchy = make_hierarchy()
        stream = make_stream(size_bytes=2 * 1024, repeats=4)
        result = hierarchy.process(stream, mode="exact")
        # warm passes hit L1; only the cold pass reaches the LLC
        assert result.l1.hits > 0
        assert result.llc.accesses == result.l1.misses

    def test_llc_fitting_working_set(self):
        hierarchy = make_hierarchy(l1_kib=4, llc_kib=64)
        stream = make_stream(size_bytes=32 * 1024, repeats=4)
        result = hierarchy.process(stream, mode="exact")
        # Thrashes L1 but fits LLC: warm passes hit LLC, DRAM sees only
        # the cold fill.
        assert result.llc.hit_rate > 0.5
        assert result.dram_read_bytes == pytest.approx(32 * 1024, rel=0.05)

    def test_dram_traffic_is_line_granular(self):
        hierarchy = make_hierarchy()
        stream = make_stream(size_bytes=8 * 1024)
        result = hierarchy.process(stream, mode="exact")
        assert result.dram_read_bytes % 64 == 0

    def test_writeback_traffic_reaches_dram(self):
        hierarchy = make_hierarchy(l1_kib=4, llc_kib=8)
        stream = make_stream(size_bytes=64 * 1024, repeats=2, pairs=True)
        result = hierarchy.process(stream, mode="exact")
        assert result.dram_write_bytes > 0


class TestTiming:
    def test_streaming_time_is_bottleneck_stage(self):
        hierarchy = make_hierarchy()
        stream = make_stream(size_bytes=2 * 1024, repeats=8)
        result = hierarchy.process(stream, mode="exact")
        assert result.streaming_time_s == pytest.approx(
            max(result.stage_times.values())
        )

    def test_cache_resident_stream_faster_than_dram_bound(self):
        hierarchy = make_hierarchy()
        resident = hierarchy.process(make_stream(2 * 1024, repeats=8), mode="exact")
        hierarchy.reset()
        spilled = hierarchy.process(make_stream(512 * 1024, repeats=8), mode="exact")
        assert resident.throughput > spilled.throughput

    def test_port_cap_slows_dram_stage(self):
        fast = make_hierarchy()
        slow = make_hierarchy(memory_port=gbps(1.0))
        stream = make_stream(size_bytes=512 * 1024)
        t_fast = fast.process(stream, mode="exact").streaming_time_s
        t_slow = slow.process(stream, mode="exact").streaming_time_s
        assert t_slow > 5 * t_fast

    def test_exposed_latency_is_single_pipeline_fill(self):
        hierarchy = make_hierarchy()
        result = hierarchy.process(make_stream(64 * 1024), mode="exact")
        assert result.exposed_latency_s == pytest.approx(
            hierarchy.dram.config.latency_s
        )

    def test_no_dram_traffic_no_latency(self):
        hierarchy = make_hierarchy()
        stream = make_stream(2 * 1024)
        hierarchy.process(stream, mode="exact")  # warm
        result = hierarchy.process(stream, mode="exact")
        assert result.dram_transactions == 0
        assert result.exposed_latency_s == 0.0


class TestRepeatExtrapolation:
    def test_extrapolated_counts_match_full_replay(self):
        stream = make_stream(size_bytes=8 * 1024, repeats=6)
        fast = make_hierarchy().process(stream, mode="exact")
        # full replay: 6 separate passes
        slow_h = make_hierarchy()
        totals = dict(hits=0, misses=0)
        one_pass = make_stream(size_bytes=8 * 1024, repeats=1)
        for _ in range(6):
            r = slow_h.process(one_pass, mode="exact")
            totals["hits"] += r.l1.hits
            totals["misses"] += r.l1.misses
        assert fast.l1.hits == totals["hits"]
        assert fast.l1.misses == totals["misses"]


class TestAnalyticAgreement:
    @pytest.mark.parametrize("size_kib,repeats", [(2, 4), (32, 4), (256, 2)])
    def test_modes_agree_on_hit_rates(self, size_kib, repeats):
        stream = make_stream(size_bytes=size_kib * 1024, repeats=repeats)
        exact = make_hierarchy().process(stream, mode="exact")
        approx = make_hierarchy().process(stream, mode="analytic")
        assert approx.l1.hit_rate == pytest.approx(exact.l1.hit_rate, abs=0.02)
        assert approx.llc.hit_rate == pytest.approx(exact.llc.hit_rate, abs=0.02)
        assert approx.dram_read_bytes == pytest.approx(
            exact.dram_read_bytes, rel=0.05, abs=256
        )

    def test_auto_uses_analytic_for_virtual(self):
        hierarchy = make_hierarchy()
        stream = AccessStream.virtual_linear(2 ** 22)
        result = hierarchy.process(stream, mode="auto")
        assert result.transactions == 2 ** 23

    def test_exact_rejects_virtual(self):
        hierarchy = make_hierarchy()
        stream = AccessStream.virtual_linear(1024)
        with pytest.raises(SimulationError):
            hierarchy.process(stream, mode="exact")

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            make_hierarchy().process(make_stream(), mode="bogus")


class TestFlushAndEnable:
    def test_flush_reports_dirty_bytes(self):
        hierarchy = make_hierarchy()
        stream = make_stream(size_bytes=4 * 1024, pairs=True)
        hierarchy.process(stream, mode="exact")
        result = hierarchy.flush(FlushCostModel())
        assert result.writeback_bytes > 0
        assert result.time_s > 0

    def test_flush_empties_all_levels(self):
        hierarchy = make_hierarchy()
        hierarchy.process(make_stream(), mode="exact")
        hierarchy.flush(FlushCostModel())
        assert hierarchy.l1.resident_lines == 0
        assert hierarchy.llc.resident_lines == 0

    def test_set_llc_enabled(self):
        hierarchy = make_hierarchy()
        hierarchy.set_llc_enabled(False)
        result = hierarchy.process(make_stream(32 * 1024, repeats=2), mode="exact")
        assert result.llc.hits == 0
        hierarchy.set_llc_enabled(True)

    def test_set_level_by_name(self):
        hierarchy = make_hierarchy()
        hierarchy.set_level_enabled("l1", False)
        assert not hierarchy.l1.enabled
        with pytest.raises(ConfigurationError):
            hierarchy.set_level_enabled("missing", False)

    def test_scaled_bandwidths_context(self):
        hierarchy = make_hierarchy()
        stream = make_stream(2 * 1024, repeats=8)
        base = hierarchy.process(stream, mode="exact").streaming_time_s
        hierarchy.reset()
        with hierarchy.scaled_bandwidths(2.0):
            fast = hierarchy.process(stream, mode="exact").streaming_time_s
        assert fast < base
        assert hierarchy.specs[0].bandwidth == gbps(100.0)  # restored

    def test_scaled_bandwidths_validates(self):
        hierarchy = make_hierarchy()
        with pytest.raises(ConfigurationError):
            with hierarchy.scaled_bandwidths(0.0):
                pass


class TestMergeResults:
    def test_merge_sums_traffic(self):
        hierarchy = make_hierarchy()
        a = hierarchy.process(make_stream(4 * 1024), mode="exact")
        b = hierarchy.process(make_stream(4 * 1024), mode="exact")
        merged = merge_memory_results([a, b])
        assert merged.transactions == a.transactions + b.transactions
        assert merged.l1.accesses == a.l1.accesses + b.l1.accesses
        assert merged.streaming_time_s == pytest.approx(
            a.streaming_time_s + b.streaming_time_s
        )

    def test_merge_single_is_identity(self):
        hierarchy = make_hierarchy()
        a = hierarchy.process(make_stream(), mode="exact")
        assert merge_memory_results([a]) is a

    def test_merge_empty_rejected(self):
        with pytest.raises(SimulationError):
            merge_memory_results([])

    def test_level_lookup(self):
        hierarchy = make_hierarchy()
        result = hierarchy.process(make_stream(), mode="exact")
        assert result.level("l1") is result.l1
        with pytest.raises(SimulationError):
            result.level("nope")
