#!/usr/bin/env python
"""Tune the Shack-Hartmann adaptive-optics application (paper §IV-B).

Run:  python examples/shwfs_tuning.py

1. Synthesizes an aberrated wavefront, renders the sensor frame, and
   runs the real centroid-extraction algorithm, validating the
   recovered displacements and Zernike modes against the injected
   ground truth (the *functional* half of the application).
2. Profiles the calibrated workload on the three Jetson presets, runs
   the decision framework (reproducing Table II's rows), and validates
   the recommendations by executing all three communication models
   (reproducing Table III's shape).
"""

import numpy as np

from repro import Framework, SoC, get_board, get_model
from repro.analysis.tables import Table, paper_speedup_pct
from repro.apps.shwfs import ShwfsPipeline
from repro.units import to_us

INJECTED_MODES = [0.0, 0.4, -0.3, 0.5, 0.15, -0.2]  # Noll 1..6


def functional_demo(pipeline: ShwfsPipeline) -> None:
    image, truth = pipeline.make_frame(INJECTED_MODES, noise_rms=4.0)
    result = pipeline.process_frame(image, truth)
    print("== Functional pipeline ==")
    print(f"  frame: {image.shape[1]}x{image.shape[0]} px, "
          f"{pipeline.grid.count} subapertures")
    print(f"  centroid RMSE: {result.displacement_rmse_px:.3f} px")
    injected = np.array(INJECTED_MODES[1:])  # piston unobservable
    recovered = result.recovered_modes
    print(f"  injected  modes (Noll 2-6): {np.round(injected, 3)}")
    print(f"  recovered modes (Noll 2-6): {np.round(recovered, 3)}")


def tuning_demo(pipeline: ShwfsPipeline) -> None:
    framework = Framework()
    profile_table = Table(
        "SH-WFS profiling (reproduces Table II)",
        ["board", "CPU usage %", "CPU thr %", "GPU usage %", "GPU thr %",
         "kernel us", "copy us", "recommendation"],
    )
    perf_table = Table(
        "SH-WFS performance (reproduces Table III)",
        ["board", "SC us", "UM us", "ZC us", "ZC vs SC %", "paper %"],
    )
    paper_speedup = {"nano": -67, "tx2": -5, "xavier": 38}
    for name in ("nano", "tx2", "xavier"):
        board = get_board(name)
        report = pipeline.tune(framework, board)
        rec = report.recommendation
        profile_table.add_row(
            name,
            report.cpu_cache_usage_pct,
            rec.cpu_threshold_pct,
            report.gpu_cache_usage_pct,
            rec.gpu_threshold_pct,
            to_us(report.kernel_time_s),
            to_us(report.copy_time_s),
            rec.model.value,
        )
        workload = pipeline.workload(board_name=name)
        soc = SoC(board)
        results = {m: get_model(m).execute(workload, soc) for m in ("SC", "UM", "ZC")}
        perf_table.add_row(
            name,
            to_us(results["SC"].time_per_iteration_s),
            to_us(results["UM"].time_per_iteration_s),
            to_us(results["ZC"].time_per_iteration_s),
            paper_speedup_pct(results["SC"].time_per_iteration_s,
                              results["ZC"].time_per_iteration_s),
            paper_speedup[name],
        )
    print("\n" + profile_table.render())
    print("\n" + perf_table.render())


def main() -> None:
    pipeline = ShwfsPipeline()
    functional_demo(pipeline)
    tuning_demo(pipeline)


if __name__ == "__main__":
    main()
