#!/usr/bin/env python
"""Characterize a hypothetical board (what-if analysis).

Run:  python examples/custom_board.py

The framework's value on new silicon is answering "would our app want
zero-copy on a device like X?" before X exists.  This example builds a
fictional next-generation board — Xavier-class compute with an
improved I/O-coherent zero-copy path — registers it, characterizes it,
and compares the SH-WFS and ORB recommendations against the real
Xavier.  The ORB flip (zone 2 → zone 1) is exactly the kind of design
insight the paper's decision flow enables.
"""

from dataclasses import replace

from repro import Framework, get_board
from repro.apps.orbslam import OrbPipeline
from repro.apps.shwfs import ShwfsPipeline
from repro.soc.board import register_board
from repro.soc.coherence import CoherenceMode, ZeroCopyBehavior
from repro.units import gbps, to_gbps


def future_board():
    """Xavier with a 3x faster I/O-coherent zero-copy path."""
    xavier = get_board("xavier")
    zero_copy = ZeroCopyBehavior(
        mode=CoherenceMode.ZC_IO_COHERENT,
        gpu_zc_bandwidth=xavier.zero_copy.gpu_zc_bandwidth * 3.0,
        cpu_zc_bandwidth=xavier.zero_copy.cpu_zc_bandwidth,
        gpu_llc_disabled=True,
        cpu_llc_disabled=False,
        snoop_latency_s=xavier.zero_copy.snoop_latency_s / 2.0,
    )
    return replace(
        xavier,
        name="xavier-next",
        display_name="Hypothetical Xavier-Next (3x ZC path)",
        zero_copy=zero_copy,
    )


def main() -> None:
    try:
        register_board("xavier-next", future_board)
    except Exception:
        pass  # already registered on a re-run in the same process

    framework = Framework()
    shwfs = ShwfsPipeline()
    orb = OrbPipeline()

    for name in ("xavier", "xavier-next"):
        board = get_board(name)
        device = framework.characterize(board)
        print(f"== {board.display_name} ==")
        print(f"  ZC GPU path: {to_gbps(device.gpu_zc_throughput):.1f} GB/s "
              f"(SC peak {to_gbps(device.gpu_peak_throughput):.1f})")
        print(f"  GPU threshold {device.gpu_threshold_pct:.1f} %, "
              f"zone 2 up to {device.gpu_zone2_pct:.1f} %")
        for label, pipeline in (("SH-WFS", shwfs), ("ORB", orb)):
            report = pipeline.tune(framework, board)
            rec = report.recommendation
            estimate = (f", est. +{rec.estimated_speedup_pct:.0f} %"
                        if rec.estimated_speedup_pct is not None else "")
            print(f"  {label}: GPU usage {report.gpu_cache_usage_pct:.1f} % "
                  f"(zone {int(rec.zone)}) -> {rec.model.value}{estimate}")
        print()


if __name__ == "__main__":
    main()
