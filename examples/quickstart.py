#!/usr/bin/env python
"""Quickstart: characterize a device and tune a workload in ~40 lines.

Run:  python examples/quickstart.py [board]

Steps:
1. pick a board preset (Jetson Nano / TX2 / AGX Xavier);
2. run the micro-benchmark suite to characterize it (Table I numbers,
   cache-usage thresholds, device max speedups);
3. define a small producer-consumer workload;
4. ask the framework which communication model to use and what speedup
   to expect; then validate by actually executing all three models.
"""

import sys

from repro import (
    BufferSpec,
    CpuTask,
    Framework,
    GpuKernel,
    OpMix,
    SoC,
    Workload,
    get_board,
    get_model,
)
from repro.kernels import LinearPattern
from repro.kernels.workload import Direction
from repro.units import to_gbps, to_us


def build_workload() -> Workload:
    """A CPU-produces / GPU-consumes streaming workload (64 K floats)."""
    frame = BufferSpec(
        name="frame",
        num_elements=64 * 1024,
        element_size=4,
        shared=True,
        direction=Direction.TO_GPU,
    )
    producer = CpuTask(
        name="produce",
        ops=OpMix.per_element({"mul": 1.0, "add": 1.0}, 64 * 1024),
        pattern=LinearPattern(buffer="frame", read_write_pairs=True),
    )
    consumer = GpuKernel(
        name="consume",
        ops=OpMix.per_element({"fma": 4.0}, 64 * 1024),
        pattern=LinearPattern(buffer="frame", read_write_pairs=False),
    )
    return Workload(
        name="quickstart",
        buffers=(frame,),
        cpu_task=producer,
        gpu_kernel=consumer,
        iterations=100,
        overlappable=True,
    )


def main() -> None:
    board_name = sys.argv[1] if len(sys.argv) > 1 else "xavier"
    board = get_board(board_name)
    print(f"== Characterizing {board.display_name} ==")
    framework = Framework()
    device = framework.characterize(board)
    for model, value in sorted(device.gpu_cache_throughput.items()):
        print(f"  GPU LL-L1 peak throughput [{model}]: {to_gbps(value):7.2f} GB/s")
    print(f"  GPU cache threshold: {device.gpu_threshold_pct:.1f} % "
          f"(zone 2 up to {device.gpu_zone2_pct:.1f} %)")
    print(f"  CPU cache threshold: {device.cpu_threshold_pct:.1f} %")
    print(f"  SC->ZC max speedup: {device.sc_zc_max_speedup:.2f}x, "
          f"ZC->SC max: {device.zc_sc_max_speedup:.1f}x")

    workload = build_workload()
    report = framework.tune(workload, board, current_model="SC")
    rec = report.recommendation
    print(f"\n== Tuning {workload.name!r} (currently SC) ==")
    print(f"  CPU cache usage: {report.cpu_cache_usage_pct:.1f} % "
          f"| GPU cache usage: {report.gpu_cache_usage_pct:.1f} %")
    print(f"  Recommendation: {rec.model.value} — {rec.reason}")
    if rec.estimated_speedup_pct is not None:
        print(f"  Estimated speedup: up to {rec.estimated_speedup_pct:.0f} %")

    print("\n== Validation (actual execution) ==")
    soc = SoC(board)
    results = {m: get_model(m).execute(workload, soc) for m in ("SC", "UM", "ZC")}
    for model, result in results.items():
        print(f"  {model}: {to_us(result.time_per_iteration_s):8.1f} us/iteration "
              f"(cpu {to_us(result.cpu_time_s):6.1f}, kernel "
              f"{to_us(result.kernel_time_s):6.1f}, copy {to_us(result.copy_time_s):5.1f})")
    actual = results["ZC"].speedup_vs(results["SC"]) * 100.0
    print(f"  Measured ZC vs SC: {actual:+.0f} %")


if __name__ == "__main__":
    main()
