#!/usr/bin/env python
"""Tune the ORB-SLAM feature-extraction offload (paper §IV-C).

Run:  python examples/orbslam_tuning.py

1. Runs the real ORB front end (pyramid, FAST-9, orientations, rBRIEF,
   matching) on a synthetic scene pair with a known camera shift and
   verifies the shift is recovered from the matches.
2. Profiles the calibrated workload on TX2 and Xavier, reproducing
   Table IV's classification (GPU-cache-dependent; Xavier in zone 2)
   and Table V's SC-vs-ZC outcome (catastrophic on TX2, parity-class on
   Xavier).
"""

from repro import Framework, SoC, get_board, get_model
from repro.analysis.tables import Table, paper_speedup_pct
from repro.apps.orbslam import OrbPipeline
from repro.apps.orbslam.pipeline import shift_scene, synthetic_scene
from repro.units import to_ms, to_us

CAMERA_SHIFT = (7, -4)


def functional_demo(pipeline: OrbPipeline) -> None:
    frame_a = synthetic_scene(seed=3)
    frame_b = shift_scene(frame_a, *CAMERA_SHIFT)
    result = pipeline.track(frame_a, frame_b)
    print("== Functional ORB front end ==")
    print(f"  features: {len(result.features_a)} / {len(result.features_b)}, "
          f"matches: {result.num_matches}")
    print(f"  injected shift:  {CAMERA_SHIFT}")
    print(f"  estimated shift: {result.estimated_shift}")


def tuning_demo(pipeline: OrbPipeline) -> None:
    framework = Framework()
    profile_table = Table(
        "ORB-SLAM profiling (reproduces Table IV)",
        ["board", "CPU usage %", "GPU usage %", "GPU thr %", "zone 2 %",
         "zone", "kernel us", "copy us", "recommendation"],
    )
    perf_table = Table(
        "ORB-SLAM performance (reproduces Table V)",
        ["board", "SC ms", "SC kernel us", "ZC ms", "ZC kernel us",
         "ZC vs SC %", "paper %"],
    )
    paper_speedup = {"tx2": -744, "xavier": 0}
    for name in ("tx2", "xavier"):
        board = get_board(name)
        report = pipeline.tune(framework, board)
        rec = report.recommendation
        profile_table.add_row(
            name,
            report.cpu_cache_usage_pct,
            report.gpu_cache_usage_pct,
            rec.gpu_threshold_pct,
            rec.gpu_zone2_pct,
            int(rec.zone),
            to_us(report.kernel_time_s),
            to_us(report.copy_time_s),
            rec.model.value,
        )
        workload = pipeline.workload(board_name=name)
        soc = SoC(board)
        sc = get_model("SC").execute(workload, soc)
        zc = get_model("ZC").execute(workload, soc)
        perf_table.add_row(
            name,
            to_ms(sc.total_time_s),
            to_us(sc.kernel_time_s),
            to_ms(zc.total_time_s),
            to_us(zc.kernel_time_s),
            paper_speedup_pct(sc.total_time_s, zc.total_time_s),
            paper_speedup[name],
        )
    print("\n" + profile_table.render())
    print("\n" + perf_table.render())


def main() -> None:
    pipeline = OrbPipeline()
    functional_demo(pipeline)
    tuning_demo(pipeline)


if __name__ == "__main__":
    main()
