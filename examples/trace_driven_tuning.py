#!/usr/bin/env python
"""Trace-driven tuning: bring your own memory trace.

Run:  python examples/trace_driven_tuning.py

Not every application fits the declarative pattern library.  This
example records a synthetic kernel trace (the kind a binary
instrumentation tool would dump), saves/loads it through the CSV and
NPZ round trips, wraps it into a workload, and runs the full decision
flow on two boards — no hand-written access pattern involved.

The synthetic trace mimics a stencil kernel: a streaming sweep with a
hot boundary region that gets re-read many times — i.e. an application
whose cache dependence is not obvious until profiled.
"""

import io

import numpy as np

from repro import Framework, get_board
from repro.analysis.tables import Table
from repro.profiling.trace import RecordedTrace, workload_from_trace
from repro.units import to_us


def record_stencil_trace(rows=128, cols=128, halo_rereads=24,
                         access_size=4) -> RecordedTrace:
    """A synthetic dump of a 2-D stencil kernel's memory accesses."""
    offsets = []
    writes = []
    row_bytes = cols * access_size
    # Streaming pass: read + write every cell once.
    for r in range(rows):
        for c in range(cols):
            offset = r * row_bytes + c * access_size
            offsets.append(offset)
            writes.append(False)
            offsets.append(offset)
            writes.append(True)
    # Hot halo: the first rows are re-read many times (boundary
    # exchange), giving the kernel genuine cache reuse.
    for _ in range(halo_rereads):
        for c in range(cols):
            offsets.append(c * access_size)
            writes.append(False)
    return RecordedTrace(
        offsets=np.array(offsets, dtype=np.int64),
        is_write=np.array(writes, dtype=bool),
        access_size=access_size,
    )


def main() -> None:
    trace = record_stencil_trace()
    print("== Recorded trace ==")
    print(f"  accesses: {trace.num_accesses}, footprint: "
          f"{trace.footprint_bytes} B, writes: {trace.write_fraction:.0%}")

    # Round-trip through the interchange formats.
    csv_text = "offset,rw\n" + "\n".join(
        f"{int(o)},{'W' if w else 'R'}"
        for o, w in zip(trace.offsets[:8], trace.is_write[:8])
    )
    head = RecordedTrace.from_csv(io.StringIO(csv_text))
    print(f"  CSV round-trip of the first 8 rows: {head.num_accesses} accesses")

    workload = workload_from_trace(
        "stencil-trace", trace, gpu_flops_per_access=6.0, iterations=8,
    )

    framework = Framework()
    table = Table(
        "Trace-driven tuning",
        ["board", "GPU usage %", "GPU thr %", "zone", "kernel us",
         "recommendation"],
    )
    for name in ("tx2", "xavier"):
        report = framework.tune(workload, get_board(name))
        rec = report.recommendation
        table.add_row(
            name,
            report.gpu_cache_usage_pct,
            rec.gpu_threshold_pct,
            int(rec.zone),
            to_us(report.kernel_time_s),
            rec.model.value,
        )
    print("\n" + table.render())


if __name__ == "__main__":
    main()
