#!/usr/bin/env python
"""The Fig-4 tiled zero-copy communication pattern, hands on.

Run:  python examples/zero_copy_pattern.py

Shows:
1. how a shared buffer is tiled (tile size = smaller LLC block size);
2. the race-freedom invariant: the CPU's even tiles and the iGPU's odd
   tiles never overlap within a phase — verified on the materialized
   access streams, and shown to *fail* when both processors are
   (incorrectly) given the same parity;
3. how the pattern's phase-wise overlap compares with a naive serial
   zero-copy port on the Xavier, and how the tile size affects the
   barrier overhead (the ablation DESIGN.md calls out).
"""

from repro.comm.tiling import (
    TiledZeroCopyPattern,
    TilingPlan,
    check_race_free,
)
from repro.errors import RaceConditionError
from repro.kernels.workload import BufferSpec, Direction
from repro.soc import SoC, get_board
from repro.soc.address import RegionKind
from repro.soc.events import OverlapJob
from repro.units import to_us


def main() -> None:
    board = get_board("xavier")
    spec = BufferSpec(
        name="image",
        num_elements=256 * 1024,
        element_size=4,
        shared=True,
        direction=Direction.BIDIRECTIONAL,
    )
    plan = TilingPlan.for_buffer(spec, board)
    print("== Tiling plan (Fig. 4) ==")
    print(f"  buffer: {spec.size_bytes} bytes, tile: {plan.tile_bytes} bytes "
          f"(min of CPU/GPU LLC line sizes)")
    print(f"  tiles: {plan.num_tiles}, phases: {plan.num_phases}, "
          f"barrier: {to_us(plan.barrier_overhead_s):.1f} us")

    # Materialize phase-0 streams and verify disjointness.
    soc = SoC(board)
    region = soc.make_region("pinned", spec.size_bytes * 2, RegionKind.PINNED)
    buffer = region.allocate(spec.name, spec.size_bytes, element_size=4)
    cpu_spec, gpu_spec = plan.phase_patterns(phase=0)
    cpu_stream = cpu_spec.build({spec.name: buffer}, line_size=64)
    gpu_stream = gpu_spec.build({spec.name: buffer}, line_size=64)
    check_race_free(cpu_stream, gpu_stream, granularity=plan.tile_bytes)
    print("  phase 0: CPU tiles and GPU tiles are disjoint (race-free) ✔")

    bad_stream = cpu_spec.build({spec.name: buffer}, line_size=64)
    try:
        check_race_free(cpu_stream, bad_stream, granularity=plan.tile_bytes)
    except RaceConditionError as error:
        print(f"  same-parity misuse detected as expected: {error}")

    # Timing: overlapped pattern vs naive serial ZC.
    print("\n== Overlap vs serial (Xavier, balanced jobs) ==")
    cpu_job = OverlapJob(
        name="cpu", compute_time_s=40e-6, memory_bytes=512 * 1024,
        solo_bandwidth=board.zero_copy.cpu_zc_bandwidth,
        overlap_compute_memory=False,
    )
    gpu_job = OverlapJob(
        name="gpu", compute_time_s=35e-6, memory_bytes=512 * 1024,
        solo_bandwidth=board.zero_copy.gpu_zc_bandwidth,
    )
    pattern = TiledZeroCopyPattern(plan)
    execution = pattern.overlapped_execution(cpu_job, gpu_job, board.interconnect)
    serial = (cpu_job.compute_time_s
              + cpu_job.memory_bytes / cpu_job.solo_bandwidth
              + max(gpu_job.compute_time_s,
                    gpu_job.memory_bytes / gpu_job.solo_bandwidth))
    print(f"  serial zero-copy:     {to_us(serial):7.1f} us")
    print(f"  tiled overlapped:     {to_us(execution.total_time_s):7.1f} us "
          f"(sync overhead {to_us(execution.sync_overhead_s):.1f} us)")
    print(f"  gain: {100.0 * (serial / execution.total_time_s - 1.0):+.0f} %")

    print("\n== Tile-size ablation ==")
    print("  (sub-line tiles split coalesced transactions and waste bandwidth)")
    for tile_bytes in (8, 16, 32, 64, 256, 4096):
        ablated = TilingPlan.for_buffer(spec, board, tile_bytes=tile_bytes)
        execution = TiledZeroCopyPattern(ablated).overlapped_execution(
            cpu_job, gpu_job, board.interconnect
        )
        print(f"  tile {tile_bytes:5d} B -> {ablated.num_tiles:6d} tiles, "
              f"coalescing {ablated.coalescing_efficiency * 100:5.1f} %, "
              f"iteration {to_us(execution.total_time_s):7.1f} us")


if __name__ == "__main__":
    main()
