#!/usr/bin/env python
"""Workload templates: describe an app in one call, tune it everywhere.

Run:  python examples/workload_templates.py

The builders in ``repro.kernels.builders`` capture the communication
structures the paper's introduction motivates.  This example tunes one
instance of each template on every board and prints the decision
matrix — a compact view of the paper's whole thesis: the right
communication model depends on both the application's structure and
the device's coherence hardware.
"""

from repro import Framework, get_board
from repro.analysis.tables import Table
from repro.kernels.builders import (
    gpu_offload,
    ping_pong,
    producer_consumer,
    streaming_reduction,
)

TEMPLATES = (
    ("producer-consumer",
     producer_consumer("pc", frame_elements=64 * 1024, iterations=20)),
    ("ping-pong",
     ping_pong("pp", elements=64 * 1024, iterations=20)),
    ("gpu-offload (cache-hot)",
     gpu_offload("off", result_elements=2048, reuse_passes=24,
                 iterations=20)),
    ("streaming reduction",
     streaming_reduction("red", input_elements=256 * 1024,
                         gpu_ops_per_element=48.0, iterations=20)),
)


def main() -> None:
    framework = Framework()
    table = Table(
        "Decision matrix — workload structure x device",
        ["template", "board", "CPU %", "GPU %", "zone", "recommendation"],
    )
    for label, workload in TEMPLATES:
        for board_name in ("nano", "tx2", "xavier"):
            report = framework.tune(workload, get_board(board_name))
            rec = report.recommendation
            table.add_row(
                label,
                board_name,
                report.cpu_cache_usage_pct,
                report.gpu_cache_usage_pct,
                int(rec.zone),
                rec.model.value,
            )
    print(table.render())
    print("\nReading the matrix: streaming structures earn zero-copy; "
          "cache-hot offloads keep standard copy except inside the "
          "Xavier's conditional zone — the paper's Fig. 2 in action.")


if __name__ == "__main__":
    main()
