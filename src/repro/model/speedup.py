"""Potential-speedup estimators (paper eqns 3-4).

Eqn (3) — application currently on **SC**, classified *not*
cache-dependent; what can ZC buy?

``SC/ZC_speedup = SC_runtime / ((SC_runtime - copy_time) / (1 + CPU/GPU))``

The numerator is the measured SC runtime; the denominator is the
estimated ZC runtime: the copies disappear and the CPU routine overlaps
the GPU kernel (a task ratio of r = CPU_time/GPU_time lets the pair
compress by up to 1 + r when the shorter side hides under the longer).
The estimate is capped by the device's ``SC/ZC_Max_speedup`` from
micro-benchmark 3.

Eqn (4) — application currently on **ZC**, classified cache-dependent;
what does moving to SC cost/gain?

``ZC/SC_speedup = ZC_runtime / (ZC_runtime * (1 + CPU/GPU) + copy_time)``

The denominator is the estimated SC runtime built pessimistically from
the ZC runtime: the overlapped tasks serialize (factor 1 + r) and the
copies come back.  The gain of re-enabled caches is captured by the
``ZC/SC_Max_speedup`` cap measured by the micro-benchmarks: the final
estimate is ``min(formula, cap)`` on the SC→ZC side and the cap bounds
the achievable kernel acceleration on the ZC→SC side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


def _validate_times(runtime_s: float, copy_time_s: float,
                    cpu_time_s: float, gpu_time_s: float) -> None:
    if runtime_s <= 0:
        raise ModelError(f"runtime must be positive, got {runtime_s}")
    if copy_time_s < 0:
        raise ModelError(f"copy time cannot be negative, got {copy_time_s}")
    if copy_time_s >= runtime_s:
        raise ModelError(
            f"copy time ({copy_time_s}) must be smaller than the runtime "
            f"({runtime_s})"
        )
    if cpu_time_s < 0:
        raise ModelError(f"CPU time cannot be negative, got {cpu_time_s}")
    if gpu_time_s <= 0:
        raise ModelError(f"GPU time must be positive, got {gpu_time_s}")


@dataclass(frozen=True)
class SpeedupEstimate:
    """One potential-speedup estimate."""

    raw: float
    capped: float
    cap: float
    direction: str  # "SC->ZC" or "ZC->SC"

    @property
    def percent(self) -> float:
        """Capped speedup as the paper's "up to X %" figure."""
        return (self.capped - 1.0) * 100.0


def sc_to_zc_speedup(
    sc_runtime_s: float,
    copy_time_s: float,
    cpu_time_s: float,
    gpu_time_s: float,
    max_speedup: float,
) -> SpeedupEstimate:
    """Eqn (3): potential speedup of switching SC → ZC.

    Args:
        sc_runtime_s: measured total runtime under SC.
        copy_time_s: measured CPU-iGPU transfer time within it.
        cpu_time_s / gpu_time_s: runtimes of the CPU-only task and the
            GPU kernel.
        max_speedup: device-level ``SC/ZC_Max_speedup`` (MB3).
    """
    _validate_times(sc_runtime_s, copy_time_s, cpu_time_s, gpu_time_s)
    if max_speedup <= 0:
        raise ModelError(f"max speedup must be positive, got {max_speedup}")
    overlap_factor = 1.0 + cpu_time_s / gpu_time_s
    estimated_zc_runtime = (sc_runtime_s - copy_time_s) / overlap_factor
    raw = sc_runtime_s / estimated_zc_runtime
    return SpeedupEstimate(
        raw=raw,
        capped=min(raw, max_speedup),
        cap=max_speedup,
        direction="SC->ZC",
    )


def zc_to_sc_speedup(
    zc_runtime_s: float,
    copy_time_s: float,
    cpu_time_s: float,
    gpu_time_s: float,
    max_speedup: float,
) -> SpeedupEstimate:
    """Eqn (4): potential speedup of switching ZC → SC.

    The formula's denominator is the estimated SC runtime: overlapped
    tasks serialize and the copies return.  A value below 1 means the
    serialization/copy costs exceed what re-enabled caches can recover;
    ``max_speedup`` (the device's ``ZC/SC_Max_speedup``) bounds the
    cache-side gain.
    """
    if zc_runtime_s <= 0:
        raise ModelError(f"runtime must be positive, got {zc_runtime_s}")
    if copy_time_s < 0:
        raise ModelError(f"copy time cannot be negative, got {copy_time_s}")
    if cpu_time_s < 0:
        raise ModelError(f"CPU time cannot be negative, got {cpu_time_s}")
    if gpu_time_s <= 0:
        raise ModelError(f"GPU time must be positive, got {gpu_time_s}")
    if max_speedup <= 0:
        raise ModelError(f"max speedup must be positive, got {max_speedup}")
    serialization = 1.0 + cpu_time_s / gpu_time_s
    estimated_sc_runtime = zc_runtime_s * serialization + copy_time_s
    # Re-enabled caches can accelerate the kernel part by at most the
    # device cap; apply it to the serialized estimate.
    accelerated = max(
        estimated_sc_runtime / max_speedup, copy_time_s + cpu_time_s
    )
    raw = zc_runtime_s / estimated_sc_runtime
    capped = zc_runtime_s / accelerated if accelerated > 0 else raw
    return SpeedupEstimate(
        raw=raw,
        capped=max(raw, min(capped, max_speedup)),
        cap=max_speedup,
        direction="ZC->SC",
    )
