"""What-if sensitivity analysis (an extension beyond the paper).

The paper's conclusion motivates using the framework at design time:
"the characteristics of both application and target device strongly
affect the choice of the best communication model".  This module turns
that into a tool: sweep a device characteristic — here the zero-copy
path bandwidth, the parameter that separates the TX2 from the Xavier —
and report where the winning communication model flips for a given
application.

Typical question answered: *how much faster would the coherence fabric
need to be before this cache-dependent app should adopt zero-copy?*
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.comm.base import get_model
from repro.errors import ModelError
from repro.kernels.workload import Workload
from repro.soc.board import BoardConfig
from repro.soc.soc import SoC

DEFAULT_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class SweepPoint:
    """Outcome at one bandwidth scaling factor."""

    factor: float
    gpu_zc_bandwidth: float
    sc_time_s: float
    zc_time_s: float

    @property
    def zc_vs_sc_pct(self) -> float:
        """Positive when ZC wins."""
        return (self.sc_time_s / self.zc_time_s - 1.0) * 100.0

    @property
    def winner(self) -> str:
        """"ZC" or "SC" at this point."""
        return "ZC" if self.zc_time_s < self.sc_time_s else "SC"


@dataclass(frozen=True)
class SweepResult:
    """A full sensitivity sweep."""

    board_name: str
    workload_name: str
    points: List[SweepPoint]

    @property
    def crossover_factor(self) -> Optional[float]:
        """The smallest swept factor at which ZC starts winning, or
        ``None`` when ZC never wins in the swept range."""
        for point in self.points:
            if point.winner == "ZC":
                return point.factor
        return None

    @property
    def zc_always_wins(self) -> bool:
        """True when ZC wins at every swept point."""
        return all(p.winner == "ZC" for p in self.points)


def scale_zc_path(board: BoardConfig, factor: float) -> BoardConfig:
    """A board variant whose zero-copy paths are ``factor``× faster.

    Both the GPU and CPU uncached bandwidths scale (they share the
    coherence fabric); the uncached latency scales inversely.
    """
    if factor <= 0:
        raise ModelError(f"scaling factor must be positive, got {factor}")
    zero_copy = replace(
        board.zero_copy,
        gpu_zc_bandwidth=board.zero_copy.gpu_zc_bandwidth * factor,
        cpu_zc_bandwidth=board.zero_copy.cpu_zc_bandwidth * factor,
        cpu_uncached_latency_s=board.zero_copy.cpu_uncached_latency_s / factor,
    )
    return replace(
        board,
        name=f"{board.name}-zc{factor:g}x",
        zero_copy=zero_copy,
    )


def _sweep_evaluator(workload: Workload, board: BoardConfig):
    """A factor-closed-form ZC evaluator, or ``None``.

    Imported lazily: :mod:`repro.perf` sits above the soc layer and
    below the model layer only at call time.
    """
    from repro.perf.batch import BatchUnsupported, ZcSweepEvaluator
    from repro.robustness.inject import injection_active

    if injection_active():
        # Fault plans patch the scalar simulation seams; the closed
        # form would compute around them.
        return None
    try:
        return ZcSweepEvaluator(workload, board)
    except BatchUnsupported:
        return None


def zc_bandwidth_sweep(
    workload: Workload,
    board: BoardConfig,
    factors: Sequence[float] = DEFAULT_FACTORS,
    vectorized: bool = True,
    early_exit: bool = False,
) -> SweepResult:
    """Measure SC vs ZC across zero-copy path scalings.

    The SC baseline is measured once on the unmodified board (SC does
    not use the ZC path); ZC is re-measured per factor.  With
    ``vectorized`` enabled the ZC executor runs once and each factor is
    re-evaluated in closed form (:class:`repro.perf.batch.ZcSweepEvaluator`);
    unsupported workloads — or an active fault injector — fall back to
    the per-factor executor sweep.

    With ``early_exit`` the ordered sweep stops at the first factor
    where ZC wins: scaling the ZC path faster only ever helps ZC, so
    once it wins the winner can no longer flip at larger factors and
    ``crossover_factor`` / ``zc_always_wins`` are already decided.  The
    truncated sweep reports only the points actually evaluated.
    """
    if not factors:
        raise ModelError("the sweep needs at least one factor")
    ordered = sorted(set(factors))
    sc_time = get_model("SC").execute(workload, SoC(board)).time_per_iteration_s
    evaluator = _sweep_evaluator(workload, board) if vectorized else None
    points = []
    for factor in ordered:
        if evaluator is not None:
            gpu_zc_bandwidth = board.zero_copy.gpu_zc_bandwidth * factor
            zc_time = evaluator.zc_time(factor)
        else:
            variant = scale_zc_path(board, factor)
            gpu_zc_bandwidth = variant.zero_copy.gpu_zc_bandwidth
            zc_time = get_model("ZC").execute(
                workload, SoC(variant)
            ).time_per_iteration_s
        points.append(
            SweepPoint(
                factor=factor,
                gpu_zc_bandwidth=gpu_zc_bandwidth,
                sc_time_s=sc_time,
                zc_time_s=zc_time,
            )
        )
        if early_exit and zc_time < sc_time:
            break
    return SweepResult(
        board_name=board.name,
        workload_name=workload.name,
        points=points,
    )
