"""The user-facing framework façade (paper Fig. 2, end to end).

Typical use::

    from repro import Framework, get_board
    from repro.apps.shwfs import build_shwfs_workload

    framework = Framework()
    report = framework.tune(build_shwfs_workload(), get_board("xavier"),
                            current_model="SC")
    print(report.recommendation.model, report.recommendation.estimated_speedup_pct)

``tune`` characterizes the device with the micro-benchmarks (cached per
board), profiles the application under its current communication model,
computes the cache-usage metrics, runs the decision flow, and returns
everything in one :class:`TuningReport`.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro import obs
from repro.errors import ModelError, ReproError
from repro.obs.report import TuneReport
from repro.kernels.workload import Workload
from repro.model.decision import Recommendation, decide, keep_current
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.deadline import (
    Deadline,
    active_deadline,
    checkpoint,
    deadline_scope,
)
from repro.resilience.retry import RetryPolicy
from repro.sim.backend import get_backend

if TYPE_CHECKING:  # avoid a circular import with repro.microbench
    from repro.explore.surrogate import CharacterizationSurrogate
    from repro.microbench.suite import MicrobenchmarkSuite
from repro.model.device import DeviceCharacterization
from repro.profiling.counters import AppProfile
from repro.profiling.metrics import profile_cpu_cache_usage, profile_gpu_cache_usage
from repro.profiling.profiler import Profiler
from repro.soc.board import BoardConfig
from repro.soc.soc import ALL_MODELS, SoC


@dataclass(frozen=True)
class TuningReport:
    """Everything the framework learned about one application on one
    board: the Table II / Table IV row plus the recommendation.

    A degraded-mode run (``tune(..., strict=False)`` on bad inputs) may
    carry ``profile=None`` and/or ``device=None``; the recommendation's
    ``caveats`` explain what failed.
    """

    workload_name: str
    board_name: str
    current_model: str
    profile: Optional[AppProfile]
    device: Optional[DeviceCharacterization]
    cpu_cache_usage_pct: float
    gpu_cache_usage_pct: float
    recommendation: Recommendation
    #: True when ``device`` is a surrogate interpolation (k probe
    #: points) rather than a full MB1–MB3 characterization.
    via_surrogate: bool = False

    @property
    def kernel_time_s(self) -> float:
        """Profiled kernel time (Table II "Kernel times" column)."""
        return self.profile.kernel_runtime_s if self.profile else float("nan")

    @property
    def copy_time_s(self) -> float:
        """Profiled copy time per kernel (Table II column)."""
        return self.profile.copy_time_s if self.profile else float("nan")

    @property
    def degraded(self) -> bool:
        """True when any input was missing and the recommendation is a
        conservative fallback."""
        return self.recommendation.degraded


class Framework:
    """Device characterization + profiling + recommendation.

    Resilience is opt-in and off by default (identical behaviour and
    hot-path cost to before):

    - ``breakers`` — a :class:`~repro.resilience.breaker.BreakerRegistry`
      wraps the characterize/profile seams; a seam that keeps failing
      trips open and further calls are shed immediately
      (``BREAKER_OPEN``), which degraded mode converts into an instant
      conservative ``KEEP_CURRENT``;
    - ``retry_policy`` — the declarative
      :class:`~repro.resilience.retry.RetryPolicy` degraded-mode
      characterization runs under (default: the legacy bounded budget
      of ``DEGRADED_CHARACTERIZE_RETRIES`` extra attempts, no backoff);
    - ``tune(..., deadline_s=...)`` / an ambient
      :func:`~repro.resilience.deadline.deadline_scope` — bounds the
      flow end to end with cooperative checkpoints.
    """

    def __init__(self, suite: Optional["MicrobenchmarkSuite"] = None,
                 cache_dir: Optional[str] = None,
                 breakers: Optional[BreakerRegistry] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 surrogate: Optional["CharacterizationSurrogate"] = None,
                 backend=None,
                 ) -> None:
        resolved_backend = get_backend(backend) if backend is not None else None
        if suite is None:
            # Imported here to keep repro.model importable from the
            # micro-benchmarks without a cycle.
            from repro.microbench.suite import MicrobenchmarkSuite

            suite = MicrobenchmarkSuite(cache_dir=cache_dir,
                                        backend=resolved_backend)
        else:
            if (resolved_backend is not None
                    and resolved_backend != suite.backend):
                raise ModelError(
                    f"framework backend {resolved_backend.name!r} conflicts "
                    f"with the suite's {suite.backend.name!r}",
                    code="MODEL_BACKEND_CONFLICT",
                    details={"framework": resolved_backend.name,
                             "suite": suite.backend.name},
                )
            if cache_dir is not None and suite.cache is None:
                from repro.perf.cache import ShardedCharacterizationStore

                suite.cache = ShardedCharacterizationStore(cache_dir)
        self.suite = suite
        #: Default timing backend for every stage (characterization
        #: SoCs come from the suite, which shares it; profiling and
        #: validation SoCs are built here).  Per-call ``backend=``
        #: arguments override it through :meth:`_use_backend`.
        self.backend = suite.backend
        self._backend_suites = {suite.backend: suite}
        self.breakers = breakers
        self.retry_policy = retry_policy
        #: Default :class:`~repro.explore.surrogate.CharacterizationSurrogate`
        #: consulted by strict :meth:`tune` calls (``tune(...,
        #: surrogate=...)`` overrides per call).
        self.surrogate = surrogate
        #: The :class:`~repro.obs.report.TuneReport` of the most recent
        #: :meth:`tune` call (``repro tune --report`` serializes it).
        self.last_tune_report: Optional[TuneReport] = None

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------

    def _guarded(self, seam: str, fn):
        """Run one seam call under its circuit breaker, if enabled."""
        if self.breakers is None:
            return fn()
        return self.breakers.call(seam, fn)

    def _suite_for(self, backend) -> "MicrobenchmarkSuite":
        """The suite characterizing under ``backend``.

        Suites are cached per backend (backends are hashable value
        objects); each one shares the base suite's benchmark parameters
        and persistent cache — entries cannot collide because the
        backend identity is part of the cache signature.
        """
        suite = self._backend_suites.get(backend)
        if suite is None:
            from repro.microbench.suite import MicrobenchmarkSuite

            base = self.suite
            suite = MicrobenchmarkSuite(
                first=base.first, second=base.second, third=base.third,
                cache=base.cache, backend=backend,
            )
            self._backend_suites[backend] = suite
        return suite

    @contextlib.contextmanager
    def _use_backend(self, backend):
        """Temporarily retarget the framework at another backend.

        ``None`` (or the current backend) is a no-op.  Otherwise the
        suite and default backend are swapped for the scope; the
        surrogate is dropped when the override is not analytic (its
        calibration is phrased against the analytic model).
        """
        if backend is None:
            yield
            return
        resolved = get_backend(backend)
        if resolved == self.backend:
            yield
            return
        saved = (self.suite, self.backend, self.surrogate)
        self.suite = self._suite_for(resolved)
        self.backend = resolved
        if not resolved.is_analytic:
            self.surrogate = None
        try:
            yield
        finally:
            self.suite, self.backend, self.surrogate = saved

    def characterize(self, board: BoardConfig, force: bool = False,
                     retries: int = 0,
                     retry_policy: Optional[RetryPolicy] = None
                     ) -> DeviceCharacterization:
        """Run (or reuse) the micro-benchmark characterization.

        ``retries`` / ``retry_policy`` bound the re-runs attempted when
        a sweep fails to locate a threshold (see
        :meth:`repro.microbench.suite.MicrobenchmarkSuite.characterize`).
        """
        checkpoint("characterize", board=board.name)
        with obs.span("characterize", board=board.name, force=force):
            return self._guarded(
                "characterize",
                lambda: self.suite.characterize(
                    board, force=force, retries=retries,
                    retry_policy=retry_policy,
                ),
            )

    def profile(self, workload: Workload, board: BoardConfig,
                model: str = "SC") -> AppProfile:
        """Profile the application under one communication model."""
        checkpoint("profile", workload=workload.name)
        with obs.span("profile", workload=workload.name, board=board.name,
                      model=model, backend=self.backend.name):
            soc = SoC(board, backend=self.backend)
            return self._guarded(
                "profile", lambda: Profiler(soc).profile(workload, model=model)
            )

    # ------------------------------------------------------------------
    # the full flow
    # ------------------------------------------------------------------

    #: Bounded retry budget for degraded-mode characterization.
    DEGRADED_CHARACTERIZE_RETRIES = 2

    def tune(self, workload: Workload, board: BoardConfig,
             current_model: str = "SC", strict: bool = True,
             deadline_s: Optional[float] = None,
             surrogate: Optional["CharacterizationSurrogate"] = None,
             backend=None,
             ) -> TuningReport:
        """Run the complete Fig-2 flow for one application.

        ``strict=True`` (default) preserves the raising behaviour: any
        bad input aborts with a structured :class:`ReproError`.  With
        ``strict=False`` the flow degrades instead of raising —
        characterization gets a bounded retry budget, and a failure of
        any stage yields a conservative ``KEEP_CURRENT`` recommendation
        with ``confidence=LOW`` and machine-readable ``caveats``.

        ``deadline_s`` bounds the whole flow: stage boundaries (and the
        micro-benchmark boundaries inside characterization) are
        cooperative checkpoints, so an exhausted budget surfaces as
        ``DEADLINE_EXCEEDED`` (strict) or as a conservative
        ``KEEP_CURRENT`` with a ``DEADLINE_EXCEEDED`` caveat (degraded)
        instead of overshooting.  An already-ambient deadline (from an
        enclosing :func:`~repro.resilience.deadline.deadline_scope`) is
        honoured when ``deadline_s`` is not given.

        ``surrogate`` (or the framework-level default) enables the
        fast path: a strict tune first asks the
        :class:`~repro.explore.surrogate.CharacterizationSurrogate`,
        which answers from k MB2 probe points when the board is inside
        its calibrated trust region — the full characterization runs
        only when the surrogate declines or the decision margin is
        thinner than the calibrated error bounds.  Degraded mode
        ignores the surrogate entirely (its guarantees are phrased for
        the healthy flow).
        """
        if current_model.upper() not in ALL_MODELS:
            raise ModelError(
                f"unknown communication model {current_model!r}; "
                f"expected one of {ALL_MODELS}",
                code="MODEL_UNKNOWN",
                details={"model": current_model},
            )
        timings: Dict[str, float] = {}
        tune_start = time.perf_counter()
        with contextlib.ExitStack() as stack:
            stack.enter_context(self._use_backend(backend))
            if surrogate is None:
                surrogate = self.surrogate
            if not self.backend.is_analytic:
                # The surrogate interpolates analytic probe points; a
                # simulated tune must take the measured path.
                surrogate = None
            if deadline_s is not None:
                stack.enter_context(deadline_scope(Deadline.after(deadline_s)))
            report, recommendation = self._tune_under_scope(
                workload, board, current_model, strict, timings, tune_start,
                surrogate=surrogate,
            )
        obs.counter_inc("framework.tune")
        if recommendation.degraded:
            obs.counter_inc("framework.tune.degraded")
        self.last_tune_report = TuneReport.from_tuning(report,
                                                       timings_s=timings)
        return report

    def retune(self, profile: AppProfile,
               board: Optional[BoardConfig] = None,
               device: Optional[DeviceCharacterization] = None,
               strict: bool = True) -> TuningReport:
        """Re-run the decision flow from an already-measured profile.

        This is the online half of the Fig-2 flow: no workload replay,
        no profiling — the caller already holds fresh counters (a
        window of a live stream, a profile shipped with a serve
        request) and only needs the decision re-evaluated against the
        board's characterization.  Pass ``device`` to reuse a
        characterization in hand (the streaming engine does — one
        characterization per run, thousands of retunes); otherwise the
        board is characterized through the normal cached path.

        Like :meth:`tune`, the result lands in ``last_tune_report`` so
        every streaming flip is explainable from a serializable
        :class:`~repro.obs.report.TuneReport`.
        """
        if profile.model.upper() not in ALL_MODELS:
            raise ModelError(
                f"unknown communication model {profile.model!r}; "
                f"expected one of {ALL_MODELS}",
                code="MODEL_UNKNOWN",
                details={"model": profile.model},
            )
        if device is None and board is None:
            raise ModelError(
                "retune needs a device characterization or a board",
                code="MODEL_NO_DEVICE",
                details={"profile": profile.workload_name},
            )
        timings: Dict[str, float] = {}
        start = time.perf_counter()
        with obs.span("retune", workload=profile.workload_name,
                      board=profile.board_name,
                      model=profile.model.upper(),
                      strict=strict) as retune_span:
            if device is None:
                try:
                    device = self._timed("characterize", timings,
                                         self.characterize, board)
                except ReproError as error:
                    if strict:
                        raise
                    obs.event("tune.stage_failed", stage="characterize",
                              code=error.code)
            if device is None:
                recommendation = keep_current(
                    profile.model,
                    "characterization failed",
                    caveats=(f"characterization failed — "
                             f"{error.code}: {error.message}",),
                )
            else:
                with obs.span("decide", workload=profile.workload_name):
                    recommendation = self._timed(
                        "decide", timings, decide, profile, device,
                        strict=strict)
            timings["retune"] = time.perf_counter() - start
            report = TuningReport(
                workload_name=profile.workload_name,
                board_name=profile.board_name,
                current_model=profile.model.upper(),
                profile=profile,
                device=device,
                cpu_cache_usage_pct=self._usage_pct(
                    profile_cpu_cache_usage, profile, strict=strict),
                gpu_cache_usage_pct=self._usage_pct(
                    profile_gpu_cache_usage, profile,
                    device.gpu_peak_throughput
                    if device is not None else None,
                    strict=strict),
                recommendation=recommendation,
            )
            retune_span.set(
                recommendation=recommendation.model.value,
                zone=int(recommendation.zone)
                if recommendation.zone is not None else None,
                degraded=recommendation.degraded,
            )
        obs.counter_inc("framework.retune")
        if recommendation.degraded:
            obs.counter_inc("framework.tune.degraded")
        self.last_tune_report = TuneReport.from_tuning(report,
                                                       timings_s=timings)
        return report

    def _tune_under_scope(self, workload: Workload, board: BoardConfig,
                          current_model: str, strict: bool,
                          timings: Dict[str, float], tune_start: float,
                          surrogate: Optional[
                              "CharacterizationSurrogate"] = None):
        """The tune flow body, running inside any deadline scope."""
        with obs.span("tune", workload=workload.name, board=board.name,
                      model=current_model.upper(), strict=strict) as tune_span:
            via_surrogate = False
            if strict:
                checkpoint("tune.characterize", workload=workload.name)
                device = None
                profile = None
                if surrogate is not None:
                    device, profile, via_surrogate = self._tune_via_surrogate(
                        surrogate, workload, board, current_model, timings)
                if device is None:
                    device = self._timed("characterize", timings,
                                         self.characterize, board)
                if profile is None:
                    checkpoint("tune.profile", workload=workload.name)
                    profile = self._timed(
                        "profile", timings, self.profile, workload, board,
                        model=current_model.upper(),
                    )
                checkpoint("tune.decide", workload=workload.name)
                with obs.span("decide", workload=workload.name):
                    start = time.perf_counter()
                    recommendation = decide(profile, device)
                    timings["decide"] = time.perf_counter() - start
            else:
                device, profile, recommendation = self._tune_degraded(
                    workload, board, current_model.upper(), timings
                )
            timings["tune"] = time.perf_counter() - tune_start
            report = TuningReport(
                workload_name=workload.name,
                board_name=board.name,
                current_model=current_model.upper(),
                profile=profile,
                device=device,
                cpu_cache_usage_pct=self._usage_pct(
                    profile_cpu_cache_usage, profile, strict=strict),
                gpu_cache_usage_pct=self._usage_pct(
                    profile_gpu_cache_usage, profile,
                    device.gpu_peak_throughput if device is not None else None,
                    strict=strict),
                recommendation=recommendation,
                via_surrogate=via_surrogate,
            )
            tune_span.set(
                recommendation=recommendation.model.value,
                zone=int(recommendation.zone)
                if recommendation.zone is not None else None,
                degraded=recommendation.degraded,
                via_surrogate=via_surrogate,
            )
        return report, recommendation

    def _tune_via_surrogate(self, surrogate: "CharacterizationSurrogate",
                            workload: Workload, board: BoardConfig,
                            current_model: str, timings: Dict[str, float]):
        """Attempt the surrogate fast path of one strict tune.

        Returns ``(device, profile, True)`` on a trusted answer.  On
        any refusal the device is ``None`` and the caller runs the full
        characterization; the profile (if already measured for the
        margin check) is reused rather than re-run.
        """
        prediction = self._timed(
            "surrogate", timings, surrogate.characterize, board,
            suite=self.suite,
        )
        if prediction is None:
            return None, None, False
        checkpoint("tune.profile", workload=workload.name)
        profile = self._timed(
            "profile", timings, self.profile, workload, board,
            model=current_model.upper(),
        )
        # The margin check needs the usages the decision will see; a
        # structurally bad profile fails strictly later in the full
        # flow, so here it simply withholds trust.
        try:
            gpu_usage = profile_gpu_cache_usage(
                profile, prediction.device.gpu_peak_throughput)
            cpu_usage = profile_cpu_cache_usage(profile)
            margin_ok = surrogate.decision_margin_ok(
                prediction, cpu_usage, gpu_usage)
        except ReproError:
            margin_ok = False
        if not margin_ok:
            surrogate.record_fallback("low_margin")
            return None, profile, False
        obs.counter_inc("surrogate.hit")
        return prediction.device, profile, True

    @staticmethod
    def _timed(stage: str, timings: Dict[str, float], fn, *args, **kwargs):
        """Run one tune stage, recording its wall-clock under ``stage``."""
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            timings[stage] = time.perf_counter() - start

    @staticmethod
    def _usage_pct(metric, profile, *args, strict: bool) -> float:
        """Evaluate a cache-usage metric, degrading to NaN when inputs
        are absent or (in non-strict mode) inconsistent."""
        if profile is None or any(a is None for a in args):
            return float("nan")
        try:
            return metric(profile, *args)
        except ReproError:
            if strict:
                raise
            return float("nan")

    def _deadline_expired_caveat(self, stage: str) -> Optional[str]:
        """A ``DEADLINE_EXCEEDED`` caveat when the ambient budget is
        already gone — the degraded flow skips the stage outright
        instead of starting work it cannot finish."""
        deadline = active_deadline()
        if deadline is None or not deadline.expired():
            return None
        obs.event("tune.stage_skipped", stage=stage,
                  code="DEADLINE_EXCEEDED")
        return (f"{stage} skipped — DEADLINE_EXCEEDED: budget of "
                f"{deadline.budget_s:.3f}s exhausted")

    def _tune_degraded(self, workload: Workload, board: BoardConfig,
                       current_model: str,
                       timings: Optional[Dict[str, float]] = None):
        """The ``strict=False`` flow: absorb structured errors stage by
        stage and fall back to :func:`keep_current` when a stage dies.

        An open circuit breaker or an exhausted ambient deadline shows
        up here as just another coded failure (``BREAKER_OPEN``,
        ``DEADLINE_EXCEEDED``): the stage is shed or skipped and the
        answer is an immediate conservative ``KEEP_CURRENT``.
        """
        timings = {} if timings is None else timings
        caveats = []
        device = None
        profile = None
        skipped = self._deadline_expired_caveat("characterization")
        if skipped is not None:
            caveats.append(skipped)
        else:
            try:
                device = self._timed(
                    "characterize", timings, self.characterize, board,
                    retries=self.DEGRADED_CHARACTERIZE_RETRIES,
                    retry_policy=self.retry_policy,
                )
            except ReproError as error:
                obs.event("tune.stage_failed", stage="characterize",
                          code=error.code)
                caveats.append(f"characterization failed — {error.code}: "
                               f"{error.message}")
        if device is not None:
            skipped = self._deadline_expired_caveat("profiling")
            if skipped is not None:
                caveats.append(skipped)
            else:
                try:
                    profile = self._timed(
                        "profile", timings, self.profile,
                        workload, board, model=current_model,
                    )
                except ReproError as error:
                    obs.event("tune.stage_failed", stage="profile",
                              code=error.code)
                    caveats.append(f"profiling failed — {error.code}: "
                                   f"{error.message}")
        if device is not None and profile is not None:
            with obs.span("decide", workload=workload.name):
                recommendation = self._timed(
                    "decide", timings, decide, profile, device, strict=False,
                )
            return device, profile, recommendation
        recommendation = keep_current(
            current_model,
            caveats[0] if len(caveats) == 1 else "multiple input stages failed",
            caveats=caveats,
            device=device,
        )
        return device, profile, recommendation

    def tune_many(self, workloads: Sequence[Workload], board: BoardConfig,
                  current_model: str = "SC", strict: bool = True,
                  deadline_s: Optional[float] = None,
                  surrogate: Optional["CharacterizationSurrogate"] = None,
                  backend=None,
                  ) -> List[TuningReport]:
        """Tune several applications against one board in one call.

        This is the paper's characterize-once / tune-many workflow as
        an API: the device characterization (the expensive stage) runs
        at most once — straight from the suite's cache when available —
        and each workload adds only its own profiling run.  Reports
        keep the input order.

        ``deadline_s`` bounds the *whole batch*.  Strict mode raises
        ``DEADLINE_EXCEEDED`` at the first item boundary past the
        budget, with the completed/total counts in ``details``;
        degraded mode instead answers every remaining workload with an
        immediate conservative ``KEEP_CURRENT`` carrying a
        ``DEADLINE_EXCEEDED`` caveat, so the report list stays complete
        and ordered.
        """
        with obs.span("tune_many", board=board.name, workloads=len(workloads)):
            with contextlib.ExitStack() as stack:
                stack.enter_context(self._use_backend(backend))
                if surrogate is None:
                    surrogate = self.surrogate
                if not self.backend.is_analytic:
                    surrogate = None
                if deadline_s is not None:
                    stack.enter_context(
                        deadline_scope(Deadline.after(deadline_s))
                    )
                return self._tune_many(workloads, board, current_model,
                                       strict, surrogate)

    def _tune_many(self, workloads: Sequence[Workload], board: BoardConfig,
                   current_model: str, strict: bool,
                   surrogate: Optional["CharacterizationSurrogate"] = None
                   ) -> List[TuningReport]:
        if strict:
            # Shared by every report below — unless the surrogate's
            # trust region covers the board, in which case the per-item
            # fast path answers from probe points and pre-paying the
            # full characterization would forfeit exactly that saving.
            if surrogate is None or not surrogate.covers(board):
                self.characterize(board)
        else:
            # Degraded mode absorbs a failed characterization per
            # report; warming the suite cache is best-effort only.
            try:
                self.characterize(
                    board, retries=self.DEGRADED_CHARACTERIZE_RETRIES,
                    retry_policy=self.retry_policy,
                )
            except ReproError:
                pass
        deadline = active_deadline()
        reports: List[TuningReport] = []
        for index, workload in enumerate(workloads):
            if deadline is not None:
                if strict:
                    deadline.check("tune_many.item",
                                   completed_reports=index,
                                   total=len(workloads))
                elif deadline.expired():
                    obs.event("tune_many.deadline_shed",
                              completed_reports=index, total=len(workloads))
                    reports.extend(
                        self._deadline_shed_report(w, board, current_model,
                                                   deadline)
                        for w in workloads[index:]
                    )
                    break
            reports.append(
                self.tune(workload, board, current_model=current_model,
                          strict=strict, surrogate=surrogate)
            )
        return reports

    def _deadline_shed_report(self, workload: Workload, board: BoardConfig,
                              current_model: str,
                              deadline: Deadline) -> TuningReport:
        """An immediate conservative answer for a workload the batch
        deadline left no budget for (degraded mode only)."""
        caveat = (f"tuning skipped — DEADLINE_EXCEEDED: batch budget of "
                  f"{deadline.budget_s:.3f}s exhausted")
        recommendation = keep_current(
            current_model,
            caveat,
            caveats=[caveat],
            device=self.suite._cache.get(board.name),
        )
        obs.counter_inc("framework.tune.degraded")
        return TuningReport(
            workload_name=workload.name,
            board_name=board.name,
            current_model=current_model.upper(),
            profile=None,
            device=self.suite._cache.get(board.name),
            cpu_cache_usage_pct=float("nan"),
            gpu_cache_usage_pct=float("nan"),
            recommendation=recommendation,
        )

    def compare_models(self, workload: Workload, board: BoardConfig,
                       backend=None) -> Dict[str, object]:
        """Measure the workload under all three models (validation runs,
        Table III / Table V)."""
        from repro.comm.base import get_model

        resolved = get_backend(backend) if backend is not None else self.backend
        with obs.span("compare_models", workload=workload.name,
                      board=board.name, backend=resolved.name):
            soc = SoC(board, backend=resolved)
            return {model: get_model(model).execute(workload, soc)
                    for model in ALL_MODELS}
