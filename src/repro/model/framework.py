"""The user-facing framework façade (paper Fig. 2, end to end).

Typical use::

    from repro import Framework, get_board
    from repro.apps.shwfs import build_shwfs_workload

    framework = Framework()
    report = framework.tune(build_shwfs_workload(), get_board("xavier"),
                            current_model="SC")
    print(report.recommendation.model, report.recommendation.estimated_speedup_pct)

``tune`` characterizes the device with the micro-benchmarks (cached per
board), profiles the application under its current communication model,
computes the cache-usage metrics, runs the decision flow, and returns
everything in one :class:`TuningReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from typing import TYPE_CHECKING

from repro.errors import ModelError
from repro.kernels.workload import Workload
from repro.model.decision import Recommendation, decide

if TYPE_CHECKING:  # avoid a circular import with repro.microbench
    from repro.microbench.suite import MicrobenchmarkSuite
from repro.model.device import DeviceCharacterization
from repro.profiling.counters import AppProfile
from repro.profiling.metrics import profile_cpu_cache_usage, profile_gpu_cache_usage
from repro.profiling.profiler import Profiler
from repro.soc.board import BoardConfig
from repro.soc.soc import ALL_MODELS, SoC


@dataclass(frozen=True)
class TuningReport:
    """Everything the framework learned about one application on one
    board: the Table II / Table IV row plus the recommendation."""

    workload_name: str
    board_name: str
    current_model: str
    profile: AppProfile
    device: DeviceCharacterization
    cpu_cache_usage_pct: float
    gpu_cache_usage_pct: float
    recommendation: Recommendation

    @property
    def kernel_time_s(self) -> float:
        """Profiled kernel time (Table II "Kernel times" column)."""
        return self.profile.kernel_runtime_s

    @property
    def copy_time_s(self) -> float:
        """Profiled copy time per kernel (Table II column)."""
        return self.profile.copy_time_s


class Framework:
    """Device characterization + profiling + recommendation."""

    def __init__(self, suite: Optional["MicrobenchmarkSuite"] = None) -> None:
        if suite is None:
            # Imported here to keep repro.model importable from the
            # micro-benchmarks without a cycle.
            from repro.microbench.suite import MicrobenchmarkSuite

            suite = MicrobenchmarkSuite()
        self.suite = suite

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------

    def characterize(self, board: BoardConfig,
                     force: bool = False) -> DeviceCharacterization:
        """Run (or reuse) the micro-benchmark characterization."""
        return self.suite.characterize(board, force=force)

    def profile(self, workload: Workload, board: BoardConfig,
                model: str = "SC") -> AppProfile:
        """Profile the application under one communication model."""
        soc = SoC(board)
        return Profiler(soc).profile(workload, model=model)

    # ------------------------------------------------------------------
    # the full flow
    # ------------------------------------------------------------------

    def tune(self, workload: Workload, board: BoardConfig,
             current_model: str = "SC") -> TuningReport:
        """Run the complete Fig-2 flow for one application."""
        if current_model.upper() not in ALL_MODELS:
            raise ModelError(
                f"unknown communication model {current_model!r}; "
                f"expected one of {ALL_MODELS}"
            )
        device = self.characterize(board)
        profile = self.profile(workload, board, model=current_model.upper())
        recommendation = decide(profile, device)
        return TuningReport(
            workload_name=workload.name,
            board_name=board.name,
            current_model=current_model.upper(),
            profile=profile,
            device=device,
            cpu_cache_usage_pct=profile_cpu_cache_usage(profile),
            gpu_cache_usage_pct=profile_gpu_cache_usage(
                profile, device.gpu_peak_throughput
            ),
            recommendation=recommendation,
        )

    def compare_models(self, workload: Workload, board: BoardConfig) -> Dict[str, object]:
        """Measure the workload under all three models (validation runs,
        Table III / Table V)."""
        from repro.comm.base import get_model

        soc = SoC(board)
        return {model: get_model(model).execute(workload, soc) for model in ALL_MODELS}
