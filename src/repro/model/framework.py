"""The user-facing framework façade (paper Fig. 2, end to end).

Typical use::

    from repro import Framework, get_board
    from repro.apps.shwfs import build_shwfs_workload

    framework = Framework()
    report = framework.tune(build_shwfs_workload(), get_board("xavier"),
                            current_model="SC")
    print(report.recommendation.model, report.recommendation.estimated_speedup_pct)

``tune`` characterizes the device with the micro-benchmarks (cached per
board), profiles the application under its current communication model,
computes the cache-usage metrics, runs the decision flow, and returns
everything in one :class:`TuningReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro import obs
from repro.errors import ModelError, ReproError
from repro.obs.report import TuneReport
from repro.kernels.workload import Workload
from repro.model.decision import Recommendation, decide, keep_current

if TYPE_CHECKING:  # avoid a circular import with repro.microbench
    from repro.microbench.suite import MicrobenchmarkSuite
from repro.model.device import DeviceCharacterization
from repro.profiling.counters import AppProfile
from repro.profiling.metrics import profile_cpu_cache_usage, profile_gpu_cache_usage
from repro.profiling.profiler import Profiler
from repro.soc.board import BoardConfig
from repro.soc.soc import ALL_MODELS, SoC


@dataclass(frozen=True)
class TuningReport:
    """Everything the framework learned about one application on one
    board: the Table II / Table IV row plus the recommendation.

    A degraded-mode run (``tune(..., strict=False)`` on bad inputs) may
    carry ``profile=None`` and/or ``device=None``; the recommendation's
    ``caveats`` explain what failed.
    """

    workload_name: str
    board_name: str
    current_model: str
    profile: Optional[AppProfile]
    device: Optional[DeviceCharacterization]
    cpu_cache_usage_pct: float
    gpu_cache_usage_pct: float
    recommendation: Recommendation

    @property
    def kernel_time_s(self) -> float:
        """Profiled kernel time (Table II "Kernel times" column)."""
        return self.profile.kernel_runtime_s if self.profile else float("nan")

    @property
    def copy_time_s(self) -> float:
        """Profiled copy time per kernel (Table II column)."""
        return self.profile.copy_time_s if self.profile else float("nan")

    @property
    def degraded(self) -> bool:
        """True when any input was missing and the recommendation is a
        conservative fallback."""
        return self.recommendation.degraded


class Framework:
    """Device characterization + profiling + recommendation."""

    def __init__(self, suite: Optional["MicrobenchmarkSuite"] = None,
                 cache_dir: Optional[str] = None) -> None:
        if suite is None:
            # Imported here to keep repro.model importable from the
            # micro-benchmarks without a cycle.
            from repro.microbench.suite import MicrobenchmarkSuite

            suite = MicrobenchmarkSuite(cache_dir=cache_dir)
        elif cache_dir is not None and suite.cache is None:
            from repro.perf.cache import CharacterizationCache

            suite.cache = CharacterizationCache(cache_dir)
        self.suite = suite
        #: The :class:`~repro.obs.report.TuneReport` of the most recent
        #: :meth:`tune` call (``repro tune --report`` serializes it).
        self.last_tune_report: Optional[TuneReport] = None

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------

    def characterize(self, board: BoardConfig, force: bool = False,
                     retries: int = 0) -> DeviceCharacterization:
        """Run (or reuse) the micro-benchmark characterization.

        ``retries`` bounds the re-runs attempted when a sweep fails to
        locate a threshold (see
        :meth:`repro.microbench.suite.MicrobenchmarkSuite.characterize`).
        """
        with obs.span("characterize", board=board.name, force=force):
            return self.suite.characterize(board, force=force, retries=retries)

    def profile(self, workload: Workload, board: BoardConfig,
                model: str = "SC") -> AppProfile:
        """Profile the application under one communication model."""
        with obs.span("profile", workload=workload.name, board=board.name,
                      model=model):
            soc = SoC(board)
            return Profiler(soc).profile(workload, model=model)

    # ------------------------------------------------------------------
    # the full flow
    # ------------------------------------------------------------------

    #: Bounded retry budget for degraded-mode characterization.
    DEGRADED_CHARACTERIZE_RETRIES = 2

    def tune(self, workload: Workload, board: BoardConfig,
             current_model: str = "SC", strict: bool = True) -> TuningReport:
        """Run the complete Fig-2 flow for one application.

        ``strict=True`` (default) preserves the raising behaviour: any
        bad input aborts with a structured :class:`ReproError`.  With
        ``strict=False`` the flow degrades instead of raising —
        characterization gets a bounded retry budget, and a failure of
        any stage yields a conservative ``KEEP_CURRENT`` recommendation
        with ``confidence=LOW`` and machine-readable ``caveats``.
        """
        if current_model.upper() not in ALL_MODELS:
            raise ModelError(
                f"unknown communication model {current_model!r}; "
                f"expected one of {ALL_MODELS}",
                code="MODEL_UNKNOWN",
                details={"model": current_model},
            )
        timings: Dict[str, float] = {}
        tune_start = time.perf_counter()
        with obs.span("tune", workload=workload.name, board=board.name,
                      model=current_model.upper(), strict=strict) as tune_span:
            if strict:
                device = self._timed("characterize", timings,
                                     self.characterize, board)
                profile = self._timed(
                    "profile", timings, self.profile, workload, board,
                    model=current_model.upper(),
                )
                with obs.span("decide", workload=workload.name):
                    start = time.perf_counter()
                    recommendation = decide(profile, device)
                    timings["decide"] = time.perf_counter() - start
            else:
                device, profile, recommendation = self._tune_degraded(
                    workload, board, current_model.upper(), timings
                )
            timings["tune"] = time.perf_counter() - tune_start
            report = TuningReport(
                workload_name=workload.name,
                board_name=board.name,
                current_model=current_model.upper(),
                profile=profile,
                device=device,
                cpu_cache_usage_pct=self._usage_pct(
                    profile_cpu_cache_usage, profile, strict=strict),
                gpu_cache_usage_pct=self._usage_pct(
                    profile_gpu_cache_usage, profile,
                    device.gpu_peak_throughput if device is not None else None,
                    strict=strict),
                recommendation=recommendation,
            )
            tune_span.set(
                recommendation=recommendation.model.value,
                zone=int(recommendation.zone)
                if recommendation.zone is not None else None,
                degraded=recommendation.degraded,
            )
        obs.counter_inc("framework.tune")
        if recommendation.degraded:
            obs.counter_inc("framework.tune.degraded")
        self.last_tune_report = TuneReport.from_tuning(report,
                                                       timings_s=timings)
        return report

    @staticmethod
    def _timed(stage: str, timings: Dict[str, float], fn, *args, **kwargs):
        """Run one tune stage, recording its wall-clock under ``stage``."""
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            timings[stage] = time.perf_counter() - start

    @staticmethod
    def _usage_pct(metric, profile, *args, strict: bool) -> float:
        """Evaluate a cache-usage metric, degrading to NaN when inputs
        are absent or (in non-strict mode) inconsistent."""
        if profile is None or any(a is None for a in args):
            return float("nan")
        try:
            return metric(profile, *args)
        except ReproError:
            if strict:
                raise
            return float("nan")

    def _tune_degraded(self, workload: Workload, board: BoardConfig,
                       current_model: str,
                       timings: Optional[Dict[str, float]] = None):
        """The ``strict=False`` flow: absorb structured errors stage by
        stage and fall back to :func:`keep_current` when a stage dies."""
        timings = {} if timings is None else timings
        caveats = []
        device = None
        profile = None
        try:
            device = self._timed(
                "characterize", timings, self.characterize,
                board, retries=self.DEGRADED_CHARACTERIZE_RETRIES,
            )
        except ReproError as error:
            obs.event("tune.stage_failed", stage="characterize",
                      code=error.code)
            caveats.append(f"characterization failed — {error.code}: "
                           f"{error.message}")
        if device is not None:
            try:
                profile = self._timed(
                    "profile", timings, self.profile,
                    workload, board, model=current_model,
                )
            except ReproError as error:
                obs.event("tune.stage_failed", stage="profile",
                          code=error.code)
                caveats.append(f"profiling failed — {error.code}: "
                               f"{error.message}")
        if device is not None and profile is not None:
            with obs.span("decide", workload=workload.name):
                recommendation = self._timed(
                    "decide", timings, decide, profile, device, strict=False,
                )
            return device, profile, recommendation
        recommendation = keep_current(
            current_model,
            caveats[0] if len(caveats) == 1 else "multiple input stages failed",
            caveats=caveats,
            device=device,
        )
        return device, profile, recommendation

    def tune_many(self, workloads: Sequence[Workload], board: BoardConfig,
                  current_model: str = "SC",
                  strict: bool = True) -> List[TuningReport]:
        """Tune several applications against one board in one call.

        This is the paper's characterize-once / tune-many workflow as
        an API: the device characterization (the expensive stage) runs
        at most once — straight from the suite's cache when available —
        and each workload adds only its own profiling run.  Reports
        keep the input order.
        """
        with obs.span("tune_many", board=board.name, workloads=len(workloads)):
            return self._tune_many(workloads, board, current_model, strict)

    def _tune_many(self, workloads: Sequence[Workload], board: BoardConfig,
                   current_model: str, strict: bool) -> List[TuningReport]:
        if strict:
            self.characterize(board)  # shared by every report below
        else:
            # Degraded mode absorbs a failed characterization per
            # report; warming the suite cache is best-effort only.
            try:
                self.characterize(
                    board, retries=self.DEGRADED_CHARACTERIZE_RETRIES
                )
            except ReproError:
                pass
        return [
            self.tune(workload, board, current_model=current_model,
                      strict=strict)
            for workload in workloads
        ]

    def compare_models(self, workload: Workload, board: BoardConfig) -> Dict[str, object]:
        """Measure the workload under all three models (validation runs,
        Table III / Table V)."""
        from repro.comm.base import get_model

        with obs.span("compare_models", workload=workload.name,
                      board=board.name):
            soc = SoC(board)
            return {model: get_model(model).execute(workload, soc)
                    for model in ALL_MODELS}
