"""Threshold and zone extraction from micro-benchmark-2 sweeps.

MB2 sweeps the accessed fraction of a fixed array and measures the GPU
LL-L1 throughput and kernel time under ZC and SC.  The paper extracts:

- ``GPU_Cache_Threshold`` — the cache usage (in % of the peak LL-L1
  throughput) at the *last comparable point*: the largest fraction at
  which ZC and SC throughput still match within tolerance (Fig 3:
  16.2 % on Xavier, Fig 6: 2.7 % on TX2).
- On I/O-coherent devices, a **second zone** up to the usage where the
  ZC/SC *runtime* difference reaches 200 % (Fig 3: 57.1 % on Xavier);
  inside it ZC may still win overall thanks to eliminated copies and
  task overlap.

The same machinery extracts ``CPU_Cache_Threshold`` from the CPU-side
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import MicrobenchmarkError

#: ZC and SC throughputs are "comparable" within this relative tolerance.
COMPARABLE_TOLERANCE = 0.10

#: Zone-2 upper bound: ZC runtime up to (1 + this) times the SC runtime.
ZONE2_RUNTIME_RATIO = 3.0  # "performance difference below 200 %"


@dataclass(frozen=True)
class SweepPoint:
    """One point of an MB2 sweep."""

    fraction: float
    zc_throughput: float
    sc_throughput: float
    zc_time_s: float
    sc_time_s: float

    @property
    def throughput_comparable(self) -> bool:
        """ZC throughput within tolerance of SC throughput."""
        if self.sc_throughput <= 0:
            return self.zc_throughput <= 0
        return abs(self.zc_throughput / self.sc_throughput - 1.0) <= COMPARABLE_TOLERANCE

    @property
    def runtime_ratio(self) -> float:
        """ZC time over SC time."""
        if self.sc_time_s <= 0:
            raise MicrobenchmarkError("SC time must be positive")
        return self.zc_time_s / self.sc_time_s


@dataclass(frozen=True)
class ThresholdAnalysis:
    """Thresholds and zones extracted from one sweep."""

    threshold_pct: float
    threshold_fraction: float
    zone2_pct: Optional[float]
    zone2_fraction: Optional[float]
    peak_throughput: float
    points: Sequence[SweepPoint]

    def zone_of(self, cache_usage_pct: float) -> int:
        """Recommendation zone (1, 2 or 3) of a cache-usage value.

        Zone 1: below the threshold — ZC matches SC.
        Zone 2: up to the 200 %-difference bound — ZC may still win.
        Zone 3: beyond — the GPU is severely bottlenecked, use SC/UM.
        Devices without a second zone collapse zones 2 and 3.
        """
        if cache_usage_pct < 0:
            raise MicrobenchmarkError("cache usage cannot be negative")
        if cache_usage_pct <= self.threshold_pct:
            return 1
        if self.zone2_pct is not None and cache_usage_pct <= self.zone2_pct:
            return 2
        return 3


def analyze_sweep(
    points: Sequence[SweepPoint],
    peak_throughput: float,
    detect_zone2: bool = False,
) -> ThresholdAnalysis:
    """Extract thresholds from an MB2 sweep.

    Args:
        points: sweep points ordered by increasing fraction.
        peak_throughput: the device's peak LL-L1 throughput under SC
            (MB1) used to normalize usage percentages.
        detect_zone2: look for the 200 %-runtime-difference bound
            (meaningful on I/O-coherent devices).
    """
    if len(points) < 2:
        raise MicrobenchmarkError(
            f"a sweep needs at least 2 points to locate a threshold, got {len(points)}"
        )
    if peak_throughput <= 0:
        raise MicrobenchmarkError("peak throughput must be positive")
    fractions = [p.fraction for p in points]
    if any(b <= a for a, b in zip(fractions, fractions[1:])):
        raise MicrobenchmarkError("sweep points must have increasing fractions")

    # The threshold is the last comparable point (the paper: "the last
    # comparable value of the throughput over the peak cache throughput").
    threshold_point = points[0]
    for point in points:
        if point.throughput_comparable:
            threshold_point = point
        else:
            break
    threshold_pct = 100.0 * threshold_point.sc_throughput / peak_throughput

    zone2_pct = None
    zone2_fraction = None
    if detect_zone2:
        last_inside = None
        for point in points:
            if point.runtime_ratio <= ZONE2_RUNTIME_RATIO:
                last_inside = point
            else:
                break
        if last_inside is not None and last_inside.fraction > threshold_point.fraction:
            zone2_pct = min(100.0, 100.0 * last_inside.sc_throughput / peak_throughput)
            zone2_fraction = last_inside.fraction

    return ThresholdAnalysis(
        threshold_pct=min(100.0, threshold_pct),
        threshold_fraction=threshold_point.fraction,
        zone2_pct=zone2_pct,
        zone2_fraction=zone2_fraction,
        peak_throughput=peak_throughput,
        points=list(points),
    )
