"""Device characterization: what the micro-benchmarks learn about a board.

This is the device-side input of the Fig-2 decision flow.  It is
produced by :class:`repro.microbench.suite.MicrobenchmarkSuite` and is
application-independent: characterize a board once, tune any number of
applications against it (exactly the workflow the paper proposes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ModelError
from repro.model.thresholds import ThresholdAnalysis


@dataclass(frozen=True)
class DeviceCharacterization:
    """Micro-benchmark-extracted characteristics of one board."""

    board_name: str
    io_coherent: bool

    #: GPU LL-L1 peak throughput per communication model (Table I),
    #: keyed by "SC" / "UM" / "ZC", in bytes/s.
    gpu_cache_throughput: Dict[str, float]

    #: CPU LLC peak throughput per model, same keys.
    cpu_cache_throughput: Dict[str, float]

    #: MB2 analyses.
    gpu_thresholds: ThresholdAnalysis
    cpu_thresholds: ThresholdAnalysis

    #: MB3 device-level caps for eqns (3)-(4).
    sc_zc_max_speedup: float
    zc_sc_max_speedup: float

    def __post_init__(self) -> None:
        for name, table in (
            ("gpu_cache_throughput", self.gpu_cache_throughput),
            ("cpu_cache_throughput", self.cpu_cache_throughput),
        ):
            missing = {"SC", "ZC"} - set(table)
            if missing:
                raise ModelError(f"{name} missing models: {sorted(missing)}")
            for model, value in table.items():
                if value <= 0:
                    raise ModelError(f"{name}[{model}] must be positive, got {value}")
        if self.sc_zc_max_speedup <= 0 or self.zc_sc_max_speedup <= 0:
            raise ModelError("max speedups must be positive")

    @property
    def gpu_peak_throughput(self) -> float:
        """Peak LL-L1 GPU throughput (SC) — eqn (2) normalizer."""
        return self.gpu_cache_throughput["SC"]

    @property
    def gpu_zc_throughput(self) -> float:
        """GPU throughput on the zero-copy path."""
        return self.gpu_cache_throughput["ZC"]

    @property
    def gpu_threshold_pct(self) -> float:
        """``GPU_Cache_Threshold`` in percent."""
        return self.gpu_thresholds.threshold_pct

    @property
    def cpu_threshold_pct(self) -> float:
        """``CPU_Cache_Threshold`` in percent."""
        return self.cpu_thresholds.threshold_pct

    @property
    def gpu_zone2_pct(self) -> float:
        """Upper bound of the conditional zone (equals the threshold on
        devices without one)."""
        if self.gpu_thresholds.zone2_pct is not None:
            return self.gpu_thresholds.zone2_pct
        return self.gpu_thresholds.threshold_pct

    @property
    def zc_sc_throughput_ratio(self) -> float:
        """How much slower the GPU cache path is under ZC (e.g. ~77 on
        the TX2, ~7 on Xavier)."""
        return self.gpu_cache_throughput["SC"] / self.gpu_cache_throughput["ZC"]
