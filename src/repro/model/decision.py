"""The Fig-2 decision flow.

Given an application profile (cache usages, task times) and a device
characterization (thresholds, zones, max speedups), recommend the
communication model and estimate the potential speedup of switching:

1. GPU cache usage above the device's zone-2 bound → the GPU is
   severely bottlenecked without its cache: **SC/UM**.
2. GPU cache usage between the threshold and the zone-2 bound (only
   I/O-coherent devices have this zone) → **ZC conditionally**: the
   eliminated copies and task overlap must outweigh the (bounded)
   kernel slowdown.
3. GPU cache usage below the threshold:
   a. CPU cache usage above its threshold → ZC only pays on devices
      whose coherence keeps the CPU caches on (**ZC** on Xavier-class,
      **SC/UM** otherwise);
   b. both usages low → **ZC**: at least equivalent performance and
      lower energy (no copy traffic).

If the application is cache-dependent and already on SC, the framework
suggests no change (paper §III-A).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ModelError, ReproError
from repro.model.device import DeviceCharacterization
from repro.model.speedup import SpeedupEstimate, sc_to_zc_speedup, zc_to_sc_speedup
from repro.profiling.counters import AppProfile
from repro.profiling.metrics import profile_cpu_cache_usage, profile_gpu_cache_usage

#: Cache usage is a percentage of a peak measured by MB1; a profile
#: reporting meaningfully more than 100 % is physically impossible and
#: indicates mis-reported counters.
_MAX_PLAUSIBLE_USAGE_PCT = 120.0


class RecommendedModel(enum.Enum):
    """What the framework suggests."""

    ZERO_COPY = "ZC"
    STANDARD_COPY_OR_UM = "SC/UM"
    ZERO_COPY_CONDITIONAL = "ZC (zone 2)"
    NO_CHANGE = "keep current"
    #: Alias for :attr:`NO_CHANGE` — the degraded-mode fallback name.
    KEEP_CURRENT = "keep current"


class Confidence(enum.Enum):
    """How much the framework trusts a recommendation.

    ``HIGH`` — clean inputs, full decision flow.
    ``MEDIUM`` — the flow completed but some input needed a retry or a
    non-fatal repair (see the recommendation's ``caveats``).
    ``LOW`` — degraded mode: inputs were missing or invalid and the
    framework fell back to the conservative ``KEEP_CURRENT``.
    """

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


class Zone(enum.IntEnum):
    """GPU cache-usage zone (Fig. 3's three regions)."""

    BELOW_THRESHOLD = 1
    CONDITIONAL = 2
    BOTTLENECKED = 3


@dataclass(frozen=True)
class Recommendation:
    """Outcome of the decision flow for one application on one board.

    In degraded mode (``decide(..., strict=False)`` on bad inputs) the
    numeric fields may be NaN and ``zone`` ``None``; ``confidence`` is
    then :attr:`Confidence.LOW` and ``caveats`` lists the structured
    error codes that forced the fallback.
    """

    model: RecommendedModel
    zone: Optional[Zone]
    cpu_cache_usage_pct: float
    gpu_cache_usage_pct: float
    cpu_threshold_pct: float
    gpu_threshold_pct: float
    gpu_zone2_pct: float
    reason: str
    estimate: Optional[SpeedupEstimate] = None
    energy_motivated: bool = False
    confidence: Confidence = Confidence.HIGH
    caveats: Tuple[str, ...] = ()

    @property
    def suggests_switch(self) -> bool:
        """True when the recommendation differs from the current model."""
        return self.model is not RecommendedModel.NO_CHANGE

    @property
    def degraded(self) -> bool:
        """True when this is a degraded-mode fallback recommendation."""
        return self.confidence is Confidence.LOW

    @property
    def estimated_speedup_pct(self) -> Optional[float]:
        """Predicted "up to X %" speedup of following the advice."""
        return self.estimate.percent if self.estimate is not None else None


def keep_current(
    current_model: str,
    reason: str,
    caveats: Sequence[str] = (),
    device: Optional[DeviceCharacterization] = None,
) -> Recommendation:
    """The conservative degraded-mode fallback recommendation.

    When the framework cannot trust its inputs it recommends keeping
    the application's current communication model — switching on bad
    data risks a large regression, staying put risks only a missed
    improvement.
    """
    nan = float("nan")
    return Recommendation(
        model=RecommendedModel.KEEP_CURRENT,
        zone=None,
        cpu_cache_usage_pct=nan,
        gpu_cache_usage_pct=nan,
        cpu_threshold_pct=device.cpu_threshold_pct if device else nan,
        gpu_threshold_pct=device.gpu_threshold_pct if device else nan,
        gpu_zone2_pct=device.gpu_zone2_pct if device else nan,
        reason=(f"degraded mode: {reason} — keeping the current "
                f"{current_model.upper()} model"),
        confidence=Confidence.LOW,
        caveats=tuple(caveats),
    )


def decide(
    profile: AppProfile,
    device: DeviceCharacterization,
    strict: bool = True,
) -> Recommendation:
    """Run the Fig-2 decision flow.

    With ``strict=True`` (the default, today's behaviour) inconsistent
    inputs raise structured errors.  With ``strict=False`` any
    :class:`~repro.errors.ReproError` raised by the flow is absorbed
    into a conservative :func:`keep_current` recommendation whose
    ``caveats`` carry the error codes.
    """
    if strict:
        return _decide(profile, device)
    try:
        return _decide(profile, device)
    except ReproError as error:
        return keep_current(
            profile.model,
            f"decision flow failed ({error.code})",
            caveats=(f"{error.code}: {error.message}",),
            device=device,
        )


def _decide(
    profile: AppProfile,
    device: DeviceCharacterization,
) -> Recommendation:
    if profile.board_name != device.board_name:
        raise ModelError(
            f"profile is for board {profile.board_name!r} but the "
            f"characterization is for {device.board_name!r}",
            code="MODEL_BOARD_MISMATCH",
            details={"profile_board": profile.board_name,
                     "device_board": device.board_name},
        )
    current = profile.model.upper()
    cpu_usage = profile_cpu_cache_usage(profile)
    gpu_usage = profile_gpu_cache_usage(profile, device.gpu_peak_throughput)
    for side, usage in (("cpu", cpu_usage), ("gpu", gpu_usage)):
        if not math.isfinite(usage) or usage > _MAX_PLAUSIBLE_USAGE_PCT:
            raise ModelError(
                f"{side} cache usage {usage:.1f} % is implausible (peak "
                f"throughput is 100 %); the profile counters are "
                f"mis-reported",
                code="GUARD_CACHE_USAGE",
                details={"side": side, "usage_pct": usage,
                         "limit_pct": _MAX_PLAUSIBLE_USAGE_PCT},
            )
    zone = Zone(device.gpu_thresholds.zone_of(gpu_usage))

    common = dict(
        zone=zone,
        cpu_cache_usage_pct=cpu_usage,
        gpu_cache_usage_pct=gpu_usage,
        cpu_threshold_pct=device.cpu_threshold_pct,
        gpu_threshold_pct=device.gpu_threshold_pct,
        gpu_zone2_pct=device.gpu_zone2_pct,
    )

    gpu_dependent = zone is not Zone.BELOW_THRESHOLD
    cpu_dependent = cpu_usage > device.cpu_threshold_pct

    if zone is Zone.BOTTLENECKED or (gpu_dependent and zone is not Zone.CONDITIONAL):
        return _recommend_copy_models(profile, device, current, common,
                                      "GPU cache usage exceeds the device zones; "
                                      "zero-copy would bottleneck the kernel")
    if zone is Zone.CONDITIONAL:
        if current in ("SC", "UM"):
            estimate = _estimate_sc_to_zc(profile, device)
            return Recommendation(
                model=RecommendedModel.ZERO_COPY_CONDITIONAL,
                reason=(
                    "GPU cache usage falls in the device's second zone: "
                    "zero-copy may still win if copy elimination and task "
                    "overlap recover the bounded kernel slowdown"
                ),
                estimate=estimate,
                **common,
            )
        return Recommendation(
            model=RecommendedModel.NO_CHANGE,
            reason=(
                "already on zero-copy inside the conditional zone; the "
                "kernel slowdown is bounded and the copies stay eliminated"
            ),
            **common,
        )
    # GPU cache usage is low.
    if cpu_dependent:
        if device.io_coherent:
            return _recommend_zero_copy(profile, device, current, common,
                                        "CPU-cache-dependent, but the device's "
                                        "hardware I/O coherence keeps the CPU "
                                        "caches enabled under zero-copy")
        return _recommend_copy_models(profile, device, current, common,
                                      "CPU-cache-dependent and zero-copy "
                                      "disables the CPU caches on this device")
    return _recommend_zero_copy(
        profile, device, current, common,
        "both cache usages are low: zero-copy gives at least equivalent "
        "performance and saves the copy energy",
        energy_motivated=True,
    )


def _estimate_sc_to_zc(
    profile: AppProfile, device: DeviceCharacterization
) -> Optional[SpeedupEstimate]:
    if profile.total_runtime_s <= 0 or profile.kernel_runtime_s <= 0:
        return None
    if profile.copy_time_s >= profile.total_runtime_s:
        return None
    return sc_to_zc_speedup(
        sc_runtime_s=profile.total_runtime_s,
        copy_time_s=profile.copy_time_s,
        cpu_time_s=profile.cpu_time_s,
        gpu_time_s=profile.kernel_runtime_s,
        max_speedup=device.sc_zc_max_speedup,
    )


def _estimate_zc_to_sc(
    profile: AppProfile, device: DeviceCharacterization
) -> Optional[SpeedupEstimate]:
    if profile.total_runtime_s <= 0 or profile.kernel_runtime_s <= 0:
        return None
    return zc_to_sc_speedup(
        zc_runtime_s=profile.total_runtime_s,
        copy_time_s=profile.copy_time_s,
        cpu_time_s=profile.cpu_time_s,
        gpu_time_s=profile.kernel_runtime_s,
        max_speedup=device.zc_sc_max_speedup,
    )


def _recommend_copy_models(profile, device, current, common, reason):
    if current in ("SC", "UM"):
        # Cache-dependent and already on a copy model: no change, no
        # further potential speedup (paper §III-A).
        return Recommendation(
            model=RecommendedModel.NO_CHANGE,
            reason=reason + " — already on a copy-based model",
            **common,
        )
    return Recommendation(
        model=RecommendedModel.STANDARD_COPY_OR_UM,
        reason=reason,
        estimate=_estimate_zc_to_sc(profile, device),
        **common,
    )


def _recommend_zero_copy(profile, device, current, common, reason,
                         energy_motivated=False):
    if current == "ZC":
        return Recommendation(
            model=RecommendedModel.NO_CHANGE,
            reason=reason + " — already on zero-copy",
            energy_motivated=energy_motivated,
            **common,
        )
    return Recommendation(
        model=RecommendedModel.ZERO_COPY,
        reason=reason,
        estimate=_estimate_sc_to_zc(profile, device),
        energy_motivated=energy_motivated,
        **common,
    )
