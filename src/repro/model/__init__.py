"""The paper's performance model and decision framework.

- :mod:`repro.model.speedup` — the potential-speedup estimators
  (eqns 3-4) with their device-level caps.
- :mod:`repro.model.thresholds` — extraction of the cache-usage
  thresholds and recommendation zones from micro-benchmark-2 sweeps.
- :mod:`repro.model.decision` — the Fig-2 decision flow.
- :mod:`repro.model.framework` — the user-facing façade combining
  device characterization, profiling, and recommendation.
"""

from repro.model.decision import Recommendation, RecommendedModel, Zone, decide
from repro.model.framework import Framework, TuningReport
from repro.model.speedup import (
    sc_to_zc_speedup,
    zc_to_sc_speedup,
)
from repro.model.thresholds import SweepPoint, ThresholdAnalysis, analyze_sweep
from repro.model.whatif import SweepResult, zc_bandwidth_sweep

__all__ = [
    "SweepResult",
    "zc_bandwidth_sweep",
    "Recommendation",
    "RecommendedModel",
    "Zone",
    "decide",
    "Framework",
    "TuningReport",
    "sc_to_zc_speedup",
    "zc_to_sc_speedup",
    "SweepPoint",
    "ThresholdAnalysis",
    "analyze_sweep",
]
