"""Integrated GPU timing model.

The iGPU executes *kernels*: a compute demand spread over many threads
plus a memory access stream.  Two GPU-specific behaviours matter for
the paper's measurements:

- **Coalescing**: accesses of a warp that fall in the same cache line
  merge into one transaction.  The paper's linear-access kernels
  coalesce perfectly; MB3's sparse kernel is built not to coalesce.
- **Latency hiding**: thousands of resident threads hide memory time
  behind compute, so a kernel phase costs ``max(compute, memory)``.

Under zero-copy the GPU LLC (and L1 for shared data) is disabled and
every transaction streams over the uncached / I/O-coherent path, whose
bandwidth is the board's Table-I "Zero Copy" figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.soc.address import RegionKind
from repro.soc.analytic import SummaryBatch
from repro.soc.cache import CacheConfig
from repro.soc.dram import DRAMModel
from repro.soc.hierarchy import CacheHierarchy, LevelSpec, merge_memory_results
from repro.soc.phase import (
    BatchPhaseResult,
    PhaseResult,
    combine_compute_memory,
    combine_compute_memory_array,
)
from repro.soc.stream import AccessStream, PatternKind


def _stream_is_pinned(stream: AccessStream) -> bool:
    """Whether zero-copy treats the stream's pages as uncacheable
    (untagged streams default to pinned — the worst case)."""
    return stream.region_kind is None or stream.region_kind is RegionKind.PINNED


@dataclass(frozen=True)
class GPUConfig:
    """Datasheet-level iGPU description."""

    name: str
    frequency_hz: float
    num_sms: int
    warp_size: int
    l1: CacheConfig
    llc: CacheConfig
    l1_bandwidth: float
    llc_bandwidth: float
    flops_per_cycle_per_sm: float = 128.0
    kernel_launch_overhead_s: float = 5.0e-6

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"{self.name}: frequency must be positive")
        if self.num_sms <= 0:
            raise ConfigurationError(f"{self.name}: need at least one SM")
        if self.warp_size <= 0:
            raise ConfigurationError(f"{self.name}: warp size must be positive")
        if self.l1_bandwidth <= 0 or self.llc_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: cache bandwidths must be positive")
        if self.kernel_launch_overhead_s < 0:
            raise ConfigurationError(f"{self.name}: launch overhead cannot be negative")


#: Patterns whose consecutive accesses coalesce perfectly.
_COALESCING_PATTERNS = (
    PatternKind.LINEAR,
    PatternKind.FRACTION,
    PatternKind.TILED,
)


def coalesce_stream(stream: AccessStream, line_size: int, warp_size: int) -> AccessStream:
    """Merge same-warp same-line accesses into line transactions.

    For materialized streams this is exact: consecutive groups of
    ``warp_size`` accesses are scanned and one transaction per distinct
    (line, direction) pair survives.  For virtual streams the perfectly
    coalescing patterns reduce analytically; non-coalescing patterns
    pass through unchanged.
    """
    if stream.transaction_size >= line_size:
        return stream
    if stream.is_virtual:
        if stream.pattern not in _COALESCING_PATTERNS:
            return stream
        footprint = stream.footprint_bytes or 0
        lines = max(1, -(-footprint // line_size))
        directions = 2 if 0.0 < stream.write_fraction < 1.0 else 1
        per_pass = lines * directions
        coalesced = AccessStream.virtual_stream(
            pattern=stream.pattern,
            per_pass=per_pass,
            footprint_bytes=footprint,
            transaction_size=line_size,
            repeats=stream.repeats,
            write_fraction=stream.write_fraction if directions == 2 else (
                1.0 if stream.write_fraction > 0 else 0.0
            ),
        )
        coalesced.region_kind = stream.region_kind
        return coalesced
    n = len(stream.addresses)
    if n == 0:
        return stream
    shift = line_size.bit_length() - 1
    lines = stream.addresses >> shift
    warp_ids = np.arange(n, dtype=np.int64) // warp_size
    keys = (warp_ids << 40) | (lines << 1) | stream.is_write.astype(np.int64)
    _, first_index = np.unique(keys, return_index=True)
    keep = np.sort(first_index)
    return AccessStream(
        addresses=(lines[keep] << shift),
        is_write=stream.is_write[keep],
        transaction_size=line_size,
        repeats=stream.repeats,
        pattern=stream.pattern,
        footprint_bytes=-(-(stream.footprint_bytes or 0) // line_size) * line_size,
        region_kind=stream.region_kind,
    )


class GPUModel:
    """An iGPU bound to the shared DRAM through its cache hierarchy."""

    def __init__(
        self,
        config: GPUConfig,
        dram: DRAMModel,
        memory_port_bandwidth: float = float("inf"),
        backend=None,
    ) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy(
            specs=[
                LevelSpec(config=config.l1, bandwidth=config.l1_bandwidth),
                LevelSpec(config=config.llc, bandwidth=config.llc_bandwidth),
            ],
            dram=dram,
            memory_port_bandwidth=memory_port_bandwidth,
            name=f"{config.name}-hierarchy",
            backend=backend,
        )

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s across all SMs."""
        return (
            self.config.frequency_hz
            * self.config.num_sms
            * self.config.flops_per_cycle_per_sm
        )

    def compute_time(self, total_flops: float) -> float:
        """Seconds of pure computation for ``total_flops`` operations."""
        if total_flops < 0:
            raise ConfigurationError("flops cannot be negative")
        return total_flops / self.peak_flops

    def run(
        self,
        name: str,
        total_flops: float,
        stream: Union[AccessStream, Sequence[AccessStream]],
        mode: str = "auto",
        uncached_bandwidth: float = 0.0,
        extra_latency_s: float = 0.0,
        coalesce: bool = True,
    ) -> PhaseResult:
        """Execute one GPU kernel standalone.

        Args:
            name: kernel label.
            total_flops: computation demand.
            stream: the kernel's memory accesses (pre-coalescing) — one
                stream or a sequence served back to back.
            mode: hierarchy processing mode.
            uncached_bandwidth: when positive, the DRAM port is capped
                at this rate — the zero-copy uncached / I/O-coherent
                path (Table I "Zero Copy" column).
            extra_latency_s: additional fixed latency (e.g. the snoop
                cost of hardware I/O coherence).
            coalesce: apply warp coalescing before the hierarchy.
        """
        streams: List[AccessStream] = (
            [stream] if isinstance(stream, AccessStream) else list(stream)
        )
        if not streams:
            raise ConfigurationError("a GPU kernel needs at least one stream")
        line = self.config.l1.line_size
        if coalesce:
            streams = [
                coalesce_stream(s, line, self.config.warp_size) for s in streams
            ]
        saved_port = self.hierarchy.memory_port_bandwidth
        results = []
        snoop_penalty_s = 0.0
        try:
            for s in streams:
                uncached = uncached_bandwidth > 0 and _stream_is_pinned(s)
                if uncached:
                    # Pinned pages bypass the GPU caches under zero-copy
                    # and stream over the uncached / I/O-coherent path;
                    # private buffers stay cached (as does anything the
                    # kernel stages on-chip).
                    self.hierarchy.set_all_enabled(False)
                    self.hierarchy.memory_port_bandwidth = uncached_bandwidth
                try:
                    results.append(self.hierarchy.process(s, mode=mode))
                finally:
                    if uncached:
                        self.hierarchy.set_all_enabled(True)
                        self.hierarchy.memory_port_bandwidth = saved_port
                if uncached:
                    snoop_penalty_s += extra_latency_s
        finally:
            self.hierarchy.memory_port_bandwidth = saved_port
        memory = merge_memory_results(results)
        compute_s = self.compute_time(total_flops)
        memory_s = memory.streaming_time_s + memory.exposed_latency_s + snoop_penalty_s
        busy = combine_compute_memory(compute_s, memory_s, hide_factor=1.0)
        total = busy + self.config.kernel_launch_overhead_s
        return PhaseResult(
            name=name,
            processor="gpu",
            compute_time_s=compute_s,
            memory_time_s=memory_s,
            time_s=total,
            memory=memory,
        )

    def run_batch(
        self,
        total_flops: np.ndarray,
        batch: SummaryBatch,
        uncached_bandwidth: float = 0.0,
        extra_latency_s: float = 0.0,
        pinned: bool = True,
    ) -> BatchPhaseResult:
        """Execute N kernels at once on the analytic fast path.

        Each row of ``batch`` is one (already coalesced) kernel stream;
        ``total_flops`` is the matching per-kernel compute demand.  The
        zero-copy treatment mirrors :meth:`run`: when
        ``uncached_bandwidth`` is positive and the streams are
        ``pinned``, the caches are bypassed, the DRAM port is capped and
        each kernel pays the snoop latency once.
        """
        total_flops = np.asarray(total_flops, dtype=np.float64)
        uncached = uncached_bandwidth > 0 and pinned
        saved_port = self.hierarchy.memory_port_bandwidth
        if uncached:
            self.hierarchy.set_all_enabled(False)
            self.hierarchy.memory_port_bandwidth = uncached_bandwidth
        try:
            memory = self.hierarchy.process_summaries(batch)
        finally:
            if uncached:
                self.hierarchy.set_all_enabled(True)
            self.hierarchy.memory_port_bandwidth = saved_port
        snoop_penalty_s = extra_latency_s if uncached else 0.0
        compute_s = total_flops / self.peak_flops
        memory_s = (
            memory.streaming_time_s + memory.exposed_latency_s + snoop_penalty_s
        )
        busy = combine_compute_memory_array(compute_s, memory_s, hide_factor=1.0)
        return BatchPhaseResult(
            processor="gpu",
            compute_time_s=compute_s,
            memory_time_s=memory_s,
            time_s=busy + self.config.kernel_launch_overhead_s,
            memory=memory,
        )
