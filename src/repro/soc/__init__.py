"""Simulated embedded SoC substrate.

This subpackage models the hardware the paper measures on real Jetson
boards: a CPU complex and an integrated GPU sharing one DRAM through a
coherent interconnect, each with private caches.  The communication
models in :mod:`repro.comm` and the micro-benchmarks in
:mod:`repro.microbench` execute against this substrate.

Public entry points:

- :class:`repro.soc.board.BoardConfig` and the Jetson presets
  (:func:`repro.soc.board.jetson_nano`, ``jetson_tx2``, ``jetson_xavier``)
- :class:`repro.soc.soc.SoC` — an instantiated board ready to run tasks
- :class:`repro.soc.stream.AccessStream` — memory access traces
"""

from repro.soc.address import AddressSpace, Buffer, MemoryRegion, RegionKind
from repro.soc.board import (
    BoardConfig,
    available_boards,
    get_board,
    jetson_nano,
    jetson_tx2,
    jetson_xavier,
)
from repro.soc.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.soc.coherence import CoherenceMode, ZeroCopyBehavior
from repro.soc.soc import SoC
from repro.soc.stream import AccessStream

__all__ = [
    "AddressSpace",
    "Buffer",
    "MemoryRegion",
    "RegionKind",
    "BoardConfig",
    "available_boards",
    "get_board",
    "jetson_nano",
    "jetson_tx2",
    "jetson_xavier",
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "CoherenceMode",
    "ZeroCopyBehavior",
    "SoC",
    "AccessStream",
]
