"""Discrete-event execution of concurrent CPU/iGPU phases.

The zero-copy model's headline benefit (paper §III-C, MB3) comes from
*overlapping* the CPU routine with the GPU kernel while both stream
through the shared memory fabric.  :func:`run_overlapped` simulates a
set of jobs whose memory traffic shares the interconnect via max-min
fair arbitration, advancing time piecewise between allocation-changing
events.

Each job has a compute demand (seconds of pure computation) and a
memory demand (bytes through the fabric, capped by the job's private
port bandwidth).  Two completion semantics exist:

- ``overlap_compute_memory=True`` (GPU-style): compute and memory
  proceed concurrently; the job ends when both are done.
- ``overlap_compute_memory=False`` (simple CPU-style): the job computes
  first, then streams its memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.soc.interconnect import InterconnectConfig, allocate_bandwidth

_EPSILON = 1e-15


@dataclass
class OverlapJob:
    """One processor phase competing for the shared fabric."""

    name: str
    compute_time_s: float
    memory_bytes: float
    solo_bandwidth: float
    overlap_compute_memory: bool = True
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_time_s < 0 or self.memory_bytes < 0:
            raise ConfigurationError(
                f"job {self.name!r}: demands cannot be negative"
            )
        if self.memory_bytes > 0 and self.solo_bandwidth <= 0:
            raise ConfigurationError(
                f"job {self.name!r}: memory demand needs positive bandwidth"
            )
        if self.start_time_s < 0:
            raise ConfigurationError(f"job {self.name!r}: start time cannot be negative")


@dataclass
class OverlapResult:
    """Timing of one concurrent execution."""

    finish_times: Dict[str, float]
    makespan_s: float
    memory_times: Dict[str, float]

    def finish(self, name: str) -> float:
        """Completion time of job ``name``."""
        try:
            return self.finish_times[name]
        except KeyError:
            raise SimulationError(f"no job named {name!r} in result") from None


@dataclass
class _JobState:
    job: OverlapJob
    remaining_compute: float = field(init=False)
    remaining_bytes: float = field(init=False)
    memory_finish: Optional[float] = None
    finish: Optional[float] = None

    def __post_init__(self) -> None:
        self.remaining_compute = self.job.compute_time_s
        self.remaining_bytes = float(self.job.memory_bytes)

    def started(self, now: float) -> bool:
        return now >= self.job.start_time_s - _EPSILON

    def demands_memory(self, now: float) -> bool:
        if self.remaining_bytes <= _EPSILON or not self.started(now):
            return False
        if self.job.overlap_compute_memory:
            return True
        return self.remaining_compute <= _EPSILON

    def computing(self, now: float) -> bool:
        return self.started(now) and self.remaining_compute > _EPSILON


def run_overlapped(
    jobs: List[OverlapJob],
    interconnect: InterconnectConfig,
) -> OverlapResult:
    """Simulate concurrent jobs sharing the memory fabric.

    Returns per-job finish times (absolute, including start offsets),
    the makespan, and how long each job spent with outstanding memory
    demand (its effective memory time).
    """
    if not jobs:
        return OverlapResult(finish_times={}, makespan_s=0.0, memory_times={})
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"job names must be unique, got {names}")

    states = {j.name: _JobState(j) for j in jobs}
    now = 0.0
    memory_open: Dict[str, float] = {}
    memory_times = {j.name: 0.0 for j in jobs}

    for _ in range(100_000):  # hard bound against stalls
        # Settle zero-work completions at the current instant first so
        # they never contribute an infinite wait below.
        for s in states.values():
            if (
                s.finish is None
                and s.started(now)
                and s.remaining_compute <= _EPSILON
                and s.remaining_bytes <= _EPSILON
            ):
                s.finish = max(now, s.job.start_time_s)
        unfinished = [s for s in states.values() if s.finish is None]
        if not unfinished:
            break

        demands = {
            s.job.name: s.job.solo_bandwidth
            for s in unfinished
            if s.demands_memory(now)
        }
        grants = allocate_bandwidth(demands, interconnect) if demands else {}

        # Next event: a memory demand drains, a compute phase ends
        # (changing demand for non-overlap jobs or finishing a job), or
        # a job's start time arrives.
        dt = float("inf")
        for s in unfinished:
            if not s.started(now):
                dt = min(dt, s.job.start_time_s - now)
                continue
            if s.job.name in grants and grants[s.job.name] > _EPSILON:
                dt = min(dt, s.remaining_bytes / grants[s.job.name])
            if s.computing(now):
                dt = min(dt, s.remaining_compute)
        if dt == float("inf"):
            # Only jobs blocked on memory with zero grant remain — the
            # fabric is saturated with zero budget, which cannot happen
            # with a positive-bandwidth interconnect.
            raise SimulationError("overlap simulation stalled with no next event")
        dt = max(dt, 0.0)

        for s in unfinished:
            if not s.started(now):
                continue
            if s.computing(now):
                s.remaining_compute = max(0.0, s.remaining_compute - dt)
            grant = grants.get(s.job.name, 0.0)
            if grant > _EPSILON and s.demands_memory(now):
                s.remaining_bytes = max(0.0, s.remaining_bytes - grant * dt)
                memory_times[s.job.name] += dt
        now += dt

        for s in unfinished:
            if (
                s.started(now)
                and s.remaining_compute <= _EPSILON
                and s.remaining_bytes <= _EPSILON
                and s.finish is None
            ):
                s.finish = now
    else:
        raise SimulationError("overlap simulation exceeded its event budget")

    finish_times = {name: s.finish for name, s in states.items()}
    return OverlapResult(
        finish_times=finish_times,
        makespan_s=max(finish_times.values()),
        memory_times=memory_times,
    )


def run_serial(jobs: List[OverlapJob], interconnect: InterconnectConfig) -> OverlapResult:
    """Run jobs one after another (no overlap), each alone on the fabric.

    This is the execution shape of SC and UM, where CPU routines and
    GPU kernels are implicitly synchronized (paper §I).
    """
    now = 0.0
    finish_times: Dict[str, float] = {}
    memory_times: Dict[str, float] = {}
    for job in jobs:
        grants = allocate_bandwidth({job.name: job.solo_bandwidth}, interconnect) \
            if job.memory_bytes > 0 else {job.name: 0.0}
        rate = grants.get(job.name, 0.0)
        mem_time = job.memory_bytes / rate if rate > 0 else 0.0
        if job.overlap_compute_memory:
            duration = max(job.compute_time_s, mem_time)
        else:
            duration = job.compute_time_s + mem_time
        now += duration
        finish_times[job.name] = now
        memory_times[job.name] = mem_time
    return OverlapResult(
        finish_times=finish_times,
        makespan_s=now,
        memory_times=memory_times,
    )
