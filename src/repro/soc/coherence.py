"""Coherence behaviour of the three communication models.

The paper (Fig. 1) distinguishes four hardware situations:

a) **Zero-copy, caches disabled** — concurrent pinned accesses are kept
   coherent by turning the last-level caches off.  On the TX2 (and
   Nano) the CPU LLC is disabled too; the GPU then reads DRAM through a
   slow uncached path.
b) **Zero-copy with HW I/O coherence** (Xavier) — the iGPU snoops the
   CPU cache directly; the GPU LLC stays disabled but CPU caches stay
   on, and the GPU's uncached path is much faster.
c) **Standard copy** — all caches enabled; software flushes them before
   and after each GPU kernel invocation.
d) **Unified memory** — all caches enabled; the runtime migrates pages
   on demand and flushes like SC at kernel boundaries.

:class:`ZeroCopyBehavior` captures what a given board does for (a)/(b);
the SC/UM costs are modelled by the executors in :mod:`repro.comm`
using the flush primitives of the cache model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class CoherenceMode(enum.Enum):
    """How coherence is maintained for a given communication model."""

    SW_FLUSH = "sw_flush"  # standard copy: flush around kernels
    PAGE_MIGRATION = "page_migration"  # unified memory runtime
    ZC_CACHES_DISABLED = "zc_caches_disabled"  # Nano / TX2 zero-copy
    ZC_IO_COHERENT = "zc_io_coherent"  # Xavier zero-copy


@dataclass(frozen=True)
class ZeroCopyBehavior:
    """What adopting zero-copy does on a specific board.

    Attributes:
        mode: disabled caches vs. hardware I/O coherence.
        gpu_llc_disabled: the GPU LLC is always off under ZC (both
            variants in the paper).
        cpu_llc_disabled: True on Nano/TX2, False on Xavier.
        gpu_zc_bandwidth: bytes/s the GPU sustains on the uncached /
            I/O-coherent path (the paper's Table I "Zero Copy" column).
        cpu_zc_bandwidth: bytes/s the CPU sustains to pinned memory
            when its LLC is disabled (irrelevant on Xavier).
        snoop_latency_s: extra latency per GPU transaction for the
            I/O-coherent snoop (zero for the disabled-cache variant).
        cpu_uncached_latency_s: per-transaction latency the CPU pays on
            the uncached path for *dependent* (same-address) access
            chains, which cannot be pipelined; independent streaming
            accesses are governed by ``cpu_zc_bandwidth`` instead.
    """

    mode: CoherenceMode
    gpu_zc_bandwidth: float
    cpu_zc_bandwidth: float
    gpu_llc_disabled: bool = True
    cpu_llc_disabled: bool = True
    snoop_latency_s: float = 0.0
    cpu_uncached_latency_s: float = 5.0e-9

    def __post_init__(self) -> None:
        if self.mode not in (
            CoherenceMode.ZC_CACHES_DISABLED,
            CoherenceMode.ZC_IO_COHERENT,
        ):
            raise ConfigurationError(
                f"ZeroCopyBehavior mode must be a zero-copy mode, got {self.mode}"
            )
        if self.gpu_zc_bandwidth <= 0 or self.cpu_zc_bandwidth <= 0:
            raise ConfigurationError("zero-copy path bandwidths must be positive")
        if self.mode is CoherenceMode.ZC_IO_COHERENT and self.cpu_llc_disabled:
            raise ConfigurationError(
                "I/O-coherent zero-copy keeps the CPU cache enabled"
            )
        if self.snoop_latency_s < 0:
            raise ConfigurationError("snoop latency cannot be negative")

    @property
    def io_coherent(self) -> bool:
        """True for the Xavier-style hardware I/O coherence variant."""
        return self.mode is CoherenceMode.ZC_IO_COHERENT


@dataclass(frozen=True)
class FlushCostModel:
    """Cost of the software flushes the SC/UM models perform.

    A flush writes back every dirty line and invalidates the rest.  The
    cost has a fixed driver overhead plus a per-line component; dirty
    lines additionally pay the DRAM write.
    """

    fixed_overhead_s: float = 2.0e-6
    per_line_s: float = 1.2e-9

    def __post_init__(self) -> None:
        if self.fixed_overhead_s < 0 or self.per_line_s < 0:
            raise ConfigurationError("flush costs cannot be negative")

    def flush_time(self, resident_lines: int, dirty_lines: int,
                   line_size: int, dram_bandwidth: float) -> float:
        """Seconds to flush a cache with the given occupancy."""
        if resident_lines < dirty_lines:
            raise ConfigurationError(
                f"resident lines ({resident_lines}) < dirty lines ({dirty_lines})"
            )
        walk = self.fixed_overhead_s + resident_lines * self.per_line_s
        writeback = (dirty_lines * line_size) / dram_bandwidth if dram_bandwidth else 0.0
        return walk + writeback


@dataclass(frozen=True)
class PageMigrationModel:
    """Cost model for the unified-memory on-demand page migration.

    The UM runtime faults on first touch of a page by the "other"
    processor and migrates the page.  The paper observes UM within
    ±8 % of SC on all devices; the driver delta is this fault machinery.
    """

    page_size: int = 4096
    #: Per-page driver cost.  The UM runtime batches and prefetches
    #: migrations, so the effective per-page overhead is far below a
    #: raw fault — calibrated to keep UM within the paper's ±8 %
    #: envelope of SC on every workload size.
    fault_overhead_s: float = 0.025e-6
    migration_bandwidth: float = 0.0  # 0 → use the board copy engine

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ConfigurationError("page size must be positive")
        if self.fault_overhead_s < 0:
            raise ConfigurationError("fault overhead cannot be negative")

    def pages_for(self, num_bytes: int) -> int:
        """Number of pages spanning ``num_bytes``."""
        if num_bytes <= 0:
            return 0
        return -(-num_bytes // self.page_size)

    def migration_time(self, num_bytes: int, copy_bandwidth: float,
                       faulted_fraction: float = 1.0) -> float:
        """Seconds to migrate ``num_bytes`` with the given fraction of
        pages actually faulting (warm data does not migrate again)."""
        if not 0.0 <= faulted_fraction <= 1.0:
            raise ConfigurationError(
                f"faulted_fraction must be in [0, 1], got {faulted_fraction}"
            )
        pages = self.pages_for(num_bytes) * faulted_fraction
        bandwidth = self.migration_bandwidth or copy_bandwidth
        moved = pages * self.page_size
        return pages * self.fault_overhead_s + (moved / bandwidth if bandwidth else 0.0)
