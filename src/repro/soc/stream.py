"""Memory access streams.

An :class:`AccessStream` is the trace a task presents to a cache
hierarchy: a sequence of (address, read/write) transactions of a uniform
transaction size.  Streams carry a *pattern tag* so that very large
logical streams can be evaluated by the closed-form estimators in
:mod:`repro.soc.analytic` instead of access-by-access simulation; the
two paths are cross-validated in the test suite.

Builders cover the access shapes the paper's micro-benchmarks use:

- ``linear`` — sequential sweep (MB1's GPU 2D reduction loads)
- ``single_address`` — repeated hits on one location (MB1's CPU routine)
- ``fraction`` — a leading fraction of a fixed array (MB2's sweep)
- ``strided`` — constant-stride walk
- ``sparse`` — maximally cache-hostile pseudo-random walk (MB3)
- ``tiled`` — per-tile sweeps for the Fig-4 zero-copy pattern
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import AddressError
from repro.soc.address import Buffer, BufferRange, RegionKind


class PatternKind(enum.Enum):
    """Shape tag used by the analytic estimators."""

    LINEAR = "linear"
    SINGLE_ADDRESS = "single_address"
    STRIDED = "strided"
    SPARSE = "sparse"
    TILED = "tiled"
    FRACTION = "fraction"
    CUSTOM = "custom"


@dataclass
class AccessStream:
    """A uniform-size transaction trace.

    Attributes:
        addresses: int64 byte addresses, one per transaction.
        is_write: boolean per transaction (True = store).
        transaction_size: bytes moved per transaction.
        repeats: how many times the whole trace is replayed.  Replays
            model steady-state loops without materializing the full
            trace; the hierarchy simulates one cold pass and one warm
            pass and extrapolates the remaining ``repeats - 2`` passes
            from the warm one.
        pattern: shape tag for the analytic fast path.
        footprint_bytes: distinct bytes the stream touches per pass.
        virtual_per_pass: when set, the stream is *virtual*: no address
            arrays are materialized and only the shape parameters exist.
            Virtual streams model workloads too large to trace (the
            paper's MB3 uses 2^27 floats) and can only be processed by
            the analytic path.
        virtual_write_fraction: store fraction of a virtual stream.
        region_kind: logical role of the memory the stream touches
            (pinned / partition / unified).  Zero-copy treats pinned
            pages as uncacheable while private buffers stay cached; a
            ``None`` value is treated conservatively as pinned.
    """

    addresses: np.ndarray
    is_write: np.ndarray
    transaction_size: int = 4
    repeats: int = 1
    pattern: PatternKind = PatternKind.CUSTOM
    footprint_bytes: Optional[int] = None
    virtual_per_pass: Optional[int] = None
    virtual_write_fraction: float = 0.0
    region_kind: Optional["RegionKind"] = None

    def __post_init__(self) -> None:
        self.addresses = np.ascontiguousarray(self.addresses, dtype=np.int64)
        self.is_write = np.ascontiguousarray(self.is_write, dtype=bool)
        if self.addresses.shape != self.is_write.shape:
            raise AddressError(
                f"addresses ({self.addresses.shape}) and is_write "
                f"({self.is_write.shape}) must have identical shapes"
            )
        if self.addresses.ndim != 1:
            raise AddressError("access stream arrays must be one-dimensional")
        if self.transaction_size <= 0:
            raise AddressError(f"transaction_size must be positive, got {self.transaction_size}")
        if self.repeats < 1:
            raise AddressError(f"repeats must be >= 1, got {self.repeats}")
        if self.virtual_per_pass is not None:
            if len(self.addresses):
                raise AddressError("virtual streams cannot carry addresses")
            if self.virtual_per_pass <= 0:
                raise AddressError("virtual_per_pass must be positive")
            if self.footprint_bytes is None:
                raise AddressError("virtual streams must declare footprint_bytes")
            if not 0.0 <= self.virtual_write_fraction <= 1.0:
                raise AddressError("virtual_write_fraction must be in [0, 1]")
        if self.footprint_bytes is None:
            if len(self.addresses):
                unique = np.unique(self.addresses)
                self.footprint_bytes = int(len(unique)) * self.transaction_size
            else:
                self.footprint_bytes = 0

    def __len__(self) -> int:
        return self.transactions_per_pass

    @property
    def is_virtual(self) -> bool:
        """True when the stream carries only shape parameters."""
        return self.virtual_per_pass is not None

    @property
    def transactions_per_pass(self) -> int:
        """Transactions in one replay of the trace."""
        if self.virtual_per_pass is not None:
            return self.virtual_per_pass
        return len(self.addresses)

    @property
    def total_transactions(self) -> int:
        """Transactions across all replays."""
        return self.transactions_per_pass * self.repeats

    @property
    def bytes_per_pass(self) -> int:
        """Bytes moved in one replay."""
        return self.transactions_per_pass * self.transaction_size

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all replays."""
        return self.bytes_per_pass * self.repeats

    @property
    def write_fraction(self) -> float:
        """Fraction of transactions that are stores."""
        if self.is_virtual:
            return self.virtual_write_fraction
        if not len(self.is_write):
            return 0.0
        return float(np.count_nonzero(self.is_write)) / len(self.is_write)

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, transaction_size: int = 4) -> "AccessStream":
        """A stream with no transactions."""
        return cls(
            addresses=np.empty(0, dtype=np.int64),
            is_write=np.empty(0, dtype=bool),
            transaction_size=transaction_size,
        )

    @classmethod
    def linear(
        cls,
        buffer: Buffer,
        write: bool = False,
        repeats: int = 1,
        read_write_pairs: bool = False,
    ) -> "AccessStream":
        """Sequential element-order sweep over ``buffer``.

        With ``read_write_pairs`` each element is read then written,
        matching the paper's ``ld.global``/``st.global`` kernels.
        """
        count = buffer.num_elements
        base = np.arange(count, dtype=np.int64) * buffer.element_size + buffer.base
        if read_write_pairs:
            addresses = np.repeat(base, 2)
            is_write = np.tile(np.array([False, True]), count)
        else:
            addresses = base
            is_write = np.full(count, write)
        return cls(
            addresses=addresses,
            is_write=is_write,
            transaction_size=buffer.element_size,
            repeats=repeats,
            pattern=PatternKind.LINEAR,
            footprint_bytes=buffer.size,
            region_kind=buffer.region.kind,
        )

    @classmethod
    def single_address(
        cls,
        buffer: Buffer,
        count: int,
        write_every: int = 2,
        element_index: int = 0,
    ) -> "AccessStream":
        """Repeated accesses to one element.

        Models MB1's CPU routine: floating-point operations whose data
        is read and written from a single memory address.  Every
        ``write_every``-th access is a store.
        """
        if count <= 0:
            raise AddressError(f"count must be positive, got {count}")
        address = buffer.element_address(element_index)
        addresses = np.full(count, address, dtype=np.int64)
        is_write = np.zeros(count, dtype=bool)
        if write_every > 0:
            is_write[write_every - 1 :: write_every] = True
        return cls(
            addresses=addresses,
            is_write=is_write,
            transaction_size=buffer.element_size,
            pattern=PatternKind.SINGLE_ADDRESS,
            footprint_bytes=buffer.element_size,
            region_kind=buffer.region.kind,
        )

    @classmethod
    def strided(
        cls,
        buffer: Buffer,
        stride_elements: int,
        write: bool = False,
        repeats: int = 1,
    ) -> "AccessStream":
        """Constant-stride walk over the buffer."""
        if stride_elements <= 0:
            raise AddressError(f"stride must be positive, got {stride_elements}")
        indices = np.arange(0, buffer.num_elements, stride_elements, dtype=np.int64)
        addresses = indices * buffer.element_size + buffer.base
        # The line-level footprint is the swept span: sub-line strides
        # touch every line even though they skip bytes.
        span = int(addresses[-1] - addresses[0]) + buffer.element_size \
            if len(addresses) else 0
        return cls(
            addresses=addresses,
            is_write=np.full(len(addresses), write),
            transaction_size=buffer.element_size,
            repeats=repeats,
            pattern=PatternKind.STRIDED,
            footprint_bytes=min(buffer.size, span),
            region_kind=buffer.region.kind,
        )

    @classmethod
    def fraction(
        cls,
        buffer: Buffer,
        fraction: float,
        repeats: int = 1,
        read_write_pairs: bool = True,
    ) -> "AccessStream":
        """Sweep only the leading ``fraction`` of the buffer.

        This is MB2's knob: accessing sections of different length of a
        fixed-size array (1/4000 … 1/2) with one load, one store, and a
        fused multiply-add per element.
        """
        if not 0.0 < fraction <= 1.0:
            raise AddressError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(buffer.num_elements * fraction))
        sub = buffer.sub_range(0, count)
        base = np.arange(count, dtype=np.int64) * buffer.element_size + sub.base
        if read_write_pairs:
            addresses = np.repeat(base, 2)
            is_write = np.tile(np.array([False, True]), count)
        else:
            addresses = base
            is_write = np.zeros(count, dtype=bool)
        return cls(
            addresses=addresses,
            is_write=is_write,
            transaction_size=buffer.element_size,
            repeats=repeats,
            pattern=PatternKind.FRACTION,
            footprint_bytes=count * buffer.element_size,
            region_kind=buffer.region.kind,
        )

    @classmethod
    def sparse(
        cls,
        buffer: Buffer,
        count: int,
        line_size: int,
        seed: int = 0,
        write_fraction: float = 0.5,
    ) -> "AccessStream":
        """Maximally cache-hostile walk: each access lands on a distinct
        line chosen pseudo-randomly, guaranteeing the maximum miss rate
        (MB3's kernel: sufficiently sparse single read and single write).
        """
        if count <= 0:
            raise AddressError(f"count must be positive, got {count}")
        lines_available = buffer.size // line_size
        if lines_available <= 0:
            raise AddressError(
                f"buffer {buffer.name!r} smaller than one line ({line_size} bytes)"
            )
        rng = np.random.default_rng(seed)
        # Stride through lines with a large co-prime step, then shuffle
        # in blocks: distinct lines, no spatial locality.
        line_idx = rng.permutation(lines_available)[: min(count, lines_available)]
        if count > lines_available:
            extra = rng.integers(0, lines_available, size=count - lines_available)
            line_idx = np.concatenate([line_idx, extra])
        addresses = buffer.base + line_idx.astype(np.int64) * line_size
        is_write = rng.random(count) < write_fraction
        return cls(
            addresses=addresses,
            is_write=is_write,
            transaction_size=min(buffer.element_size, line_size),
            pattern=PatternKind.SPARSE,
            footprint_bytes=min(count, lines_available) * line_size,
            region_kind=buffer.region.kind,
        )

    @classmethod
    def over_ranges(
        cls,
        ranges: Sequence[BufferRange],
        read_write_pairs: bool = True,
        repeats: int = 1,
    ) -> "AccessStream":
        """Sweep a sequence of buffer ranges (tiles) in order.

        Used by the Fig-4 zero-copy pattern: each range is a tile and is
        read then written element by element.
        """
        if not ranges:
            raise AddressError("over_ranges requires at least one range")
        element_size = ranges[0].buffer.element_size
        pieces: List[np.ndarray] = []
        for rng_ in ranges:
            if rng_.buffer.element_size != element_size:
                raise AddressError("all ranges must share one element size")
            pieces.append(
                np.arange(rng_.count, dtype=np.int64) * element_size + rng_.base
            )
        base = np.concatenate(pieces)
        if read_write_pairs:
            addresses = np.repeat(base, 2)
            is_write = np.tile(np.array([False, True]), len(base))
        else:
            addresses = base
            is_write = np.zeros(len(base), dtype=bool)
        footprint = sum(r.size for r in ranges)
        return cls(
            addresses=addresses,
            is_write=is_write,
            transaction_size=element_size,
            repeats=repeats,
            pattern=PatternKind.TILED,
            footprint_bytes=footprint,
            region_kind=ranges[0].buffer.region.kind,
        )

    @classmethod
    def concat(cls, streams: Iterable["AccessStream"]) -> "AccessStream":
        """Concatenate streams (all must share a transaction size and
        have ``repeats == 1``)."""
        streams = list(streams)
        if not streams:
            raise AddressError("concat requires at least one stream")
        size = streams[0].transaction_size
        for s in streams:
            if s.transaction_size != size:
                raise AddressError("cannot concat streams with differing transaction sizes")
            if s.repeats != 1:
                raise AddressError("cannot concat streams with repeats > 1")
        return cls(
            addresses=np.concatenate([s.addresses for s in streams]),
            is_write=np.concatenate([s.is_write for s in streams]),
            transaction_size=size,
            pattern=PatternKind.CUSTOM,
        )

    @classmethod
    def virtual_stream(
        cls,
        pattern: PatternKind,
        per_pass: int,
        footprint_bytes: int,
        transaction_size: int = 4,
        repeats: int = 1,
        write_fraction: float = 0.0,
    ) -> "AccessStream":
        """A shape-only stream for workloads too large to trace.

        Virtual streams are processed analytically; the exact simulator
        rejects them.
        """
        return cls(
            addresses=np.empty(0, dtype=np.int64),
            is_write=np.empty(0, dtype=bool),
            transaction_size=transaction_size,
            repeats=repeats,
            pattern=pattern,
            footprint_bytes=footprint_bytes,
            virtual_per_pass=per_pass,
            virtual_write_fraction=write_fraction,
        )

    @classmethod
    def virtual_linear(
        cls,
        num_elements: int,
        element_size: int = 4,
        read_write_pairs: bool = True,
        repeats: int = 1,
    ) -> "AccessStream":
        """Virtual sequential sweep over ``num_elements`` elements."""
        per_pass = num_elements * (2 if read_write_pairs else 1)
        return cls.virtual_stream(
            pattern=PatternKind.LINEAR,
            per_pass=per_pass,
            footprint_bytes=num_elements * element_size,
            transaction_size=element_size,
            repeats=repeats,
            write_fraction=0.5 if read_write_pairs else 0.0,
        )

    @classmethod
    def virtual_sparse(
        cls,
        num_accesses: int,
        footprint_bytes: int,
        element_size: int = 4,
        repeats: int = 1,
        write_fraction: float = 0.5,
    ) -> "AccessStream":
        """Virtual maximally cache-hostile walk (MB3's kernel shape)."""
        return cls.virtual_stream(
            pattern=PatternKind.SPARSE,
            per_pass=num_accesses,
            footprint_bytes=footprint_bytes,
            transaction_size=element_size,
            repeats=repeats,
            write_fraction=write_fraction,
        )

    def with_repeats(self, repeats: int) -> "AccessStream":
        """A copy of this stream replayed ``repeats`` times."""
        return AccessStream(
            addresses=self.addresses,
            is_write=self.is_write,
            transaction_size=self.transaction_size,
            repeats=repeats,
            pattern=self.pattern,
            footprint_bytes=self.footprint_bytes,
            virtual_per_pass=self.virtual_per_pass,
            virtual_write_fraction=self.virtual_write_fraction,
            region_kind=self.region_kind,
        )
