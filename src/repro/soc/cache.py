"""Exact set-associative cache simulation.

:class:`SetAssociativeCache` replays an address trace through a
write-back, write-allocate, true-LRU cache and reports hits, misses and
writebacks.  This is the reference model: the closed-form estimators in
:mod:`repro.soc.analytic` are validated against it.

A cache can be *disabled* — every access then misses and bypasses the
array without allocating.  This is how the zero-copy communication model
is realized on boards that turn off the last-level caches (Jetson
Nano/TX2, and the GPU LLC on Xavier).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    ``size_bytes`` must equal ``num_sets * ways * line_size`` with a
    power-of-two number of sets so set selection is a mask.
    """

    name: str
    size_bytes: int
    line_size: int
    ways: int
    write_back: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{self.name}: size must be positive")
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(
                f"{self.name}: line size must be a power of two, got {self.line_size}"
            )
        if self.ways <= 0:
            raise ConfigurationError(f"{self.name}: ways must be positive")
        if self.size_bytes % (self.line_size * self.ways):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} is not a multiple of "
                f"line_size*ways = {self.line_size * self.ways}"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"{self.name}: number of sets must be a power of two, got {self.num_sets}"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_size * self.ways)

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_size


@dataclass
class CacheStats:
    """Aggregate counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0
    writebacks: int = 0
    flush_writebacks: int = 0
    invalidations: int = 0
    bypassed: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum, returned as a new object."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            read_accesses=self.read_accesses + other.read_accesses,
            write_accesses=self.write_accesses + other.write_accesses,
            writebacks=self.writebacks + other.writebacks,
            flush_writebacks=self.flush_writebacks + other.flush_writebacks,
            invalidations=self.invalidations + other.invalidations,
            bypassed=self.bypassed + other.bypassed,
        )

    def snapshot(self) -> "CacheStats":
        """A copy of the current counters."""
        return CacheStats(**vars(self))

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return CacheStats(
            accesses=self.accesses - earlier.accesses,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            read_accesses=self.read_accesses - earlier.read_accesses,
            write_accesses=self.write_accesses - earlier.write_accesses,
            writebacks=self.writebacks - earlier.writebacks,
            flush_writebacks=self.flush_writebacks - earlier.flush_writebacks,
            invalidations=self.invalidations - earlier.invalidations,
            bypassed=self.bypassed - earlier.bypassed,
        )


@dataclass
class AccessResult:
    """Outcome of replaying one trace segment through a cache."""

    hits: np.ndarray
    miss_line_addresses: np.ndarray
    writeback_lines: int

    @property
    def num_hits(self) -> int:
        """Number of hits in the segment."""
        return int(np.count_nonzero(self.hits))

    @property
    def num_misses(self) -> int:
        """Number of misses in the segment."""
        return len(self.hits) - self.num_hits


class SetAssociativeCache:
    """Write-back, write-allocate, true-LRU set-associative cache.

    The tag store is one :class:`collections.OrderedDict` per set,
    mapping tag → dirty flag, ordered LRU-first.  All operations are
    O(1) per access, which keeps exact simulation usable up to a few
    million transactions.
    """

    def __init__(self, config: CacheConfig, enabled: bool = True) -> None:
        self.config = config
        self.enabled = enabled
        self.stats = CacheStats()
        self._line_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        """Lines currently valid in the cache."""
        return sum(len(s) for s in self._sets)

    @property
    def dirty_lines(self) -> int:
        """Lines currently dirty."""
        return sum(1 for s in self._sets for dirty in s.values() if dirty)

    def contains(self, address: int) -> bool:
        """True when the line holding ``address`` is resident."""
        line = address >> self._line_shift
        tag = line >> self._set_mask.bit_length()
        return tag in self._sets[line & self._set_mask]

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def access_trace(
        self, addresses: np.ndarray, is_write: np.ndarray
    ) -> AccessResult:
        """Replay a trace segment.

        Returns per-access hit flags, the line addresses that missed (in
        order, for the next level), and the number of dirty writebacks
        evicted during the segment.
        """
        n = len(addresses)
        if n == 0:
            return AccessResult(
                hits=np.empty(0, dtype=bool),
                miss_line_addresses=np.empty(0, dtype=np.int64),
                writeback_lines=0,
            )
        writes = int(np.count_nonzero(is_write))
        self.stats.accesses += n
        self.stats.write_accesses += writes
        self.stats.read_accesses += n - writes

        lines = np.asarray(addresses, dtype=np.int64) >> self._line_shift
        if not self.enabled:
            # Disabled caches pass accesses through untouched, at the
            # original (transaction) granularity — this is the zero-copy
            # uncached path.
            self.stats.misses += n
            self.stats.bypassed += n
            return AccessResult(
                hits=np.zeros(n, dtype=bool),
                miss_line_addresses=np.asarray(addresses, dtype=np.int64),
                writeback_lines=0,
            )

        set_bits = self._set_mask.bit_length()
        set_idx = (lines & self._set_mask).tolist() if self._set_mask else [0] * n
        tags = (lines >> set_bits).tolist()
        write_list = np.asarray(is_write, dtype=bool).tolist()
        line_list = lines.tolist()

        hits = np.zeros(n, dtype=bool)
        misses: List[int] = []
        writebacks = 0
        ways = self.config.ways
        sets = self._sets

        write_back = self.config.write_back
        write_allocate = self.config.write_allocate
        for i in range(n):
            s = sets[set_idx[i]]
            tag = tags[i]
            dirty = write_list[i] and write_back
            if tag in s:
                hits[i] = True
                s[tag] = s.pop(tag) or dirty  # move to MRU, accumulate dirty
            else:
                misses.append(line_list[i])
                if write_allocate or not write_list[i]:
                    if len(s) >= ways:
                        _evicted_tag, was_dirty = s.popitem(last=False)
                        if was_dirty:
                            writebacks += 1
                    s[tag] = dirty

        num_hits = int(np.count_nonzero(hits))
        self.stats.hits += num_hits
        self.stats.misses += n - num_hits
        self.stats.writebacks += writebacks
        miss_addresses = (np.array(misses, dtype=np.int64) << self._line_shift
                          if misses else np.empty(0, dtype=np.int64))
        return AccessResult(
            hits=hits,
            miss_line_addresses=miss_addresses,
            writeback_lines=writebacks,
        )

    def access_single(self, address: int, is_write: bool = False) -> bool:
        """Replay one access; returns True on hit."""
        result = self.access_trace(
            np.array([address], dtype=np.int64), np.array([is_write])
        )
        return bool(result.hits[0])

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Write back all dirty lines and invalidate everything.

        Returns the number of lines written back.  This is the software
        coherence action the standard-copy model performs around each
        GPU kernel invocation.
        """
        dirty = self.dirty_lines
        invalidated = self.resident_lines
        for s in self._sets:
            s.clear()
        self.stats.flush_writebacks += dirty
        self.stats.invalidations += invalidated
        return dirty

    def invalidate(self) -> int:
        """Drop all lines without writing back (returns lines dropped)."""
        count = self.resident_lines
        for s in self._sets:
            s.clear()
        self.stats.invalidations += count
        return count

    def warm_with(self, addresses: np.ndarray) -> None:
        """Pre-load lines (reads) without counting statistics."""
        saved = self.stats
        self.stats = CacheStats()
        self.access_trace(
            np.asarray(addresses, dtype=np.int64),
            np.zeros(len(addresses), dtype=bool),
        )
        self.stats = saved

    def reset(self) -> None:
        """Clear contents and statistics."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()
