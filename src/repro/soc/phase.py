"""Shared phase-execution result type for the processor models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.hierarchy import MemoryResult


@dataclass
class PhaseResult:
    """Timing of one processor phase (a CPU routine or a GPU kernel)
    executed standalone on its hierarchy.

    ``time_s`` is the standalone duration.  When phases run overlapped
    under zero-copy the event engine recombines ``compute_time_s`` and
    the memory demand instead of using ``time_s`` directly.
    """

    name: str
    processor: str
    compute_time_s: float
    memory_time_s: float
    time_s: float
    memory: MemoryResult

    @property
    def cache_served_bytes(self) -> int:
        """Bytes served by any enabled cache level."""
        total = 0
        for level in self.memory.levels:
            if level.enabled:
                # hits at this level were served here
                total += int(level.hits * (level.bytes_in / level.accesses)) \
                    if level.accesses else 0
        return total

    @property
    def effective_throughput(self) -> float:
        """Requested bytes over the phase's memory time (bytes/s)."""
        if self.memory_time_s <= 0:
            return 0.0
        return self.memory.bytes_requested / self.memory_time_s


def combine_compute_memory(
    compute_s: float, memory_s: float, hide_factor: float
) -> float:
    """Combine compute and memory time with partial overlap.

    ``hide_factor`` is the fraction of the shorter component hidden
    under the longer one: 1.0 gives ``max`` (perfect latency hiding, the
    GPU model), 0.0 gives the serial sum.
    """
    if not 0.0 <= hide_factor <= 1.0:
        raise ValueError(f"hide_factor must be in [0, 1], got {hide_factor}")
    longer = max(compute_s, memory_s)
    shorter = min(compute_s, memory_s)
    return longer + (1.0 - hide_factor) * shorter
