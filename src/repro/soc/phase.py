"""Shared phase-execution result types for the processor models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.soc.hierarchy import BatchMemoryResult, MemoryResult


@dataclass
class PhaseResult:
    """Timing of one processor phase (a CPU routine or a GPU kernel)
    executed standalone on its hierarchy.

    ``time_s`` is the standalone duration.  When phases run overlapped
    under zero-copy the event engine recombines ``compute_time_s`` and
    the memory demand instead of using ``time_s`` directly.
    """

    name: str
    processor: str
    compute_time_s: float
    memory_time_s: float
    time_s: float
    memory: MemoryResult

    @property
    def cache_served_bytes(self) -> int:
        """Bytes served by any enabled cache level."""
        total = 0
        for level in self.memory.levels:
            if level.enabled:
                # hits at this level were served here
                total += int(level.hits * (level.bytes_in / level.accesses)) \
                    if level.accesses else 0
        return total

    @property
    def effective_throughput(self) -> float:
        """Requested bytes over the phase's memory time (bytes/s)."""
        if self.memory_time_s <= 0:
            return 0.0
        return self.memory.bytes_requested / self.memory_time_s


@dataclass(frozen=True)
class BatchPhaseResult:
    """Per-stream phase timings of a batch run (arrays aligned with the
    input :class:`~repro.soc.analytic.SummaryBatch`)."""

    processor: str
    compute_time_s: np.ndarray
    memory_time_s: np.ndarray
    time_s: np.ndarray
    memory: BatchMemoryResult

    def __len__(self) -> int:
        return len(self.time_s)

    @property
    def throughput(self) -> np.ndarray:
        """Requested bytes over total phase time (bytes/s), per stream."""
        return np.where(
            self.time_s > 0,
            self.memory.bytes_requested / np.where(self.time_s > 0,
                                                   self.time_s, 1.0),
            0.0,
        )


def combine_compute_memory_array(
    compute_s: np.ndarray, memory_s: np.ndarray, hide_factor: float
) -> np.ndarray:
    """Vectorized :func:`combine_compute_memory`."""
    if not 0.0 <= hide_factor <= 1.0:
        raise ValueError(f"hide_factor must be in [0, 1], got {hide_factor}")
    longer = np.maximum(compute_s, memory_s)
    shorter = np.minimum(compute_s, memory_s)
    return longer + (1.0 - hide_factor) * shorter


def combine_compute_memory(
    compute_s: float, memory_s: float, hide_factor: float
) -> float:
    """Combine compute and memory time with partial overlap.

    ``hide_factor`` is the fraction of the shorter component hidden
    under the longer one: 1.0 gives ``max`` (perfect latency hiding, the
    GPU model), 0.0 gives the serial sum.
    """
    if not 0.0 <= hide_factor <= 1.0:
        raise ValueError(f"hide_factor must be in [0, 1], got {hide_factor}")
    longer = max(compute_s, memory_s)
    shorter = min(compute_s, memory_s)
    return longer + (1.0 - hide_factor) * shorter
