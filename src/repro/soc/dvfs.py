"""DVFS operating points (an extension beyond the paper).

Real Jetson boards expose power modes (``nvpmodel``): MAXN, 15 W,
10 W …, each capping CPU/GPU/EMC clocks.  Because the paper's decision
depends on the *ratio* of compute speed to the communication paths,
the best communication model can change with the power mode — this
module makes that explorable.

An :class:`OperatingPoint` scales the clock domains of a board preset:

- the CPU domain (core frequency and its cache bandwidths),
- the GPU domain (SM frequency and its cache bandwidths),
- the memory domain (DRAM/EMC bandwidth, the interconnect, the
  zero-copy paths, and the copy engine),

plus the active-power rails (dynamic power ≈ linear in frequency here;
voltage scaling is folded into the per-point power factors).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.soc.board import BoardConfig
from repro.soc.dram import DRAMConfig
from repro.soc.interconnect import InterconnectConfig


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS point, as scalings of the MAXN preset."""

    name: str
    cpu_scale: float = 1.0
    gpu_scale: float = 1.0
    memory_scale: float = 1.0
    power_scale: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("cpu_scale", "gpu_scale", "memory_scale",
                           "power_scale"):
            value = getattr(self, field_name)
            if not 0.05 <= value <= 2.0:
                raise ConfigurationError(
                    f"{self.name}: {field_name} must be in [0.05, 2.0], "
                    f"got {value}"
                )


#: Representative nvpmodel-style points (clock ratios approximate the
#: published mode tables; MAXN is the calibrated preset).
JETSON_POWER_MODES: Dict[str, OperatingPoint] = {
    "maxn": OperatingPoint(name="maxn"),
    "15w": OperatingPoint(name="15w", cpu_scale=0.75, gpu_scale=0.65,
                          memory_scale=0.80, power_scale=0.55),
    "10w": OperatingPoint(name="10w", cpu_scale=0.55, gpu_scale=0.45,
                          memory_scale=0.60, power_scale=0.35),
}


def available_power_modes() -> List[str]:
    """Names accepted by :func:`apply_operating_point`."""
    return sorted(JETSON_POWER_MODES)


def get_power_mode(name: str) -> OperatingPoint:
    """Look up a predefined operating point."""
    try:
        return JETSON_POWER_MODES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown power mode {name!r}; "
            f"available: {', '.join(available_power_modes())}"
        ) from None


def apply_operating_point(board: BoardConfig,
                          point: OperatingPoint) -> BoardConfig:
    """A board variant running at ``point``.

    Every clock-domain-derived quantity scales with its domain; the
    cache geometries, coherence behaviour, and IPC stay fixed.
    """
    cpu = replace(
        board.cpu,
        frequency_hz=board.cpu.frequency_hz * point.cpu_scale,
        l1_bandwidth=board.cpu.l1_bandwidth * point.cpu_scale,
        llc_bandwidth=board.cpu.llc_bandwidth * point.cpu_scale,
    )
    gpu = replace(
        board.gpu,
        frequency_hz=board.gpu.frequency_hz * point.gpu_scale,
        l1_bandwidth=board.gpu.l1_bandwidth * point.gpu_scale,
        llc_bandwidth=board.gpu.llc_bandwidth * point.gpu_scale,
    )
    dram = DRAMConfig(
        peak_bandwidth=board.dram.peak_bandwidth * point.memory_scale,
        efficiency=board.dram.efficiency,
        latency_s=board.dram.latency_s / point.memory_scale,
    )
    interconnect = InterconnectConfig(
        total_bandwidth=board.interconnect.total_bandwidth * point.memory_scale,
        arbitration_overhead=board.interconnect.arbitration_overhead,
    )
    zero_copy = replace(
        board.zero_copy,
        gpu_zc_bandwidth=board.zero_copy.gpu_zc_bandwidth * point.memory_scale,
        cpu_zc_bandwidth=board.zero_copy.cpu_zc_bandwidth * point.memory_scale,
        cpu_uncached_latency_s=(
            board.zero_copy.cpu_uncached_latency_s / point.memory_scale
        ),
    )
    energy = replace(
        board.energy,
        cpu_active_power_w=board.energy.cpu_active_power_w * point.power_scale,
        gpu_active_power_w=board.energy.gpu_active_power_w * point.power_scale,
        static_power_w=board.energy.static_power_w
        * (0.5 + 0.5 * point.power_scale),
    )
    return replace(
        board,
        name=f"{board.name}@{point.name}",
        display_name=f"{board.display_name} [{point.name}]",
        cpu=cpu,
        gpu=gpu,
        dram=dram,
        interconnect=interconnect,
        zero_copy=zero_copy,
        energy=energy,
        copy_engine_bandwidth=board.copy_engine_bandwidth * point.memory_scale,
    )
