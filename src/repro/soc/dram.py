"""DRAM timing and traffic model.

The shared LPDDR of a Jetson board is modelled as a bandwidth resource
with a fixed access latency and a utilization efficiency (row-buffer and
refresh overheads folded into one factor).  Concurrent agents share the
effective bandwidth through :mod:`repro.soc.interconnect`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DRAMConfig:
    """Datasheet-level DRAM description.

    Attributes:
        peak_bandwidth: bytes/s at the pins.
        efficiency: achievable fraction of peak for streaming traffic.
        latency_s: idle-system access latency (seconds).
    """

    peak_bandwidth: float
    efficiency: float = 0.75
    latency_s: float = 120e-9

    def __post_init__(self) -> None:
        if self.peak_bandwidth <= 0:
            raise ConfigurationError("DRAM peak bandwidth must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"DRAM efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.latency_s < 0:
            raise ConfigurationError("DRAM latency cannot be negative")

    @property
    def effective_bandwidth(self) -> float:
        """Sustainable streaming bandwidth in bytes/s."""
        return self.peak_bandwidth * self.efficiency


@dataclass
class DRAMModel:
    """Stateful DRAM: accumulates traffic and answers timing queries."""

    config: DRAMConfig
    bytes_read: int = field(default=0, init=False)
    bytes_written: int = field(default=0, init=False)

    @property
    def total_bytes(self) -> int:
        """All bytes moved through DRAM so far."""
        return self.bytes_read + self.bytes_written

    def record(self, read_bytes: int, written_bytes: int) -> None:
        """Account traffic (used by the hierarchy and the copy engine)."""
        if read_bytes < 0 or written_bytes < 0:
            raise ConfigurationError("traffic cannot be negative")
        self.bytes_read += read_bytes
        self.bytes_written += written_bytes

    def transfer_time(self, num_bytes: int, bandwidth_cap: float = float("inf")) -> float:
        """Time to stream ``num_bytes`` at the effective bandwidth,
        optionally capped by a narrower requester port."""
        if num_bytes <= 0:
            return 0.0
        rate = min(self.config.effective_bandwidth, bandwidth_cap)
        return self.config.latency_s + num_bytes / rate

    def reset(self) -> None:
        """Clear traffic counters."""
        self.bytes_read = 0
        self.bytes_written = 0
