"""Closed-form cache behaviour estimators for regular access patterns.

Exact set-associative simulation costs O(accesses) in Python; the
paper's third micro-benchmark streams 2^27 floats, which would take
minutes per run.  For the regular patterns the micro-benchmarks use
(linear sweeps, single-address loops, max-miss sparse walks), LRU
behaviour has a well-known closed form:

- a cyclic sweep whose footprint fits in the cache hits on every warm
  access and misses once per line on the cold pass;
- a cyclic sweep larger than the cache thrashes: with true LRU every
  line misses on *every* pass;
- a single-address loop misses once, then always hits;
- a distinct-line random walk misses everywhere (until the footprint
  fits and the pass repeats).

These estimators are cross-validated against the exact simulator in
``tests/soc/test_analytic.py`` — that validation tolerance is the
contract letting the benchmarks trust the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.errors import SimulationError
from repro.soc.cache import CacheConfig
from repro.soc.stream import AccessStream, PatternKind

#: Fraction of nominal capacity a sweep can occupy before conflict
#: misses appear.  1.0 is the fully-associative ideal; the exact
#: simulator shows sequential sweeps suffer no set imbalance, so the
#: ideal is also the correct value here.
CAPACITY_FACTOR = 1.0

_SWEEP_PATTERNS = (
    PatternKind.LINEAR,
    PatternKind.FRACTION,
    PatternKind.TILED,
    PatternKind.STRIDED,
)


def supports(pattern: PatternKind) -> bool:
    """True when the analytic path can handle ``pattern``."""
    return pattern in _SWEEP_PATTERNS or pattern in (
        PatternKind.SINGLE_ADDRESS,
        PatternKind.SPARSE,
    )


@dataclass(frozen=True)
class StreamSummary:
    """The shape parameters the estimators need, without addresses.

    Summaries chain: the miss traffic one cache level emits is itself a
    summary (see :func:`derive_miss_summary`), which is how the
    hierarchy estimates multi-level behaviour without materializing
    intermediate traces.
    """

    pattern: PatternKind
    per_pass: int
    repeats: int
    footprint_bytes: int
    write_fraction: float
    transaction_size: int

    @classmethod
    def from_stream(cls, stream: AccessStream) -> "StreamSummary":
        """Summarize a materialized :class:`AccessStream`."""
        return cls(
            pattern=stream.pattern,
            per_pass=stream.transactions_per_pass,
            repeats=stream.repeats,
            footprint_bytes=stream.footprint_bytes or 0,
            write_fraction=stream.write_fraction,
            transaction_size=stream.transaction_size,
        )

    @property
    def total(self) -> int:
        """Transactions across all replays."""
        return self.per_pass * self.repeats

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all replays."""
        return self.total * self.transaction_size


@dataclass(frozen=True)
class LevelEstimate:
    """Estimated behaviour of one cache level for one stream.

    Counts are totals across every replay.  ``cold_misses`` and
    ``warm_misses_per_pass`` decompose the total so the next level's
    incoming traffic can be derived.
    """

    accesses: int
    hits: int
    misses: int
    writeback_lines: int
    cold_misses: int
    warm_misses_per_pass: int

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


def _estimate_disabled(summary: StreamSummary) -> LevelEstimate:
    total = summary.total
    return LevelEstimate(
        accesses=total,
        hits=0,
        misses=total,
        writeback_lines=0,
        cold_misses=summary.per_pass,
        warm_misses_per_pass=summary.per_pass,
    )


def _estimate_single_address(summary: StreamSummary, cold_start: bool) -> LevelEstimate:
    total = summary.total
    misses = 1 if cold_start else 0
    return LevelEstimate(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=0,
        cold_misses=misses,
        warm_misses_per_pass=0,
    )


def _estimate_sparse(
    summary: StreamSummary, config: CacheConfig, cold_start: bool
) -> LevelEstimate:
    total = summary.total
    footprint = summary.footprint_bytes
    lines = -(-footprint // config.line_size) if footprint else 0
    fits = footprint <= config.size_bytes * CAPACITY_FACTOR
    if fits:
        cold = min(summary.per_pass, lines) if cold_start else 0
        misses = cold
        warm = 0
        writebacks = 0
    else:
        misses = total
        cold = summary.per_pass
        warm = summary.per_pass
        writebacks = (
            int(total * summary.write_fraction) if config.write_back else 0
        )
    return LevelEstimate(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=writebacks,
        cold_misses=cold,
        warm_misses_per_pass=warm,
    )


def _estimate_sweep(
    summary: StreamSummary, config: CacheConfig, cold_start: bool
) -> LevelEstimate:
    total = summary.total
    footprint = summary.footprint_bytes
    lines = min(summary.per_pass, max(1, -(-footprint // config.line_size))) \
        if footprint else 0
    has_writes = summary.write_fraction > 0.0 and config.write_back

    # A sequential sweep spreads its lines uniformly over the sets.
    # A set holding more lines than its ways thrashes under true LRU
    # (every one of its lines misses every pass); a set within its ways
    # keeps them all resident after the cold pass.  Near the capacity
    # boundary only the ceil-loaded sets thrash — the exact simulator
    # confirms this per-set granularity.
    sets = config.num_sets
    ways = config.ways
    floor_lines = lines // sets
    overfull_sets = lines % sets
    if floor_lines + (1 if overfull_sets else 0) <= ways:
        thrashing_lines = 0
        thrashing_sets = 0
    elif floor_lines > ways:
        thrashing_lines = lines
        thrashing_sets = sets
    else:  # floor_lines == ways and some sets hold ways + 1 lines
        thrashing_lines = overfull_sets * (floor_lines + 1)
        thrashing_sets = overfull_sets

    cold = lines if cold_start else thrashing_lines
    warm = thrashing_lines
    misses = cold + warm * (summary.repeats - 1)
    if has_writes and thrashing_lines:
        # Each thrashing dirty line is evicted before reuse; the lines
        # still resident in the thrashing sets when the run ends (ways
        # per set) are flushed later, not written back here.
        resident_at_end = thrashing_sets * ways
        writebacks = max(
            0, thrashing_lines * summary.repeats - resident_at_end
        )
    else:
        writebacks = 0
    misses = min(misses, total)
    return LevelEstimate(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=writebacks,
        cold_misses=cold,
        warm_misses_per_pass=warm,
    )


def estimate_level(
    summary: StreamSummary,
    config: CacheConfig,
    enabled: bool = True,
    cold_start: bool = True,
) -> LevelEstimate:
    """Estimate one cache level's response to a stream summary."""
    if not supports(summary.pattern):
        raise SimulationError(
            f"analytic estimator does not support pattern {summary.pattern}"
        )
    if summary.total == 0:
        return LevelEstimate(0, 0, 0, 0, 0, 0)
    if not enabled:
        return _estimate_disabled(summary)
    if summary.pattern is PatternKind.SINGLE_ADDRESS:
        return _estimate_single_address(summary, cold_start)
    if summary.pattern is PatternKind.SPARSE:
        return _estimate_sparse(summary, config, cold_start)
    return _estimate_sweep(summary, config, cold_start)


def derive_miss_summaries(
    summary: StreamSummary,
    estimate: LevelEstimate,
    level_config: CacheConfig,
    level_enabled: bool,
) -> List[StreamSummary]:
    """The stream(s) a level's misses present to the level below.

    An enabled cache refills at line granularity, so the downstream
    transaction size is its line size.  A partially-thrashing footprint
    emits two distinct components: the *recurring* traffic of the
    overfull sets (small footprint, repeats every pass — it will hit in
    the next level once warm) and the *one-shot* cold fills of the
    lines that stay resident afterwards.  Returns an empty list when
    there are no misses; a disabled cache passes the summary through
    unchanged.
    """
    if estimate.misses == 0:
        return []
    if not level_enabled:
        return [summary]
    line = level_config.line_size
    # Refills are reads; dirty evictions are tracked separately as
    # writeback traffic by the hierarchy.
    pattern = summary.pattern
    if pattern is PatternKind.SINGLE_ADDRESS:
        pattern = PatternKind.LINEAR

    def component(per_pass: int, repeats: int) -> StreamSummary:
        return replace(
            summary,
            pattern=pattern,
            per_pass=per_pass,
            repeats=repeats,
            footprint_bytes=per_pass * line,
            write_fraction=0.0,
            transaction_size=line,
        )

    components: List[StreamSummary] = []
    warm = estimate.warm_misses_per_pass
    if warm > 0:
        components.append(component(warm, summary.repeats))
    cold_only = estimate.cold_misses - warm
    if cold_only > 0:
        components.append(component(cold_only, 1))
    return components


def derive_miss_summary(
    summary: StreamSummary,
    estimate: LevelEstimate,
    level_config: CacheConfig,
    level_enabled: bool,
) -> Optional[StreamSummary]:
    """Dominant component of :func:`derive_miss_summaries`.

    Kept for callers that only need the homogeneous cases (fully
    fitting or fully thrashing footprints); the hierarchy uses the
    multi-component form.
    """
    components = derive_miss_summaries(summary, estimate, level_config,
                                       level_enabled)
    return components[0] if components else None
