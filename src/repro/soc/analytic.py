"""Closed-form cache behaviour estimators for regular access patterns.

Exact set-associative simulation costs O(accesses) in Python; the
paper's third micro-benchmark streams 2^27 floats, which would take
minutes per run.  For the regular patterns the micro-benchmarks use
(linear sweeps, single-address loops, max-miss sparse walks), LRU
behaviour has a well-known closed form:

- a cyclic sweep whose footprint fits in the cache hits on every warm
  access and misses once per line on the cold pass;
- a cyclic sweep larger than the cache thrashes: with true LRU every
  line misses on *every* pass;
- a single-address loop misses once, then always hits;
- a distinct-line random walk misses everywhere (until the footprint
  fits and the pass repeats).

These estimators are cross-validated against the exact simulator in
``tests/soc/test_analytic.py`` — that validation tolerance is the
contract letting the benchmarks trust the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.soc.cache import CacheConfig
from repro.soc.stream import AccessStream, PatternKind

#: Fraction of nominal capacity a sweep can occupy before conflict
#: misses appear.  1.0 is the fully-associative ideal; the exact
#: simulator shows sequential sweeps suffer no set imbalance, so the
#: ideal is also the correct value here.
CAPACITY_FACTOR = 1.0

_SWEEP_PATTERNS = (
    PatternKind.LINEAR,
    PatternKind.FRACTION,
    PatternKind.TILED,
    PatternKind.STRIDED,
)


def supports(pattern: PatternKind) -> bool:
    """True when the analytic path can handle ``pattern``."""
    return pattern in _SWEEP_PATTERNS or pattern in (
        PatternKind.SINGLE_ADDRESS,
        PatternKind.SPARSE,
    )


@dataclass(frozen=True)
class StreamSummary:
    """The shape parameters the estimators need, without addresses.

    Summaries chain: the miss traffic one cache level emits is itself a
    summary (see :func:`derive_miss_summary`), which is how the
    hierarchy estimates multi-level behaviour without materializing
    intermediate traces.
    """

    pattern: PatternKind
    per_pass: int
    repeats: int
    footprint_bytes: int
    write_fraction: float
    transaction_size: int

    @classmethod
    def from_stream(cls, stream: AccessStream) -> "StreamSummary":
        """Summarize a materialized :class:`AccessStream`."""
        return cls(
            pattern=stream.pattern,
            per_pass=stream.transactions_per_pass,
            repeats=stream.repeats,
            footprint_bytes=stream.footprint_bytes or 0,
            write_fraction=stream.write_fraction,
            transaction_size=stream.transaction_size,
        )

    @property
    def total(self) -> int:
        """Transactions across all replays."""
        return self.per_pass * self.repeats

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all replays."""
        return self.total * self.transaction_size


@dataclass(frozen=True)
class LevelEstimate:
    """Estimated behaviour of one cache level for one stream.

    Counts are totals across every replay.  ``cold_misses`` and
    ``warm_misses_per_pass`` decompose the total so the next level's
    incoming traffic can be derived.
    """

    accesses: int
    hits: int
    misses: int
    writeback_lines: int
    cold_misses: int
    warm_misses_per_pass: int

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


def _estimate_disabled(summary: StreamSummary) -> LevelEstimate:
    total = summary.total
    return LevelEstimate(
        accesses=total,
        hits=0,
        misses=total,
        writeback_lines=0,
        cold_misses=summary.per_pass,
        warm_misses_per_pass=summary.per_pass,
    )


def _estimate_single_address(summary: StreamSummary, cold_start: bool) -> LevelEstimate:
    total = summary.total
    misses = 1 if cold_start else 0
    return LevelEstimate(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=0,
        cold_misses=misses,
        warm_misses_per_pass=0,
    )


def _estimate_sparse(
    summary: StreamSummary, config: CacheConfig, cold_start: bool
) -> LevelEstimate:
    total = summary.total
    footprint = summary.footprint_bytes
    lines = -(-footprint // config.line_size) if footprint else 0
    fits = footprint <= config.size_bytes * CAPACITY_FACTOR
    if fits:
        cold = min(summary.per_pass, lines) if cold_start else 0
        misses = cold
        warm = 0
        writebacks = 0
    else:
        misses = total
        cold = summary.per_pass
        warm = summary.per_pass
        writebacks = (
            int(total * summary.write_fraction) if config.write_back else 0
        )
    return LevelEstimate(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=writebacks,
        cold_misses=cold,
        warm_misses_per_pass=warm,
    )


def _estimate_sweep(
    summary: StreamSummary, config: CacheConfig, cold_start: bool
) -> LevelEstimate:
    total = summary.total
    footprint = summary.footprint_bytes
    lines = min(summary.per_pass, max(1, -(-footprint // config.line_size))) \
        if footprint else 0
    has_writes = summary.write_fraction > 0.0 and config.write_back

    # A sequential sweep spreads its lines uniformly over the sets.
    # A set holding more lines than its ways thrashes under true LRU
    # (every one of its lines misses every pass); a set within its ways
    # keeps them all resident after the cold pass.  Near the capacity
    # boundary only the ceil-loaded sets thrash — the exact simulator
    # confirms this per-set granularity.
    sets = config.num_sets
    ways = config.ways
    floor_lines = lines // sets
    overfull_sets = lines % sets
    if floor_lines + (1 if overfull_sets else 0) <= ways:
        thrashing_lines = 0
        thrashing_sets = 0
    elif floor_lines > ways:
        thrashing_lines = lines
        thrashing_sets = sets
    else:  # floor_lines == ways and some sets hold ways + 1 lines
        thrashing_lines = overfull_sets * (floor_lines + 1)
        thrashing_sets = overfull_sets

    cold = lines if cold_start else thrashing_lines
    warm = thrashing_lines
    misses = cold + warm * (summary.repeats - 1)
    if has_writes and thrashing_lines:
        # Each thrashing dirty line is evicted before reuse; the lines
        # still resident in the thrashing sets when the run ends (ways
        # per set) are flushed later, not written back here.
        resident_at_end = thrashing_sets * ways
        writebacks = max(
            0, thrashing_lines * summary.repeats - resident_at_end
        )
    else:
        writebacks = 0
    misses = min(misses, total)
    return LevelEstimate(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=writebacks,
        cold_misses=cold,
        warm_misses_per_pass=warm,
    )


def estimate_level(
    summary: StreamSummary,
    config: CacheConfig,
    enabled: bool = True,
    cold_start: bool = True,
) -> LevelEstimate:
    """Estimate one cache level's response to a stream summary."""
    if summary.total == 0:
        # An idle stream is idle regardless of its pattern tag — empty
        # CUSTOM streams (a task with no memory pattern) must not trip
        # the supported-pattern check below.
        return LevelEstimate(0, 0, 0, 0, 0, 0)
    if not supports(summary.pattern):
        raise SimulationError(
            f"analytic estimator does not support pattern {summary.pattern}"
        )
    if not enabled:
        return _estimate_disabled(summary)
    if summary.pattern is PatternKind.SINGLE_ADDRESS:
        return _estimate_single_address(summary, cold_start)
    if summary.pattern is PatternKind.SPARSE:
        return _estimate_sparse(summary, config, cold_start)
    return _estimate_sweep(summary, config, cold_start)


def derive_miss_summaries(
    summary: StreamSummary,
    estimate: LevelEstimate,
    level_config: CacheConfig,
    level_enabled: bool,
) -> List[StreamSummary]:
    """The stream(s) a level's misses present to the level below.

    An enabled cache refills at line granularity, so the downstream
    transaction size is its line size.  A partially-thrashing footprint
    emits two distinct components: the *recurring* traffic of the
    overfull sets (small footprint, repeats every pass — it will hit in
    the next level once warm) and the *one-shot* cold fills of the
    lines that stay resident afterwards.  Returns an empty list when
    there are no misses; a disabled cache passes the summary through
    unchanged.
    """
    if estimate.misses == 0:
        return []
    if not level_enabled:
        return [summary]
    line = level_config.line_size
    # Refills are reads; dirty evictions are tracked separately as
    # writeback traffic by the hierarchy.
    pattern = summary.pattern
    if pattern is PatternKind.SINGLE_ADDRESS:
        pattern = PatternKind.LINEAR

    def component(per_pass: int, repeats: int) -> StreamSummary:
        return replace(
            summary,
            pattern=pattern,
            per_pass=per_pass,
            repeats=repeats,
            footprint_bytes=per_pass * line,
            write_fraction=0.0,
            transaction_size=line,
        )

    components: List[StreamSummary] = []
    warm = estimate.warm_misses_per_pass
    if warm > 0:
        components.append(component(warm, summary.repeats))
    cold_only = estimate.cold_misses - warm
    if cold_only > 0:
        components.append(component(cold_only, 1))
    return components


# ----------------------------------------------------------------------
# vectorized batch layer
# ----------------------------------------------------------------------
#
# The estimators above answer one stream at a time; a micro-benchmark
# sweep asks the same question for dozens of streams that differ only in
# their shape parameters.  A SummaryBatch carries those parameters as
# arrays so one sweep is a handful of numpy expressions instead of a
# Python loop; the arithmetic mirrors the scalar estimators line for
# line and is cross-validated against them in ``tests/perf``.


@dataclass(frozen=True)
class SummaryBatch:
    """N stream summaries sharing one pattern, as parallel arrays."""

    pattern: PatternKind
    per_pass: np.ndarray
    repeats: np.ndarray
    footprint_bytes: np.ndarray
    write_fraction: np.ndarray
    transaction_size: np.ndarray

    @classmethod
    def build(
        cls,
        pattern: PatternKind,
        per_pass,
        repeats,
        footprint_bytes,
        write_fraction,
        transaction_size,
    ) -> "SummaryBatch":
        """Broadcast scalars/sequences into aligned int64/float arrays."""
        per_pass = np.atleast_1d(np.asarray(per_pass, dtype=np.int64))
        n = len(per_pass)

        def as_int(value):
            return np.broadcast_to(
                np.asarray(value, dtype=np.int64), (n,)
            ).copy()

        return cls(
            pattern=pattern,
            per_pass=per_pass,
            repeats=as_int(repeats),
            footprint_bytes=as_int(footprint_bytes),
            write_fraction=np.broadcast_to(
                np.asarray(write_fraction, dtype=np.float64), (n,)
            ).copy(),
            transaction_size=as_int(transaction_size),
        )

    def __len__(self) -> int:
        return len(self.per_pass)

    @property
    def total(self) -> np.ndarray:
        """Transactions across all replays, per stream."""
        return self.per_pass * self.repeats

    @property
    def total_bytes(self) -> np.ndarray:
        """Bytes moved across all replays, per stream."""
        return self.total * self.transaction_size

    def summary(self, index: int) -> StreamSummary:
        """The scalar summary of stream ``index`` (for cross-checks)."""
        return StreamSummary(
            pattern=self.pattern,
            per_pass=int(self.per_pass[index]),
            repeats=int(self.repeats[index]),
            footprint_bytes=int(self.footprint_bytes[index]),
            write_fraction=float(self.write_fraction[index]),
            transaction_size=int(self.transaction_size[index]),
        )


@dataclass(frozen=True)
class LevelEstimateBatch:
    """Per-stream :class:`LevelEstimate` fields as arrays."""

    accesses: np.ndarray
    hits: np.ndarray
    misses: np.ndarray
    writeback_lines: np.ndarray
    cold_misses: np.ndarray
    warm_misses_per_pass: np.ndarray


def _ceil_div(numerator: np.ndarray, denominator: int) -> np.ndarray:
    return -(-numerator // denominator)


def _estimate_disabled_batch(batch: SummaryBatch) -> LevelEstimateBatch:
    total = batch.total
    return LevelEstimateBatch(
        accesses=total,
        hits=np.zeros_like(total),
        misses=total,
        writeback_lines=np.zeros_like(total),
        cold_misses=batch.per_pass.copy(),
        warm_misses_per_pass=batch.per_pass.copy(),
    )


def _estimate_single_address_batch(
    batch: SummaryBatch, cold_start: bool
) -> LevelEstimateBatch:
    total = batch.total
    misses = np.where(total > 0, 1 if cold_start else 0, 0).astype(np.int64)
    return LevelEstimateBatch(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=np.zeros_like(total),
        cold_misses=misses,
        warm_misses_per_pass=np.zeros_like(total),
    )


def _estimate_sparse_batch(
    batch: SummaryBatch, config: CacheConfig, cold_start: bool
) -> LevelEstimateBatch:
    total = batch.total
    footprint = batch.footprint_bytes
    lines = np.where(footprint > 0, _ceil_div(footprint, config.line_size), 0)
    fits = footprint <= config.size_bytes * CAPACITY_FACTOR
    cold_fit = (
        np.minimum(batch.per_pass, lines) if cold_start else np.zeros_like(lines)
    )
    cold = np.where(fits, cold_fit, batch.per_pass)
    warm = np.where(fits, 0, batch.per_pass)
    misses = np.where(fits, cold_fit, total)
    if config.write_back:
        writebacks = np.where(
            fits, 0, (total * batch.write_fraction).astype(np.int64)
        )
    else:
        writebacks = np.zeros_like(total)
    return LevelEstimateBatch(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=writebacks,
        cold_misses=cold,
        warm_misses_per_pass=warm,
    )


def _estimate_sweep_batch(
    batch: SummaryBatch, config: CacheConfig, cold_start: bool
) -> LevelEstimateBatch:
    total = batch.total
    footprint = batch.footprint_bytes
    lines = np.where(
        footprint > 0,
        np.minimum(
            batch.per_pass,
            np.maximum(1, _ceil_div(footprint, config.line_size)),
        ),
        0,
    )
    sets = config.num_sets
    ways = config.ways
    floor_lines = lines // sets
    overfull_sets = lines % sets
    fits = floor_lines + (overfull_sets > 0) <= ways
    full_thrash = floor_lines > ways
    thrashing_lines = np.where(
        fits, 0, np.where(full_thrash, lines, overfull_sets * (floor_lines + 1))
    )
    thrashing_sets = np.where(
        fits, 0, np.where(full_thrash, sets, overfull_sets)
    )
    cold = lines if cold_start else thrashing_lines
    warm = thrashing_lines
    misses = np.minimum(cold + warm * (batch.repeats - 1), total)
    has_writes = (batch.write_fraction > 0.0) & config.write_back
    writebacks = np.where(
        has_writes & (thrashing_lines > 0),
        np.maximum(0, thrashing_lines * batch.repeats - thrashing_sets * ways),
        0,
    )
    return LevelEstimateBatch(
        accesses=total,
        hits=total - misses,
        misses=misses,
        writeback_lines=writebacks,
        cold_misses=cold,
        warm_misses_per_pass=warm,
    )


def estimate_level_batch(
    batch: SummaryBatch,
    config: CacheConfig,
    enabled: bool = True,
    cold_start: bool = True,
) -> LevelEstimateBatch:
    """Vectorized :func:`estimate_level` over a batch of summaries.

    Streams with zero transactions contribute all-zero rows, matching
    the scalar early return.
    """
    if not supports(batch.pattern):
        raise SimulationError(
            f"analytic estimator does not support pattern {batch.pattern}"
        )
    if not enabled:
        est = _estimate_disabled_batch(batch)
    elif batch.pattern is PatternKind.SINGLE_ADDRESS:
        est = _estimate_single_address_batch(batch, cold_start)
    elif batch.pattern is PatternKind.SPARSE:
        est = _estimate_sparse_batch(batch, config, cold_start)
    else:
        est = _estimate_sweep_batch(batch, config, cold_start)
    idle = batch.total == 0
    if not idle.any():
        return est
    keep = ~idle
    return LevelEstimateBatch(
        accesses=est.accesses * keep,
        hits=est.hits * keep,
        misses=est.misses * keep,
        writeback_lines=est.writeback_lines * keep,
        cold_misses=est.cold_misses * keep,
        warm_misses_per_pass=est.warm_misses_per_pass * keep,
    )


def derive_miss_batches(
    batch: SummaryBatch,
    estimate: LevelEstimateBatch,
    level_config: CacheConfig,
    level_enabled: bool,
) -> List[SummaryBatch]:
    """Vectorized :func:`derive_miss_summaries`.

    Instead of dropping empty components per stream, components keep
    their full batch width with zeroed rows: a row with ``per_pass == 0``
    is estimated as all-zero downstream, so the totals match the scalar
    chain exactly.
    """
    if not level_enabled:
        return [batch]
    line = level_config.line_size
    pattern = batch.pattern
    if pattern is PatternKind.SINGLE_ADDRESS:
        pattern = PatternKind.LINEAR

    def component(per_pass: np.ndarray, repeats: np.ndarray) -> SummaryBatch:
        return SummaryBatch(
            pattern=pattern,
            per_pass=per_pass,
            repeats=repeats,
            footprint_bytes=per_pass * line,
            write_fraction=np.zeros(len(batch), dtype=np.float64),
            transaction_size=np.full(len(batch), line, dtype=np.int64),
        )

    components: List[SummaryBatch] = []
    warm = estimate.warm_misses_per_pass
    if warm.any():
        components.append(component(warm, batch.repeats))
    cold_only = np.maximum(estimate.cold_misses - warm, 0)
    if cold_only.any():
        components.append(component(cold_only, np.ones_like(cold_only)))
    return components


def derive_miss_summary(
    summary: StreamSummary,
    estimate: LevelEstimate,
    level_config: CacheConfig,
    level_enabled: bool,
) -> Optional[StreamSummary]:
    """Dominant component of :func:`derive_miss_summaries`.

    Kept for callers that only need the homogeneous cases (fully
    fitting or fully thrashing footprints); the hierarchy uses the
    multi-component form.
    """
    components = derive_miss_summaries(summary, estimate, level_config,
                                       level_enabled)
    return components[0] if components else None
