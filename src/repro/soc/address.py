"""Physical address space, regions, and buffer allocation.

On the Jetson boards the CPU and iGPU physically share one DRAM.  The
communication models differ in how that space is *logically* organized:

- **Standard copy (SC)** partitions it into a CPU region and a GPU
  region and copies buffers between them.
- **Unified memory (UM)** presents one virtual space whose pages
  migrate on demand.
- **Zero-copy (ZC)** pins a region that both processors address
  directly.

:class:`AddressSpace` models the physical space with a simple bump
allocator per region; :class:`Buffer` is a typed allocation within a
region.  Addresses are plain integers (byte granularity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AddressError, AllocationError
from repro.units import is_power_of_two

#: Default allocation alignment.  Matches the largest cache line we
#: model so that no buffer straddles a line it does not own.
DEFAULT_ALIGNMENT = 128


class RegionKind(enum.Enum):
    """Logical role of a memory region under a communication model."""

    CPU_PARTITION = "cpu_partition"
    GPU_PARTITION = "gpu_partition"
    PINNED = "pinned"
    UNIFIED = "unified"
    #: Non-shared allocations of a zero-copy application: they stay
    #: cacheable even while the pinned mapping is uncacheable.
    PRIVATE = "private"


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0 or not is_power_of_two(alignment):
        raise AddressError(f"alignment must be a positive power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass
class MemoryRegion:
    """A contiguous span of the physical address space.

    Allocation is a bump pointer: buffers are never freed individually,
    only the whole region is reset.  This mirrors how the benchmarks and
    applications use memory (allocate once, reuse every iteration).
    """

    name: str
    base: int
    size: int
    kind: RegionKind
    _cursor: int = field(default=0, init=False, repr=False)
    _buffers: Dict[str, "Buffer"] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise AddressError(
                f"region {self.name!r} must have base >= 0 and size > 0, "
                f"got base={self.base}, size={self.size}"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    @property
    def bytes_used(self) -> int:
        """Bytes consumed by allocations (including alignment padding)."""
        return self._cursor

    @property
    def bytes_free(self) -> int:
        """Bytes still available for allocation."""
        return self.size - self._cursor

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this region."""
        return self.base <= address < self.end

    def allocate(
        self,
        name: str,
        size: int,
        element_size: int = 4,
        alignment: int = DEFAULT_ALIGNMENT,
    ) -> "Buffer":
        """Allocate a named buffer of ``size`` bytes.

        Raises :class:`AllocationError` when the region is full and
        :class:`AddressError` for malformed requests.
        """
        if size <= 0:
            raise AddressError(f"buffer {name!r}: size must be positive, got {size}")
        if element_size <= 0 or size % element_size:
            raise AddressError(
                f"buffer {name!r}: size {size} is not a multiple of "
                f"element_size {element_size}"
            )
        if name in self._buffers:
            raise AllocationError(f"buffer {name!r} already allocated in region {self.name!r}")
        start = align_up(self.base + self._cursor, alignment)
        if start + size > self.end:
            raise AllocationError(
                f"region {self.name!r} cannot fit buffer {name!r}: "
                f"need {size} bytes at {start:#x}, region ends at {self.end:#x}"
            )
        buffer = Buffer(name=name, base=start, size=size, element_size=element_size, region=self)
        self._cursor = start + size - self.base
        self._buffers[name] = buffer
        return buffer

    def buffer(self, name: str) -> "Buffer":
        """Look up a previously allocated buffer by name."""
        try:
            return self._buffers[name]
        except KeyError:
            raise AllocationError(f"no buffer {name!r} in region {self.name!r}") from None

    def reset(self) -> None:
        """Drop all allocations and rewind the bump pointer."""
        self._cursor = 0
        self._buffers.clear()


@dataclass(frozen=True)
class Buffer:
    """A typed, contiguous allocation inside a :class:`MemoryRegion`."""

    name: str
    base: int
    size: int
    element_size: int
    region: MemoryRegion

    @property
    def end(self) -> int:
        """One past the last byte of the buffer."""
        return self.base + self.size

    @property
    def num_elements(self) -> int:
        """Number of ``element_size``-byte elements in the buffer."""
        return self.size // self.element_size

    def element_address(self, index: int) -> int:
        """Byte address of element ``index`` (bounds-checked)."""
        if not 0 <= index < self.num_elements:
            raise AddressError(
                f"buffer {self.name!r}: element {index} out of range "
                f"[0, {self.num_elements})"
            )
        return self.base + index * self.element_size

    def sub_range(self, start_element: int, count: int) -> "BufferRange":
        """A contiguous element range within this buffer."""
        if count <= 0:
            raise AddressError(f"buffer {self.name!r}: range count must be positive")
        if start_element < 0 or start_element + count > self.num_elements:
            raise AddressError(
                f"buffer {self.name!r}: range [{start_element}, "
                f"{start_element + count}) exceeds {self.num_elements} elements"
            )
        return BufferRange(buffer=self, start_element=start_element, count=count)

    def overlaps(self, other: "Buffer") -> bool:
        """True when the two buffers share any byte."""
        return self.base < other.end and other.base < self.end


@dataclass(frozen=True)
class BufferRange:
    """A contiguous slice of a buffer, used to build tiled accesses."""

    buffer: Buffer
    start_element: int
    count: int

    @property
    def base(self) -> int:
        """Byte address of the first element in the range."""
        return self.buffer.base + self.start_element * self.buffer.element_size

    @property
    def size(self) -> int:
        """Size of the range in bytes."""
        return self.count * self.buffer.element_size

    @property
    def end(self) -> int:
        """One past the last byte of the range."""
        return self.base + self.size

    def overlaps(self, other: "BufferRange") -> bool:
        """True when the two ranges share any byte."""
        return self.base < other.end and other.base < self.end


class AddressSpace:
    """The shared physical address space of an embedded SoC.

    The space is carved into named regions; which regions exist depends
    on the communication model being simulated (the executors in
    :mod:`repro.comm` create the layout they need).
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise AddressError(f"address space size must be positive, got {size}")
        self.size = size
        self._regions: Dict[str, MemoryRegion] = {}
        self._cursor = 0

    @property
    def regions(self) -> List[MemoryRegion]:
        """All regions, in creation order."""
        return list(self._regions.values())

    def add_region(self, name: str, size: int, kind: RegionKind) -> MemoryRegion:
        """Carve a new region off the unallocated tail of the space."""
        if name in self._regions:
            raise AllocationError(f"region {name!r} already exists")
        base = align_up(self._cursor, DEFAULT_ALIGNMENT)
        if base + size > self.size:
            raise AllocationError(
                f"address space cannot fit region {name!r} "
                f"({size} bytes at {base:#x}, space ends at {self.size:#x})"
            )
        region = MemoryRegion(name=name, base=base, size=size, kind=kind)
        self._regions[name] = region
        self._cursor = base + size
        return region

    def region(self, name: str) -> MemoryRegion:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise AllocationError(f"no region named {name!r}") from None

    def region_of(self, address: int) -> Optional[MemoryRegion]:
        """The region containing ``address``, or ``None``."""
        for region in self._regions.values():
            if region.contains(address):
                return region
        return None
