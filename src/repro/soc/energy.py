"""Energy accounting for the simulated SoC.

The paper reports energy *savings* of zero-copy (e.g. 0.12 J/s on
Xavier for the SH-WFS application) coming from the eliminated copy
traffic.  The model here is the standard embedded decomposition:

``E = P_static * T + Σ_component (energy-per-byte * bytes)``

with distinct per-byte costs for cache hits, DRAM traffic, and copy
engine transfers (a copy pays DRAM twice — read + write — plus engine
overhead, which is exactly why removing it saves energy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: picojoule, in joules.
_PJ = 1e-12


@dataclass(frozen=True)
class EnergyConfig:
    """Per-board energy coefficients.

    Attributes:
        static_power_w: always-on rail power (W).
        cpu_active_power_w: extra power while the CPU computes (W).
        gpu_active_power_w: extra power while the GPU computes (W).
        pj_per_byte_cache: energy per byte served by any cache (pJ/B).
        pj_per_byte_dram: energy per byte moved to/from DRAM (pJ/B).
        pj_per_byte_copy: *extra* engine overhead per copied byte, on
            top of the two DRAM traversals a copy performs (pJ/B).
    """

    static_power_w: float
    cpu_active_power_w: float
    gpu_active_power_w: float
    pj_per_byte_cache: float = 6.0
    pj_per_byte_dram: float = 120.0
    pj_per_byte_copy: float = 40.0

    def __post_init__(self) -> None:
        for name in (
            "static_power_w",
            "cpu_active_power_w",
            "gpu_active_power_w",
            "pj_per_byte_cache",
            "pj_per_byte_dram",
            "pj_per_byte_copy",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} cannot be negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one execution, by contributor (joules)."""

    static_j: float
    cpu_active_j: float
    gpu_active_j: float
    cache_j: float
    dram_j: float
    copy_j: float

    @property
    def total_j(self) -> float:
        """Total energy in joules."""
        return (
            self.static_j
            + self.cpu_active_j
            + self.gpu_active_j
            + self.cache_j
            + self.dram_j
            + self.copy_j
        )


class EnergyModel:
    """Computes the energy of a simulated execution."""

    def __init__(self, config: EnergyConfig) -> None:
        self.config = config

    def execution_energy(
        self,
        duration_s: float,
        cpu_busy_s: float,
        gpu_busy_s: float,
        cache_bytes: float,
        dram_bytes: float,
        copied_bytes: float = 0.0,
    ) -> EnergyBreakdown:
        """Energy of one execution window.

        Args:
            duration_s: wall-clock window length.
            cpu_busy_s / gpu_busy_s: time each processor was active
                (clamped to the window).
            cache_bytes: bytes served from any cache level.
            dram_bytes: bytes moved to/from DRAM, *excluding* the extra
                traffic of explicit copies.
            copied_bytes: bytes moved by the copy engine; each pays two
                DRAM traversals plus engine overhead.
        """
        if duration_s < 0:
            raise ConfigurationError("duration cannot be negative")
        cfg = self.config
        cpu_busy = min(max(cpu_busy_s, 0.0), duration_s)
        gpu_busy = min(max(gpu_busy_s, 0.0), duration_s)
        copy_dram = 2.0 * copied_bytes
        return EnergyBreakdown(
            static_j=cfg.static_power_w * duration_s,
            cpu_active_j=cfg.cpu_active_power_w * cpu_busy,
            gpu_active_j=cfg.gpu_active_power_w * gpu_busy,
            cache_j=cfg.pj_per_byte_cache * cache_bytes * _PJ,
            dram_j=cfg.pj_per_byte_dram * (dram_bytes + copy_dram) * _PJ,
            copy_j=cfg.pj_per_byte_copy * copied_bytes * _PJ,
        )
