"""Multi-level cache hierarchy with a streaming timing model.

A :class:`CacheHierarchy` chains cache levels over a DRAM model and
answers the question the processor models need: *how long does this
access stream take, and which level served how much of it?*

Timing model
------------

The hierarchy treats the levels as pipeline stages.  Stage *i* must move
the bytes that reach it (requests arriving at that level, plus dirty
writeback traffic from the levels above); for a streaming workload the
elapsed time is set by the slowest stage:

``streaming_time = max_i(stage_bytes_i / stage_bandwidth_i)``

This reproduces the behaviours the paper measures: when a kernel hits in
the LL-L1 caches its throughput is the cache bandwidth; once the
footprint spills, DRAM becomes the bottleneck; and when zero-copy
disables the caches every access streams at the (much lower) uncached
path bandwidth.

Exposed latency (for processors that cannot hide it) is reported
separately as ``dram_transactions * dram_latency``; the CPU/GPU models
decide how much of it to charge.

Exact vs analytic
-----------------

Small traces replay access-by-access through the exact LRU simulator;
large regular traces use :mod:`repro.soc.analytic`.  ``mode="auto"``
switches on trace size; both paths produce the same
:class:`MemoryResult` shape and are cross-validated in the tests.

Timing backends
---------------

The routing above is the *analytic* backend.  A hierarchy built with
``backend="simulated"`` instead replays every stream — virtual ones
through synthesized windows — through the event-driven bit-PLRU cache
and DDR row-buffer simulator (:mod:`repro.sim`), producing the same
:class:`MemoryResult` shape with simulator-derived DRAM timing.  The
seam is :class:`repro.sim.backend.TimingBackend`; the analytic batch
path (:meth:`CacheHierarchy.process_summaries`) declares itself
analytic-only and refuses other backends.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, SimulationError
from repro.sim import dramsim as sim_dram
from repro.sim import engine as sim_engine
from repro.sim.backend import TimingBackend, get_backend
from repro.soc import analytic
from repro.soc.cache import CacheConfig, SetAssociativeCache
from repro.soc.coherence import FlushCostModel
from repro.soc.dram import DRAMModel
from repro.soc.stream import AccessStream

#: Above this many transactions, ``mode="auto"`` uses the analytic path
#: (when the pattern supports it).
EXACT_SIMULATION_LIMIT = 200_000


@dataclass(frozen=True)
class LevelSpec:
    """One cache level plus its service characteristics."""

    config: CacheConfig
    bandwidth: float  # bytes/s this level can serve
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"level {self.config.name}: bandwidth must be positive"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"level {self.config.name}: latency cannot be negative"
            )


@dataclass
class LevelTraffic:
    """Traffic observed at one level while serving a stream."""

    name: str
    enabled: bool
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writeback_lines: int = 0
    bytes_in: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class MemoryResult:
    """Outcome of serving one access stream."""

    transactions: int
    bytes_requested: int
    levels: List[LevelTraffic]
    dram_read_bytes: int
    dram_write_bytes: int
    dram_transactions: int
    stage_times: Dict[str, float]
    streaming_time_s: float
    exposed_latency_s: float

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic in bytes."""
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def throughput(self) -> float:
        """Requested bytes over streaming time (bytes/s)."""
        if self.streaming_time_s <= 0:
            return 0.0
        return self.bytes_requested / self.streaming_time_s

    def level(self, name: str) -> LevelTraffic:
        """Traffic record for the level called ``name``."""
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise SimulationError(f"no level named {name!r} in result")

    @property
    def l1(self) -> LevelTraffic:
        """First (innermost) level."""
        return self.levels[0]

    @property
    def llc(self) -> LevelTraffic:
        """Last (outermost) cache level."""
        return self.levels[-1]


class CacheHierarchy:
    """A chain of cache levels in front of DRAM for one processor."""

    def __init__(
        self,
        specs: Sequence[LevelSpec],
        dram: DRAMModel,
        memory_port_bandwidth: float = float("inf"),
        name: str = "hierarchy",
        backend=None,
    ) -> None:
        if not specs:
            raise ConfigurationError("a hierarchy needs at least one cache level")
        self.name = name
        self.specs = list(specs)
        self.caches = [SetAssociativeCache(spec.config) for spec in self.specs]
        self.dram = dram
        self.memory_port_bandwidth = memory_port_bandwidth
        #: The timing backend serving :meth:`process` (analytic default).
        self.backend: TimingBackend = get_backend(backend)
        # Event-driven state, created lazily on first simulated use:
        # one bit-PLRU state per level plus the DRAM row-buffer state.
        self._sim_levels: Optional[List[sim_engine.CacheSimState]] = None
        self._sim_dram: Optional[sim_dram.DRAMSimState] = None
        for i in range(1, len(self.specs)):
            inner, outer = self.specs[i - 1].config, self.specs[i].config
            if outer.line_size < inner.line_size:
                raise ConfigurationError(
                    f"{outer.name} line ({outer.line_size}) smaller than "
                    f"{inner.name} line ({inner.line_size})"
                )

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    @property
    def l1(self) -> SetAssociativeCache:
        """Innermost cache."""
        return self.caches[0]

    @property
    def llc(self) -> SetAssociativeCache:
        """Outermost (last-level) cache."""
        return self.caches[-1]

    def set_level_enabled(self, name: str, enabled: bool) -> None:
        """Enable or disable one level by its config name."""
        for i, cache in enumerate(self.caches):
            if cache.config.name == name:
                if not enabled and cache.enabled:
                    cache.invalidate()
                    self._sim_invalidate_level(i)
                cache.enabled = enabled
                return
        raise ConfigurationError(f"no cache level named {name!r}")

    def set_llc_enabled(self, enabled: bool) -> None:
        """Enable or disable the last-level cache."""
        if not enabled and self.llc.enabled:
            self.llc.invalidate()
            self._sim_invalidate_level(len(self.caches) - 1)
        self.llc.enabled = enabled

    def set_all_enabled(self, enabled: bool) -> None:
        """Enable or disable every level (zero-copy on TX2/Nano
        disables the whole CPU hierarchy's coherent levels)."""
        for i, cache in enumerate(self.caches):
            if not enabled and cache.enabled:
                cache.invalidate()
                self._sim_invalidate_level(i)
            cache.enabled = enabled

    def reset(self) -> None:
        """Clear all cache contents and statistics."""
        for cache in self.caches:
            cache.reset()
        self._sim_clear()

    @contextlib.contextmanager
    def scaled_bandwidths(self, factor: float) -> Iterator[None]:
        """Temporarily scale every level's service bandwidth.

        The unified-memory executor uses this to apply the small
        driver-dependent throughput delta the paper measures between UM
        and SC (Table I: within ±8 %).
        """
        if factor <= 0:
            raise ConfigurationError(f"bandwidth factor must be positive, got {factor}")
        saved = self.specs
        self.specs = [replace(spec, bandwidth=spec.bandwidth * factor) for spec in saved]
        try:
            yield
        finally:
            self.specs = saved

    def invalidate_all(self) -> None:
        """Drop all lines in every level without writing back."""
        for cache in self.caches:
            cache.invalidate()
        self._sim_clear()

    def flush(self, cost_model: FlushCostModel) -> "FlushResult":
        """Flush every level (software coherence around GPU kernels).

        Returns the elapsed time and the dirty bytes written to DRAM.
        Residency is whichever engine populated it: the exact LRU
        arrays on the analytic backend, the bit-PLRU simulator state on
        the event-driven one (they are never both populated).
        """
        total_time = 0.0
        total_bytes = 0
        dram_bw = min(self.memory_port_bandwidth, self.dram.config.effective_bandwidth)
        for i, cache in enumerate(self.caches):
            if not cache.enabled:
                continue
            resident = cache.resident_lines
            dirty = cache.dirty_lines
            if self._sim_levels is not None:
                state = self._sim_levels[i]
                resident += state.resident_lines
                dirty += state.dirty_lines
                state.flush()
            line = cache.config.line_size
            total_time += cost_model.flush_time(resident, dirty, line, dram_bw)
            total_bytes += dirty * line
            cache.flush()
        self.dram.record(0, total_bytes)
        return FlushResult(time_s=total_time, writeback_bytes=total_bytes)

    # -- event-driven state management -----------------------------------

    def _sim_states(self) -> List[sim_engine.CacheSimState]:
        """Per-level bit-PLRU states, created on first simulated use."""
        if self._sim_levels is None:
            self._sim_levels = [
                sim_engine.CacheSimState(
                    num_sets=cache.config.num_sets,
                    ways=cache.config.ways,
                    line_size=cache.config.line_size,
                )
                for cache in self.caches
            ]
        return self._sim_levels

    def _sim_dram_state(self, config) -> sim_dram.DRAMSimState:
        """Row-buffer state, created on first simulated use."""
        if self._sim_dram is None:
            self._sim_dram = sim_dram.DRAMSimState(config)
        return self._sim_dram

    def _sim_invalidate_level(self, index: int) -> None:
        if self._sim_levels is not None:
            self._sim_levels[index].invalidate()

    def _sim_clear(self) -> None:
        if self._sim_levels is not None:
            for state in self._sim_levels:
                state.invalidate()
        if self._sim_dram is not None:
            self._sim_dram.reset()

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------

    def process(self, stream: AccessStream, mode: str = "auto") -> MemoryResult:
        """Serve ``stream`` and report traffic and timing.

        Args:
            stream: the access trace.
            mode: ``"exact"``, ``"analytic"`` or ``"auto"``.  The mode
                steers the analytic backend's exact-vs-closed-form
                routing; the event-driven backend always replays the
                (possibly synthesized) trace and ignores it.
        """
        if mode not in ("auto", "exact", "analytic"):
            raise SimulationError(f"unknown processing mode {mode!r}")
        return self.backend.process(self, stream, mode)

    def _process_default(self, stream: AccessStream, mode: str) -> MemoryResult:
        """Analytic-backend routing: exact LRU replay or closed form."""
        if stream.is_virtual:
            if mode == "exact":
                raise SimulationError(
                    "virtual streams carry no addresses and cannot be "
                    "simulated exactly; use mode='analytic' or 'auto'"
                )
            return self._process_analytic(stream)
        if mode == "analytic" or (
            mode == "auto"
            and stream.total_transactions > EXACT_SIMULATION_LIMIT
            and analytic.supports(stream.pattern)
        ):
            return self._process_analytic(stream)
        return self._process_exact(stream)

    # -- exact path -----------------------------------------------------

    def _run_pass(self, addresses: np.ndarray, writes: np.ndarray,
                  transaction_size: int) -> dict:
        """Replay one pass; returns raw per-level numbers."""
        per_level = []
        current_addrs = addresses
        current_writes = writes
        granularity = transaction_size
        writeback_bytes_from_above = 0
        stage_bytes: List[int] = []
        for cache in self.caches:
            n = len(current_addrs)
            result = cache.access_trace(current_addrs, current_writes)
            bytes_in = n * granularity
            per_level.append(
                dict(
                    accesses=n,
                    hits=result.num_hits,
                    misses=result.num_misses,
                    writebacks=result.writeback_lines,
                    bytes_in=bytes_in,
                )
            )
            stage_bytes.append(bytes_in + writeback_bytes_from_above)
            writeback_bytes_from_above += result.writeback_lines * cache.config.line_size
            if cache.enabled:
                granularity = cache.config.line_size
                current_addrs = result.miss_line_addresses
                current_writes = np.zeros(len(current_addrs), dtype=bool)
            else:
                current_addrs = result.miss_line_addresses
                # writes pass through a disabled cache unchanged
                current_writes = current_writes[~result.hits] \
                    if result.num_hits else current_writes
        dram_transactions = len(current_addrs)
        passthrough_writes = int(np.count_nonzero(current_writes))
        dram_read = (dram_transactions - passthrough_writes) * granularity
        dram_write = passthrough_writes * granularity + writeback_bytes_from_above
        return dict(
            levels=per_level,
            stage_bytes=stage_bytes,
            dram_read=dram_read,
            dram_write=dram_write,
            dram_transactions=dram_transactions,
        )

    def _process_exact(self, stream: AccessStream) -> MemoryResult:
        repeats = stream.repeats
        passes = [self._run_pass(stream.addresses, stream.is_write,
                                 stream.transaction_size)]
        multipliers = [1.0]
        if repeats > 1:
            passes.append(self._run_pass(stream.addresses, stream.is_write,
                                         stream.transaction_size))
            multipliers.append(float(repeats - 1))
        return self._combine(stream, passes, multipliers)

    # -- analytic path ---------------------------------------------------

    def _process_analytic(self, stream: AccessStream) -> MemoryResult:
        summaries: List[analytic.StreamSummary] = [
            analytic.StreamSummary.from_stream(stream)
        ]
        per_level = []
        stage_bytes: List[float] = []
        writeback_bytes_from_above = 0.0
        dram_read = 0.0
        dram_write = 0.0
        dram_transactions = 0
        for cache in self.caches:
            level = dict(accesses=0, hits=0, misses=0, writebacks=0,
                         bytes_in=0)
            next_summaries: List[analytic.StreamSummary] = []
            for summary in summaries:
                est = analytic.estimate_level(summary, cache.config,
                                              cache.enabled)
                level["accesses"] += est.accesses
                level["hits"] += est.hits
                level["misses"] += est.misses
                level["writebacks"] += est.writeback_lines
                level["bytes_in"] += summary.total * summary.transaction_size
                next_summaries.extend(
                    analytic.derive_miss_summaries(
                        summary, est, cache.config, cache.enabled
                    )
                )
            per_level.append(level)
            stage_bytes.append(level["bytes_in"] + writeback_bytes_from_above)
            writeback_bytes_from_above += (
                level["writebacks"] * cache.config.line_size
            )
            summaries = next_summaries
        for summary in summaries:
            dram_transactions += summary.total
            write_txns = int(summary.total * summary.write_fraction)
            dram_read += (summary.total - write_txns) * summary.transaction_size
            dram_write += write_txns * summary.transaction_size
        dram_write += writeback_bytes_from_above
        raw = dict(
            levels=per_level,
            stage_bytes=stage_bytes,
            dram_read=dram_read,
            dram_write=dram_write,
            dram_transactions=dram_transactions,
        )
        return self._combine(stream, [raw], [1.0])

    # -- event-driven (simulated) path -------------------------------------

    def _process_simulated(self, stream: AccessStream, backend) -> MemoryResult:
        """Serve ``stream`` through the event-driven simulator.

        Materialized traces replay verbatim; virtual traces replay a
        synthesized window (see
        :meth:`repro.sim.backend.SimulatedBackend.synthesize`) with the
        resulting counts scaled back to the full stream.  Like the
        exact path, repeated executions are a cold pass plus a warm
        pass weighted ``repeats - 1``.
        """
        addresses, writes, scale = backend.synthesize(stream, self)
        config = backend.config
        with obs.span(
            "sim.process",
            hierarchy=self.name,
            transactions=int(len(addresses)),
            scale=float(scale),
        ):
            passes = [
                self._run_sim_pass(
                    addresses, writes, stream.transaction_size, scale, config
                )
            ]
            multipliers = [1.0]
            if stream.repeats > 1:
                passes.append(
                    self._run_sim_pass(
                        addresses, writes, stream.transaction_size, scale, config
                    )
                )
                multipliers.append(float(stream.repeats - 1))
            obs.counter_inc("sim.transactions", int(len(addresses)) * len(passes))
            obs.counter_inc("sim.passes", len(passes))
            return self._combine(stream, passes, multipliers)

    def _run_sim_pass(
        self,
        addresses: np.ndarray,
        writes: np.ndarray,
        transaction_size: int,
        scale: float,
        config,
    ) -> dict:
        """Replay one pass through the bit-PLRU levels and row buffers.

        Counts are scaled from the simulated window back to the full
        stream (``scale`` is 1.0 for materialized traces); hit counts
        are derived from rounded accesses minus rounded misses so the
        per-level identity ``hits + misses == accesses`` always holds.
        """
        states = self._sim_states()
        per_level = []
        current_addrs = np.asarray(addresses, dtype=np.int64)
        current_writes = np.asarray(writes, dtype=bool)
        granularity = transaction_size
        writeback_bytes_from_above = 0.0
        stage_bytes: List[float] = []
        for i, cache in enumerate(self.caches):
            n = len(current_addrs)
            if cache.enabled:
                result = sim_engine.access_trace(
                    states[i],
                    current_addrs,
                    current_writes,
                    write_back=cache.config.write_back,
                    write_allocate=cache.config.write_allocate,
                    vectorized=config.vectorized,
                )
                hits = result.num_hits
                misses = result.num_misses
                writebacks = result.writeback_lines
                next_addrs = result.miss_line_addresses
                next_writes = np.zeros(len(next_addrs), dtype=bool)
                next_granularity = cache.config.line_size
            else:
                # Disabled levels pass accesses through untouched at
                # the original granularity (the zero-copy uncached
                # path), exactly like the exact-LRU bypass.
                hits = 0
                misses = n
                writebacks = 0
                next_addrs = current_addrs
                next_writes = current_writes
                next_granularity = granularity
            # The cache's own counters record actual simulator events
            # (window-sized, unscaled) so hit *rates* stay exact.
            writes_n = int(np.count_nonzero(current_writes))
            cache.stats.accesses += n
            cache.stats.write_accesses += writes_n
            cache.stats.read_accesses += n - writes_n
            cache.stats.hits += hits
            cache.stats.misses += misses
            cache.stats.writebacks += writebacks
            if not cache.enabled:
                cache.stats.bypassed += n
            acc_s = int(round(n * scale))
            miss_s = int(round(misses * scale))
            wb_s = int(round(writebacks * scale))
            per_level.append(
                dict(
                    accesses=acc_s,
                    hits=acc_s - miss_s,
                    misses=miss_s,
                    writebacks=wb_s,
                    bytes_in=acc_s * granularity,
                )
            )
            stage_bytes.append(acc_s * granularity + writeback_bytes_from_above)
            writeback_bytes_from_above += wb_s * cache.config.line_size
            current_addrs = next_addrs
            current_writes = next_writes
            granularity = next_granularity
        dram_transactions = len(current_addrs)
        passthrough_writes = int(np.count_nonzero(current_writes))
        read_s = int(round((dram_transactions - passthrough_writes) * scale))
        write_s = int(round(passthrough_writes * scale))
        dram_read = read_s * granularity
        dram_write = write_s * granularity + writeback_bytes_from_above
        raw = dict(
            levels=per_level,
            stage_bytes=stage_bytes,
            dram_read=dram_read,
            dram_write=dram_write,
            dram_transactions=int(round(dram_transactions * scale)),
        )
        # Replay the DRAM-visible trace through the row buffers; the
        # observed hit/miss mix sets the sustained bandwidth for the
        # DRAM stage of this pass (picked up by _combine).
        dram_bytes = dram_read + dram_write
        if dram_transactions > 0:
            dram_result = sim_dram.access(
                self._sim_dram_state(config),
                current_addrs,
                vectorized=config.vectorized,
            )
            obs.counter_inc("sim.dram.row_hits", dram_result.row_hits)
            obs.counter_inc("sim.dram.row_misses", dram_result.row_misses)
            bandwidth = min(
                self.memory_port_bandwidth,
                self.dram.config.peak_bandwidth
                * dram_result.mix_efficiency(config),
            )
            raw["dram_time_s"] = dram_bytes / bandwidth
        elif dram_bytes > 0:
            # Writeback-only traffic: no request trace to replay, fall
            # back to the streaming effective bandwidth.
            bandwidth = min(
                self.memory_port_bandwidth, self.dram.config.effective_bandwidth
            )
            raw["dram_time_s"] = dram_bytes / bandwidth
        return raw

    # -- batch analytic path ----------------------------------------------

    def process_summaries(
        self, batch: analytic.SummaryBatch, record_dram: bool = True
    ) -> "BatchMemoryResult":
        """Serve N stream summaries at once on the analytic path.

        This is :meth:`_process_analytic` vectorized over a
        :class:`~repro.soc.analytic.SummaryBatch`: every per-level
        estimate, miss-component derivation, stage-byte account and
        timing reduction is one array expression, so a whole
        micro-benchmark sweep costs a handful of numpy ops.  Per-stream
        results match ``process(..., mode="analytic")`` exactly (the
        arithmetic is identical; the equivalence is pinned by
        ``tests/perf``).

        This is an analytic-only fast path: it evaluates the closed
        form directly, so it cannot express another backend's timing.
        Callers (see :mod:`repro.perf.batch`) must check
        ``backend.is_analytic`` first and fall back to scalar
        :meth:`process` calls.
        """
        if not self.backend.is_analytic:
            raise SimulationError(
                "process_summaries is an analytic-only fast path; the "
                f"{self.backend.name!r} backend must route through process()"
            )
        n = len(batch)
        batches: List[analytic.SummaryBatch] = [batch]
        stage_bytes: List[np.ndarray] = []
        writeback_bytes_from_above = np.zeros(n, dtype=np.float64)
        for cache in self.caches:
            level_bytes = np.zeros(n, dtype=np.float64)
            level_writebacks = np.zeros(n, dtype=np.int64)
            next_batches: List[analytic.SummaryBatch] = []
            for component in batches:
                est = analytic.estimate_level_batch(
                    component, cache.config, cache.enabled
                )
                level_bytes += component.total * component.transaction_size
                level_writebacks += est.writeback_lines
                next_batches.extend(
                    analytic.derive_miss_batches(
                        component, est, cache.config, cache.enabled
                    )
                )
            stage_bytes.append(level_bytes + writeback_bytes_from_above)
            writeback_bytes_from_above = (
                writeback_bytes_from_above
                + level_writebacks * cache.config.line_size
            )
            batches = next_batches

        dram_read = np.zeros(n, dtype=np.float64)
        dram_write = np.zeros(n, dtype=np.float64)
        dram_transactions = np.zeros(n, dtype=np.int64)
        for component in batches:
            total = component.total
            write_txns = (total * component.write_fraction).astype(np.int64)
            dram_transactions += total
            dram_read += (total - write_txns) * component.transaction_size
            dram_write += write_txns * component.transaction_size
        dram_write = dram_write + writeback_bytes_from_above

        dram_bandwidth = min(
            self.memory_port_bandwidth, self.dram.config.effective_bandwidth
        )
        streaming = np.zeros(n, dtype=np.float64)
        for i, cache in enumerate(self.caches):
            if cache.enabled:
                streaming = np.maximum(
                    streaming,
                    np.where(
                        stage_bytes[i] > 0,
                        stage_bytes[i] / self.specs[i].bandwidth,
                        0.0,
                    ),
                )
        dram_bytes = dram_read + dram_write
        streaming = np.maximum(
            streaming, np.where(dram_bytes > 0, dram_bytes / dram_bandwidth, 0.0)
        )
        exposed = np.where(
            dram_transactions > 0, self.dram.config.latency_s, 0.0
        )
        if record_dram:
            self.dram.record(int(dram_read.sum()), int(dram_write.sum()))
        return BatchMemoryResult(
            transactions=batch.total,
            bytes_requested=batch.total_bytes,
            dram_read_bytes=dram_read,
            dram_write_bytes=dram_write,
            dram_transactions=dram_transactions,
            streaming_time_s=streaming,
            exposed_latency_s=exposed,
        )

    # -- shared assembly ---------------------------------------------------

    def _combine(self, stream: AccessStream, passes: List[dict],
                 multipliers: List[float]) -> MemoryResult:
        num_levels = len(self.caches)
        levels = [
            LevelTraffic(name=c.config.name, enabled=c.enabled)
            for c in self.caches
        ]
        stage_bytes = [0.0] * num_levels
        dram_read = 0.0
        dram_write = 0.0
        dram_transactions = 0.0
        for raw, mult in zip(passes, multipliers):
            for i, lv in enumerate(raw["levels"]):
                levels[i].accesses += int(lv["accesses"] * mult)
                levels[i].hits += int(lv["hits"] * mult)
                levels[i].misses += int(lv["misses"] * mult)
                levels[i].writeback_lines += int(lv["writebacks"] * mult)
                levels[i].bytes_in += int(lv["bytes_in"] * mult)
                stage_bytes[i] += raw["stage_bytes"][i] * mult
            dram_read += raw["dram_read"] * mult
            dram_write += raw["dram_write"] * mult
            dram_transactions += raw["dram_transactions"] * mult

        dram_bandwidth = min(
            self.memory_port_bandwidth, self.dram.config.effective_bandwidth
        )
        stage_times: Dict[str, float] = {}
        for i, cache in enumerate(self.caches):
            if cache.enabled and stage_bytes[i] > 0:
                stage_times[cache.config.name] = stage_bytes[i] / self.specs[i].bandwidth
        dram_bytes = dram_read + dram_write
        if any("dram_time_s" in raw for raw in passes):
            # Simulated passes carry their own DRAM timing (row-buffer
            # mix efficiency) instead of the flat effective bandwidth.
            sim_time = sum(
                raw.get("dram_time_s", 0.0) * mult
                for raw, mult in zip(passes, multipliers)
            )
            if sim_time > 0:
                stage_times["dram"] = sim_time
        elif dram_bytes > 0:
            stage_times["dram"] = dram_bytes / dram_bandwidth
        streaming_time = max(stage_times.values()) if stage_times else 0.0
        # Streaming workloads pipeline DRAM accesses, so latency is a
        # one-time pipeline-fill cost per phase, not a per-transaction
        # charge (per-transaction costs live in the bandwidth terms).
        exposed_latency = self.dram.config.latency_s if dram_transactions > 0 else 0.0

        self.dram.record(int(dram_read), int(dram_write))
        return MemoryResult(
            transactions=stream.total_transactions,
            bytes_requested=stream.total_bytes,
            levels=levels,
            dram_read_bytes=int(dram_read),
            dram_write_bytes=int(dram_write),
            dram_transactions=int(dram_transactions),
            stage_times=stage_times,
            streaming_time_s=streaming_time,
            exposed_latency_s=exposed_latency,
        )


@dataclass(frozen=True)
class BatchMemoryResult:
    """Per-stream memory outcomes of :meth:`CacheHierarchy.process_summaries`.

    Every field is an array aligned with the input batch; the fields
    mirror the :class:`MemoryResult` quantities the processor models
    consume for timing (per-level traffic detail is not materialized on
    the batch path — sweeps only need the time/bytes reduction).
    """

    transactions: np.ndarray
    bytes_requested: np.ndarray
    dram_read_bytes: np.ndarray
    dram_write_bytes: np.ndarray
    dram_transactions: np.ndarray
    streaming_time_s: np.ndarray
    exposed_latency_s: np.ndarray

    @property
    def dram_bytes(self) -> np.ndarray:
        """Total DRAM traffic in bytes, per stream."""
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def throughput(self) -> np.ndarray:
        """Requested bytes over streaming time (bytes/s), per stream."""
        return np.where(
            self.streaming_time_s > 0,
            self.bytes_requested / np.where(self.streaming_time_s > 0,
                                            self.streaming_time_s, 1.0),
            0.0,
        )


@dataclass(frozen=True)
class FlushResult:
    """Outcome of a software cache flush."""

    time_s: float
    writeback_bytes: int


def merge_memory_results(results: Sequence[MemoryResult]) -> MemoryResult:
    """Combine the results of sequentially-served streams.

    Tasks may present several access streams (e.g. a hot working set
    plus a streaming pass); the hierarchy serves them back to back, so
    traffic adds and streaming times add.
    """
    if not results:
        raise SimulationError("cannot merge zero memory results")
    if len(results) == 1:
        return results[0]
    first = results[0]
    levels = [
        LevelTraffic(name=lv.name, enabled=lv.enabled) for lv in first.levels
    ]
    stage_times: Dict[str, float] = {}
    transactions = 0
    bytes_requested = 0
    dram_read = 0
    dram_write = 0
    dram_transactions = 0
    streaming = 0.0
    latency = 0.0
    for result in results:
        if len(result.levels) != len(levels):
            raise SimulationError("cannot merge results from different hierarchies")
        for target, lv in zip(levels, result.levels):
            target.accesses += lv.accesses
            target.hits += lv.hits
            target.misses += lv.misses
            target.writeback_lines += lv.writeback_lines
            target.bytes_in += lv.bytes_in
        for key, value in result.stage_times.items():
            stage_times[key] = stage_times.get(key, 0.0) + value
        transactions += result.transactions
        bytes_requested += result.bytes_requested
        dram_read += result.dram_read_bytes
        dram_write += result.dram_write_bytes
        dram_transactions += result.dram_transactions
        streaming += result.streaming_time_s
        latency = max(latency, result.exposed_latency_s)
    return MemoryResult(
        transactions=transactions,
        bytes_requested=bytes_requested,
        levels=levels,
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        dram_transactions=dram_transactions,
        stage_times=stage_times,
        streaming_time_s=streaming,
        exposed_latency_s=latency,
    )
