"""Multi-level cache hierarchy with a streaming timing model.

A :class:`CacheHierarchy` chains cache levels over a DRAM model and
answers the question the processor models need: *how long does this
access stream take, and which level served how much of it?*

Timing model
------------

The hierarchy treats the levels as pipeline stages.  Stage *i* must move
the bytes that reach it (requests arriving at that level, plus dirty
writeback traffic from the levels above); for a streaming workload the
elapsed time is set by the slowest stage:

``streaming_time = max_i(stage_bytes_i / stage_bandwidth_i)``

This reproduces the behaviours the paper measures: when a kernel hits in
the LL-L1 caches its throughput is the cache bandwidth; once the
footprint spills, DRAM becomes the bottleneck; and when zero-copy
disables the caches every access streams at the (much lower) uncached
path bandwidth.

Exposed latency (for processors that cannot hide it) is reported
separately as ``dram_transactions * dram_latency``; the CPU/GPU models
decide how much of it to charge.

Exact vs analytic
-----------------

Small traces replay access-by-access through the exact LRU simulator;
large regular traces use :mod:`repro.soc.analytic`.  ``mode="auto"``
switches on trace size; both paths produce the same
:class:`MemoryResult` shape and are cross-validated in the tests.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.soc import analytic
from repro.soc.cache import CacheConfig, SetAssociativeCache
from repro.soc.coherence import FlushCostModel
from repro.soc.dram import DRAMModel
from repro.soc.stream import AccessStream

#: Above this many transactions, ``mode="auto"`` uses the analytic path
#: (when the pattern supports it).
EXACT_SIMULATION_LIMIT = 200_000


@dataclass(frozen=True)
class LevelSpec:
    """One cache level plus its service characteristics."""

    config: CacheConfig
    bandwidth: float  # bytes/s this level can serve
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"level {self.config.name}: bandwidth must be positive"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"level {self.config.name}: latency cannot be negative"
            )


@dataclass
class LevelTraffic:
    """Traffic observed at one level while serving a stream."""

    name: str
    enabled: bool
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writeback_lines: int = 0
    bytes_in: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class MemoryResult:
    """Outcome of serving one access stream."""

    transactions: int
    bytes_requested: int
    levels: List[LevelTraffic]
    dram_read_bytes: int
    dram_write_bytes: int
    dram_transactions: int
    stage_times: Dict[str, float]
    streaming_time_s: float
    exposed_latency_s: float

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic in bytes."""
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def throughput(self) -> float:
        """Requested bytes over streaming time (bytes/s)."""
        if self.streaming_time_s <= 0:
            return 0.0
        return self.bytes_requested / self.streaming_time_s

    def level(self, name: str) -> LevelTraffic:
        """Traffic record for the level called ``name``."""
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise SimulationError(f"no level named {name!r} in result")

    @property
    def l1(self) -> LevelTraffic:
        """First (innermost) level."""
        return self.levels[0]

    @property
    def llc(self) -> LevelTraffic:
        """Last (outermost) cache level."""
        return self.levels[-1]


class CacheHierarchy:
    """A chain of cache levels in front of DRAM for one processor."""

    def __init__(
        self,
        specs: Sequence[LevelSpec],
        dram: DRAMModel,
        memory_port_bandwidth: float = float("inf"),
        name: str = "hierarchy",
    ) -> None:
        if not specs:
            raise ConfigurationError("a hierarchy needs at least one cache level")
        self.name = name
        self.specs = list(specs)
        self.caches = [SetAssociativeCache(spec.config) for spec in self.specs]
        self.dram = dram
        self.memory_port_bandwidth = memory_port_bandwidth
        for i in range(1, len(self.specs)):
            inner, outer = self.specs[i - 1].config, self.specs[i].config
            if outer.line_size < inner.line_size:
                raise ConfigurationError(
                    f"{outer.name} line ({outer.line_size}) smaller than "
                    f"{inner.name} line ({inner.line_size})"
                )

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    @property
    def l1(self) -> SetAssociativeCache:
        """Innermost cache."""
        return self.caches[0]

    @property
    def llc(self) -> SetAssociativeCache:
        """Outermost (last-level) cache."""
        return self.caches[-1]

    def set_level_enabled(self, name: str, enabled: bool) -> None:
        """Enable or disable one level by its config name."""
        for cache in self.caches:
            if cache.config.name == name:
                if not enabled and cache.enabled:
                    cache.invalidate()
                cache.enabled = enabled
                return
        raise ConfigurationError(f"no cache level named {name!r}")

    def set_llc_enabled(self, enabled: bool) -> None:
        """Enable or disable the last-level cache."""
        if not enabled and self.llc.enabled:
            self.llc.invalidate()
        self.llc.enabled = enabled

    def set_all_enabled(self, enabled: bool) -> None:
        """Enable or disable every level (zero-copy on TX2/Nano
        disables the whole CPU hierarchy's coherent levels)."""
        for cache in self.caches:
            if not enabled and cache.enabled:
                cache.invalidate()
            cache.enabled = enabled

    def reset(self) -> None:
        """Clear all cache contents and statistics."""
        for cache in self.caches:
            cache.reset()

    @contextlib.contextmanager
    def scaled_bandwidths(self, factor: float) -> Iterator[None]:
        """Temporarily scale every level's service bandwidth.

        The unified-memory executor uses this to apply the small
        driver-dependent throughput delta the paper measures between UM
        and SC (Table I: within ±8 %).
        """
        if factor <= 0:
            raise ConfigurationError(f"bandwidth factor must be positive, got {factor}")
        saved = self.specs
        self.specs = [replace(spec, bandwidth=spec.bandwidth * factor) for spec in saved]
        try:
            yield
        finally:
            self.specs = saved

    def invalidate_all(self) -> None:
        """Drop all lines in every level without writing back."""
        for cache in self.caches:
            cache.invalidate()

    def flush(self, cost_model: FlushCostModel) -> "FlushResult":
        """Flush every level (software coherence around GPU kernels).

        Returns the elapsed time and the dirty bytes written to DRAM.
        """
        total_time = 0.0
        total_bytes = 0
        dram_bw = min(self.memory_port_bandwidth, self.dram.config.effective_bandwidth)
        for cache in self.caches:
            if not cache.enabled:
                continue
            resident = cache.resident_lines
            dirty = cache.dirty_lines
            line = cache.config.line_size
            total_time += cost_model.flush_time(resident, dirty, line, dram_bw)
            total_bytes += dirty * line
            cache.flush()
        self.dram.record(0, total_bytes)
        return FlushResult(time_s=total_time, writeback_bytes=total_bytes)

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------

    def process(self, stream: AccessStream, mode: str = "auto") -> MemoryResult:
        """Serve ``stream`` and report traffic and timing.

        Args:
            stream: the access trace.
            mode: ``"exact"``, ``"analytic"`` or ``"auto"``.
        """
        if mode not in ("auto", "exact", "analytic"):
            raise SimulationError(f"unknown processing mode {mode!r}")
        if stream.is_virtual:
            if mode == "exact":
                raise SimulationError(
                    "virtual streams carry no addresses and cannot be "
                    "simulated exactly; use mode='analytic' or 'auto'"
                )
            return self._process_analytic(stream)
        if mode == "analytic" or (
            mode == "auto"
            and stream.total_transactions > EXACT_SIMULATION_LIMIT
            and analytic.supports(stream.pattern)
        ):
            return self._process_analytic(stream)
        return self._process_exact(stream)

    # -- exact path -----------------------------------------------------

    def _run_pass(self, addresses: np.ndarray, writes: np.ndarray,
                  transaction_size: int) -> dict:
        """Replay one pass; returns raw per-level numbers."""
        per_level = []
        current_addrs = addresses
        current_writes = writes
        granularity = transaction_size
        writeback_bytes_from_above = 0
        stage_bytes: List[int] = []
        for cache in self.caches:
            n = len(current_addrs)
            result = cache.access_trace(current_addrs, current_writes)
            bytes_in = n * granularity
            per_level.append(
                dict(
                    accesses=n,
                    hits=result.num_hits,
                    misses=result.num_misses,
                    writebacks=result.writeback_lines,
                    bytes_in=bytes_in,
                )
            )
            stage_bytes.append(bytes_in + writeback_bytes_from_above)
            writeback_bytes_from_above += result.writeback_lines * cache.config.line_size
            if cache.enabled:
                granularity = cache.config.line_size
                current_addrs = result.miss_line_addresses
                current_writes = np.zeros(len(current_addrs), dtype=bool)
            else:
                current_addrs = result.miss_line_addresses
                # writes pass through a disabled cache unchanged
                current_writes = current_writes[~result.hits] \
                    if result.num_hits else current_writes
        dram_transactions = len(current_addrs)
        passthrough_writes = int(np.count_nonzero(current_writes))
        dram_read = (dram_transactions - passthrough_writes) * granularity
        dram_write = passthrough_writes * granularity + writeback_bytes_from_above
        return dict(
            levels=per_level,
            stage_bytes=stage_bytes,
            dram_read=dram_read,
            dram_write=dram_write,
            dram_transactions=dram_transactions,
        )

    def _process_exact(self, stream: AccessStream) -> MemoryResult:
        repeats = stream.repeats
        passes = [self._run_pass(stream.addresses, stream.is_write,
                                 stream.transaction_size)]
        multipliers = [1.0]
        if repeats > 1:
            passes.append(self._run_pass(stream.addresses, stream.is_write,
                                         stream.transaction_size))
            multipliers.append(float(repeats - 1))
        return self._combine(stream, passes, multipliers)

    # -- analytic path ---------------------------------------------------

    def _process_analytic(self, stream: AccessStream) -> MemoryResult:
        summaries: List[analytic.StreamSummary] = [
            analytic.StreamSummary.from_stream(stream)
        ]
        per_level = []
        stage_bytes: List[float] = []
        writeback_bytes_from_above = 0.0
        dram_read = 0.0
        dram_write = 0.0
        dram_transactions = 0
        for cache in self.caches:
            level = dict(accesses=0, hits=0, misses=0, writebacks=0,
                         bytes_in=0)
            next_summaries: List[analytic.StreamSummary] = []
            for summary in summaries:
                est = analytic.estimate_level(summary, cache.config,
                                              cache.enabled)
                level["accesses"] += est.accesses
                level["hits"] += est.hits
                level["misses"] += est.misses
                level["writebacks"] += est.writeback_lines
                level["bytes_in"] += summary.total * summary.transaction_size
                next_summaries.extend(
                    analytic.derive_miss_summaries(
                        summary, est, cache.config, cache.enabled
                    )
                )
            per_level.append(level)
            stage_bytes.append(level["bytes_in"] + writeback_bytes_from_above)
            writeback_bytes_from_above += (
                level["writebacks"] * cache.config.line_size
            )
            summaries = next_summaries
        for summary in summaries:
            dram_transactions += summary.total
            write_txns = int(summary.total * summary.write_fraction)
            dram_read += (summary.total - write_txns) * summary.transaction_size
            dram_write += write_txns * summary.transaction_size
        dram_write += writeback_bytes_from_above
        raw = dict(
            levels=per_level,
            stage_bytes=stage_bytes,
            dram_read=dram_read,
            dram_write=dram_write,
            dram_transactions=dram_transactions,
        )
        return self._combine(stream, [raw], [1.0])

    # -- batch analytic path ----------------------------------------------

    def process_summaries(
        self, batch: analytic.SummaryBatch, record_dram: bool = True
    ) -> "BatchMemoryResult":
        """Serve N stream summaries at once on the analytic path.

        This is :meth:`_process_analytic` vectorized over a
        :class:`~repro.soc.analytic.SummaryBatch`: every per-level
        estimate, miss-component derivation, stage-byte account and
        timing reduction is one array expression, so a whole
        micro-benchmark sweep costs a handful of numpy ops.  Per-stream
        results match ``process(..., mode="analytic")`` exactly (the
        arithmetic is identical; the equivalence is pinned by
        ``tests/perf``).
        """
        n = len(batch)
        batches: List[analytic.SummaryBatch] = [batch]
        stage_bytes: List[np.ndarray] = []
        writeback_bytes_from_above = np.zeros(n, dtype=np.float64)
        for cache in self.caches:
            level_bytes = np.zeros(n, dtype=np.float64)
            level_writebacks = np.zeros(n, dtype=np.int64)
            next_batches: List[analytic.SummaryBatch] = []
            for component in batches:
                est = analytic.estimate_level_batch(
                    component, cache.config, cache.enabled
                )
                level_bytes += component.total * component.transaction_size
                level_writebacks += est.writeback_lines
                next_batches.extend(
                    analytic.derive_miss_batches(
                        component, est, cache.config, cache.enabled
                    )
                )
            stage_bytes.append(level_bytes + writeback_bytes_from_above)
            writeback_bytes_from_above = (
                writeback_bytes_from_above
                + level_writebacks * cache.config.line_size
            )
            batches = next_batches

        dram_read = np.zeros(n, dtype=np.float64)
        dram_write = np.zeros(n, dtype=np.float64)
        dram_transactions = np.zeros(n, dtype=np.int64)
        for component in batches:
            total = component.total
            write_txns = (total * component.write_fraction).astype(np.int64)
            dram_transactions += total
            dram_read += (total - write_txns) * component.transaction_size
            dram_write += write_txns * component.transaction_size
        dram_write = dram_write + writeback_bytes_from_above

        dram_bandwidth = min(
            self.memory_port_bandwidth, self.dram.config.effective_bandwidth
        )
        streaming = np.zeros(n, dtype=np.float64)
        for i, cache in enumerate(self.caches):
            if cache.enabled:
                streaming = np.maximum(
                    streaming,
                    np.where(
                        stage_bytes[i] > 0,
                        stage_bytes[i] / self.specs[i].bandwidth,
                        0.0,
                    ),
                )
        dram_bytes = dram_read + dram_write
        streaming = np.maximum(
            streaming, np.where(dram_bytes > 0, dram_bytes / dram_bandwidth, 0.0)
        )
        exposed = np.where(
            dram_transactions > 0, self.dram.config.latency_s, 0.0
        )
        if record_dram:
            self.dram.record(int(dram_read.sum()), int(dram_write.sum()))
        return BatchMemoryResult(
            transactions=batch.total,
            bytes_requested=batch.total_bytes,
            dram_read_bytes=dram_read,
            dram_write_bytes=dram_write,
            dram_transactions=dram_transactions,
            streaming_time_s=streaming,
            exposed_latency_s=exposed,
        )

    # -- shared assembly ---------------------------------------------------

    def _combine(self, stream: AccessStream, passes: List[dict],
                 multipliers: List[float]) -> MemoryResult:
        num_levels = len(self.caches)
        levels = [
            LevelTraffic(name=c.config.name, enabled=c.enabled)
            for c in self.caches
        ]
        stage_bytes = [0.0] * num_levels
        dram_read = 0.0
        dram_write = 0.0
        dram_transactions = 0.0
        for raw, mult in zip(passes, multipliers):
            for i, lv in enumerate(raw["levels"]):
                levels[i].accesses += int(lv["accesses"] * mult)
                levels[i].hits += int(lv["hits"] * mult)
                levels[i].misses += int(lv["misses"] * mult)
                levels[i].writeback_lines += int(lv["writebacks"] * mult)
                levels[i].bytes_in += int(lv["bytes_in"] * mult)
                stage_bytes[i] += raw["stage_bytes"][i] * mult
            dram_read += raw["dram_read"] * mult
            dram_write += raw["dram_write"] * mult
            dram_transactions += raw["dram_transactions"] * mult

        dram_bandwidth = min(
            self.memory_port_bandwidth, self.dram.config.effective_bandwidth
        )
        stage_times: Dict[str, float] = {}
        for i, cache in enumerate(self.caches):
            if cache.enabled and stage_bytes[i] > 0:
                stage_times[cache.config.name] = stage_bytes[i] / self.specs[i].bandwidth
        dram_bytes = dram_read + dram_write
        if dram_bytes > 0:
            stage_times["dram"] = dram_bytes / dram_bandwidth
        streaming_time = max(stage_times.values()) if stage_times else 0.0
        # Streaming workloads pipeline DRAM accesses, so latency is a
        # one-time pipeline-fill cost per phase, not a per-transaction
        # charge (per-transaction costs live in the bandwidth terms).
        exposed_latency = self.dram.config.latency_s if dram_transactions > 0 else 0.0

        self.dram.record(int(dram_read), int(dram_write))
        return MemoryResult(
            transactions=stream.total_transactions,
            bytes_requested=stream.total_bytes,
            levels=levels,
            dram_read_bytes=int(dram_read),
            dram_write_bytes=int(dram_write),
            dram_transactions=int(dram_transactions),
            stage_times=stage_times,
            streaming_time_s=streaming_time,
            exposed_latency_s=exposed_latency,
        )


@dataclass(frozen=True)
class BatchMemoryResult:
    """Per-stream memory outcomes of :meth:`CacheHierarchy.process_summaries`.

    Every field is an array aligned with the input batch; the fields
    mirror the :class:`MemoryResult` quantities the processor models
    consume for timing (per-level traffic detail is not materialized on
    the batch path — sweeps only need the time/bytes reduction).
    """

    transactions: np.ndarray
    bytes_requested: np.ndarray
    dram_read_bytes: np.ndarray
    dram_write_bytes: np.ndarray
    dram_transactions: np.ndarray
    streaming_time_s: np.ndarray
    exposed_latency_s: np.ndarray

    @property
    def dram_bytes(self) -> np.ndarray:
        """Total DRAM traffic in bytes, per stream."""
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def throughput(self) -> np.ndarray:
        """Requested bytes over streaming time (bytes/s), per stream."""
        return np.where(
            self.streaming_time_s > 0,
            self.bytes_requested / np.where(self.streaming_time_s > 0,
                                            self.streaming_time_s, 1.0),
            0.0,
        )


@dataclass(frozen=True)
class FlushResult:
    """Outcome of a software cache flush."""

    time_s: float
    writeback_bytes: int


def merge_memory_results(results: Sequence[MemoryResult]) -> MemoryResult:
    """Combine the results of sequentially-served streams.

    Tasks may present several access streams (e.g. a hot working set
    plus a streaming pass); the hierarchy serves them back to back, so
    traffic adds and streaming times add.
    """
    if not results:
        raise SimulationError("cannot merge zero memory results")
    if len(results) == 1:
        return results[0]
    first = results[0]
    levels = [
        LevelTraffic(name=lv.name, enabled=lv.enabled) for lv in first.levels
    ]
    stage_times: Dict[str, float] = {}
    transactions = 0
    bytes_requested = 0
    dram_read = 0
    dram_write = 0
    dram_transactions = 0
    streaming = 0.0
    latency = 0.0
    for result in results:
        if len(result.levels) != len(levels):
            raise SimulationError("cannot merge results from different hierarchies")
        for target, lv in zip(levels, result.levels):
            target.accesses += lv.accesses
            target.hits += lv.hits
            target.misses += lv.misses
            target.writeback_lines += lv.writeback_lines
            target.bytes_in += lv.bytes_in
        for key, value in result.stage_times.items():
            stage_times[key] = stage_times.get(key, 0.0) + value
        transactions += result.transactions
        bytes_requested += result.bytes_requested
        dram_read += result.dram_read_bytes
        dram_write += result.dram_write_bytes
        dram_transactions += result.dram_transactions
        streaming += result.streaming_time_s
        latency = max(latency, result.exposed_latency_s)
    return MemoryResult(
        transactions=transactions,
        bytes_requested=bytes_requested,
        levels=levels,
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        dram_transactions=dram_transactions,
        stage_times=stage_times,
        streaming_time_s=streaming,
        exposed_latency_s=latency,
    )
