"""Board configurations and calibrated Jetson presets.

A :class:`BoardConfig` bundles everything the simulator needs to stand
in for one embedded device.  The three presets model the boards the
paper evaluates; their parameters are **calibrated against the paper's
own device measurements** (Table I throughputs, the threshold locations
of Figs. 3 and 6, the copy times of Tables II/IV) rather than invented:

===========  =============  =============  ==============
Table I      ZC (GB/s)      SC (GB/s)      UM (GB/s)
===========  =============  =============  ==============
TX2          1.28           97.34          104.15
Xavier       32.29          214.64         231.14
Nano (†)     1.10           51.20          54.20
===========  =============  =============  ==============

(†) The paper does not publish a Nano row; Fig. 5's caption states the
Nano behaves like the TX2, so the Nano preset is synthesized with
TX2-like coherence behaviour scaled to Maxwell-class bandwidths.  This
substitution is recorded in DESIGN.md.

Key behavioural differences the presets encode (paper §IV-A):

- Nano/TX2 disable the CPU caches too under zero-copy; Xavier keeps
  them enabled thanks to hardware I/O coherence.
- The GPU LL-L1 path under ZC is ~77× slower than SC on TX2 but only
  ~7× slower on Xavier.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.soc.cache import CacheConfig
from repro.soc.coherence import (
    CoherenceMode,
    FlushCostModel,
    PageMigrationModel,
    ZeroCopyBehavior,
)
from repro.soc.cpu import CPUConfig
from repro.soc.dram import DRAMConfig
from repro.soc.energy import EnergyConfig
from repro.soc.gpu import GPUConfig
from repro.soc.interconnect import InterconnectConfig
from repro.units import gbps, ghz, kib, mib


@dataclass(frozen=True)
class BoardConfig:
    """Complete description of one embedded platform."""

    name: str
    display_name: str
    cpu: CPUConfig
    gpu: GPUConfig
    dram: DRAMConfig
    interconnect: InterconnectConfig
    zero_copy: ZeroCopyBehavior
    flush: FlushCostModel
    page_migration: PageMigrationModel
    energy: EnergyConfig
    copy_engine_bandwidth: float
    um_throughput_factor: float = 1.0
    address_space_bytes: int = 4 * 1024 ** 3  # 4 GiB shared DRAM

    def __post_init__(self) -> None:
        if self.copy_engine_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: copy bandwidth must be positive")
        if self.um_throughput_factor <= 0:
            raise ConfigurationError(f"{self.name}: UM factor must be positive")
        if self.address_space_bytes <= 0:
            raise ConfigurationError(f"{self.name}: address space must be positive")

    @property
    def io_coherent(self) -> bool:
        """True when ZC keeps the CPU caches on (Xavier-style)."""
        return self.zero_copy.io_coherent


def jetson_tx2() -> BoardConfig:
    """Jetson TX2 preset (Pascal iGPU, no I/O coherence)."""
    cpu = CPUConfig(
        name="tx2-cpu",
        frequency_hz=ghz(2.0),
        l1=CacheConfig(name="cpu-l1", size_bytes=kib(32), line_size=64, ways=4),
        llc=CacheConfig(name="cpu-llc", size_bytes=mib(2), line_size=64, ways=16),
        l1_bandwidth=gbps(48.0),
        llc_bandwidth=gbps(24.0),
        ipc=1.16,
    )
    gpu = GPUConfig(
        name="tx2-gpu",
        frequency_hz=ghz(1.30),
        num_sms=2,
        warp_size=32,
        l1=CacheConfig(name="gpu-l1", size_bytes=kib(48), line_size=64, ways=6),
        llc=CacheConfig(name="gpu-llc", size_bytes=kib(512), line_size=64, ways=16),
        l1_bandwidth=gbps(180.0),
        llc_bandwidth=gbps(97.34),
    )
    return BoardConfig(
        name="tx2",
        display_name="NVIDIA Jetson TX2",
        cpu=cpu,
        gpu=gpu,
        dram=DRAMConfig(peak_bandwidth=gbps(59.7), efficiency=0.75),
        interconnect=InterconnectConfig(total_bandwidth=gbps(59.7) * 0.75),
        zero_copy=ZeroCopyBehavior(
            mode=CoherenceMode.ZC_CACHES_DISABLED,
            gpu_zc_bandwidth=gbps(1.28),
            cpu_zc_bandwidth=gbps(3.2),
            gpu_llc_disabled=True,
            cpu_llc_disabled=True,
            cpu_uncached_latency_s=100e-9,
        ),
        flush=FlushCostModel(),
        page_migration=PageMigrationModel(),
        energy=EnergyConfig(
            static_power_w=2.5,
            cpu_active_power_w=2.0,
            gpu_active_power_w=5.0,
        ),
        copy_engine_bandwidth=gbps(14.0),
        um_throughput_factor=104.15 / 97.34,
    )


def jetson_xavier() -> BoardConfig:
    """Jetson AGX Xavier preset (Volta iGPU, hardware I/O coherence)."""
    cpu = CPUConfig(
        name="xavier-cpu",
        frequency_hz=ghz(2.26),
        l1=CacheConfig(name="cpu-l1", size_bytes=kib(64), line_size=64, ways=4),
        llc=CacheConfig(name="cpu-llc", size_bytes=mib(4), line_size=64, ways=16),
        l1_bandwidth=gbps(96.0),
        llc_bandwidth=gbps(48.0),
        ipc=2.05,
    )
    gpu = GPUConfig(
        name="gpu",
        frequency_hz=ghz(1.377),
        num_sms=8,
        warp_size=32,
        l1=CacheConfig(name="gpu-l1", size_bytes=kib(128), line_size=64, ways=4),
        llc=CacheConfig(name="gpu-llc", size_bytes=kib(512), line_size=64, ways=16),
        l1_bandwidth=gbps(400.0),
        llc_bandwidth=gbps(214.64),
    )
    return BoardConfig(
        name="xavier",
        display_name="NVIDIA Jetson AGX Xavier",
        cpu=cpu,
        gpu=gpu,
        dram=DRAMConfig(peak_bandwidth=gbps(137.0), efficiency=0.75),
        interconnect=InterconnectConfig(total_bandwidth=gbps(137.0) * 0.75),
        zero_copy=ZeroCopyBehavior(
            mode=CoherenceMode.ZC_IO_COHERENT,
            gpu_zc_bandwidth=gbps(32.29),
            cpu_zc_bandwidth=gbps(48.0),
            gpu_llc_disabled=True,
            cpu_llc_disabled=False,
            snoop_latency_s=0.4e-6,
        ),
        flush=FlushCostModel(),
        page_migration=PageMigrationModel(),
        energy=EnergyConfig(
            static_power_w=5.0,
            cpu_active_power_w=4.0,
            gpu_active_power_w=10.0,
        ),
        copy_engine_bandwidth=gbps(18.5),
        um_throughput_factor=231.14 / 214.64,
    )


def jetson_nano() -> BoardConfig:
    """Jetson Nano preset (Maxwell iGPU; TX2-like coherence behaviour).

    The paper omits the Nano from Table I and Fig. 5 because "the
    results on the Nano are equivalent to those of the TX2"; this preset
    is the TX2 coherence behaviour scaled to Maxwell-class bandwidths.
    """
    cpu = CPUConfig(
        name="nano-cpu",
        frequency_hz=ghz(1.43),
        l1=CacheConfig(name="cpu-l1", size_bytes=kib(32), line_size=64, ways=4),
        llc=CacheConfig(name="cpu-llc", size_bytes=mib(2), line_size=64, ways=16),
        l1_bandwidth=gbps(32.0),
        llc_bandwidth=gbps(16.0),
        ipc=0.55,
    )
    gpu = GPUConfig(
        name="nano-gpu",
        frequency_hz=ghz(0.9216),
        num_sms=1,
        warp_size=32,
        l1=CacheConfig(name="gpu-l1", size_bytes=kib(48), line_size=64, ways=6),
        llc=CacheConfig(name="gpu-llc", size_bytes=kib(256), line_size=64, ways=16),
        l1_bandwidth=gbps(96.0),
        llc_bandwidth=gbps(51.2),
    )
    return BoardConfig(
        name="nano",
        display_name="NVIDIA Jetson Nano",
        cpu=cpu,
        gpu=gpu,
        dram=DRAMConfig(peak_bandwidth=gbps(25.6), efficiency=0.75),
        interconnect=InterconnectConfig(total_bandwidth=gbps(25.6) * 0.75),
        zero_copy=ZeroCopyBehavior(
            mode=CoherenceMode.ZC_CACHES_DISABLED,
            gpu_zc_bandwidth=gbps(1.10),
            cpu_zc_bandwidth=gbps(1.6),
            gpu_llc_disabled=True,
            cpu_llc_disabled=True,
            cpu_uncached_latency_s=340e-9,
        ),
        flush=FlushCostModel(),
        page_migration=PageMigrationModel(),
        energy=EnergyConfig(
            static_power_w=1.5,
            cpu_active_power_w=1.5,
            gpu_active_power_w=3.5,
        ),
        copy_engine_bandwidth=gbps(7.0),
        um_throughput_factor=54.2 / 51.2,
    )


_REGISTRY: Dict[str, Callable[[], BoardConfig]] = {
    "nano": jetson_nano,
    "tx2": jetson_tx2,
    "xavier": jetson_xavier,
}


def available_boards() -> List[str]:
    """Names accepted by :func:`get_board`."""
    return sorted(_REGISTRY)


def get_board(name: str) -> BoardConfig:
    """Build a board preset by name (case-insensitive)."""
    key = name.lower()
    try:
        return _REGISTRY[key]()
    except KeyError:
        raise ConfigurationError(
            f"unknown board {name!r}; available: {', '.join(available_boards())}"
        ) from None


def register_board(name: str, factory: Callable[[], BoardConfig]) -> None:
    """Register a custom board preset (e.g. a hypothetical device for
    ablation studies).  Overwriting a built-in name is rejected."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"board {name!r} already registered")
    _REGISTRY[key] = factory


# ----------------------------------------------------------------------
# synthetic variants (the design-space explorer's board generator)
# ----------------------------------------------------------------------

#: Coherence-mode choices accepted by :func:`derive_board`.
COHERENCE_CHOICES = ("inherit", "io_coherent", "caches_disabled")

#: Snoop latency a synthesized I/O-coherent variant inherits when its
#: base was not I/O coherent (the Xavier preset's measured value).
_DEFAULT_SNOOP_LATENCY_S = 0.4e-6

#: CPU uncached-path latency a synthesized caches-disabled variant
#: inherits when its base kept the CPU caches on (the TX2's value).
_DEFAULT_CPU_UNCACHED_LATENCY_S = 100e-9


def _is_power_of_two(value: float) -> bool:
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        # Fractions 1/2^k scale a power-of-two geometry legally too.
        inverse = 1.0 / value if value > 0 else 0.0
        return inverse > 0 and inverse == int(inverse) and \
            int(inverse) & (int(inverse) - 1) == 0
    return ivalue & (ivalue - 1) == 0


def _with_coherence(zero_copy: ZeroCopyBehavior,
                    coherence: str) -> ZeroCopyBehavior:
    """The base board's ZC behaviour re-expressed under ``coherence``."""
    if coherence == "inherit":
        return zero_copy
    if coherence == "io_coherent":
        return ZeroCopyBehavior(
            mode=CoherenceMode.ZC_IO_COHERENT,
            gpu_zc_bandwidth=zero_copy.gpu_zc_bandwidth,
            cpu_zc_bandwidth=zero_copy.cpu_zc_bandwidth,
            gpu_llc_disabled=True,
            cpu_llc_disabled=False,
            snoop_latency_s=zero_copy.snoop_latency_s
            or _DEFAULT_SNOOP_LATENCY_S,
            cpu_uncached_latency_s=zero_copy.cpu_uncached_latency_s,
        )
    if coherence == "caches_disabled":
        return ZeroCopyBehavior(
            mode=CoherenceMode.ZC_CACHES_DISABLED,
            gpu_zc_bandwidth=zero_copy.gpu_zc_bandwidth,
            cpu_zc_bandwidth=zero_copy.cpu_zc_bandwidth,
            gpu_llc_disabled=True,
            cpu_llc_disabled=True,
            snoop_latency_s=0.0,
            cpu_uncached_latency_s=zero_copy.cpu_uncached_latency_s
            or _DEFAULT_CPU_UNCACHED_LATENCY_S,
        )
    raise ConfigurationError(
        f"unknown coherence mode {coherence!r}; expected one of "
        f"{COHERENCE_CHOICES}"
    )


def derive_board(
    base: BoardConfig,
    name: str,
    dram_bandwidth: float = 1.0,
    gpu_clock: float = 1.0,
    cpu_clock: float = 1.0,
    zc_bandwidth: float = 1.0,
    llc_size: float = 1.0,
    coherence: str = "inherit",
    display_name: str = "",
) -> BoardConfig:
    """A synthetic variant of ``base`` scaled along the explorer's axes.

    The scale factors are multiplicative against the base preset and
    each one moves every field that physically co-varies with it:
    ``dram_bandwidth`` scales the DRAM pins *and* the fabric,
    ``gpu_clock``/``cpu_clock`` scale a core's frequency together with
    its cache bandwidths (on-chip SRAM runs in the core clock domain),
    ``zc_bandwidth`` scales both zero-copy paths, and ``llc_size``
    (a power of two, so the set count stays a mask) scales both LLCs.
    ``coherence`` rewrites the ZC behaviour to the Xavier-style
    I/O-coherent variant or the Nano/TX2 caches-disabled variant.

    Deterministic: same base + same factors ⇒ an identical (frozen,
    fully validated) :class:`BoardConfig`.
    """
    for label, factor in (("dram_bandwidth", dram_bandwidth),
                          ("gpu_clock", gpu_clock),
                          ("cpu_clock", cpu_clock),
                          ("zc_bandwidth", zc_bandwidth),
                          ("llc_size", llc_size)):
        if factor <= 0:
            raise ConfigurationError(
                f"{name}: {label} scale must be positive, got {factor}"
            )
    if not _is_power_of_two(llc_size):
        raise ConfigurationError(
            f"{name}: llc_size scale must be a power of two (the set "
            f"count must stay a mask), got {llc_size}"
        )
    cpu = dataclasses.replace(
        base.cpu,
        frequency_hz=base.cpu.frequency_hz * cpu_clock,
        l1_bandwidth=base.cpu.l1_bandwidth * cpu_clock,
        llc_bandwidth=base.cpu.llc_bandwidth * cpu_clock,
        llc=dataclasses.replace(
            base.cpu.llc, size_bytes=int(base.cpu.llc.size_bytes * llc_size)
        ),
    )
    gpu = dataclasses.replace(
        base.gpu,
        frequency_hz=base.gpu.frequency_hz * gpu_clock,
        l1_bandwidth=base.gpu.l1_bandwidth * gpu_clock,
        llc_bandwidth=base.gpu.llc_bandwidth * gpu_clock,
        llc=dataclasses.replace(
            base.gpu.llc, size_bytes=int(base.gpu.llc.size_bytes * llc_size)
        ),
    )
    zero_copy = dataclasses.replace(
        _with_coherence(base.zero_copy, coherence),
        gpu_zc_bandwidth=base.zero_copy.gpu_zc_bandwidth * zc_bandwidth,
        cpu_zc_bandwidth=base.zero_copy.cpu_zc_bandwidth * zc_bandwidth,
    )
    return dataclasses.replace(
        base,
        name=name,
        display_name=display_name or f"{base.display_name} [{name}]",
        cpu=cpu,
        gpu=gpu,
        dram=dataclasses.replace(
            base.dram, peak_bandwidth=base.dram.peak_bandwidth * dram_bandwidth
        ),
        interconnect=dataclasses.replace(
            base.interconnect,
            total_bandwidth=base.interconnect.total_bandwidth * dram_bandwidth,
        ),
        zero_copy=zero_copy,
    )
