"""Shared-interconnect bandwidth arbitration.

When the zero-copy model overlaps a CPU phase with a GPU phase, both
stream through the same memory fabric.  :func:`allocate_bandwidth`
computes a max-min fair (water-filling) split of the shared bandwidth
among concurrent demands, respecting each requester's private port cap.
The discrete-event engine (:mod:`repro.soc.events`) calls it every time
the set of active jobs changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InterconnectConfig:
    """Fabric description.

    Attributes:
        total_bandwidth: bytes/s the fabric can move in aggregate.
        arbitration_overhead: fractional throughput loss per extra
            concurrent requester (models arbitration turnaround).
    """

    total_bandwidth: float
    arbitration_overhead: float = 0.03

    def __post_init__(self) -> None:
        if self.total_bandwidth <= 0:
            raise ConfigurationError("interconnect bandwidth must be positive")
        if not 0.0 <= self.arbitration_overhead < 0.5:
            raise ConfigurationError(
                f"arbitration overhead must be in [0, 0.5), got {self.arbitration_overhead}"
            )

    def usable_bandwidth(self, num_requesters: int) -> float:
        """Aggregate bandwidth available to ``num_requesters`` agents."""
        if num_requesters <= 0:
            return self.total_bandwidth
        penalty = self.arbitration_overhead * (num_requesters - 1)
        return self.total_bandwidth * max(0.5, 1.0 - penalty)


def allocate_bandwidth(
    demands: Mapping[str, float],
    config: InterconnectConfig,
) -> Dict[str, float]:
    """Max-min fair allocation of shared bandwidth.

    Args:
        demands: requester name → private port cap (bytes/s); this is
            the fastest rate the requester could consume alone.
        config: the fabric being shared.

    Returns:
        requester name → granted bytes/s.  The grants never exceed the
        private caps and sum to at most the usable fabric bandwidth.
    """
    active = {k: v for k, v in demands.items() if v > 0}
    if not active:
        return {k: 0.0 for k in demands}
    budget = config.usable_bandwidth(len(active))
    grants: Dict[str, float] = {k: 0.0 for k in demands}
    remaining = dict(active)
    # Water-filling: repeatedly give every unsatisfied requester an even
    # share; requesters capped below the share release the surplus.
    while remaining and budget > 1e-9:
        share = budget / len(remaining)
        satisfied = {k: cap for k, cap in remaining.items() if cap <= share}
        if satisfied:
            for name, cap in satisfied.items():
                grants[name] = cap
                budget -= cap
                del remaining[name]
        else:
            for name in remaining:
                grants[name] = share
            budget = 0.0
            remaining.clear()
    return grants
