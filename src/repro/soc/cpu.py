"""CPU complex timing model.

The CPU executes *routines*: a number of compute cycles plus one or
more memory access streams served by its private L1 and the shared LLC.
Unlike the GPU, a CPU core hides only part of its memory time behind
computation (out-of-order window, hardware prefetch), so the phase time
is

``max(compute, memory) + (1 - hide) * min(compute, memory)``

with a high ``hide`` factor for streaming accesses and none at all for
dependent single-address chains.

On the zero-copy uncached path (boards that disable the CPU caches),
sequential streams remain bandwidth-bound but non-prefetchable patterns
pay a per-transaction latency — see :meth:`CPUModel.run`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.soc.address import RegionKind
from repro.soc.analytic import SummaryBatch
from repro.soc.cache import CacheConfig
from repro.soc.dram import DRAMModel
from repro.soc.hierarchy import CacheHierarchy, LevelSpec, merge_memory_results
from repro.soc.phase import (
    BatchPhaseResult,
    PhaseResult,
    combine_compute_memory,
    combine_compute_memory_array,
)
from repro.soc.stream import AccessStream, PatternKind


def _stream_is_pinned(stream: AccessStream) -> bool:
    """Whether zero-copy treats the stream's pages as uncacheable.

    Untagged streams are treated conservatively as pinned — under the
    zero-copy executor every shared allocation lives in the pinned
    region, so this default only errs toward the paper's measured
    worst case.
    """
    return stream.region_kind is None or stream.region_kind is RegionKind.PINNED


@dataclass(frozen=True)
class CPUConfig:
    """Datasheet-level CPU complex description."""

    name: str
    frequency_hz: float
    l1: CacheConfig
    llc: CacheConfig
    l1_bandwidth: float
    llc_bandwidth: float
    mlp: float = 4.0
    #: Fraction of *streaming* memory time hidden behind computation
    #: (out-of-order window + hardware prefetch).  Dependent
    #: single-address chains hide nothing regardless of this value.
    memory_hide_factor: float = 0.85
    flops_per_cycle: float = 8.0
    #: Sustained instructions per cycle of one core on scalar FP code.
    #: Differentiates microarchitectures at equal frequency (Cortex-A57
    #: vs. Denver2 vs. Carmel).
    ipc: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"{self.name}: frequency must be positive")
        if self.l1_bandwidth <= 0 or self.llc_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: cache bandwidths must be positive")
        if self.mlp < 1:
            raise ConfigurationError(f"{self.name}: MLP must be >= 1")
        if not 0.0 <= self.memory_hide_factor <= 1.0:
            raise ConfigurationError(
                f"{self.name}: memory_hide_factor must be in [0, 1]"
            )
        if self.flops_per_cycle <= 0:
            raise ConfigurationError(f"{self.name}: flops_per_cycle must be positive")
        if self.ipc <= 0:
            raise ConfigurationError(f"{self.name}: ipc must be positive")


class CPUModel:
    """A CPU complex bound to a DRAM through its cache hierarchy."""

    def __init__(
        self,
        config: CPUConfig,
        dram: DRAMModel,
        memory_port_bandwidth: float = float("inf"),
        backend=None,
    ) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy(
            specs=[
                LevelSpec(config=config.l1, bandwidth=config.l1_bandwidth),
                LevelSpec(config=config.llc, bandwidth=config.llc_bandwidth),
            ],
            dram=dram,
            memory_port_bandwidth=memory_port_bandwidth,
            name=f"{config.name}-hierarchy",
            backend=backend,
        )

    def compute_time(self, compute_cycles: float) -> float:
        """Seconds of pure computation for ``compute_cycles`` cycles."""
        if compute_cycles < 0:
            raise ConfigurationError("compute cycles cannot be negative")
        return compute_cycles / (self.config.frequency_hz * self.config.ipc)

    def run(
        self,
        name: str,
        compute_cycles: float,
        stream: Union[AccessStream, Sequence[AccessStream]],
        mode: str = "auto",
        uncached_bandwidth: float = 0.0,
        uncached_latency_s: float = 0.0,
    ) -> PhaseResult:
        """Execute one CPU routine standalone.

        Args:
            name: phase label.
            compute_cycles: cycles of pure computation.
            stream: the routine's memory accesses — one stream or a
                sequence served back to back.
            mode: hierarchy processing mode.
            uncached_bandwidth: when positive, the hierarchy's DRAM port
                is capped at this rate for the phase — the zero-copy
                uncached path on boards that disable the CPU caches.
            uncached_latency_s: per-transaction latency of the uncached
                path, charged to non-prefetchable patterns (see
                :meth:`_uncached_latency_penalty`).
        """
        streams: List[AccessStream] = (
            [stream] if isinstance(stream, AccessStream) else list(stream)
        )
        if not streams:
            raise ConfigurationError("a CPU routine needs at least one stream")
        saved_port = self.hierarchy.memory_port_bandwidth
        results = []
        serial_memory_s = 0.0
        hidable_memory_s = 0.0
        try:
            for s in streams:
                uncached = uncached_bandwidth > 0 and _stream_is_pinned(s)
                if uncached:
                    # Pinned pages are uncacheable on this board's
                    # zero-copy path; private buffers stay cached.
                    self.hierarchy.set_all_enabled(False)
                    self.hierarchy.memory_port_bandwidth = uncached_bandwidth
                try:
                    memory = self.hierarchy.process(s, mode=mode)
                finally:
                    if uncached:
                        self.hierarchy.set_all_enabled(True)
                        self.hierarchy.memory_port_bandwidth = saved_port
                results.append(memory)
                piece = memory.streaming_time_s + memory.exposed_latency_s
                if uncached:
                    piece += self._uncached_latency_penalty(s, uncached_latency_s)
                if s.pattern is PatternKind.SINGLE_ADDRESS:
                    # A read-modify-write chain on one address is fully
                    # serial: nothing hides behind compute.
                    serial_memory_s += piece
                else:
                    hidable_memory_s += piece
        finally:
            self.hierarchy.memory_port_bandwidth = saved_port
        merged = merge_memory_results(results)
        compute_s = self.compute_time(compute_cycles)
        memory_s = serial_memory_s + hidable_memory_s
        total = (
            combine_compute_memory(
                compute_s, hidable_memory_s, self.config.memory_hide_factor
            )
            + serial_memory_s
        )
        return PhaseResult(
            name=name,
            processor="cpu",
            compute_time_s=compute_s,
            memory_time_s=memory_s,
            time_s=total,
            memory=merged,
        )

    def run_batch(
        self,
        compute_cycles: np.ndarray,
        batch: SummaryBatch,
        uncached_bandwidth: float = 0.0,
        uncached_latency_s: float = 0.0,
        pinned: bool = True,
    ) -> BatchPhaseResult:
        """Execute N single-stream routines at once on the analytic path.

        Mirrors :meth:`run` for the sweep case (one stream per routine):
        the uncached zero-copy treatment, the pattern-dependent latency
        penalty and the serial handling of dependent single-address
        chains are all applied per row.
        """
        compute_cycles = np.asarray(compute_cycles, dtype=np.float64)
        uncached = uncached_bandwidth > 0 and pinned
        saved_port = self.hierarchy.memory_port_bandwidth
        if uncached:
            self.hierarchy.set_all_enabled(False)
            self.hierarchy.memory_port_bandwidth = uncached_bandwidth
        try:
            memory = self.hierarchy.process_summaries(batch)
        finally:
            if uncached:
                self.hierarchy.set_all_enabled(True)
            self.hierarchy.memory_port_bandwidth = saved_port
        piece = memory.streaming_time_s + memory.exposed_latency_s
        if uncached:
            piece = piece + self._uncached_penalty_batch(
                batch, uncached_latency_s
            )
        compute_s = compute_cycles / (self.config.frequency_hz * self.config.ipc)
        if batch.pattern is PatternKind.SINGLE_ADDRESS:
            serial = piece
            hidable = np.zeros_like(piece)
        else:
            serial = np.zeros_like(piece)
            hidable = piece
        total = (
            combine_compute_memory_array(
                compute_s, hidable, self.config.memory_hide_factor
            )
            + serial
        )
        return BatchPhaseResult(
            processor="cpu",
            compute_time_s=compute_s,
            memory_time_s=piece,
            time_s=total,
            memory=memory,
        )

    def _uncached_penalty_batch(
        self, batch: SummaryBatch, uncached_latency_s: float
    ) -> np.ndarray:
        """Vectorized :meth:`_uncached_latency_penalty`."""
        if uncached_latency_s <= 0:
            return np.zeros(len(batch), dtype=np.float64)
        total = batch.total.astype(np.float64)
        if batch.pattern is PatternKind.SINGLE_ADDRESS:
            return total * uncached_latency_s
        if batch.pattern in (
            PatternKind.STRIDED,
            PatternKind.SPARSE,
            PatternKind.TILED,
            PatternKind.CUSTOM,
        ):
            return total * uncached_latency_s / self.config.mlp
        return np.zeros(len(batch), dtype=np.float64)

    def _uncached_latency_penalty(
        self,
        stream: AccessStream,
        uncached_latency_s: float,
    ) -> float:
        """Latency cost of the uncached (caches-disabled) path.

        Sequential patterns (LINEAR / FRACTION) stream through write
        combining and are bandwidth-bound — the port cap covers them.
        Non-sequential patterns cannot be prefetched on an uncached
        path: each transaction pays the round trip, overlapped only by
        the core's MLP.  A same-address read-modify-write chain is a
        true dependency chain and overlaps nothing.
        """
        if uncached_latency_s <= 0:
            return 0.0
        if stream.pattern is PatternKind.SINGLE_ADDRESS:
            return stream.total_transactions * uncached_latency_s
        if stream.pattern in (
            PatternKind.STRIDED,
            PatternKind.SPARSE,
            PatternKind.TILED,
            PatternKind.CUSTOM,
        ):
            return stream.total_transactions * uncached_latency_s / self.config.mlp
        return 0.0
