"""SoC assembly: one board instantiated and ready to execute phases.

:class:`SoC` wires a board's CPU, iGPU, DRAM, interconnect, and energy
models together and exposes the primitives the communication-model
executors need:

- run a CPU routine or a GPU kernel standalone (with or without the
  zero-copy cache restrictions),
- copy bytes with the copy engine,
- flush caches (software coherence),
- run overlapped CPU+GPU job sets through the shared fabric.

Cache enable/disable is managed through the :meth:`communication`
context manager so a simulation can never leak a disabled-cache state
into the next experiment.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.sim.backend import get_backend
from repro.sim.contention import run_contended
from repro.soc.address import AddressSpace, RegionKind
from repro.soc.board import BoardConfig
from repro.soc.coherence import CoherenceMode
from repro.soc.cpu import CPUModel
from repro.soc.dram import DRAMModel
from repro.soc.energy import EnergyModel
from repro.soc.events import OverlapJob, OverlapResult, run_overlapped, run_serial
from repro.soc.gpu import GPUModel
from repro.soc.phase import PhaseResult
from repro.soc.stream import AccessStream

#: Communication-model identifiers used across the package.
MODEL_SC = "SC"
MODEL_UM = "UM"
MODEL_ZC = "ZC"
ALL_MODELS = (MODEL_SC, MODEL_UM, MODEL_ZC)


@dataclass(frozen=True)
class CopyResult:
    """Outcome of one explicit copy-engine transfer."""

    num_bytes: int
    time_s: float

    @property
    def throughput(self) -> float:
        """Achieved copy throughput (bytes/s)."""
        return self.num_bytes / self.time_s if self.time_s > 0 else 0.0


class SoC:
    """A board instantiated for simulation."""

    def __init__(self, board: BoardConfig, backend=None) -> None:
        self.board = board
        #: Timing backend shared by both hierarchies and the overlap
        #: engine (``"analytic"`` default; see :mod:`repro.sim.backend`).
        self.backend = get_backend(backend)
        self.dram = DRAMModel(board.dram)
        self.cpu = CPUModel(board.cpu, self.dram, backend=self.backend)
        self.gpu = GPUModel(board.gpu, self.dram, backend=self.backend)
        self.energy = EnergyModel(board.energy)
        self.address_space = AddressSpace(board.address_space_bytes)
        self._active_model: Optional[str] = None
        self.copied_bytes = 0
        #: Optional invariant-guard hooks (see
        #: :mod:`repro.robustness.guards`); ``None`` means unguarded.
        self.guards = None
        # Software-coherence bookkeeping: under SC/UM a processor that
        # ran a phase holds potentially dirty lines until its hierarchy
        # is flushed.  The guards use these flags to detect dropped
        # flushes independently of the (exact vs analytic) cache mode.
        self._cpu_needs_flush = False
        self._gpu_needs_flush = False

    # ------------------------------------------------------------------
    # memory layout helpers
    # ------------------------------------------------------------------

    def make_region(self, name: str, size: int, kind: RegionKind):
        """Carve a region out of the shared physical space."""
        return self.address_space.add_region(name, size, kind)

    def reset_memory_layout(self) -> None:
        """Drop all regions and buffers (new experiment)."""
        self.address_space = AddressSpace(self.board.address_space_bytes)

    # ------------------------------------------------------------------
    # communication-model cache state
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def communication(self, model: str) -> Iterator["SoC"]:
        """Apply a communication model's execution environment.

        - SC / UM: all caches enabled, accesses cached normally.
        - ZC: accesses to *pinned* pages become uncacheable and stream
          over the board's zero-copy path; private buffers stay cached.
          The per-stream treatment is applied by :meth:`run_cpu` /
          :meth:`run_gpu` based on each stream's region tag.

        On exit all caches are invalidated so experiments are
        independent.
        """
        if model not in ALL_MODELS:
            raise ConfigurationError(
                f"unknown communication model {model!r}; expected one of {ALL_MODELS}"
            )
        if self._active_model is not None:
            raise SimulationError(
                f"communication model {self._active_model!r} already active"
            )
        self._active_model = model
        try:
            if self.guards is not None:
                self.guards.on_model_enter(self, model)
            yield self
            if self.guards is not None:
                self.guards.on_model_exit(self, model)
        finally:
            # The active-model reset must survive a failing invalidate
            # (e.g. under fault injection): leaking it would poison every
            # later experiment with "model already active".
            try:
                self.gpu.hierarchy.invalidate_all()
                self.cpu.hierarchy.invalidate_all()
            finally:
                self._active_model = None
                self._cpu_needs_flush = False
                self._gpu_needs_flush = False

    @property
    def active_model(self) -> Optional[str]:
        """The communication model currently applied, if any."""
        return self._active_model

    # ------------------------------------------------------------------
    # phase execution
    # ------------------------------------------------------------------

    def run_cpu(
        self,
        name: str,
        compute_cycles: float,
        stream: AccessStream,
        mode: str = "auto",
    ) -> PhaseResult:
        """Run a CPU routine under the active communication model."""
        uncached = 0.0
        uncached_latency = 0.0
        if self._active_model == MODEL_ZC and self.board.zero_copy.cpu_llc_disabled:
            uncached = self.board.zero_copy.cpu_zc_bandwidth
            uncached_latency = self.board.zero_copy.cpu_uncached_latency_s
        result = self.cpu.run(name, compute_cycles, stream, mode=mode,
                              uncached_bandwidth=uncached,
                              uncached_latency_s=uncached_latency)
        if self._active_model in (MODEL_SC, MODEL_UM):
            self._cpu_needs_flush = True
        if self.guards is not None:
            self.guards.on_phase(self, result)
        return result

    def run_gpu(
        self,
        name: str,
        total_flops: float,
        stream: AccessStream,
        mode: str = "auto",
    ) -> PhaseResult:
        """Run a GPU kernel under the active communication model."""
        uncached = 0.0
        extra_latency = 0.0
        if self._active_model == MODEL_ZC:
            uncached = self.board.zero_copy.gpu_zc_bandwidth
            if self.board.zero_copy.io_coherent:
                extra_latency = self.board.zero_copy.snoop_latency_s
        result = self.gpu.run(name, total_flops, stream, mode=mode,
                              uncached_bandwidth=uncached,
                              extra_latency_s=extra_latency)
        if self.guards is not None:
            # Checks the SC/UM handoff invariant (CPU caches flushed
            # before the kernel consumed the shared data) and the
            # phase-timing invariants.
            self.guards.on_phase(self, result)
        if self._active_model in (MODEL_SC, MODEL_UM):
            self._gpu_needs_flush = True
        return result

    # ------------------------------------------------------------------
    # copies and coherence actions
    # ------------------------------------------------------------------

    def copy(self, num_bytes: int) -> CopyResult:
        """Move ``num_bytes`` with the copy engine (SC transfers).

        The copy reads and writes DRAM, so the traffic is twice the
        payload; throughput is capped by the copy engine and by DRAM.
        """
        if num_bytes < 0:
            raise ConfigurationError("copy size cannot be negative")
        if num_bytes == 0:
            return CopyResult(num_bytes=0, time_s=0.0)
        rate = min(
            self.board.copy_engine_bandwidth,
            self.dram.config.effective_bandwidth / 2.0,
        )
        time_s = self._copy_time(num_bytes, rate)
        self.dram.record(num_bytes, num_bytes)
        self.copied_bytes += num_bytes
        result = CopyResult(num_bytes=num_bytes, time_s=time_s)
        if self.guards is not None:
            self.guards.on_copy(self, result)
        return result

    def _copy_time(self, num_bytes: int, rate: float) -> float:
        """Copy-engine timing seam.

        Isolated so the fault-injection harness can perturb the engine
        (stalls) *below* the invariant guards, which observe the
        resulting :class:`CopyResult` in :meth:`copy`.
        """
        return self.dram.config.latency_s + num_bytes / rate

    def flush_cpu_caches(self):
        """Software-flush the CPU hierarchy (SC/UM kernel boundary)."""
        result = self.cpu.hierarchy.flush(self.board.flush)
        self._cpu_needs_flush = False
        return result

    def flush_gpu_caches(self):
        """Software-flush the GPU hierarchy (SC/UM kernel boundary)."""
        result = self.gpu.hierarchy.flush(self.board.flush)
        self._gpu_needs_flush = False
        return result

    def migration_time(self, num_bytes: int, faulted_fraction: float = 1.0) -> float:
        """UM page-migration time for ``num_bytes`` of first-touch data."""
        return self.board.page_migration.migration_time(
            num_bytes,
            copy_bandwidth=self.board.copy_engine_bandwidth,
            faulted_fraction=faulted_fraction,
        )

    # ------------------------------------------------------------------
    # overlap execution
    # ------------------------------------------------------------------

    def overlap(self, jobs: List[OverlapJob]) -> OverlapResult:
        """Run jobs concurrently through the shared fabric.

        The analytic backend resolves contention with max-min fair
        water-filling; the event-driven backend time-multiplexes the
        fabric quantum by quantum (:mod:`repro.sim.contention`).
        """
        if not self.backend.is_analytic:
            return run_contended(jobs, self.board.interconnect, self.backend.config)
        return run_overlapped(jobs, self.board.interconnect)

    def serialize(self, jobs: List[OverlapJob]) -> OverlapResult:
        """Run jobs back-to-back (SC/UM implicit synchronization)."""
        return run_serial(jobs, self.board.interconnect)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Reset caches, DRAM counters and copy accounting."""
        self.cpu.hierarchy.reset()
        self.gpu.hierarchy.reset()
        self.dram.reset()
        self.copied_bytes = 0
