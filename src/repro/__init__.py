"""repro — a reproduction of *A Framework for Optimizing CPU-iGPU
Communication on Embedded Platforms* (Lumpp, Patel, Bombieri, DAC 2021).

The package provides:

- a transaction-level simulator of embedded CPU+iGPU SoCs with shared
  DRAM, calibrated Jetson Nano/TX2/AGX-Xavier presets (:mod:`repro.soc`);
- the paper's three communication models — standard copy, unified
  memory, zero-copy — as executors (:mod:`repro.comm`), including the
  tiled zero-copy pattern of Fig. 4;
- the micro-benchmarks (:mod:`repro.microbench`), performance model and
  decision flow (:mod:`repro.model`), and profiler
  (:mod:`repro.profiling`);
- the two case-study applications: Shack-Hartmann wavefront-sensor
  centroid extraction and an ORB feature pipeline (:mod:`repro.apps`).

Quick start::

    from repro import Framework, get_board

    framework = Framework()
    device = framework.characterize(get_board("xavier"))
    print(device.gpu_threshold_pct, device.zc_sc_throughput_ratio)
"""

from repro.comm import ExecutionReport, get_model
from repro.kernels import (
    BufferSpec,
    CpuTask,
    GpuKernel,
    OpMix,
    Workload,
)
from repro.microbench import (
    FirstMicroBenchmark,
    MicrobenchmarkSuite,
    SecondMicroBenchmark,
    ThirdMicroBenchmark,
)
from repro.model import Framework, Recommendation, TuningReport, decide
from repro.model.device import DeviceCharacterization
from repro.profiling import AppProfile, Profiler
from repro.soc import (
    AccessStream,
    BoardConfig,
    SoC,
    available_boards,
    get_board,
    jetson_nano,
    jetson_tx2,
    jetson_xavier,
)

__version__ = "1.0.0"

__all__ = [
    "ExecutionReport",
    "get_model",
    "BufferSpec",
    "CpuTask",
    "GpuKernel",
    "OpMix",
    "Workload",
    "FirstMicroBenchmark",
    "SecondMicroBenchmark",
    "ThirdMicroBenchmark",
    "MicrobenchmarkSuite",
    "Framework",
    "Recommendation",
    "TuningReport",
    "decide",
    "DeviceCharacterization",
    "AppProfile",
    "Profiler",
    "AccessStream",
    "BoardConfig",
    "SoC",
    "available_boards",
    "get_board",
    "jetson_nano",
    "jetson_tx2",
    "jetson_xavier",
    "__version__",
]
