"""Micro-batching coalescer: group compatible in-flight tune requests.

The paper's framework makes one decision per application × board; at
serving scale the same few decisions are requested by many tenants at
once.  The coalescer exploits that: requests that arrive within a small
time/size window and share a **batch key** — the characterization
content hash (board + micro-benchmark parameters + version), the
current communication model and the strictness — are dispatched as one
batch instead of N serial tunes.  Within a batch, *identical* requests
(same bundled app, board and model) collapse onto a single
``Framework.tune`` whose report fans out to every requester.

Two invariants the tests pin down:

- a batch never mixes incompatible keys — each
  :class:`PendingBatch` is keyed, and :meth:`Coalescer.add` routes a
  request only to the batch with exactly its key;
- batching is answer-transparent — a batched answer is bit-identical
  to the serial ``Framework.tune`` answer for every request in the
  batch (dedup shares one report object; distinct workloads ride the
  characterize-once ``tune_many`` path, which runs the very same
  per-workload flow).

The coalescer itself is synchronous state (usable and testable without
an event loop); :class:`~repro.serve.server.TuneServer` owns the
asyncio window timers and dispatch.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.kernels.workload import Workload
from repro.model.decision import keep_current
from repro.model.framework import TuningReport
from repro.profiling.counters import AppProfile

#: Default coalescing window: long enough to catch a concurrent burst,
#: short enough to stay invisible next to a single profile run.
DEFAULT_WINDOW_S = 0.005

#: Default size window: a full batch dispatches without waiting.
DEFAULT_MAX_BATCH = 16

#: Bundled applications a request may name instead of carrying a
#: :class:`~repro.kernels.workload.Workload`.
SERVE_APPS = ("shwfs", "orbslam")


@dataclass(frozen=True)
class TuneRequest:
    """One tenant's tune question.

    Exactly one of three payloads: ``app`` names a bundled application
    (its workload is built deterministically for the board),
    ``workload`` carries an explicit
    :class:`~repro.kernels.workload.Workload`, or ``profile`` ships
    already-measured counters — the online re-tune path: no profiling
    runs server-side, the framework only re-evaluates the Fig-2
    decision (``Framework.retune``) against the board's cached
    characterization.  ``deadline_s`` is a per-request budget measured
    from submission; a request whose budget expires while queued is
    shed with a coded degraded answer instead of being served late.
    """

    board: str
    app: Optional[str] = None
    workload: Optional[Workload] = None
    profile: Optional[AppProfile] = None
    current_model: str = "SC"
    strict: bool = False
    deadline_s: Optional[float] = None
    tenant: str = ""

    def validate(self) -> None:
        """Raise a structured :class:`ServeError` on a malformed request."""
        payloads = sum(p is not None
                       for p in (self.app, self.workload, self.profile))
        if payloads != 1:
            raise ServeError(
                "a request names exactly one of 'app', 'workload' or "
                f"'profile', got app={self.app!r}, workload="
                f"{getattr(self.workload, 'name', None)!r}, profile="
                f"{getattr(self.profile, 'workload_name', None)!r}",
                code="SERVE_BAD_REQUEST",
                details={"app": self.app, "board": self.board},
            )
        if (self.profile is not None
                and self.profile.board_name != self.board):
            raise ServeError(
                f"profile was measured on {self.profile.board_name!r} "
                f"but the request targets {self.board!r}",
                code="SERVE_BAD_REQUEST",
                details={"profile_board": self.profile.board_name,
                         "board": self.board},
            )
        if self.app is not None and self.app not in SERVE_APPS:
            raise ServeError(
                f"unknown application {self.app!r}; available: "
                + ", ".join(SERVE_APPS),
                code="SERVE_BAD_REQUEST",
                details={"app": self.app},
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServeError(
                f"deadline_s must be positive, got {self.deadline_s}",
                code="SERVE_BAD_REQUEST",
                details={"deadline_s": self.deadline_s},
            )

    @property
    def workload_name(self) -> str:
        """The name the answer reports for this request's workload."""
        if self.workload is not None:
            return self.workload.name
        if self.profile is not None:
            return self.profile.workload_name
        return str(self.app)


@dataclass(frozen=True)
class TuneAnswer:
    """The server's reply to one :class:`TuneRequest`.

    ``status`` is ``"ok"`` (a full tune ran), ``"shed"`` (overload or
    an expired queue deadline produced a degraded ``KEEP_CURRENT``
    report with coded caveats) or ``"error"`` (a strict-mode tune
    raised; ``error`` carries the structured error dict).
    """

    request: TuneRequest
    report: Optional[TuningReport]
    status: str
    error: Optional[Dict[str, Any]] = None
    batch_size: int = 1
    coalesced_with: int = 0
    wait_s: float = 0.0
    service_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def shed(self) -> bool:
        return self.status == "shed"


@dataclass(frozen=True)
class BatchKey:
    """What makes two in-flight requests batch-compatible.

    ``characterization`` is the content hash the persistent store keys
    entries by (board config + micro-benchmark parameters + package
    version), so two boards that merely share a name never mix, and a
    re-parameterized suite splits from stale traffic automatically.
    """

    characterization: str
    board: str
    current_model: str
    strict: bool


@dataclass
class PendingItem:
    """One queued request plus its completion plumbing."""

    request: TuneRequest
    future: Any
    enqueued: float = field(default_factory=time.monotonic)

    def remaining_s(self, now: Optional[float] = None) -> Optional[float]:
        """Per-request budget left, or ``None`` for no deadline."""
        if self.request.deadline_s is None:
            return None
        now = time.monotonic() if now is None else now
        return self.request.deadline_s - (now - self.enqueued)


@dataclass
class PendingBatch:
    """The open window for one batch key."""

    key: BatchKey
    board: Any  # resolved BoardConfig (resolved once at key time)
    opened: float = field(default_factory=time.monotonic)
    items: List[PendingItem] = field(default_factory=list)
    timer: Any = None
    dispatched: Optional[float] = None

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class UniqueJob:
    """One de-duplicated unit of work inside a batch.

    ``items`` are every request this job answers: requests for the
    same bundled app on the same board (same model, same strictness —
    guaranteed by the batch key) are answer-identical by construction,
    so they share one tune.  Profile-carrying re-tune requests dedupe
    by value — :class:`~repro.profiling.counters.AppProfile` is a
    frozen (hashable) dataclass, so N streams re-asking about the same
    window share one ``Framework.retune``.  Requests carrying explicit
    workloads are never deduplicated — workload equality is not
    checkable cheaply.
    """

    dedupe_key: Tuple[Any, ...]
    items: List[PendingItem] = field(default_factory=list)
    workload: Optional[Workload] = None
    profile: Optional[AppProfile] = None


class Coalescer:
    """Keyed pending-batch table with time/size windows.

    Not thread-safe by itself: the server mutates it only from the
    event loop.  ``add`` opens a batch per key on demand; a batch
    leaves the table exactly once, via :meth:`pop` (size window or
    shutdown flush) or :meth:`pop_if` (window timer, identity-checked
    so a timer can never dispatch a *successor* batch of its key).
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 max_batch: int = DEFAULT_MAX_BATCH) -> None:
        if window_s < 0 or max_batch < 1:
            raise ServeError(
                f"need window_s >= 0 and max_batch >= 1, got "
                f"window_s={window_s}, max_batch={max_batch}",
                code="SERVE_BAD_CONFIG",
                details={"window_s": window_s, "max_batch": max_batch},
            )
        self.window_s = window_s
        self.max_batch = max_batch
        self._batches: Dict[BatchKey, PendingBatch] = {}

    def __len__(self) -> int:
        return sum(len(batch) for batch in self._batches.values())

    @property
    def open_batches(self) -> List[PendingBatch]:
        return list(self._batches.values())

    def add(self, key: BatchKey, board: Any,
            item: PendingItem) -> Tuple[PendingBatch, bool, bool]:
        """Queue ``item`` under ``key``.

        Returns ``(batch, opened, full)``: ``opened`` means this item
        created the batch (the caller should start its window timer),
        ``full`` means the size window closed (the caller should pop
        and dispatch now).
        """
        batch = self._batches.get(key)
        opened = batch is None
        if opened:
            batch = PendingBatch(key=key, board=board)
            self._batches[key] = batch
        batch.items.append(item)
        return batch, opened, len(batch) >= self.max_batch

    def pop(self, key: BatchKey) -> Optional[PendingBatch]:
        """Remove and return the batch for ``key`` (None if absent)."""
        return self._batches.pop(key, None)

    def pop_if(self, key: BatchKey,
               batch: PendingBatch) -> Optional[PendingBatch]:
        """Remove ``batch`` only if it is still the one registered.

        A window timer holds a reference to the batch it opened; by the
        time it fires, a size-window dispatch may have replaced it with
        a fresh batch under the same key.  Identity-checking keeps the
        timer from stealing the successor's window.
        """
        current = self._batches.get(key)
        if current is not batch:
            return None
        return self._batches.pop(key)

    def flush(self) -> List[PendingBatch]:
        """Remove and return every open batch (shutdown drain)."""
        batches = list(self._batches.values())
        self._batches.clear()
        return batches


def plan_unique_jobs(items: List[PendingItem]) -> List[UniqueJob]:
    """Collapse a batch's requests into unique units of work.

    Bundled-app requests sharing ``(app, board)`` merge (the batch key
    already fixed model and strictness); explicit-workload requests
    each get their own job.  Job order follows first appearance, so
    the execution order — and therefore any per-tune observable side
    effect — is deterministic for a fixed arrival order.
    """
    jobs: Dict[Tuple[Any, ...], UniqueJob] = {}
    fresh = itertools.count()
    for item in items:
        request = item.request
        if request.workload is not None:
            key: Tuple[Any, ...] = ("workload", next(fresh))
        elif request.profile is not None:
            key = ("profile", request.profile)
        else:
            key = ("app", request.app, request.board)
        job = jobs.get(key)
        if job is None:
            job = UniqueJob(dedupe_key=key, workload=request.workload,
                            profile=request.profile)
            jobs[key] = job
        job.items.append(item)
    return list(jobs.values())


def shed_report(request: TuneRequest, code: str, detail: str,
                device: Any = None) -> TuningReport:
    """A degraded ``KEEP_CURRENT`` report for a request the server
    sheds (overload, expired queue deadline) — same shape and caveat
    style as the framework's own degraded answers, so callers handle
    both identically."""
    caveat = f"request shed — {code}: {detail}"
    recommendation = keep_current(
        request.current_model, caveat, caveats=[caveat], device=device,
    )
    return TuningReport(
        workload_name=request.workload_name,
        board_name=request.board,
        current_model=request.current_model.upper(),
        profile=None,
        device=device,
        cpu_cache_usage_pct=float("nan"),
        gpu_cache_usage_pct=float("nan"),
        recommendation=recommendation,
    )
