"""Sustained-throughput probes for the tune server.

One source of truth, three consumers — the same functions generate the
committed ``BENCH_serve.json`` baseline, feed the ``repro bench
--check`` exit-4 regression gate (via :mod:`repro.perf.regress`), and
back ``repro serve --bench`` / ``benchmarks/bench_serve.py`` — so the
gate always measures exactly the shape the baseline recorded.

Two probes:

- :func:`serving_probe` — a fixed multi-tenant traffic mix (many
  tenants, few distinct app × board questions: the paper makes *one*
  decision per app × board, so production traffic is massively
  duplicated) handled two ways on a **warm** characterization store:
  serially (each request end to end through ``Framework.tune``, the
  pre-serve behaviour) and coalesced (concurrent submission through
  :class:`~repro.serve.server.TuneServer`).  Reports
  decisions/second for both and the speedup the gate enforces;
- :func:`store_churn_probe` — hit/miss/eviction behaviour of the
  sharded LRU store under a working set larger than its byte budget.
"""

from __future__ import annotations

import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.model.framework import Framework
from repro.serve.coalescer import TuneRequest
from repro.serve.server import ServeConfig, TuneServer, serve_all
from repro.soc.board import get_board

#: The default traffic mix: (app, board) questions the synthetic
#: tenants keep asking.  Two apps × three boards = six distinct
#: decisions, fanned out to many requests — the coalescer's habitat.
DEFAULT_MIX: Tuple[Tuple[str, str], ...] = (
    ("shwfs", "tx2"), ("orbslam", "tx2"),
    ("shwfs", "xavier"), ("orbslam", "xavier"),
    ("shwfs", "nano"), ("orbslam", "nano"),
)

#: Default request count for the committed baseline (8 tenants per
#: distinct question).
DEFAULT_REQUESTS = 48


def traffic(requests: int = DEFAULT_REQUESTS,
            mix: Tuple[Tuple[str, str], ...] = DEFAULT_MIX,
            current_model: str = "SC") -> List[TuneRequest]:
    """A deterministic round-robin request stream over ``mix``."""
    stream = []
    for index in range(requests):
        app, board = mix[index % len(mix)]
        stream.append(TuneRequest(
            app=app, board=board, current_model=current_model,
            tenant=f"tenant-{index:03d}",
        ))
    return stream


def run_serial(requests: List[TuneRequest],
               framework: Framework) -> float:
    """Handle every request end to end, one at a time (the baseline).

    This is the pre-serve behaviour of a naive front end: build the
    workload, run ``Framework.tune``, answer, next — no window, no
    dedup.  Returns the wall-clock seconds for the whole stream.
    """
    from repro.cli import _get_pipeline

    start = time.perf_counter()
    for request in requests:
        board = get_board(request.board)
        workload = request.workload
        if workload is None:
            workload = _get_pipeline(request.app).workload(
                board_name=board.name)
        framework.tune(workload, board,
                       current_model=request.current_model,
                       strict=request.strict)
    return time.perf_counter() - start


def run_coalesced(requests: List[TuneRequest], framework: Framework,
                  config: Optional[ServeConfig] = None
                  ) -> Tuple[float, List[Any], TuneServer]:
    """Serve the stream through the coalescing server, submitted
    concurrently; returns (seconds, answers, server)."""
    server_box: List[TuneServer] = []

    import asyncio

    async def _run():
        async with TuneServer(framework, config) as server:
            server_box.append(server)
            return await server.submit_many(requests)

    start = time.perf_counter()
    answers = asyncio.run(_run())
    elapsed = time.perf_counter() - start
    return elapsed, answers, server_box[0]


def serving_probe(requests: int = DEFAULT_REQUESTS,
                  config: Optional[ServeConfig] = None,
                  cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Serial vs coalesced sustained throughput on a warm store.

    Both sides see identical traffic and an identically warmed
    characterization store (every board characterized once up front —
    the steady state of a long-running service), so the measured gap is
    purely the serving architecture: window coalescing, duplicate
    fan-out and characterize-once batching.
    """
    config = config or ServeConfig(
        max_pending=max(ServeConfig().max_pending, requests))
    stream = traffic(requests)
    with tempfile.TemporaryDirectory() as fallback_dir:
        framework = Framework(cache_dir=cache_dir or fallback_dir)
        boards = sorted({request.board for request in stream})
        for name in boards:  # warm: characterize each board once
            framework.characterize(get_board(name))

        serial_s = run_serial(stream, framework)
        coalesced_s, answers, server = run_coalesced(
            stream, framework, config)

    shed = [answer for answer in answers if answer.shed]
    batches = server.stats.batches
    return {
        "requests": requests,
        "distinct_questions": len({(r.app, r.board) for r in stream}),
        "window_s": config.window_s,
        "max_batch": config.max_batch,
        "serial_s": round(serial_s, 4),
        "coalesced_s": round(coalesced_s, 4),
        "serial_decisions_per_s": round(requests / serial_s, 1),
        "coalesced_decisions_per_s": round(requests / coalesced_s, 1),
        "speedup": round(serial_s / coalesced_s, 1),
        "batches": batches,
        "mean_batch_size": round(requests / batches, 2) if batches else 0.0,
        "coalesced_answers": server.stats.coalesced,
        "shed": len(shed),
    }


def serving_timing_pair(requests: int = DEFAULT_REQUESTS
                        ) -> Tuple[float, float]:
    """(serial seconds, coalesced seconds) for the regression gate."""
    result = serving_probe(requests)
    return result["serial_s"], result["coalesced_s"]


def store_churn_probe(hot_boards: int = 4,
                      cold_boards: int = 8,
                      accesses: int = 120,
                      budget_entries: int = 6) -> Dict[str, Any]:
    """Hit rate and evictions under skewed traffic beyond the budget.

    Serving traffic is skewed — a few hot app × board questions plus a
    long cold tail.  The probe drives a deterministic 4-in-5-hot
    pattern (every 5th access walks the cold tail) through a store
    whose byte budget only fits ``budget_entries`` of the
    ``hot_boards + cold_boards`` distinct keys: the LRU keeps the hot
    set resident while the cold tail churns through the remaining
    slots.  Records the achieved hit rate, eviction count and resident
    set so the baseline documents the store's behaviour under churn
    (reported, not gated: the hit rate is a property of the pattern,
    not a speed).
    """
    import dataclasses

    from repro.microbench.suite import MicrobenchmarkSuite
    from repro.perf.cache import ShardedCharacterizationStore

    base_board = get_board("tx2")
    hot = [dataclasses.replace(base_board, name=f"hot-{i:02d}")
           for i in range(hot_boards)]
    cold = [dataclasses.replace(base_board, name=f"cold-{i:02d}")
            for i in range(cold_boards)]
    suite = MicrobenchmarkSuite()
    signature = suite.cache_signature()
    device = suite.characterize(base_board)

    with tempfile.TemporaryDirectory() as directory:
        probe_store = ShardedCharacterizationStore(directory, num_shards=1)
        probe_store.store(base_board, signature, device)
        entry_bytes = probe_store.entries()[0].stat().st_size
        probe_store.clear()
        store = ShardedCharacterizationStore(
            directory, num_shards=1,
            max_bytes=entry_bytes * budget_entries + budget_entries,
        )
        snapshot = obs.REGISTRY.snapshot()
        row = snapshot.get("perf.store.evicted")
        evictions_before = int(row["value"]) if row else 0
        hits = misses = 0
        for index in range(accesses):
            if index % 5 == 4:
                board = cold[(index // 5) % len(cold)]
            else:
                board = hot[index % len(hot)]
            if store.load(board, signature) is not None:
                hits += 1
            else:
                misses += 1
                store.store(board, signature, device)
        snapshot = obs.REGISTRY.snapshot()
        row = snapshot.get("perf.store.evicted")
        evictions = (int(row["value"]) if row else 0) - evictions_before
        resident = len(store.entries())
    total = hits + misses
    return {
        "hot_boards": hot_boards,
        "cold_boards": cold_boards,
        "budget_entries": budget_entries,
        "accesses": total,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 3) if total else 0.0,
        "evictions": evictions,
        "resident_entries": resident,
    }


def collect_serve_bench(generated: str, host: str = "vm",
                        requests: int = DEFAULT_REQUESTS) -> Dict[str, Any]:
    """Measure both probes and build the ``BENCH_serve.json`` payload."""
    from repro.perf.regress import REGRESSION_THRESHOLD

    serving = serving_probe(requests)
    store = store_churn_probe()
    return {
        "criteria": {
            "min_coalesced_speedup": 3.0,
            "regression_threshold": REGRESSION_THRESHOLD,
        },
        "generated": generated,
        "host": host,
        "serving": serving,
        "store_churn": store,
    }
