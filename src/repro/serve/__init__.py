"""repro.serve — tuning-as-a-service: the asyncio multi-tenant front end.

The layer that turns the library into a system: heavy request traffic
enters here and is answered by the same ``Framework.tune`` flow the
paper describes, amortized three ways —

- **micro-batching** (:mod:`repro.serve.coalescer`): compatible
  in-flight requests (same characterization content hash, model and
  strictness) group within a small time/size window and dispatch as
  one characterize-once ``tune_many`` batch; identical requests
  collapse onto a single tune whose answer fans out;
- **shared characterization store**
  (:class:`~repro.perf.cache.ShardedCharacterizationStore`): key-prefix
  shards, byte-budgeted LRU eviction, cross-process single-flight
  stampede protection;
- **backpressure** (:mod:`repro.serve.server`): a bounded in-flight
  limit past which overload is shed into degraded ``KEEP_CURRENT``
  answers with coded caveats, and per-request deadlines with
  :mod:`repro.resilience.deadline` semantics.

``repro serve --bench`` self-drives the server with synthetic
multi-tenant traffic; :mod:`repro.serve.bench` is the one source of
truth for the ``BENCH_serve.json`` baseline and its exit-4 regression
gate.  See ``docs/serving.md``.
"""

from repro.serve.coalescer import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW_S,
    SERVE_APPS,
    BatchKey,
    Coalescer,
    PendingBatch,
    PendingItem,
    TuneAnswer,
    TuneRequest,
    UniqueJob,
    plan_unique_jobs,
    shed_report,
)
from repro.serve.server import ServeConfig, ServeStats, TuneServer, serve_all

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_WINDOW_S",
    "SERVE_APPS",
    "BatchKey",
    "Coalescer",
    "PendingBatch",
    "PendingItem",
    "ServeConfig",
    "ServeStats",
    "TuneAnswer",
    "TuneRequest",
    "TuneServer",
    "UniqueJob",
    "plan_unique_jobs",
    "serve_all",
    "shed_report",
]
