"""``TuneServer``: the asyncio, multi-tenant tuning front end.

Composition layer over the existing stack — nothing below it changes:

- requests enter :meth:`TuneServer.submit` and join the
  :class:`~repro.serve.coalescer.Coalescer`'s window for their batch
  key (characterization hash × model × strictness);
- a window closes by time (``window_s``) or size (``max_batch``) and
  the batch is dispatched to a worker thread, where duplicate requests
  collapse onto one ``Framework.tune`` and distinct workloads ride the
  characterize-once ``tune_many`` path (whose sweeps run on the
  vectorized ``run_batch`` engine, results straight from the sharded
  characterization store on a warm key);
- **backpressure**: at most ``max_pending`` requests may be in flight;
  overflow is load-shed *immediately* into degraded ``KEEP_CURRENT``
  answers carrying a ``SERVE_OVERLOADED`` caveat — the queue never
  grows without bound and a shed answer is always well-formed;
- **deadlines**: a request's ``deadline_s`` is measured from
  submission via :mod:`repro.resilience.deadline` semantics — expired
  while queued ⇒ shed with a ``DEADLINE_EXCEEDED`` caveat; still live
  at dispatch ⇒ the batch runs under a cooperative
  :func:`~repro.resilience.deadline.deadline_scope` when every rider
  carries a budget.

Everything is observable through :mod:`repro.obs`:
``serve.submitted`` / ``serve.shed`` / ``serve.batches`` /
``serve.answers`` / ``serve.coalesced`` counters, ``serve.pending``
gauge, and ``serve.wait_s`` / ``serve.service_s`` / ``serve.batch_size``
histograms.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ReproError, ServeError
from repro.model.framework import Framework
from repro.perf.cache import cache_key
from repro.resilience.deadline import Deadline, deadline_scope
from repro.serve.coalescer import (
    BatchKey,
    Coalescer,
    PendingBatch,
    PendingItem,
    TuneAnswer,
    TuneRequest,
    UniqueJob,
    plan_unique_jobs,
    shed_report,
)
from repro.soc.board import get_board


@dataclass(frozen=True)
class ServeConfig:
    """The server's tuning knobs (documented in ``docs/serving.md``).

    ``window_s`` trades tail latency for batching opportunity;
    ``max_batch`` bounds one dispatch; ``max_pending`` is the
    backpressure limit past which submissions shed; ``dispatch_workers``
    is how many batches may execute concurrently (distinct keys —
    e.g. different boards — overlap)."""

    window_s: float = 0.005
    max_batch: int = 16
    max_pending: int = 64
    dispatch_workers: int = 2

    def validated(self) -> "ServeConfig":
        if self.max_pending < 1 or self.dispatch_workers < 1:
            raise ServeError(
                f"need max_pending >= 1 and dispatch_workers >= 1, got "
                f"{self.max_pending} / {self.dispatch_workers}",
                code="SERVE_BAD_CONFIG",
                details={"max_pending": self.max_pending,
                         "dispatch_workers": self.dispatch_workers},
            )
        return self


@dataclass
class ServeStats:
    """Since-start counters mirrored from the obs registry for cheap
    programmatic access (the bench and the CLI read these)."""

    submitted: int = 0
    answered: int = 0
    shed_overload: int = 0
    shed_deadline: int = 0
    batches: int = 0
    coalesced: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class TuneServer:
    """Asyncio front end batching tune requests into the framework.

    Use as an async context manager::

        async with TuneServer(framework) as server:
            answers = await asyncio.gather(
                *(server.submit(r) for r in requests))
    """

    def __init__(self, framework: Optional[Framework] = None,
                 config: Optional[ServeConfig] = None,
                 surrogate: Optional[Any] = None) -> None:
        self.framework = framework if framework is not None else Framework()
        #: Optional :class:`~repro.explore.surrogate.CharacterizationSurrogate`
        #: consulted by every strict batch — boards inside a known swept
        #: space are answered from probe points instead of a full
        #: characterization.  Overrides the framework's own default.
        self.surrogate = (surrogate if surrogate is not None
                          else self.framework.surrogate)
        self.config = (config or ServeConfig()).validated()
        self.stats = ServeStats()
        self._coalescer = Coalescer(window_s=self.config.window_s,
                                    max_batch=self.config.max_batch)
        self._pending = 0
        self._open = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inflight: set = set()
        self._workloads: Dict[Tuple[str, str], Any] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._open:
            return
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.dispatch_workers,
            thread_name_prefix="repro-serve",
        )
        self._open = True
        obs.event("serve.started", window_s=self.config.window_s,
                  max_batch=self.config.max_batch,
                  max_pending=self.config.max_pending)

    async def stop(self) -> None:
        """Stop accepting, flush open windows, await in-flight work."""
        if not self._open:
            return
        self._open = False
        for batch in self._coalescer.flush():
            if batch.timer is not None:
                batch.timer.cancel()
            self._launch(batch)
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._executor = None
        obs.event("serve.stopped", **self.stats.as_dict())

    async def __aenter__(self) -> "TuneServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def pending(self) -> int:
        """Requests queued or executing right now."""
        return self._pending

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    async def submit(self, request: TuneRequest) -> TuneAnswer:
        """Queue one request; resolves to its :class:`TuneAnswer`.

        Malformed requests raise a structured :class:`ServeError`;
        overload does not raise — it sheds (see the module docstring).
        """
        if not self._open:
            raise ServeError("the server is not running",
                             code="SERVE_STOPPED")
        request.validate()
        board = get_board(request.board)  # raises on unknown boards
        obs.counter_inc("serve.submitted")
        self.stats.submitted += 1
        if self._pending >= self.config.max_pending:
            return self._shed(request, "SERVE_OVERLOADED",
                              f"{self._pending} request(s) already in "
                              f"flight (limit {self.config.max_pending})")
        key = BatchKey(
            characterization=cache_key(
                board, self.framework.suite.cache_signature()),
            board=board.name,
            current_model=request.current_model.upper(),
            strict=request.strict,
        )
        item = PendingItem(request=request,
                           future=self._loop.create_future())
        batch, opened, full = self._coalescer.add(key, board, item)
        self._pending += 1
        obs.gauge_set("serve.pending", self._pending)
        if full:
            popped = self._coalescer.pop(key)
            if popped is not None:
                if popped.timer is not None:
                    popped.timer.cancel()
                self._launch(popped)
        elif opened:
            batch.timer = self._loop.create_task(
                self._window_timer(key, batch))
        return await item.future

    async def submit_many(
        self, requests: Sequence[TuneRequest]
    ) -> List[TuneAnswer]:
        """Submit concurrently; answers keep the input order."""
        return list(await asyncio.gather(
            *(self.submit(request) for request in requests)))

    def _shed(self, request: TuneRequest, code: str,
              detail: str) -> TuneAnswer:
        obs.counter_inc("serve.shed")
        obs.event("serve.shed", code=code, board=request.board,
                  workload=request.workload_name, pending=self._pending)
        if code == "DEADLINE_EXCEEDED":
            self.stats.shed_deadline += 1
        else:
            self.stats.shed_overload += 1
        device = self.framework.suite._cache.get(request.board)
        return TuneAnswer(
            request=request,
            report=shed_report(request, code, detail, device=device),
            status="shed",
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def _window_timer(self, key: BatchKey,
                            batch: PendingBatch) -> None:
        try:
            await asyncio.sleep(self.config.window_s)
        except asyncio.CancelledError:
            return
        popped = self._coalescer.pop_if(key, batch)
        if popped is not None:
            self._launch(popped)

    def _launch(self, batch: PendingBatch) -> None:
        batch.dispatched = time.monotonic()
        task = self._loop.create_task(self._run_batch(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, batch: PendingBatch) -> None:
        try:
            answers = await self._loop.run_in_executor(
                self._executor, self._execute_batch, batch)
            for item, answer in zip(batch.items, answers):
                if not item.future.done():
                    item.future.set_result(answer)
        except BaseException as error:  # defensive: never strand a future
            obs.event("serve.batch_crashed", error=str(error),
                      batch_size=len(batch.items))
            for item in batch.items:
                if not item.future.done():
                    item.future.set_exception(
                        ServeError(
                            f"batch execution failed: {error}",
                            code="SERVE_BATCH_FAILED",
                            details={"batch_size": len(batch.items)},
                        ))
        finally:
            self._pending -= len(batch.items)
            obs.gauge_set("serve.pending", self._pending)

    # ------------------------------------------------------------------
    # execution (worker thread)
    # ------------------------------------------------------------------

    def _execute_batch(self, batch: PendingBatch) -> List[TuneAnswer]:
        """Run one dispatched batch; one answer per item, in order."""
        now = time.monotonic()
        obs.counter_inc("serve.batches")
        obs.observe("serve.batch_size", len(batch.items))
        self.stats.batches += 1
        answers: Dict[int, TuneAnswer] = {}
        live: List[PendingItem] = []
        for item in batch.items:
            remaining = item.remaining_s(now)
            if remaining is not None and remaining <= 0:
                answers[id(item)] = self._shed(
                    item.request, "DEADLINE_EXCEEDED",
                    f"budget of {item.request.deadline_s:.3f}s exhausted "
                    f"after {now - item.enqueued:.3f}s in queue")
                continue
            live.append(item)
        if live:
            jobs = plan_unique_jobs(live)
            self._build_workloads(jobs, batch)
            results = self._execute_jobs(jobs, batch, now)
            service_s = time.monotonic() - now
            for job, (report, error) in zip(jobs, results):
                for position, item in enumerate(job.items):
                    answers[id(item)] = TuneAnswer(
                        request=item.request,
                        report=report,
                        status="error" if error is not None else "ok",
                        error=error,
                        batch_size=len(batch.items),
                        coalesced_with=len(job.items) - 1,
                        wait_s=(batch.dispatched or now) - item.enqueued,
                        service_s=service_s,
                    )
                    if position:
                        obs.counter_inc("serve.coalesced")
                        self.stats.coalesced += 1
                    if error is not None:
                        self.stats.errors += 1
            obs.observe("serve.service_s", service_s)
        for item in batch.items:
            obs.counter_inc("serve.answers")
            self.stats.answered += 1
            obs.observe("serve.wait_s",
                        (batch.dispatched or now) - item.enqueued)
        return [answers[id(item)] for item in batch.items]

    def _build_workloads(self, jobs: List[UniqueJob],
                         batch: PendingBatch) -> None:
        """Attach workloads, memoizing bundled-app builds per board."""
        for job in jobs:
            if job.workload is not None or job.profile is not None:
                continue
            app = job.items[0].request.app
            memo_key = (str(app), batch.key.board)
            workload = self._workloads.get(memo_key)
            if workload is None:
                from repro.cli import _get_pipeline

                workload = _get_pipeline(app).workload(
                    board_name=batch.key.board)
                self._workloads[memo_key] = workload
            job.workload = workload

    def _execute_jobs(
        self, jobs: List[UniqueJob], batch: PendingBatch, dispatched: float
    ) -> List[Tuple[Optional[Any], Optional[Dict[str, Any]]]]:
        """Tune every unique job once: the batched path, then per-job
        isolation when the batch poisons itself.

        The whole batch runs under one cooperative deadline scope when
        *every* rider carries a budget (the most patient rider's — the
        impatient ones were shed at dispatch); any rider without a
        deadline keeps the batch unbounded, matching serial semantics.
        """
        remaining = [item.remaining_s(dispatched)
                     for job in jobs for item in job.items]
        scope: Optional[Deadline] = None
        if remaining and all(r is not None for r in remaining):
            scope = Deadline.after(max(remaining))
        model = batch.key.current_model
        strict = batch.key.strict
        with deadline_scope(scope):
            results: Dict[int, Tuple[Optional[Any],
                                     Optional[Dict[str, Any]]]] = {}
            # Profile-carrying re-tune jobs never touch the profiler:
            # each re-runs only the decision flow against the cached
            # characterization (Framework.retune), with per-job error
            # isolation — a bad shipped profile must not fail the
            # workload jobs riding the same batch.
            tune_indexed: List[Tuple[int, UniqueJob]] = []
            for index, job in enumerate(jobs):
                if job.profile is None:
                    tune_indexed.append((index, job))
                    continue
                try:
                    results[index] = (self.framework.retune(
                        job.profile, board=batch.board,
                        strict=strict), None)
                except ReproError as error:
                    obs.event("serve.job_failed", code=error.code,
                              workload=job.items[0].request.workload_name)
                    results[index] = (None, error.to_dict())
            if tune_indexed:
                tune_results = self._execute_tune_jobs(
                    [job for _, job in tune_indexed], batch, model, strict)
                for (index, _), result in zip(tune_indexed, tune_results):
                    results[index] = result
            return [results[index] for index in range(len(jobs))]

    def _execute_tune_jobs(
        self, jobs: List[UniqueJob], batch: PendingBatch, model: str,
        strict: bool,
    ) -> List[Tuple[Optional[Any], Optional[Dict[str, Any]]]]:
        try:
            reports = self.framework.tune_many(
                [job.workload for job in jobs], batch.board,
                current_model=model, strict=strict,
                surrogate=self.surrogate,
            )
            return [(report, None) for report in reports]
        except ReproError:
            obs.counter_inc("serve.batch_fallback")
        # One request's failure must not fail its neighbours: re-run
        # the batch serially with per-job error isolation.
        results: List[Tuple[Optional[Any], Optional[Dict[str, Any]]]] = []
        for job in jobs:
            try:
                results.append((self.framework.tune(
                    job.workload, batch.board, current_model=model,
                    strict=strict, surrogate=self.surrogate), None))
            except ReproError as error:
                obs.event("serve.job_failed", code=error.code,
                          workload=job.items[0].request.workload_name)
                results.append((None, error.to_dict()))
        return results


def serve_all(requests: Sequence[TuneRequest],
              framework: Optional[Framework] = None,
              config: Optional[ServeConfig] = None,
              surrogate: Optional[Any] = None) -> List[TuneAnswer]:
    """Convenience wrapper: serve a request list on a private loop.

    Submissions are concurrent (so the coalescer sees them in one
    window); answers keep the input order.  ``surrogate`` enables the
    probe-point fast path for boards inside a swept space.
    """
    async def _run() -> List[TuneAnswer]:
        async with TuneServer(framework, config,
                              surrogate=surrogate) as server:
            return await server.submit_many(requests)

    return asyncio.run(_run())
